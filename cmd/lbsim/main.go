// Command lbsim regenerates the experiments recorded in EXPERIMENTS.md:
//
//	lbsim -exp h1        policy comparison (the headline uniform-load claim)
//	lbsim -exp period    collection-period sweep around the thesis's 25 s
//	lbsim -exp timeofday <starttime>/<endtime> window behaviour
//	lbsim -exp netdelay  the §5.2 future-work network-delay constraint
//	lbsim -exp failure   host-failure reaction (collector failure tracking)
//	lbsim -exp scale     deployment-size sweep
//	lbsim -exp ablation  filter/rank/fallback/freshness design choices
//	lbsim -exp flaky     NodeStatus drop faults, breakers, quarantine (H7)
//	lbsim -exp flashcrowd  overload resilience under a 10x surge (H8)
//	lbsim -exp all       everything above
//
// All experiments run on the simulated SDSU cluster under a deterministic
// virtual clock, so outputs are reproducible for a given -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/lbexp"
	"repro/internal/metrics"
	"repro/internal/mtc"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: h1|period|timeofday|netdelay|failure|scale|ablation|flaky|flashcrowd|all")
		hosts = flag.Int("hosts", 4, "number of simulated hosts")
		tasks = flag.Int("tasks", 300, "MTC tasks per run")
		seed  = flag.Int64("seed", 42, "workload seed")
		inter = flag.Duration("interarrival", 2*time.Second, "mean task interarrival")
		cpu   = flag.Float64("cpu", 10, "mean task CPU seconds")
		out   = flag.String("o", "", "also write the report to this file")
	)
	flag.Parse()

	w := &reportWriter{}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w.file = f
	}

	workload := mtc.Workload{
		Tasks:            *tasks,
		MeanInterarrival: *inter,
		TaskCPU:          *cpu,
		TaskMemB:         64 << 20,
		Seed:             *seed,
	}
	base := lbexp.Config{Hosts: *hosts, Heterogeneous: true, Workload: workload}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		w.printf("\n== experiment %s ==\n", name)
		if err := f(); err != nil {
			log.Fatalf("lbsim %s: %v", name, err)
		}
	}

	run("h1", func() error {
		w.printf("H1: per-policy load balance for %d tasks on %d heterogeneous hosts (seed %d)\n\n",
			*tasks, *hosts, *seed)
		tbl, reports, err := lbexp.ComparePolicies(base, lbexp.H1Combos)
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		w.printf("per-host completed tasks:\n")
		share := metrics.NewTable(append([]string{"policy"}, lbexp.HostNames[:*hosts]...)...)
		for i, combo := range lbexp.H1Combos {
			cells := []interface{}{combo.Name}
			for _, v := range reports[i].TaskShare(lbexp.HostNames[:*hosts]) {
				cells = append(cells, v)
			}
			share.AddRow(cells...)
		}
		w.printf("%s\n", share)
		return nil
	})

	run("period", func() error {
		w.printf("H2: collection-period sweep (thesis default 25s), least-loaded policy\n\n")
		cfg := base
		cfg.RegistryPolicy = core.PolicyLeastLoaded
		tbl, err := lbexp.PeriodSweep(cfg, []time.Duration{
			time.Second, 5 * time.Second, 25 * time.Second, time.Minute, 2 * time.Minute,
		})
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		return nil
	})

	run("timeofday", func() error {
		w.printf("H3: 1000-1200 service window queried at different hours, both window modes\n\n")
		_, tbl, err := lbexp.TimeOfDay(*hosts)
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		return nil
	})

	run("netdelay", func() error {
		w.printf("H4 (§5.2 extension): netdelay ls 30 over hosts at 5/20/35/... ms\n\n")
		tbl, err := lbexp.NetDelay(*hosts, 30)
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		return nil
	})

	run("failure", func() error {
		w.printf("H5: host 1 fails 120s into the workload; registry reaction\n\n")
		cfg := base
		cfg.Workload.Tasks = *tasks
		// Light memory footprint and a permissive constraint isolate the
		// dead-host story from memory-pressure and load-filter effects.
		cfg.Workload.TaskMemB = 8 << 20
		cfg.Constraint = `<constraint><cpuLoad>load ls 1000.0</cpuLoad></constraint>`
		tbl, _, err := lbexp.Failure(cfg, 2*time.Minute)
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		return nil
	})

	run("scale", func() error {
		w.printf("H6: deployment-size sweep — stock vs balanced as hosts grow\n\n")
		tbl := metrics.NewTable("hosts", "registry", "completed", "loadFairness", "latMean(s)")
		for _, hosts := range []int{2, 4, 6, 8} {
			for _, combo := range []lbexp.Combo{
				{Name: "stock", Registry: core.PolicyStock, Client: mtc.ClientFirst},
				{Name: "lb", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst, Fallback: true},
			} {
				cfg := base
				cfg.Hosts = hosts
				cfg.RegistryPolicy = combo.Registry
				cfg.ClientPolicy = combo.Client
				cfg.FallbackAll = combo.Fallback
				rep, err := lbexp.Run(cfg)
				if err != nil {
					return err
				}
				tbl.AddRow(hosts, combo.Name, rep.Completed,
					rep.MeanFairness(), rep.LatencySummary().Mean)
			}
		}
		w.printf("%s\n", tbl)
		return nil
	})

	run("ablation", func() error {
		w.printf("Ablations: fallback and freshness (DESIGN.md choices 2-3)\n\n")
		tbl := metrics.NewTable("variant", "completed", "dropped", "loadFairness")

		impossible := base
		impossible.RegistryPolicy = core.PolicyFilter
		impossible.Constraint = `<constraint><memory>memory gr 1024GB</memory></constraint>`
		impossible.Workload.Tasks = 50
		rep, err := lbexp.Run(impossible)
		if err != nil {
			return err
		}
		tbl.AddRow("filter, impossible constraint, no fallback", rep.Completed, rep.Dropped, rep.MeanFairness())

		withFB := impossible
		withFB.FallbackAll = true
		rep, err = lbexp.Run(withFB)
		if err != nil {
			return err
		}
		tbl.AddRow("filter, impossible constraint, fallback-all", rep.Completed, rep.Dropped, rep.MeanFairness())

		stale := base
		stale.RegistryPolicy = core.PolicyFilter
		stale.Freshness = 10 * time.Second
		stale.CollectionPeriod = 2 * time.Minute
		stale.Workload.Tasks = 50
		rep, err = lbexp.Run(stale)
		if err != nil {
			return err
		}
		tbl.AddRow("filter, 10s freshness vs 2m period", rep.Completed, rep.Dropped, rep.MeanFairness())

		rank := stale
		rank.RegistryPolicy = core.PolicyRankFirst
		rep, err = lbexp.Run(rank)
		if err != nil {
			return err
		}
		tbl.AddRow("rank-first, 10s freshness vs 2m period", rep.Completed, rep.Dropped, rep.MeanFairness())

		w.printf("%s\n", tbl)
		return nil
	})

	run("flaky", func() error {
		w.printf("H7: NodeStatus faults on %d of %d hosts — drop-rate sweep with\n", lbexp.FlakyHosts, len(lbexp.HostNames))
		w.printf("per-host breakers, quarantine, and static-degraded discovery\n\n")
		tbl, results, err := lbexp.Flaky(base, []float64{0, 0.1, 0.3, 0.6, 0.9})
		if err != nil {
			return err
		}
		w.printf("%s\n", tbl)
		w.printf("per-host completed tasks:\n%s\n", lbexp.FlakySharesTable(results))
		same, err := lbexp.FlakyReplayIdentical(base, 0.3)
		if err != nil {
			return err
		}
		w.printf("replay check (drop 0.3, seed %d): byte-identical = %v\n", *seed, same)
		return nil
	})

	run("flashcrowd", func() error {
		cfg := lbexp.DefaultFlashCrowd(*seed)
		w.printf("H8: overload resilience — %d baseline clients, %d-client flash crowd\n",
			cfg.BaselineClients, cfg.SurgeClients)
		w.printf("for %s; admission control, AIMD shedding, brownout ladder\n\n", cfg.Surge)
		baseline, surge, err := lbexp.FlashCrowd(cfg)
		if err != nil {
			return err
		}
		w.printf("%s\n", lbexp.FlashCrowdTable(baseline, surge))
		w.printf("per-phase assignment balance:\n%s\n", lbexp.FlashCrowdBalanceTable(cfg.Hosts, baseline, surge))
		same, err := lbexp.FlashCrowdReplayIdentical(cfg)
		if err != nil {
			return err
		}
		w.printf("replay check (seed %d): byte-identical = %v\n", *seed, same)
		return nil
	})
}

// reportWriter tees output to stdout and an optional file.
type reportWriter struct {
	file *os.File
}

func (w *reportWriter) printf(format string, args ...interface{}) {
	fmt.Printf(format, args...)
	if w.file != nil {
		fmt.Fprintf(w.file, format, args...)
	}
}
