// Command scrapesmoke is the CI scrape smoke: it boots a registry with a
// seeded simulated host cluster, drives discovery over real HTTP, then
// scrapes /registry/metrics and /registry/traces and fails (non-zero
// exit) when the exposition is malformed, an expected metric family is
// missing, or a discovery's X-Registry-Trace id cannot be retrieved from
// the trace ring. A final phase turns sampling off and exercises the
// response cache end to end: hit/miss/entry counts must scrape exactly,
// the frozen router's 404 counter must tick, and an LCM write must
// invalidate. The balance phase then sweeps once and asserts the
// registry_balance_* / registry_slo_* families scrape with the exact
// values the driven traffic implies, and that every request left a
// retrievable flight record and the diagnostic bundle carries all its
// sections. A replication phase then boots a leader/follower pair over
// real listeners, submits through the follower (the 307 redirect to the
// leader must be followed transparently), drives the follower's tailer,
// and asserts the follower serves the replicated binding locally and
// both registries' registry_repl_* families scrape with the exact
// values the pair implies. It runs entirely in-process on a manual
// clock, so CI needs no orchestration beyond `go run ./cmd/scrapesmoke`.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/repl"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/wal"
)

const hosts = 4

func main() {
	if err := run(); err != nil {
		log.Fatalf("scrapesmoke: %v", err)
	}
	fmt.Println("scrapesmoke: ok")
}

func run() error {
	epoch := time.Date(2011, 4, 22, 9, 0, 0, 0, time.UTC)
	clk := simclock.NewManual(epoch)
	cluster := hostsim.NewCluster()
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	svc := rim.NewService("Adder",
		`<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("h%02d.sdsu.edu", i)
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, epoch))
		ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
		svc.AddBinding("http://" + name + ":8080/Adder/addService")
	}

	logger, err := obs.NewLogger(os.Stderr, "warn", "text")
	if err != nil {
		return err
	}
	reg, err := registry.New(registry.Config{
		Clock:          clk,
		Policy:         core.PolicyFilter,
		SnapshotMaxAge: 25 * time.Second,
		Invoker:        nodestatus.LocalInvoker{Cluster: cluster, Clock: clk},
		Breaker:        &breaker.Config{Threshold: 3, BaseBackoff: 50 * time.Second, MaxBackoff: 10 * time.Minute},
		Logger:         logger,
		TraceSample:    1,
		Admission:      &admit.Config{},
	})
	if err != nil {
		return err
	}
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), ns, svc); err != nil {
		return err
	}
	reg.Collector.CollectOnce()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := registry.HardenedServer("", reg.Handler())
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	// Drive a few discoveries; every one is sampled (TraceSample=1) and
	// must echo a trace id.
	var traceID string
	for i := 0; i < 5; i++ {
		resp, err := client.Get(base + "/registry/bindings?service=Adder")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bindings status %d", resp.StatusCode)
		}
		traceID = resp.Header.Get("X-Registry-Trace")
		if traceID == "" {
			return fmt.Errorf("discovery response missing X-Registry-Trace header")
		}
	}

	if err := checkHealth(client, base); err != nil {
		return err
	}
	if err := checkMetrics(client, base); err != nil {
		return err
	}
	if err := checkTraces(client, base, traceID); err != nil {
		return err
	}
	if err := checkRespCache(client, base, reg); err != nil {
		return err
	}
	if err := checkBalance(client, base, reg); err != nil {
		return err
	}
	if err := checkFlightBundle(client, base); err != nil {
		return err
	}
	return checkRepl(epoch)
}

// checkRepl boots a durable leader and a follower registry over real
// listeners, submits a service THROUGH the follower (whose write edge
// answers 307 + NotRegistryLeader; the stock HTTP client must follow it
// to the leader transparently), then drives the follower's tailer to
// convergence and asserts the follower serves the replicated binding
// from local state and both sides' registry_repl_* families scrape with
// the exact values the pair implies.
func checkRepl(epoch time.Time) error {
	clk := simclock.NewManual(epoch)
	ldir, err := os.MkdirTemp("", "scrapesmoke-leader-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ldir)
	fdir, err := os.MkdirTemp("", "scrapesmoke-follower-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fdir)

	leader, err := registry.New(registry.Config{
		Clock:      clk,
		Policy:     core.PolicyStock,
		DataDir:    ldir,
		Fsync:      wal.FsyncNever,
		ReplLeader: true,
	})
	if err != nil {
		return err
	}
	if err := leader.Durable.Checkpoint(); err != nil {
		return err
	}
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lln.Close()
	lsrv := registry.HardenedServer("", leader.Handler())
	go lsrv.Serve(lln)
	defer lsrv.Close()
	lbase := "http://" + lln.Addr().String()

	client := &http.Client{Timeout: 10 * time.Second}
	follower, err := registry.New(registry.Config{
		Clock:         clk,
		Policy:        core.PolicyStock,
		ReplFollowURL: lbase,
	})
	if err != nil {
		return err
	}
	f, err := repl.OpenFollower(fdir, follower.Store, repl.FollowerOptions{
		LeaderURL: lbase,
		Clock:     clk,
		Client:    client,
		Seed:      42,
		PollWait:  -1, // polls return immediately; the smoke drives them
	})
	if err != nil {
		return err
	}
	follower.AttachFollower(f)
	defer f.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer fln.Close()
	fsrv := registry.HardenedServer("", follower.Handler())
	go fsrv.Serve(fln)
	defer fsrv.Close()
	fbase := "http://" + fln.Addr().String()

	// Publish via the FOLLOWER: registration, login, and submit are all
	// writes, so every request bounces 307 to the leader and the client
	// must follow it without any special handling.
	conn := jaxr.Connect(fbase, client)
	creds, _, err := conn.Register("smoke-repl", "pw", rim.PersonName{})
	if err != nil {
		return fmt.Errorf("register via follower: %w", err)
	}
	if err := conn.Login(creds); err != nil {
		return fmt.Errorf("login via follower: %w", err)
	}
	svc := rim.NewService("ReplSmoke", "")
	svc.AddBinding("http://thermo.sdsu.edu:8080/ReplSmoke/addService")
	if _, err := conn.Submit(svc); err != nil {
		return fmt.Errorf("submit via follower: %w", err)
	}
	if got := leader.QM.FindObjects(rim.TypeService, "ReplSmoke"); len(got) != 1 {
		return fmt.Errorf("submitted service did not land on the leader (found %d)", len(got))
	}

	// Converge the follower, then it must serve the binding locally.
	ctx := context.Background()
	if err := f.Bootstrap(ctx); err != nil {
		return err
	}
	leaderPos, leaderSeq := leader.Durable.WAL().Committed()
	for i := 0; f.Stats().Applied != leaderPos; i++ {
		if i >= 200 {
			return fmt.Errorf("follower stuck at %s, leader at %s", f.Stats().Applied, leaderPos)
		}
		if _, err := f.Poll(ctx); err != nil {
			return err
		}
	}
	resp, err := client.Get(fbase + "/registry/bindings?service=ReplSmoke")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("follower bindings status %d", resp.StatusCode)
	}
	var bindings struct {
		URIs []string `json:"uris"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bindings); err != nil {
		return fmt.Errorf("follower bindings not valid JSON: %w", err)
	}
	if len(bindings.URIs) != 1 || !strings.Contains(bindings.URIs[0], "thermo") {
		return fmt.Errorf("follower served bindings %v, want the replicated thermo URI", bindings.URIs)
	}

	// Exact scrape values on both sides. The follower bootstrapped from
	// the pre-write checkpoint (seq 0), so applied_total equals the
	// leader's committed sequence exactly.
	fscrape, err := scrapeMetrics(client, fbase)
	if err != nil {
		return err
	}
	for _, want := range []struct {
		name   string
		labels map[string]string
		value  float64
	}{
		{"registry_repl_position", map[string]string{"part": "segment"}, float64(leaderPos.Segment)},
		{"registry_repl_position", map[string]string{"part": "offset"}, float64(leaderPos.Offset)},
		{"registry_repl_position", map[string]string{"part": "seq"}, float64(leaderSeq)},
		{"registry_repl_lag_records", nil, 0},
		{"registry_repl_lag_seconds", nil, 0},
		{"registry_repl_connected", nil, 1},
		{"registry_repl_applied_total", nil, float64(leaderSeq)},
		{"registry_repl_errors_total", nil, 0},
	} {
		if v, ok := fscrape.Value(want.name, want.labels); !ok || v != want.value {
			return fmt.Errorf("follower %s%v = %v (ok=%v), want %v", want.name, want.labels, v, ok, want.value)
		}
	}
	lscrape, err := scrapeMetrics(client, lbase)
	if err != nil {
		return err
	}
	for _, want := range []struct {
		name   string
		labels map[string]string
		value  float64
	}{
		{"registry_repl_position", map[string]string{"part": "segment"}, float64(leaderPos.Segment)},
		{"registry_repl_position", map[string]string{"part": "offset"}, float64(leaderPos.Offset)},
		{"registry_repl_position", map[string]string{"part": "seq"}, float64(leaderSeq)},
		{"registry_repl_connected", nil, 0}, // no stream in flight between polls
		{"registry_repl_applied_total", nil, 0},
		{"registry_repl_errors_total", nil, 0},
	} {
		if v, ok := lscrape.Value(want.name, want.labels); !ok || v != want.value {
			return fmt.Errorf("leader %s%v = %v (ok=%v), want %v", want.name, want.labels, v, ok, want.value)
		}
	}
	return nil
}

// smokeDiscoveries is every discovery request the phases above drive: the
// five traced ones, the response-cache miss + two hits, and the
// post-invalidation re-render. Each lands one balance assignment, one
// staleness sample, and one flight record.
const smokeDiscoveries = 9

// checkBalance sweeps once (rollups ride collector sweeps) and asserts
// the registry_balance_* / registry_slo_* families scrape with the exact
// values the nine discoveries imply: assignment counts summing to nine,
// the staleness histogram counting nine samples, two rollups (boot + this
// one), a fairness index and capacity skew consistent with the scraped
// per-host counts, and zero burn on both SLO windows (no errors, and on
// the manual clock every request is instantaneous).
func checkBalance(client *http.Client, base string, reg *registry.Registry) error {
	reg.Collector.CollectOnce()
	scrape, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	for _, want := range []struct{ name, typ string }{
		{"registry_balance_assignments_total", "counter"},
		{"registry_balance_fairness_index", "gauge"},
		{"registry_balance_capacity_skew", "gauge"},
		{"registry_balance_rollups_total", "counter"},
		{"registry_balance_staleness_seconds", "histogram"},
		{"registry_slo_availability_burn_rate", "gauge"},
		{"registry_slo_latency_burn_rate", "gauge"},
	} {
		f, ok := scrape.Families[want.name]
		if !ok {
			return fmt.Errorf("metrics missing family %s", want.name)
		}
		if f.Type != want.typ {
			return fmt.Errorf("family %s has type %s, want %s", want.name, f.Type, want.typ)
		}
	}

	// Per-host assignment counts: hosts with zero assignments export no
	// child, so absent samples count as zero; the sum is exact.
	counts := make([]float64, hosts)
	var total float64
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("h%02d.sdsu.edu", i)
		if v, ok := scrape.Value("registry_balance_assignments_total", map[string]string{"host": name}); ok {
			counts[i] = v
		}
		total += counts[i]
	}
	if total != smokeDiscoveries {
		return fmt.Errorf("balance assignments sum = %v, want %d (%v)", total, smokeDiscoveries, counts)
	}
	if v, ok := scrape.Value("registry_balance_staleness_seconds_count", nil); !ok || v != smokeDiscoveries {
		return fmt.Errorf("staleness histogram count = %v (ok=%v), want %d", v, ok, smokeDiscoveries)
	}
	if v, ok := scrape.Value("registry_balance_rollups_total", nil); !ok || v != 2 {
		return fmt.Errorf("balance rollups = %v (ok=%v), want 2 (boot sweep + this one)", v, ok)
	}

	// Fairness and skew must agree with the scraped counts: Jain's index
	// over the per-host deltas (this rollup saw all nine), and the worst
	// host's share against its capacity share (equal memory, so 1/hosts).
	var sumsq float64
	var max float64
	for _, c := range counts {
		sumsq += c * c
		if c > max {
			max = c
		}
	}
	wantFairness := total * total / (float64(hosts) * sumsq)
	if v, ok := scrape.Value("registry_balance_fairness_index", nil); !ok || math.Abs(v-wantFairness) > 1e-6 {
		return fmt.Errorf("fairness index = %v (ok=%v), want %v from counts %v", v, ok, wantFairness, counts)
	}
	wantSkew := (max / total) * float64(hosts)
	if v, ok := scrape.Value("registry_balance_capacity_skew", nil); !ok || math.Abs(v-wantSkew) > 1e-6 {
		return fmt.Errorf("capacity skew = %v (ok=%v), want %v from counts %v", v, ok, wantSkew, counts)
	}

	for _, family := range []string{"registry_slo_availability_burn_rate", "registry_slo_latency_burn_rate"} {
		for _, window := range []string{"5m", "1h"} {
			v, ok := scrape.Value(family, map[string]string{"window": window})
			if !ok || v != 0 {
				return fmt.Errorf("%s{window=%s} = %v (ok=%v), want 0", family, window, v, ok)
			}
		}
	}
	return nil
}

// checkFlightBundle retrieves the flight ring and the diagnostic bundle:
// every discovery left exactly one record (the two response-cache hits
// flagged as such), and the bundle carries all its sections.
func checkFlightBundle(client *http.Client, base string) error {
	resp, err := client.Get(base + "/registry/flight?n=100")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("flight status %d", resp.StatusCode)
	}
	var page struct {
		Written uint64 `json:"written"`
		Records []struct {
			Route    string `json:"route"`
			Outcome  string `json:"outcome"`
			CacheHit bool   `json:"cacheHit"`
			Host     string `json:"host"`
		} `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("flight is not valid JSON: %w", err)
	}
	if page.Written != smokeDiscoveries {
		return fmt.Errorf("flight written = %d, want %d", page.Written, smokeDiscoveries)
	}
	if len(page.Records) != smokeDiscoveries {
		return fmt.Errorf("flight returned %d records, want %d", len(page.Records), smokeDiscoveries)
	}
	hitRecords := 0
	for _, rec := range page.Records {
		if rec.Route != "bindings" || rec.Outcome != "admitted" {
			return fmt.Errorf("unexpected flight record %+v", rec)
		}
		if rec.Host == "" {
			return fmt.Errorf("flight record lost its chosen host: %+v", rec)
		}
		if rec.CacheHit {
			hitRecords++
		}
	}
	if hitRecords != 2 {
		return fmt.Errorf("flight has %d cache-hit records, want 2", hitRecords)
	}

	bresp, err := client.Get(base + "/registry/debug/bundle")
	if err != nil {
		return err
	}
	defer bresp.Body.Close()
	var bundle struct {
		At      string                     `json:"at"`
		Config  map[string]interface{}     `json:"config"`
		Health  map[string]json.RawMessage `json:"health"`
		Metrics string                     `json:"metrics"`
		Flight  []json.RawMessage          `json:"flight"`
		SLO     map[string]json.RawMessage `json:"slo"`
	}
	if bresp.StatusCode != http.StatusOK {
		return fmt.Errorf("bundle status %d", bresp.StatusCode)
	}
	if err := json.NewDecoder(bresp.Body).Decode(&bundle); err != nil {
		return fmt.Errorf("bundle is not valid JSON: %w", err)
	}
	if bundle.At == "" || bundle.Config["policy"] != "filter" {
		return fmt.Errorf("bundle config wrong: at=%q policy=%v", bundle.At, bundle.Config["policy"])
	}
	for _, comp := range []string{"collector", "wal", "admission", "edgecache", "balance"} {
		if _, ok := bundle.Health[comp]; !ok {
			return fmt.Errorf("bundle health missing component %s", comp)
		}
	}
	if !strings.Contains(bundle.Metrics, "registry_balance_fairness_index") {
		return fmt.Errorf("bundle metrics snapshot missing the balance families")
	}
	if len(bundle.Flight) != smokeDiscoveries {
		return fmt.Errorf("bundle has %d flight records, want %d", len(bundle.Flight), smokeDiscoveries)
	}
	for _, window := range []string{"5m", "1h"} {
		if _, ok := bundle.SLO[window]; !ok {
			return fmt.Errorf("bundle SLO missing window %s", window)
		}
	}
	return nil
}

// checkRespCache turns sampling off (the response cache only engages
// while tracing is unsampled), drives a miss + two hits, ticks the
// frozen router's 404 counter, and asserts the registry_respcache_* and
// registry_edge_rejected_total families scrape with the exact expected
// values — then proves an LCM write invalidates by watching the next
// request miss.
func checkRespCache(client *http.Client, base string, reg *registry.Registry) error {
	reg.Tracer.SetSample(0)
	get := func(path string, want int) error {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("GET %s status %d, want %d", path, resp.StatusCode, want)
		}
		return nil
	}
	for i := 0; i < 3; i++ { // one miss renders + stores, two hits serve preserialized
		if err := get("/registry/bindings?service=Adder", http.StatusOK); err != nil {
			return err
		}
	}
	if err := get("/registry/no-such-route", http.StatusNotFound); err != nil {
		return err
	}

	scrape, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	for _, want := range []struct{ name, typ string }{
		{"registry_respcache_hits_total", "counter"},
		{"registry_respcache_misses_total", "counter"},
		{"registry_respcache_invalidations_total", "counter"},
		{"registry_respcache_entries", "gauge"},
		{"registry_edge_rejected_total", "counter"},
	} {
		f, ok := scrape.Families[want.name]
		if !ok {
			return fmt.Errorf("metrics missing family %s", want.name)
		}
		if f.Type != want.typ {
			return fmt.Errorf("family %s has type %s, want %s", want.name, f.Type, want.typ)
		}
	}
	for _, want := range []struct {
		name   string
		labels map[string]string
		value  float64
	}{
		{"registry_respcache_hits_total", nil, 2},
		{"registry_respcache_misses_total", nil, 1},
		{"registry_respcache_entries", nil, 1},
		{"registry_edge_rejected_total", map[string]string{"reason": "not-found"}, 1},
	} {
		if v, ok := scrape.Value(want.name, want.labels); !ok || v != want.value {
			return fmt.Errorf("%s%v = %v (ok=%v), want %v", want.name, want.labels, v, ok, want.value)
		}
	}
	invalidations, ok := scrape.Value("registry_respcache_invalidations_total", nil)
	if !ok {
		return fmt.Errorf("registry_respcache_invalidations_total missing a sample")
	}

	// Any life-cycle write flushes the cache: the counter moves and the
	// next request re-renders.
	noise := rim.NewService("Noise", "")
	noise.AddBinding("http://noise.sdsu.edu:8080/Noise/n")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), noise); err != nil {
		return err
	}
	if err := get("/registry/bindings?service=Adder", http.StatusOK); err != nil {
		return err
	}
	scrape, err = scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	if v, ok := scrape.Value("registry_respcache_invalidations_total", nil); !ok || v != invalidations+1 {
		return fmt.Errorf("invalidations after LCM write = %v (ok=%v), want %v", v, ok, invalidations+1)
	}
	if v, ok := scrape.Value("registry_respcache_misses_total", nil); !ok || v != 2 {
		return fmt.Errorf("misses after LCM write = %v (ok=%v), want 2 (write must invalidate)", v, ok)
	}
	if v, ok := scrape.Value("registry_respcache_hits_total", nil); !ok || v != 2 {
		return fmt.Errorf("hits after LCM write = %v (ok=%v), want 2", v, ok)
	}
	return nil
}

func scrapeMetrics(client *http.Client, base string) (*obs.Scrape, error) {
	resp, err := client.Get(base + "/registry/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	scrape, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("malformed exposition: %w", err)
	}
	return scrape, nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/registry/health")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health status %d", resp.StatusCode)
	}
	var v struct {
		Stats struct{ Sweeps int }
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return fmt.Errorf("health is not valid JSON: %w", err)
	}
	if v.Stats.Sweeps < 1 {
		return fmt.Errorf("health reports %d sweeps, want >= 1", v.Stats.Sweeps)
	}
	return nil
}

func checkMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/registry/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	scrape, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	// Every family the dashboards rely on must be present and typed.
	for _, want := range []struct{ name, typ string }{
		{"registry_objects", "gauge"},
		{"registry_constraint_cache_hits_total", "counter"},
		{"registry_constraint_cache_misses_total", "counter"},
		{"registry_constraint_cache_invalidations_total", "counter"},
		{"registry_collector_sweeps_total", "counter"},
		{"registry_collector_errors_total", "counter"},
		{"registry_collector_timeouts_total", "counter"},
		{"registry_collector_retries_total", "counter"},
		{"registry_breaker_state", "gauge"},
		{"registry_nodestate_rows", "gauge"},
		{"registry_nodestate_snapshot_generation", "gauge"},
		{"registry_nodestate_snapshot_age_seconds", "gauge"},
		{"registry_discovery_total", "counter"},
		{"registry_discovery_verdicts_total", "counter"},
		{"registry_discovery_latency_seconds", "histogram"},
		{"registry_traces_sampled_total", "counter"},
		{"registry_admission_admitted_total", "counter"},
		{"registry_admission_shed_total", "counter"},
		{"registry_admission_queued_total", "counter"},
		{"registry_admission_queue_timeouts_total", "counter"},
		{"registry_admission_deadline_exceeded_total", "counter"},
		{"registry_admission_inflight", "gauge"},
		{"registry_admission_queue_depth", "gauge"},
		{"registry_admission_accept_rate", "gauge"},
		{"registry_brownout_tier", "gauge"},
		{"registry_brownout_transitions_total", "counter"},
	} {
		f, ok := scrape.Families[want.name]
		if !ok {
			return fmt.Errorf("metrics missing family %s", want.name)
		}
		if f.Type != want.typ {
			return fmt.Errorf("family %s has type %s, want %s", want.name, f.Type, want.typ)
		}
	}
	if v, ok := scrape.Value("registry_discovery_total", nil); !ok || v < 5 {
		return fmt.Errorf("registry_discovery_total = %v (ok=%v), want >= 5", v, ok)
	}
	if v, ok := scrape.Value("registry_nodestate_rows", nil); !ok || v != hosts {
		return fmt.Errorf("registry_nodestate_rows = %v (ok=%v), want %d", v, ok, hosts)
	}
	if v, ok := scrape.Value("registry_discovery_latency_seconds_count", nil); !ok || v < 5 {
		return fmt.Errorf("latency histogram count = %v (ok=%v), want >= 5", v, ok)
	}
	if v, ok := scrape.Value("registry_breaker_state", map[string]string{"host": "h00.sdsu.edu"}); !ok || v != 0 {
		return fmt.Errorf("breaker state for h00 = %v (ok=%v), want 0 (closed)", v, ok)
	}
	// The discoveries above all passed through the admission controller:
	// every one admitted, nothing shed, ladder at nominal, shedder wide
	// open.
	disc := map[string]string{"class": "discovery"}
	if v, ok := scrape.Value("registry_admission_admitted_total", disc); !ok || v < 5 {
		return fmt.Errorf("admission admitted = %v (ok=%v), want >= 5", v, ok)
	}
	if v, ok := scrape.Value("registry_admission_shed_total", disc); !ok || v != 0 {
		return fmt.Errorf("admission shed = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := scrape.Value("registry_admission_accept_rate", disc); !ok || v != 1 {
		return fmt.Errorf("admission accept rate = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := scrape.Value("registry_brownout_tier", nil); !ok || v != 0 {
		return fmt.Errorf("brownout tier = %v (ok=%v), want 0 (nominal)", v, ok)
	}
	return nil
}

func checkTraces(client *http.Client, base, traceID string) error {
	resp, err := client.Get(base + "/registry/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traces status %d", resp.StatusCode)
	}
	var v struct {
		SampleRate int               `json:"sampleRate"`
		Traces     []obs.TraceExport `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return fmt.Errorf("traces is not valid JSON: %w", err)
	}
	if v.SampleRate != 1 {
		return fmt.Errorf("traces sampleRate = %d, want 1", v.SampleRate)
	}
	for _, t := range v.Traces {
		if t.ID != traceID {
			continue
		}
		names := make([]string, 0, len(t.Spans))
		for _, s := range t.Spans {
			names = append(names, s.Name)
		}
		for _, want := range []string{"view", "constraint", "snapshot", "evaluate", "arrange"} {
			found := false
			for _, n := range names {
				if n == want {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("trace %s missing span %q (has %v)", traceID, want, names)
			}
		}
		return nil
	}
	return fmt.Errorf("trace %s from X-Registry-Trace not found in /registry/traces", traceID)
}
