// Command repolint is the repository's static-analysis vettool. It runs
// the thirteen invariant analyzers — wallclock, lockcheck, errwrap,
// norand, clienttimeout, structlog, atomicwrite, lockorder, ctxprop,
// gorolife, hotalloc, deadline, metricnames — over Go packages, enforcing the
// conventions that keep the registry reproduction deterministic,
// race-free, fault-tolerant, crash-safe, and observably logged (see
// DESIGN.md, "Static analysis & invariants").
//
// It speaks the `go vet -vettool` unit-checker protocol, so the usual
// invocation is
//
//	go build -o bin/repolint ./cmd/repolint
//	go vet -vettool=bin/repolint ./...
//
// and for convenience it also accepts package patterns directly —
// `repolint ./...` re-execs itself through go vet, which handles package
// loading, export data, and caching:
//
//	repolint ./...
//
// Exit status is 0 when the tree is clean, 2 when any analyzer reports a
// diagnostic.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/tools/analyzers/atomicwrite"
	"repro/tools/analyzers/clienttimeout"
	"repro/tools/analyzers/ctxprop"
	"repro/tools/analyzers/deadline"
	"repro/tools/analyzers/errwrap"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/gorolife"
	"repro/tools/analyzers/hotalloc"
	"repro/tools/analyzers/lockcheck"
	"repro/tools/analyzers/lockorder"
	"repro/tools/analyzers/metricnames"
	"repro/tools/analyzers/norand"
	"repro/tools/analyzers/structlog"
	"repro/tools/analyzers/wallclock"
)

// analyzers is the repolint suite, applied to every checked package.
var analyzers = []*framework.Analyzer{
	wallclock.Analyzer,
	lockcheck.Analyzer,
	errwrap.Analyzer,
	norand.Analyzer,
	clienttimeout.Analyzer,
	structlog.Analyzer,
	atomicwrite.Analyzer,
	lockorder.Analyzer,
	ctxprop.Analyzer,
	gorolife.Analyzer,
	hotalloc.Analyzer,
	deadline.Analyzer,
	metricnames.Analyzer,
}

func main() {
	var patterns []string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full":
			printVersion()
			return
		case arg == "-flags":
			// The go command queries supported analyzer flags as JSON;
			// repolint's suite is not individually toggleable.
			fmt.Println("[]")
			return
		case arg == "help", arg == "-h", arg == "--help":
			printHelp()
			return
		case strings.HasSuffix(arg, ".cfg"):
			// Invoked by `go vet -vettool` on one package unit.
			os.Exit(checkConfig(arg))
		case strings.HasPrefix(arg, "-"):
			// Ignore other driver flags (-json, ...): diagnostics keep
			// the plain file:line:col format.
		default:
			patterns = append(patterns, arg)
		}
	}
	// Standalone mode: let go vet drive us over the requested packages.
	os.Exit(delegate(patterns))
}

// printVersion implements the -V=full handshake the go command uses to
// fingerprint vettools for build caching: the tool must print
// "<name> version <...buildID=...>" for its content hash.
func printVersion() {
	h := sha256.New()
	if self, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, self)
		self.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", os.Args[0], h.Sum(nil)[:16])
}

func printHelp() {
	fmt.Println("repolint: static-analysis suite for the registry reproduction")
	fmt.Println()
	fmt.Println("usage: repolint [packages]   (or: go vet -vettool=repolint [packages])")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
}

// delegate re-executes repolint through `go vet -vettool=self`, which
// performs package loading and hands each unit back to checkConfig.
func delegate(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	return 0
}

// config is the JSON unit description the go command hands a vettool,
// mirroring x/tools' unitchecker.Config.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// checkConfig analyzes one package unit described by cfgPath and returns
// the process exit code.
func checkConfig(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command threads "vetx" fact files between dependency units;
	// repolint's analyzers need no cross-package facts, so an empty file
	// satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var diags []framework.Diagnostic
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

// typecheck type-checks the unit's files against the export data the go
// command compiled for its dependencies.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
