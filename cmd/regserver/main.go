// Command regserver runs the load-balancing ebXML registry server: the
// SOAP and HTTP-GET bindings of thesis Fig. 2.1 plus the NodeStatus
// collection loop of §3.2. State can be snapshotted to disk on shutdown
// and restored on start.
//
// Usage:
//
//	regserver -addr :8080 -policy filter -period 25s -snapshot registry.json
//
// Policies: stock (no balancing), filter (thesis), rank-first,
// least-loaded.
//
// Fault tolerance: -invoke-timeout bounds each NodeStatus call,
// -invoke-retries/-retry-backoff retry transient failures,
// -breaker-threshold enables per-host circuit breakers (0 disables), and
// -degraded picks what discovery serves when every candidate host is
// quarantined or stale (empty = drop the request, static = fall back to
// the stored binding order like a vanilla registry).
//
// Discovery fast path: -constraint-cache-size bounds the parsed-constraint
// cache (0 = default 1024, negative = disable caching), and
// -snapshot-staleness lets discovery serve a NodeState snapshot up to that
// old without locking while the collector writes (0 = always coherent; the
// collection period is a sensible value).
//
// Serving edge: all routes dispatch through a frozen static router —
// -edge-max-path-length (414 past it) and -edge-max-depth (400 past it)
// bound abusive request paths — and -edge-respcache-size bounds the
// preserialized discovery response cache (0 = default 1024, negative =
// disable), which serves repeat GetBindings answers with zero allocation
// until a write, brownout transition, snapshot republish, or
// constraint-window/freshness boundary invalidates them.
//
// Durability: -data-dir enables the write-ahead log + checkpoint
// subsystem — every acknowledged LCM write is logged before the HTTP
// response and boot recovers the newest checkpoint plus the WAL tail, so
// a kill -9 loses nothing. -fsync picks the flush policy
// (always|interval|never), -fsync-interval bounds loss under interval,
// and -checkpoint-bytes/-checkpoint-records tune automatic checkpoints.
// The legacy -snapshot flag (graceful-shutdown-only persistence) still
// works for registries that can tolerate crash loss.
//
// Overload resilience: -admission (default on) puts every serving route
// behind per-class admission control — bounded in-flight and wait-queue
// limits for discovery reads (-discovery-inflight, -discovery-queue,
// -discovery-queue-timeout) and LCM/SOAP writes (-lcm-*), adaptive AIMD
// load shedding (-shed-tick, -shed-latency-target, -shed-min-accept)
// that rejects excess load early with 503 + Retry-After (-retry-after),
// server-side deadline budgets per class (-discovery-deadline,
// -lcm-deadline; clients can tighten them via the X-Registry-Deadline-Ms
// header), and a brownout ladder (-brownout-escalate, -brownout-calm,
// -brownout-staleness) that sheds quality stepwise under sustained
// pressure: tracing off, then stale snapshots, then static fallback.
// -max-body-bytes caps request bodies on admitted routes. Health,
// metrics, traces, and the UI always answer. -admission=false restores
// the unconditional pre-admission edge.
//
// Replication: -repl-leader (requires -data-dir) serves the WAL stream at
// /registry/repl/wal and checkpoint bootstrap at /registry/repl/checkpoint
// so followers can tail every committed write. -repl-follow <leader-url>
// (requires -repl-dir for durable applied-position state) runs this
// registry as a read-only follower: it bootstraps from the leader's
// checkpoint, tails the WAL stream, applies records through the idempotent
// replay path, and answers discovery from local state while redirecting
// writes to the leader with 307 + a NotRegistryLeader fault.
// -repl-poll-wait, -repl-max-batch, -repl-backoff, -repl-backoff-max, and
// -repl-seed tune the tailer loop.
//
// Observability: /registry/metrics serves Prometheus text exposition and
// /registry/traces the sampled discovery traces. -trace-sample N traces
// every Nth discovery request (0 = off), -trace-ring bounds retained
// traces, -log-level/-log-format configure structured logging, and -pprof
// mounts net/http/pprof under /debug/pprof/. The always-on flight
// recorder keeps one fixed-size record per edge request in a lock-free
// ring served with filtering at /registry/flight (-flight-ring bounds it;
// negative disables), per-sweep balance-quality rollups and multi-window
// SLO burn rates export as registry_balance_*/registry_slo_* series
// (-slo-availability, -slo-latency, -slo-latency-quantile set the
// objectives), /registry/health carries a per-component rollup, and
// /registry/debug/bundle captures config, metrics, flight records,
// traces, WAL position, and (with ?goroutines=1) a goroutine dump in one
// request.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/repl"
	"repro/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		policy   = flag.String("policy", "filter", "balancing policy: stock|filter|rank-first|least-loaded")
		period   = flag.Duration("period", 25*time.Second, "NodeStatus collection period")
		snapshot = flag.String("snapshot", "", "snapshot file to load on start and save on shutdown")

		dataDir     = flag.String("data-dir", "", "durability directory: WAL + checkpoints; every write survives a crash")
		fsyncPolicy = flag.String("fsync", "always", "WAL flush policy: always|interval|never")
		fsyncEvery  = flag.Duration("fsync-interval", 0, "max time between fsyncs under -fsync interval (0 = default 100ms)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 0, "checkpoint after this many WAL bytes (0 = default 8MiB, negative = off)")
		ckptRecords = flag.Int("checkpoint-records", 0, "checkpoint after this many WAL records (0 = default 10000, negative = off)")
		fresh       = flag.Duration("freshness", 0, "NodeState staleness cutoff (0 = none)")
		fallback    = flag.Bool("fallback", false, "serve load-ordered URIs when no host satisfies constraints")

		invokeTimeout = flag.Duration("invoke-timeout", 10*time.Second, "deadline per NodeStatus invocation (0 = none)")
		invokeRetries = flag.Int("invoke-retries", 1, "retries per failed NodeStatus invocation")
		retryBackoff  = flag.Duration("retry-backoff", 2*time.Second, "base backoff between invocation retries")
		brkThreshold  = flag.Int("breaker-threshold", 3, "consecutive failures that trip a host's breaker (0 = breakers off)")
		brkBackoff    = flag.Duration("breaker-backoff", 50*time.Second, "first breaker open interval (doubles per trip)")
		brkMax        = flag.Duration("breaker-max-backoff", 10*time.Minute, "cap on breaker backoff growth")
		degraded      = flag.String("degraded", "empty", "discovery result when all hosts are quarantined/stale: empty|static")

		cacheSize     = flag.Int("constraint-cache-size", 0, "parsed-constraint cache bound (0 = default, negative = disable)")
		snapStaleness = flag.Duration("snapshot-staleness", 0, "serve NodeState snapshots up to this old without locking (0 = always coherent)")

		edgeRespCache = flag.Int("edge-respcache-size", 0, "preserialized discovery response cache bound (0 = default 1024, negative = disable)")
		edgeMaxPath   = flag.Int("edge-max-path-length", 0, "frozen router: request paths longer than this answer 414 (0 = default 1024)")
		edgeMaxDepth  = flag.Int("edge-max-depth", 0, "frozen router: request paths deeper than this many segments answer 400 (0 = default 8)")

		admission    = flag.Bool("admission", true, "admission-controlled serving edge: shedding, deadlines, brownout")
		discInflight = flag.Int("discovery-inflight", 0, "max concurrent discovery requests (0 = default 64)")
		discQueue    = flag.Int("discovery-queue", 0, "discovery wait-queue bound (0 = default 128, negative = no queue)")
		discQWait    = flag.Duration("discovery-queue-timeout", 0, "max discovery queue wait (0 = default 1s)")
		discDeadline = flag.Duration("discovery-deadline", 0, "server-side discovery budget (0 = default 2s, negative = none)")
		lcmInflight  = flag.Int("lcm-inflight", 0, "max concurrent LCM/SOAP writes (0 = default 16)")
		lcmQueue     = flag.Int("lcm-queue", 0, "LCM wait-queue bound (0 = default 32, negative = no queue)")
		lcmQWait     = flag.Duration("lcm-queue-timeout", 0, "max LCM queue wait (0 = default 2s)")
		lcmDeadline  = flag.Duration("lcm-deadline", 0, "server-side LCM budget (0 = default 5s, negative = none)")

		shedTick      = flag.Duration("shed-tick", 0, "AIMD shedder adjustment interval (0 = default 250ms)")
		shedTarget    = flag.Duration("shed-latency-target", 0, "latency above which a class counts overloaded (0 = deadline/4)")
		shedMinAccept = flag.Float64("shed-min-accept", 0, "accept-rate floor under overload (0 = default 0.05)")
		retryAfter    = flag.Duration("retry-after", 0, "advisory Retry-After on shed responses (0 = default 1s)")
		brownEscalate = flag.Duration("brownout-escalate", 0, "sustained pressure before the ladder climbs (0 = default 5s)")
		brownCalm     = flag.Duration("brownout-calm", 0, "sustained calm before the ladder steps down (0 = default 10s)")
		brownStale    = flag.Duration("brownout-staleness", 0, "extra snapshot age tolerated at tier stale+ (0 = default 2m)")
		maxBodyBytes  = flag.Int64("max-body-bytes", 0, "request body cap on admitted routes (0 = default 8MiB)")

		replLeader     = flag.Bool("repl-leader", false, "serve the WAL replication stream for followers (requires -data-dir)")
		replFollow     = flag.String("repl-follow", "", "run as a read-only follower of this leader base URL")
		replDir        = flag.String("repl-dir", "", "follower state directory: local WAL + applied-position checkpoints")
		replPollWait   = flag.Duration("repl-poll-wait", 0, "follower long-poll budget per WAL fetch (0 = default 10s)")
		replMaxBatch   = flag.Int("repl-max-batch", 0, "max records per follower WAL fetch (0 = leader's cap)")
		replBackoff    = flag.Duration("repl-backoff", 0, "base follower reconnect backoff (0 = default 250ms)")
		replBackoffMax = flag.Duration("repl-backoff-max", 0, "cap on follower reconnect backoff (0 = default 15s)")
		replSeed       = flag.Int64("repl-seed", 1, "seed for the follower's jittered backoff")

		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log format: text|json")
		traceSample = flag.Int("trace-sample", 0, "trace every Nth discovery request (0 = tracing off)")
		traceRing   = flag.Int("trace-ring", 0, "finished traces retained for /registry/traces (0 = default 256)")
		flightRing  = flag.Int("flight-ring", 0, "flight-recorder record ring for /registry/flight (0 = default 4096, negative = recorder off)")
		sloAvail    = flag.Float64("slo-availability", 0, "availability objective for burn rates (0 = default 0.999)")
		sloLatency  = flag.Duration("slo-latency", 0, "latency objective for burn rates (0 = default 250ms)")
		sloQuantile = flag.Float64("slo-latency-quantile", 0, "fraction of requests that must meet -slo-latency (0 = default 0.99)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(logger)

	p, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := parseDegraded(*degraded)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := wal.ParseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := registry.Config{
		Policy:           p,
		CollectionPeriod: *period,
		Freshness:        *fresh,
		FallbackAll:      *fallback,
		Degraded:         dm,
		InvokeTimeout:    *invokeTimeout,
		InvokeRetries:    *invokeRetries,
		RetryBackoff:     *retryBackoff,

		ConstraintCacheSize: *cacheSize,
		SnapshotMaxAge:      *snapStaleness,

		RespCacheSize:     *edgeRespCache,
		EdgeMaxPathLength: *edgeMaxPath,
		EdgeMaxDepth:      *edgeMaxDepth,

		Logger:      logger,
		TraceSample: *traceSample,
		TraceRing:   *traceRing,
		FlightRing:  *flightRing,
		Pprof:       *pprofFlag,

		DataDir:           *dataDir,
		Fsync:             fp,
		FsyncInterval:     *fsyncEvery,
		CheckpointBytes:   *ckptBytes,
		CheckpointRecords: *ckptRecords,

		ReplLeader:    *replLeader,
		ReplFollowURL: *replFollow,
	}
	if *replFollow != "" {
		switch {
		case *replDir == "":
			logger.Error("-repl-follow requires -repl-dir: the follower needs a state directory for its durable applied position")
			os.Exit(1)
		case *dataDir != "":
			logger.Error("-repl-follow and -data-dir are mutually exclusive: the follower's replication state directory (-repl-dir) is its durability")
			os.Exit(1)
		case *snapshot != "":
			logger.Error("-repl-follow and -snapshot are mutually exclusive: follower state comes from the leader")
			os.Exit(1)
		}
	}
	if *admission {
		cfg.Admission = &admit.Config{
			Discovery: admit.ClassLimits{
				MaxInFlight:  *discInflight,
				MaxQueue:     *discQueue,
				QueueTimeout: *discQWait,
				Deadline:     *discDeadline,
			},
			LCM: admit.ClassLimits{
				MaxInFlight:  *lcmInflight,
				MaxQueue:     *lcmQueue,
				QueueTimeout: *lcmQWait,
				Deadline:     *lcmDeadline,
			},
			Tick:              *shedTick,
			LatencyTarget:     *shedTarget,
			MinAccept:         *shedMinAccept,
			RetryAfter:        *retryAfter,
			BrownoutEscalate:  *brownEscalate,
			BrownoutCalm:      *brownCalm,
			BrownoutStaleness: *brownStale,
			MaxBodyBytes:      *maxBodyBytes,
		}
	}
	if *sloAvail != 0 || *sloLatency != 0 || *sloQuantile != 0 {
		slo := obs.DefaultSLOConfig()
		if *sloAvail > 0 {
			slo.AvailabilityTarget = *sloAvail
		}
		if *sloLatency > 0 {
			slo.LatencyObjectiveSeconds = sloLatency.Seconds()
		}
		if *sloQuantile > 0 {
			slo.LatencyTargetQuantile = *sloQuantile
		}
		cfg.SLO = &slo
	}
	if *brkThreshold > 0 {
		cfg.Breaker = &breaker.Config{
			Threshold:   *brkThreshold,
			BaseBackoff: *brkBackoff,
			MaxBackoff:  *brkMax,
		}
	}
	reg, err := registry.New(cfg)
	if err != nil {
		logger.Error("registry construction failed", "error", err)
		os.Exit(1)
	}

	if *snapshot != "" && *dataDir != "" {
		logger.Error("-snapshot and -data-dir are mutually exclusive: the data dir already restored state and a snapshot load would bypass the write-ahead log")
		os.Exit(1)
	}
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		switch {
		case err == nil:
			if err := reg.Store.Load(f); err != nil {
				logger.Error("load snapshot failed", "file", *snapshot, "error", err)
				os.Exit(1)
			}
			f.Close()
			logger.Info("snapshot restored", "objects", reg.Store.Len(), "file", *snapshot)
		case os.IsNotExist(err):
			// First boot: no snapshot yet, start empty.
			logger.Info("no snapshot yet, starting empty", "file", *snapshot)
		default:
			// Permission or I/O trouble is not "start empty" — booting an
			// empty registry over an unreadable snapshot loses data.
			logger.Error("open snapshot failed", "file", *snapshot, "error", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go reg.RunCollector(ctx)

	var follower *repl.Follower
	var followerDone chan struct{}
	if *replFollow != "" {
		follower, err = repl.OpenFollower(*replDir, reg.Store, repl.FollowerOptions{
			LeaderURL:   *replFollow,
			Logger:      logger.With("component", "repl"),
			Seed:        *replSeed,
			PollWait:    *replPollWait,
			MaxBatch:    *replMaxBatch,
			BackoffBase: *replBackoff,
			BackoffMax:  *replBackoffMax,
		})
		if err != nil {
			logger.Error("follower open failed", "dir", *replDir, "error", err)
			os.Exit(1)
		}
		reg.AttachFollower(follower)
		followerDone = make(chan struct{})
		go func() {
			follower.Run(ctx)
			close(followerDone)
		}()
		logger.Info("replication follower tailing leader", "leader", *replFollow, "dir", *replDir)
	}

	srv := registry.HardenedServer(*addr, reg.Handler())
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	logger.Info("ebXML registry listening",
		"addr", *addr, "policy", p.String(), "period", period.String(),
		"admission", *admission, "traceSample", *traceSample, "pprof", *pprofFlag)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("server failed", "error", err)
		os.Exit(1)
	}

	if follower != nil {
		// The tailer loop stopped with ctx; seal follower state so the
		// next boot resumes from the durable applied position.
		<-followerDone
		if err := follower.Close(); err != nil {
			logger.Error("follower shutdown failed", "error", err)
			os.Exit(1)
		}
		logger.Info("follower state closed", "dir", *replDir, "objects", reg.Store.Len())
	}
	if reg.Durable != nil {
		// Graceful shutdown: checkpoint and seal the WAL so the next boot
		// replays nothing.
		if err := reg.Durable.Close(); err != nil {
			logger.Error("durability shutdown failed", "error", err)
			os.Exit(1)
		}
		logger.Info("durability closed", "objects", reg.Store.Len(), "dir", *dataDir)
	}
	if *snapshot != "" {
		err := wal.WriteFileAtomic(*snapshot, reg.Store.Save)
		if err != nil {
			logger.Error("save snapshot failed", "file", *snapshot, "error", err)
			os.Exit(1)
		}
		logger.Info("snapshot saved", "objects", reg.Store.Len(), "file", *snapshot)
	}
}

func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "stock":
		return core.PolicyStock, nil
	case "filter":
		return core.PolicyFilter, nil
	case "rank-first":
		return core.PolicyRankFirst, nil
	case "least-loaded":
		return core.PolicyLeastLoaded, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseDegraded(s string) (core.DegradedMode, error) {
	switch s {
	case "empty":
		return core.DegradedEmpty, nil
	case "static":
		return core.DegradedStatic, nil
	default:
		return 0, fmt.Errorf("unknown degraded mode %q", s)
	}
}
