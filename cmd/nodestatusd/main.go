// Command nodestatusd runs the NodeStatus Web Service for one (simulated)
// host — the per-host agent the administrator deploys in thesis Fig. 3.7.
// The underlying host is a hostsim machine whose load can be made to move
// with a background churn workload, so a live registry polling this daemon
// sees realistic load dynamics.
//
// Usage:
//
//	nodestatusd -name thermo.sdsu.edu -addr :9101 -cores 2 -mem 4096 \
//	    -swap 2048 -ambient 0.3 -churn 0.2
//
// The registry should be given the access URI
// http://<host>:<port>/NodeStatus/NodeStatusService as a binding of the
// published NodeStatus service.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/hostsim"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/simclock"
)

func main() {
	var (
		name    = flag.String("name", "host.local", "reported hostname")
		addr    = flag.String("addr", ":9101", "listen address")
		cores   = flag.Int("cores", 2, "CPU cores")
		memMB   = flag.Int64("mem", 4096, "physical memory in MB")
		swapMB  = flag.Int64("swap", 2048, "swap in MB")
		ambient = flag.Float64("ambient", 0, "constant background load")
		churn   = flag.Float64("churn", 0, "background task arrival rate per second (0 = static)")
		seed    = flag.Int64("seed", 1, "churn randomness seed")

		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}
	logger = logger.With("component", "nodestatusd")
	slog.SetDefault(logger)

	clk := simclock.Real{}
	host := hostsim.NewHost(hostsim.Config{
		Name:        *name,
		Cores:       *cores,
		TotalMemB:   *memMB << 20,
		TotalSwapB:  *swapMB << 20,
		AmbientLoad: *ambient,
	}, clk.Now())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *churn > 0 {
		go runChurn(ctx, host, clk, *churn, *seed, logger)
	}

	mux := http.NewServeMux()
	mux.Handle("/NodeStatus/NodeStatusService", nodestatus.NewHandler(host, clk))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok load=%.2f queue=%d\n", host.LoadAvg(), host.RunQueue())
	})

	// Edge hardening: the daemon is polled by registries, not browsers,
	// so slow-client allowances can be tight.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	logger.Info("NodeStatus listening",
		"host", *name, "addr", *addr, "cores", *cores, "memMB", *memMB, "churn", *churn)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("server failed", "error", err)
		os.Exit(1)
	}
}

// runChurn submits short background tasks at the given Poisson rate so the
// host's load average moves over time.
func runChurn(ctx context.Context, host *hostsim.Host, clk simclock.Clock, rate float64, seed int64, logger *slog.Logger) {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		select {
		case <-ctx.Done():
			return
		case <-clk.After(gap):
		}
		n++
		task := hostsim.Task{
			ID:         fmt.Sprintf("churn-%d", n),
			CPUSeconds: 2 + 8*rng.Float64(),
			MemB:       int64(8+rng.Intn(56)) << 20,
		}
		now := clk.Now()
		host.AdvanceTo(now)
		if err := host.Submit(task, now); err != nil {
			logger.Debug("churn task rejected", "task", task.ID, "error", err)
		}
	}
}
