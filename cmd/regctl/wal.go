package main

import (
	"fmt"
	"strings"

	"repro/internal/wal"
)

// runWAL implements `regctl wal inspect|dump <data-dir>`: offline,
// read-only debugging of a regserver durability directory. Neither
// subcommand truncates torn tails or takes locks, so they are safe to run
// against a live server's directory.
func runWAL(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: regctl wal inspect|dump <data-dir>")
	}
	sub, dir := args[0], args[1]
	switch sub {
	case "inspect":
		return walInspect(dir)
	case "dump":
		return walDump(dir)
	default:
		return fmt.Errorf("regctl: unknown wal subcommand %q (want inspect|dump)", sub)
	}
}

func walInspect(dir string) error {
	info, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Printf("data dir: %s\n", info.Dir)
	fmt.Printf("segments: %d\n", len(info.Segments))
	for _, s := range info.Segments {
		line := fmt.Sprintf("  wal-%016d.seg  %d records, %d bytes", s.Index, s.Records, s.Bytes)
		if s.TornBytes > 0 {
			line += fmt.Sprintf("  (torn tail: %d bytes will be truncated on next boot)", s.TornBytes)
		}
		fmt.Println(line)
	}
	fmt.Printf("checkpoints: %d\n", len(info.Checkpoints))
	for _, c := range info.Checkpoints {
		if c.Err != "" {
			fmt.Printf("  checkpoint-%010d.json  INVALID: %s\n", c.Seq, c.Err)
			continue
		}
		fmt.Printf("  checkpoint-%010d.json  covers %d:%d, snapshot %d bytes\n",
			c.Seq, c.Segment, c.Offset, c.SnapshotBytes)
	}
	return nil
}

func walDump(dir string) error {
	return wal.Dump(dir, func(r wal.RecordInfo) error {
		var detail []string
		if len(r.PutIDs) > 0 {
			detail = append(detail, "put "+strings.Join(r.PutIDs, ", "))
		}
		if len(r.Deletes) > 0 {
			detail = append(detail, "delete "+strings.Join(r.Deletes, ", "))
		}
		if r.ContentPut != "" {
			detail = append(detail, "content put "+r.ContentPut)
		}
		if r.ContentDelete != "" {
			detail = append(detail, "content delete "+r.ContentDelete)
		}
		fmt.Printf("%s  %-12s %5dB  %s\n", r.Pos, r.Op, r.Bytes, strings.Join(detail, "; "))
		return nil
	})
}
