package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// runRepl implements `regctl repl status <registry-url>...`: an online
// replication health check that scrapes each registry's /registry/metrics
// exposition (through the independent parser, so a malformed exposition is
// an error, not a blank row) and /registry/health rollup, and prints the
// node's replication role, position, lag, and counters. Works against
// leaders, followers, and standalone registries alike.
func runRepl(args []string) error {
	if len(args) < 2 || args[0] != "status" {
		return fmt.Errorf("usage: regctl repl status <registry-url>...")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	ok := true
	for _, base := range args[1:] {
		if err := replStatus(client, strings.TrimRight(base, "/")); err != nil {
			ok = false
			fmt.Printf("%s\n  unreachable: %v\n", base, err)
		}
	}
	if !ok {
		return fmt.Errorf("regctl: one or more registries unreachable")
	}
	return nil
}

// replHealth is the slice of /registry/health this command reads.
type replHealth struct {
	Status     string
	Components map[string]struct {
		Status string             `json:"status"`
		Note   string             `json:"note"`
		Values map[string]float64 `json:"values"`
	}
}

func replStatus(client *http.Client, base string) error {
	resp, err := client.Get(base + "/registry/health")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health answered %s", resp.Status)
	}
	var health replHealth
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return fmt.Errorf("decode health: %w", err)
	}

	mresp, err := client.Get(base + "/registry/metrics")
	if err != nil {
		return err
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics answered %s", mresp.Status)
	}
	scrape, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		return err
	}

	repl := health.Components["repl"]
	role := repl.Note
	if repl.Status == "disabled" {
		role = "standalone"
	}
	fmt.Printf("%s\n", base)
	fmt.Printf("  role:      %s (repl %s, registry %s)\n", role, orDash(repl.Status), orDash(health.Status))
	seg, _ := scrape.Value("registry_repl_position", map[string]string{"part": "segment"})
	off, _ := scrape.Value("registry_repl_position", map[string]string{"part": "offset"})
	seq, _ := scrape.Value("registry_repl_position", map[string]string{"part": "seq"})
	fmt.Printf("  position:  %d:%d (seq %d)\n", int64(seg), int64(off), int64(seq))
	if lagR, ok := scrape.Value("registry_repl_lag_records", nil); ok {
		lagS, _ := scrape.Value("registry_repl_lag_seconds", nil)
		fmt.Printf("  lag:       %d records, %.3fs\n", int64(lagR), lagS)
	}
	if conn, ok := scrape.Value("registry_repl_connected", nil); ok {
		switch role {
		case "leader":
			fmt.Printf("  streams:   %d active\n", int64(conn))
		default:
			fmt.Printf("  connected: %v\n", conn > 0)
		}
	}
	if applied, ok := scrape.Value("registry_repl_applied_total", nil); ok {
		fmt.Printf("  applied:   %d records\n", int64(applied))
	}
	if errs, ok := scrape.Value("registry_repl_errors_total", nil); ok {
		fmt.Printf("  errors:    %d\n", int64(errs))
	}
	if repl.Note != "" && repl.Status == "degraded" {
		fmt.Printf("  note:      %s\n", repl.Note)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
