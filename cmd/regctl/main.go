// Command regctl is the thesis's AccessRegistry sample program (§3.4.5,
// "java SampleProject action.xml connection.xml"): it connects to a
// registry using connection.xml, runs the publish/modify/access actions of
// an action document, and prints the same result lines the thesis shows —
// "Organization id :- urn:uuid:..." for published organizations and the
// access URIs for accessed services.
//
// Usage:
//
//	regctl <connection.xml> <action.xml>
//	regctl -register <connection.xml>   (run the user registration wizard,
//	                                     writing the keystore named in
//	                                     connection.xml)
//	regctl wal inspect <data-dir>       (summarize WAL segments and
//	                                     checkpoints, offline)
//	regctl wal dump <data-dir>          (print every logged mutation)
//	regctl repl status <url>...         (replication role, position, and
//	                                     lag of each registry, online)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/accessregistry"
	"repro/internal/auth"
	"repro/internal/jaxr"
	"repro/internal/rim"
)

func main() {
	register := flag.Bool("register", false, "register the connection.xml user and write its keystore")
	flag.Parse()

	if flag.NArg() > 0 && flag.Arg(0) == "wal" {
		if err := runWAL(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	if flag.NArg() > 0 && flag.Arg(0) == "repl" {
		if err := runRepl(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *register {
		if flag.NArg() != 1 {
			log.Fatal("usage: regctl -register <connection.xml>")
		}
		if err := runRegister(flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		return
	}

	if flag.NArg() != 2 {
		log.Fatal("usage: regctl <connection.xml> <action.xml>")
	}
	reg, err := accessregistry.NewFromFiles(flag.Arg(0), flag.Arg(1),
		accessregistry.WithLogWriter(os.Stderr))
	if err != nil {
		log.Fatal(err)
	}
	res, err := reg.Execute()
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range res.PublishedOrgIDs {
		fmt.Printf("Organization id :- %s\n", id)
	}
	for _, id := range res.ModifiedOrgIDs {
		fmt.Printf("Organization id :- %s\n", id)
	}
	for _, uri := range res.AccessURIs {
		fmt.Println(uri)
	}
}

// runRegister performs the §3.4.2 wizard + §3.4.3 keystore generation:
// register the alias with the remote registry, then import the returned
// credentials into the keystore file named by connection.xml.
func runRegister(connectionPath string) error {
	cfg, err := accessregistry.ParseConnectionFile(connectionPath)
	if err != nil {
		return err
	}
	if cfg.Keystore == "" {
		return fmt.Errorf("regctl: connection.xml has no <keystore> path to write")
	}
	conn := jaxr.Connect(cfg.URL, nil)
	creds, userID, err := conn.Register(cfg.Alias, cfg.Password, rim.PersonName{})
	if err != nil {
		return err
	}
	ks := auth.NewKeystore()
	if f, err := os.Open(cfg.Keystore); err == nil {
		// Merge into an existing keystore, like the KeystoreMover.
		if err := ks.Load(f, keystorePassword(cfg)); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	ks.Import(creds)
	f, err := os.Create(cfg.Keystore)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ks.Save(f, keystorePassword(cfg)); err != nil {
		return err
	}
	fmt.Printf("registered %s (user id %s); keystore written to %s\n", cfg.Alias, userID, cfg.Keystore)
	return nil
}

func keystorePassword(cfg *accessregistry.ConnectionConfig) string {
	if cfg.Password != "" {
		return cfg.Password
	}
	return auth.DefaultKeystorePassword
}
