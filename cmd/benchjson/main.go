// Command benchjson maintains BENCH_discovery.json, the committed
// discovery-benchmark baseline.
//
//	go test -run XXX -bench BenchmarkDiscovery -benchmem -benchtime 2000x . \
//	  | benchjson emit -gate-skip collector -note "..." -o BENCH_discovery.json
//	benchjson compare -baseline BENCH_discovery.json -current fresh.json -max-alloc-growth 0.25
//	benchjson sync -json BENCH_discovery.json -bench bench_test.go -prefix BenchmarkDiscovery
//
// emit parses `go test -bench -benchmem` output from stdin into JSON,
// marking every result as gated except those whose name matches
// -gate-skip; gated results matching -tighten additionally record a
// per-entry growth bound of -tighten-growth (the serving-edge benchmarks
// use 0.05 instead of compare's default). compare fails (exit 1) when a
// gated result's allocs/op grew past its growth bound — only allocations
// are compared, because they are machine-independent. sync fails when
// the JSON and the benchmark source disagree about which benchmarks
// exist under the prefix.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"repro/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: benchjson emit|compare|sync [flags]")
	}
	switch os.Args[1] {
	case "emit":
		emit(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	case "sync":
		syncCheck(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want emit, compare, or sync)", os.Args[1])
	}
}

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	note := fs.String("note", "", "free-form note stored in the artifact")
	gateSkip := fs.String("gate-skip", "", "regexp of benchmark names to record but not gate")
	tighten := fs.String("tighten", "", "regexp of benchmark names gated at -tighten-growth instead of the compare default")
	tightenGrowth := fs.Float64("tighten-growth", 0.05, "per-entry allocs/op growth bound for -tighten matches")
	fs.Parse(args)

	results, err := benchjson.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	var skip *regexp.Regexp
	if *gateSkip != "" {
		if skip, err = regexp.Compile(*gateSkip); err != nil {
			log.Fatalf("bad -gate-skip: %v", err)
		}
	}
	var tight *regexp.Regexp
	if *tighten != "" {
		if tight, err = regexp.Compile(*tighten); err != nil {
			log.Fatalf("bad -tighten: %v", err)
		}
	}
	for i := range results {
		results[i].Gate = skip == nil || !skip.MatchString(results[i].Name)
		if results[i].Gate && tight != nil && tight.MatchString(results[i].Name) {
			results[i].MaxGrowth = *tightenGrowth
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := benchjson.Encode(w, benchjson.File{Note: *note, Results: results}); err != nil {
		log.Fatal(err)
	}
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_discovery.json", "committed baseline artifact")
	curPath := fs.String("current", "", "fresh artifact to check")
	max := fs.Float64("max-alloc-growth", 0.25, "allowed allocs/op growth over baseline")
	fs.Parse(args)
	if *curPath == "" {
		log.Fatal("compare: -current is required")
	}
	baseline := readFile(*basePath)
	current := readFile(*curPath)
	violations := benchjson.Compare(baseline.Results, current.Results, *max)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "REGRESSION:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Printf("compare: %d gated benchmarks within +%.0f%% allocs of baseline\n",
		gatedCount(baseline.Results), *max*100)
}

func syncCheck(args []string) {
	fs := flag.NewFlagSet("sync", flag.ExitOnError)
	jsonPath := fs.String("json", "BENCH_discovery.json", "committed baseline artifact")
	benchPath := fs.String("bench", "bench_test.go", "benchmark source file")
	prefix := fs.String("prefix", "BenchmarkDiscovery", "benchmark name prefix to check")
	fs.Parse(args)
	f := readFile(*jsonPath)
	src, err := os.ReadFile(*benchPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := benchjson.CheckSync(f.Results, string(src), *prefix); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync: %s and %s agree on %s*\n", *jsonPath, *benchPath, *prefix)
}

func readFile(path string) benchjson.File {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	parsed, err := benchjson.Decode(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return parsed
}

func gatedCount(rs []benchjson.Result) int {
	n := 0
	for _, r := range rs {
		if r.Gate {
			n++
		}
	}
	return n
}
