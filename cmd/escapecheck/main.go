// Command escapecheck gates heap escapes inside //repolint:hotpath
// functions against the committed ESCAPES_discovery.txt baseline. It is
// the compiler-level counterpart of the hotalloc analyzer: hotalloc bans
// constructs that always allocate; escapecheck catches everything else
// the escape analysis decides to heap-allocate, so a regression shows up
// as a diff instead of a slower benchmark.
//
//	escapecheck emit -o ESCAPES_discovery.txt     # rebuild the baseline
//	escapecheck compare -baseline ESCAPES_discovery.txt
//	escapecheck sync -baseline ESCAPES_discovery.txt
//
// All subcommands scan internal/ for functions carrying the
// //repolint:hotpath directive. emit and compare then compile the
// annotated packages with `go build -a -gcflags=-m` (-a defeats the
// build cache, which would otherwise swallow the diagnostics) and keep
// the "escapes to heap" / "moved to heap" lines that fall inside an
// annotated function. compare fails on any escape absent from the
// baseline and on drift in the annotated-function set; escapes that
// disappeared merely suggest re-emitting. sync checks only the
// function set, without compiling, so it is cheap enough for every CI
// run.
//
// Baseline format, one record per line, '#' comments ignored:
//
//	func <import-path>.<Func>              # annotated function (set)
//	escape <import-path>.<Func>: <msg>     # accepted escape (multiset)
//
// Messages are keyed without file:line so the baseline survives
// unrelated edits that shift line numbers.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	modulePath   = "repro"
	hotDirective = "//repolint:hotpath"
	scanRoot     = "internal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("escapecheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: escapecheck emit|compare|sync [flags]")
	}
	switch os.Args[1] {
	case "emit":
		emit(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	case "sync":
		syncCheck(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want emit, compare, or sync)", os.Args[1])
	}
}

// hotFunc is one //repolint:hotpath-annotated function.
type hotFunc struct {
	name  string // "<import-path>.<Recv.>Name"
	file  string // path relative to the module root, slash-separated
	start int    // first line of the declaration (doc comment excluded)
	end   int    // last line of the body
}

// discover walks scanRoot for non-test Go files and returns every
// annotated function, sorted by name.
func discover() []hotFunc {
	var out []hotFunc
	fset := token.NewFileSet()
	err := filepath.WalkDir(scanRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		pkgPath := modulePath + "/" + filepath.ToSlash(filepath.Dir(path))
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, hotDirective) {
					annotated = true
					break
				}
			}
			if !annotated {
				continue
			}
			out = append(out, hotFunc{
				name:  pkgPath + "." + funcDisplayName(fd),
				file:  filepath.ToSlash(path),
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.Body.End()).Line,
			})
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// funcDisplayName renders "Name" for functions and "Recv.Name" for
// methods, with any receiver pointer stripped.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// packagesOf returns the sorted unique "./dir" patterns containing the
// annotated functions.
func packagesOf(funcs []hotFunc) []string {
	seen := make(map[string]bool)
	var out []string
	for _, hf := range funcs {
		p := "./" + filepath.ToSlash(filepath.Dir(hf.file))
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// escapes compiles the annotated packages with -gcflags=-m and returns
// the heap-escape diagnostics that land inside an annotated function,
// as "name: msg" strings (duplicates preserved).
func escapes(funcs []hotFunc) []string {
	// file -> annotated ranges, for attributing diagnostic lines.
	byFile := make(map[string][]hotFunc)
	for _, hf := range funcs {
		byFile[hf.file] = append(byFile[hf.file], hf)
	}
	args := append([]string{"build", "-a", "-gcflags=-m"}, packagesOf(funcs)...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	var sb strings.Builder
	cmd.Stderr = &sb
	if err := cmd.Run(); err != nil {
		log.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, sb.String())
	}
	var out []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(parts[0], "./"))
		for _, hf := range byFile[file] {
			if lineNo >= hf.start && lineNo <= hf.end {
				out = append(out, hf.name+": "+strings.TrimSpace(parts[3]))
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	out := fs.String("o", "ESCAPES_discovery.txt", "output baseline file")
	fs.Parse(args)

	funcs := discover()
	if len(funcs) == 0 {
		log.Fatal("no //repolint:hotpath functions found under " + scanRoot)
	}
	esc := escapes(funcs)

	var b strings.Builder
	b.WriteString("# Heap escapes inside //repolint:hotpath functions, from `go build -gcflags=-m`.\n")
	b.WriteString("# Regenerate with `make escapecheck-emit`; `make escapecheck` diffs against this.\n")
	for _, hf := range funcs {
		fmt.Fprintf(&b, "func %s\n", hf.name)
	}
	for _, e := range esc {
		fmt.Fprintf(&b, "escape %s\n", e)
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("escapecheck: wrote %s (%d hotpath functions, %d accepted escapes)\n",
		*out, len(funcs), len(esc))
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseline := fs.String("baseline", "ESCAPES_discovery.txt", "committed baseline file")
	fs.Parse(args)

	baseFuncs, baseEsc := readBaseline(*baseline)
	funcs := discover()
	fail := checkFuncSet(*baseline, baseFuncs, funcs)

	current := escapes(funcs)
	remaining := make(map[string]int, len(baseEsc))
	for k, n := range baseEsc {
		remaining[k] = n
	}
	for _, e := range current {
		if remaining[e] > 0 {
			remaining[e]--
			continue
		}
		fmt.Printf("escapecheck: NEW escape not in %s:\n  %s\n", *baseline, e)
		fail = true
	}
	var gone []string
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, e := range gone {
		fmt.Printf("escapecheck: baseline escape no longer produced (improvement — consider `make escapecheck-emit`):\n  %s\n", e)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("escapecheck: ok (%d hotpath functions, %d escapes match baseline)\n",
		len(funcs), len(current))
}

func syncCheck(args []string) {
	fs := flag.NewFlagSet("sync", flag.ExitOnError)
	baseline := fs.String("baseline", "ESCAPES_discovery.txt", "committed baseline file")
	fs.Parse(args)

	baseFuncs, _ := readBaseline(*baseline)
	funcs := discover()
	if checkFuncSet(*baseline, baseFuncs, funcs) {
		os.Exit(1)
	}
	fmt.Printf("escapecheck: baseline covers all %d hotpath functions\n", len(funcs))
}

// checkFuncSet reports (and returns true on) drift between the baseline's
// `func` lines and the annotated functions in the tree.
func checkFuncSet(baseline string, baseFuncs map[string]bool, funcs []hotFunc) bool {
	fail := false
	seen := make(map[string]bool, len(funcs))
	for _, hf := range funcs {
		seen[hf.name] = true
		if !baseFuncs[hf.name] {
			fmt.Printf("escapecheck: %s is annotated //repolint:hotpath but missing from %s; run `make escapecheck-emit`\n",
				hf.name, baseline)
			fail = true
		}
	}
	var stale []string
	for name := range baseFuncs {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		fmt.Printf("escapecheck: %s is in %s but no longer annotated; run `make escapecheck-emit`\n",
			name, baseline)
		fail = true
	}
	return fail
}

// readBaseline parses the baseline into the function set and the escape
// multiset.
func readBaseline(path string) (map[string]bool, map[string]int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	funcs := make(map[string]bool)
	esc := make(map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "func "):
			funcs[strings.TrimSpace(strings.TrimPrefix(line, "func "))] = true
		case strings.HasPrefix(line, "escape "):
			esc[strings.TrimSpace(strings.TrimPrefix(line, "escape "))]++
		default:
			log.Fatalf("%s: unrecognized line %q", path, line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return funcs, esc
}
