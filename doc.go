// Package repro is a from-scratch Go reproduction of "A Load Balancing
// Scheme for ebXML Registries" (Sahasrabudhe, SDSU, 2011): a complete
// ebXML registry/repository with the thesis's NodeStatus-driven,
// constraint-based service-binding load balancer, plus the simulated host
// substrate, MTC workload driver, and experiment harness that regenerate
// the evaluation.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// experiment index, and the examples/ directory for runnable entry points.
// The public surface lives under internal/ packages assembled by
// internal/registry; the benchmarks in bench_test.go regenerate every
// experiment table.
package repro
