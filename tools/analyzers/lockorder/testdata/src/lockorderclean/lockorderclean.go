// Package lockorderclean is the negative fixture: every path that holds
// both mutexes takes them in the same global order (A.mu before B.mu), a
// lock released before the next acquisition creates no edge, and a
// package-level mutex nested consistently is fine too.
package lockorderclean

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.RWMutex
	m  int
}

var regMu sync.Mutex

// lockAB and lockABIndirect both order A.mu before B.mu.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.RLock()
	b.m++
	b.mu.RUnlock()
}

func lockABIndirect(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	touchB(b)
}

func touchB(b *B) {
	b.mu.Lock()
	b.m++
	b.mu.Unlock()
}

// sequential releases A.mu before taking B.mu: no ordering constraint.
func sequential(a *A, b *B) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.m++
	b.mu.Unlock()
}

// global nests the package mutex inside A.mu, consistently.
func global(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	regMu.Lock()
	defer regMu.Unlock()
}
