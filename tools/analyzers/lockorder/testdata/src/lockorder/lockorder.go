// Package lockorder is the positive fixture: two code paths acquire the
// same pair of mutexes in opposite orders, directly and through an
// intra-package call, so the acquisition graph has an A <-> B cycle.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.RWMutex
	m  int
}

// lockAB takes A.mu then B.mu.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.RLock() // want `lock-order cycle: B\.mu is acquired while A\.mu is held here`
	b.m++
	b.mu.RUnlock()
}

// lockBA takes B.mu then — through a helper — A.mu: the reverse order.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	touchA(a) // want `lock-order cycle: A\.mu is acquired while B\.mu is held here`
}

func touchA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
