// Package lockorder machine-checks lock acquisition order. It builds a
// package-wide lock-order graph: a node per mutex (a named struct's mutex
// field, or a package-level mutex variable) and an edge A → B whenever
// some function acquires B while visibly holding A — directly, or by
// calling (transitively, along the intra-package call graph) a function
// that acquires B. A cycle in that graph means two code paths acquire the
// same locks in opposite orders: the classic ABBA deadlock that the race
// detector only catches when the interleaving actually happens.
//
// The analysis is instance-insensitive (locks are identified by type and
// field name, not by object), flow-insensitive within branches, and
// treats deferred unlocks as holding the lock to the end of the function.
// RLock counts the same as Lock: a read/write pair ordered inconsistently
// still deadlocks against a writer. Recursive acquisition of the same
// lock identity is deliberately not reported — two instances of one type
// are indistinguishable to an instance-insensitive analysis, and the
// repo's `guarded by` convention plus lockcheck already govern that
// class.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/analyzers/framework"
)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "builds a package-wide lock-acquisition graph (direct acquisitions plus acquisitions reached " +
		"through intra-package calls while a lock is held) and reports cycles: code paths that take " +
		"the same mutexes in opposite orders can deadlock",
	Run: run,
}

// lockID identifies one mutex: a named type's mutex field (typ, field) or
// a package-level / local mutex variable (obj, "").
type lockID struct {
	obj   types.Object
	field string
}

func (l lockID) String() string {
	if l.field != "" {
		return l.obj.Name() + "." + l.field
	}
	return l.obj.Name()
}

// edge is one observed ordering: from is held when to is acquired.
type edge struct{ from, to lockID }

// callRecord is an intra-package call made while locks were held.
type callRecord struct {
	callee *types.Func
	held   []lockID
	pos    token.Pos
}

type funcFacts struct {
	acquires map[lockID]bool // locks the function acquires directly
	calls    []callRecord    // intra-package calls with the held set at the site
}

func run(pass *framework.Pass) (interface{}, error) {
	cg := framework.NewCallGraph(pass)

	facts := make(map[*types.Func]*funcFacts)
	edges := make(map[edge]token.Pos)
	addEdge := func(from, to lockID, pos token.Pos) {
		if from == to {
			return // instance-insensitive: same identity is not orderable
		}
		if _, ok := edges[edge{from, to}]; !ok {
			edges[edge{from, to}] = pos
		}
	}

	for fn, fd := range cg.Decls {
		if fd.Body == nil {
			continue
		}
		ff := &funcFacts{acquires: make(map[lockID]bool)}
		facts[fn] = ff
		scanBody(pass, cg, fd.Body, ff, addEdge)
	}

	// Close each function's acquisition set over intra-package calls, then
	// materialize call-site edges: held lock → every lock the callee can
	// acquire.
	trans := transitiveAcquires(facts, cg)
	for _, ff := range facts {
		for _, cr := range ff.calls {
			for acq := range trans[cr.callee] {
				for _, h := range cr.held {
					addEdge(h, acq, cr.pos)
				}
			}
		}
	}

	reportCycles(pass, edges)
	return nil, nil
}

// scanBody walks one function body in source order, tracking the
// approximate held-lock multiset and recording direct acquisition edges
// and intra-package calls made under a lock. Releases inside defer
// statements are ignored: a deferred unlock keeps the lock held for the
// rest of the function, which is exactly the window that matters for
// ordering.
func scanBody(pass *framework.Pass, cg *framework.CallGraph, body *ast.BlockStmt, ff *funcFacts, addEdge func(lockID, lockID, token.Pos)) {
	held := make(map[lockID]int)
	var order []lockID // held locks in acquisition order (may contain released entries; filtered via held)
	heldNow := func() []lockID {
		var out []lockID
		seen := make(map[lockID]bool)
		for _, l := range order {
			if held[l] > 0 && !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
		return out
	}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			walk(n.Call, true)
			return
		case *ast.CallExpr:
			for _, arg := range n.Args {
				walk(arg, inDefer)
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately invoked literal: treat its body as inline.
				walk(lit.Body, inDefer)
				return
			}
			if l, op, ok := lockOp(pass, n); ok {
				switch op {
				case opAcquire:
					for _, h := range heldNow() {
						addEdge(h, l, n.Pos())
					}
					ff.acquires[l] = true
					held[l]++
					order = append(order, l)
				case opRelease:
					if !inDefer && held[l] > 0 {
						held[l]--
					}
				}
				return
			}
			if callee := cg.CalleeOf(n); callee != nil {
				if h := heldNow(); len(h) > 0 {
					ff.calls = append(ff.calls, callRecord{callee: callee, held: h, pos: n.Pos()})
				} else {
					ff.calls = append(ff.calls, callRecord{callee: callee, pos: n.Pos()})
				}
			}
			walk(n.Fun, inDefer)
			return
		case *ast.FuncLit:
			// A non-invoked literal runs at an unknown time; scan it as an
			// independent body so its internal ordering still registers,
			// but do not leak the outer held set into it.
			scanBody(pass, cg, n.Body, ff, addEdge)
			return
		}
		// Generic traversal in source order.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, inDefer)
			return false
		})
	}
	walk(body, false)
}

type lockOpKind int

const (
	opAcquire lockOpKind = iota
	opRelease
)

// lockOp classifies call as a mutex acquire/release and resolves the lock
// identity: `x.mu.Lock()` → (type of x, "mu"), `pkgMu.Lock()` → (pkgMu, "").
func lockOp(pass *framework.Pass, call *ast.CallExpr) (lockID, lockOpKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockID{}, 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return lockID{}, 0, false
	}
	if !isMutexType(pass.TypesInfo.Types[sel.X].Type) {
		return lockID{}, 0, false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if tn := namedTypeOf(pass, x.X); tn != nil {
			return lockID{obj: tn, field: x.Sel.Name}, op, true
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return lockID{obj: v}, op, true
		}
	}
	return lockID{}, 0, false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (through one
// pointer level).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// namedTypeOf resolves expr to the named type it denotes (through one
// pointer level), or nil.
func namedTypeOf(pass *framework.Pass, expr ast.Expr) *types.TypeName {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// transitiveAcquires closes each function's direct acquisition set over
// the intra-package call graph by fixpoint iteration.
func transitiveAcquires(facts map[*types.Func]*funcFacts, cg *framework.CallGraph) map[*types.Func]map[lockID]bool {
	trans := make(map[*types.Func]map[lockID]bool, len(facts))
	for fn, ff := range facts {
		set := make(map[lockID]bool, len(ff.acquires))
		for l := range ff.acquires {
			set[l] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			set := trans[fn]
			for _, cr := range ff.calls {
				for l := range trans[cr.callee] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// reportCycles finds strongly connected components of the order graph and
// reports every edge participating in one.
func reportCycles(pass *framework.Pass, edges map[edge]token.Pos) {
	adj := make(map[lockID][]lockID)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	scc := stronglyConnected(adj)
	comp := make(map[lockID]int)
	for i, members := range scc {
		for _, m := range members {
			comp[m] = i
		}
	}
	type finding struct {
		pos   token.Pos
		from  lockID
		to    lockID
		cycle string
	}
	var findings []finding
	for e, pos := range edges {
		ci, ok1 := comp[e.from]
		cj, ok2 := comp[e.to]
		if !ok1 || !ok2 || ci != cj || len(scc[ci]) < 2 {
			continue
		}
		names := make([]string, 0, len(scc[ci]))
		for _, m := range scc[ci] {
			names = append(names, m.String())
		}
		sort.Strings(names)
		findings = append(findings, finding{pos: pos, from: e.from, to: e.to, cycle: join(names)})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "lock-order cycle: %s is acquired while %s is held here, but another path orders them oppositely (cycle: %s); pick one global order",
			f.to, f.from, f.cycle)
	}
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " <-> "
		}
		out += n
	}
	return out
}

// stronglyConnected returns Tarjan's SCCs of the lock graph.
func stronglyConnected(adj map[lockID][]lockID) [][]lockID {
	// Deterministic node order keeps diagnostics stable across runs.
	var nodes []lockID
	seen := make(map[lockID]bool)
	add := func(l lockID) {
		if !seen[l] {
			seen[l] = true
			nodes = append(nodes, l)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	index := make(map[lockID]int)
	low := make(map[lockID]int)
	onStack := make(map[lockID]bool)
	var stack []lockID
	var sccs [][]lockID
	next := 0

	var strong func(v lockID)
	strong = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := append([]lockID(nil), adj[v]...)
		sort.Slice(tos, func(i, j int) bool { return tos[i].String() < tos[j].String() })
		for _, w := range tos {
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strong(v)
		}
	}
	return sccs
}
