package lockorder_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockorder.Analyzer, "lockorder", "lockorderclean")
}
