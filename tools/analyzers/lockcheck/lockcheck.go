// Package lockcheck enforces the repository's `// guarded by mu` comment
// convention for mutex-protected struct fields, plus two lock-hygiene
// checks.
//
// A struct field annotated
//
//	type Table struct {
//		mu   sync.RWMutex
//		rows map[string]Row // guarded by mu
//	}
//
// may only be read or written inside a function that visibly acquires the
// named mutex on a value of that struct type (a `x.mu.Lock()` or
// `x.mu.RLock()` call anywhere in the function), or inside a function
// whose name ends in "Locked" — the repo's convention for helpers whose
// callers already hold the lock. The check is deliberately flow-
// insensitive: it catches the real regression class (a new method
// touching shared state with no locking at all) without modelling
// lock/unlock ordering, which the race-detector CI covers dynamically.
//
// The two hygiene checks flag copied locks, which silently fork the
// critical section:
//
//   - a method with a value receiver whose type (transitively) contains a
//     sync.Mutex or sync.RWMutex;
//   - a function parameter or result passing such a type by value.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the lockcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "lockcheck",
	Doc: "checks `// guarded by mu` field annotations: guarded fields may only be touched by functions " +
		"that acquire the named mutex (or *Locked helpers); also flags locks copied via value " +
		"receivers, parameters, or results",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardKey identifies one guarded field of one named struct type.
type guardKey struct {
	typ   *types.TypeName
	field string
}

// lockKey identifies one mutex field of one named struct type.
type lockKey struct {
	typ *types.TypeName
	mu  string
}

func run(pass *framework.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopiedLocks(pass, fd)
			if fd.Body == nil || len(guards) == 0 {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-lock convention
			}
			held := heldLocks(pass, fd.Body)
			checkGuardedAccesses(pass, fd, guards, held)
		}
	}
	return nil, nil
}

// collectGuards scans struct type declarations for `guarded by <mu>`
// field comments, keyed by the defined type and field name.
func collectGuards(pass *framework.Pass) map[guardKey]string {
	guards := make(map[guardKey]string)
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards[guardKey{tn, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardComment extracts the mutex name from a field's doc or line
// comment, or "" if the field carries no guard annotation.
func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// heldLocks collects the (type, mutex) pairs for which the function body
// contains an acquire call `expr.<mu>.Lock()` or `expr.<mu>.RLock()`.
func heldLocks(pass *framework.Pass, body *ast.BlockStmt) map[lockKey]bool {
	held := make(map[lockKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tn := namedTypeOf(pass, muSel.X); tn != nil {
			held[lockKey{tn, muSel.Sel.Name}] = true
		}
		return true
	})
	return held
}

// checkGuardedAccesses reports guarded-field selections in fd that are
// not covered by an acquire of the guarding mutex.
func checkGuardedAccesses(pass *framework.Pass, fd *ast.FuncDecl, guards map[guardKey]string, held map[lockKey]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		tn := namedTypeOf(pass, sel.X)
		if tn == nil {
			return true
		}
		mu, guarded := guards[guardKey{tn, sel.Sel.Name}]
		if !guarded {
			return true
		}
		if !held[lockKey{tn, mu}] {
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %q but %s never acquires it (call %s.Lock/RLock or name the helper ...Locked)",
				tn.Name(), sel.Sel.Name, mu, fd.Name.Name, mu)
		}
		return true
	})
}

// namedTypeOf resolves expr to the named type it denotes (through one
// level of pointer), or nil.
func namedTypeOf(pass *framework.Pass, expr ast.Expr) *types.TypeName {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// checkCopiedLocks flags value receivers, parameters, and results whose
// type contains a mutex by value.
func checkCopiedLocks(pass *framework.Pass, fd *ast.FuncDecl) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s %s copies a lock: %s contains a sync mutex; pass a pointer", fd.Name.Name, what, t)
	}
	if recv := sig.Recv(); recv != nil && containsLock(recv.Type(), nil) {
		report(fd.Recv.Pos(), "value receiver", recv.Type())
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if v := params.At(i); containsLock(v.Type(), nil) {
			report(v.Pos(), "parameter", v.Type())
		}
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if v := results.At(i); containsLock(v.Type(), nil) {
			pos := v.Pos()
			if !pos.IsValid() {
				pos = fd.Pos()
			}
			report(pos, "result", v.Type())
		}
	}
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value, directly or through nested structs and arrays.
func containsLock(t types.Type, seen map[*types.Named]bool) bool {
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		if seen[t] {
			return false
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[t] = true
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}
