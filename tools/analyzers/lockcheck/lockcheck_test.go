package lockcheck_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockcheck.Analyzer, "lockcheck")
}
