// Package lockcheck is the fixture for the lockcheck analyzer: guarded
// fields touched without their mutex, and locks copied by value, are
// diagnosed; disciplined methods and *Locked helpers stay clean.
package lockcheck

import "sync"

type table struct {
	mu   sync.Mutex
	rows map[string]int // guarded by mu
}

func newTable() *table {
	return &table{rows: make(map[string]int)}
}

func (t *table) Get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows[k]
}

func (t *table) Bad(k string) int {
	return t.rows[k] // want `table\.rows is guarded by "mu" but Bad never acquires it`
}

// sizeLocked follows the caller-holds-lock naming convention.
func (t *table) sizeLocked() int { return len(t.rows) }

// stats has two mutexes; acquiring the wrong one is still a violation.
type stats struct {
	mu      sync.RWMutex
	rows    map[string]int // guarded by mu
	hitsMu  sync.Mutex
	hits    int // guarded by hitsMu
	uncared int
}

func (s *stats) Read(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows[k]
}

func (s *stats) WrongMutex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.uncared++
	return s.hits // want `stats\.hits is guarded by "hitsMu" but WrongMutex never acquires it`
}

// wrapper reaches a guarded field through another struct; the acquire on
// the owning value still counts.
type wrapper struct{ tab *table }

func (w *wrapper) Good(k string) int {
	w.tab.mu.Lock()
	defer w.tab.mu.Unlock()
	return w.tab.rows[k]
}

func (w *wrapper) Bad(k string) int {
	return w.tab.rows[k] // want `table\.rows is guarded by "mu" but Bad never acquires it`
}

// --- copied locks -----------------------------------------------------------

func (t table) CopyRecv() int { // want `CopyRecv value receiver copies a lock: lockcheck\.table contains a sync mutex`
	return 0
}

func passByValue(t table) { // want `passByValue parameter copies a lock: lockcheck\.table contains a sync mutex`
	_ = t
}

func returnByValue() (t table) { // want `returnByValue result copies a lock: lockcheck\.table contains a sync mutex`
	return
}

// nested embeds a lock-bearing struct by value; copying it copies the lock.
type nested struct{ inner table }

func passNested(n nested) { // want `passNested parameter copies a lock: lockcheck\.nested contains a sync mutex`
	_ = n
}

// Pointers never copy the lock.
func fine(t *table, n *nested) *table {
	if n != nil {
		return &n.inner
	}
	return t
}
