// Package gorolife is the positive fixture: goroutines with no visible
// shutdown path.
package gorolife

type Server struct {
	counter int
}

// leakyLoop spawns an unjoinable, uncancellable loop.
func (s *Server) leakyLoop() {
	go func() { // want `goroutine has no visible shutdown path`
		for {
			s.counter++
		}
	}()
}

// fireAndForget spawns a named function with no lifecycle tie.
func (s *Server) fireAndForget() {
	go s.work() // want `goroutine has no visible shutdown path`
}

func (s *Server) work() { s.counter++ }
