// Package gorolifeclean is the negative fixture: every spawn has a
// visible shutdown path or an explicit allow directive.
package gorolifeclean

import (
	"context"
	"sync"
)

type Server struct {
	counter int
	stop    chan struct{}
}

// withContext: the goroutine observes ctx, so cancellation reaches it.
func (s *Server) withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
		s.counter++
	}()
}

// withWaitGroup: the owner joins the workers.
func (s *Server) withWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.counter++
		}()
	}
	wg.Wait()
}

// withHandshake: the spawner receives the goroutine's completion signal.
func (s *Server) withHandshake() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.counter++
	}()
	<-done
}

// returnsHandshake hands the completion channel to the caller.
func (s *Server) returnsHandshake() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.counter++
	}()
	return done
}

// stopChannel: the goroutine receives from an owner-held channel, so
// closing s.stop terminates it.
func (s *Server) stopChannel() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			default:
				s.counter++
			}
		}
	}()
}

// allowed: lifecycle is managed by a supervisor the analyzer cannot see.
func (s *Server) allowed() {
	//repolint:gorolife-allow joined by the process supervisor at shutdown
	go s.work()
}

func (s *Server) work() { s.counter++ }
