package gorolife_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/gorolife"
)

func TestGorolife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), gorolife.Analyzer, "gorolife", "gorolifeclean")
}
