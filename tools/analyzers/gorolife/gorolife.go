// Package gorolife requires every goroutine spawned in library code to
// have a visible shutdown path. A bare `go func() { for { ... } }()` has
// no owner: nothing can join it, nothing can cancel it, and each
// startup/shutdown cycle of the enclosing component leaks one more
// stack. The analyzer accepts a spawn when the goroutine is evidently
// tied to a lifecycle:
//
//   - it observes a context.Context (cancellation propagates),
//   - it signals a sync.WaitGroup (the owner joins it),
//   - it closes or sends on a channel that the spawning function also
//     receives from (completion handshake),
//   - it receives from or ranges over a channel declared outside the
//     goroutine (closing the channel terminates it).
//
// Spawns whose lifecycle is managed somewhere the analyzer cannot see
// carry a `//repolint:gorolife-allow <why>` directive on the go
// statement's line or the line above. Main packages and tests are
// exempt: binaries die with the process, tests die with the test binary.
package gorolife

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
)

// Analyzer is the gorolife pass.
var Analyzer = &framework.Analyzer{
	Name: "gorolife",
	Doc: "requires every go statement in library packages to have a visible shutdown path " +
		"(context, WaitGroup, or channel handshake) or a //repolint:gorolife-allow directive",
	Run: run,
}

// AllowDirective exempts a go statement whose lifecycle is managed out of
// the analyzer's sight.
const AllowDirective = "gorolife-allow"

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			file := f
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if pass.NodeHasDirective(file, gs, AllowDirective) {
					return true
				}
				if hasLifecycleEvidence(pass, fd, gs) {
					return true
				}
				pass.Reportf(gs.Pos(),
					"goroutine has no visible shutdown path (no context, WaitGroup, or channel handshake); "+
						"tie it to the owner's lifecycle or annotate //repolint:%s <why>", AllowDirective)
				return true
			})
		}
	}
	return nil, nil
}

// hasLifecycleEvidence scans the go statement for any of the accepted
// lifecycle signals.
func hasLifecycleEvidence(pass *framework.Pass, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	// Channels the goroutine closes or sends on; if the enclosing function
	// receives from one of them, the spawn has a completion handshake.
	signalled := make(map[types.Object]bool)
	evident := false

	// Inspect the full go statement: the called expression, its arguments,
	// and (for func literals) the body.
	ast.Inspect(gs, func(n ast.Node) bool {
		if evident {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if isContextVar(obj) {
					evident = true // goroutine observes a context
				}
			}
		case *ast.CallExpr:
			// wg.Done() / wg.Add / wg.Wait on a sync.WaitGroup, or close(ch).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isWaitGroupMethod(pass, sel) {
					evident = true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := chanObj(pass, n.Args[0]); obj != nil {
					signalled[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := chanObj(pass, n.Chan); obj != nil {
				signalled[obj] = true
			}
		case *ast.UnaryExpr:
			// A receive inside the goroutine from an externally declared
			// channel: the owner can close it to stop the goroutine.
			if obj := receiveFromExternal(pass, n, gs); obj != nil {
				evident = true
			}
		case *ast.RangeStmt:
			if obj := chanObj(pass, n.X); obj != nil && declaredOutside(pass, obj, gs) {
				evident = true
			}
		}
		return !evident
	})
	if evident {
		return true
	}
	if len(signalled) == 0 {
		return false
	}
	// Does the enclosing function (outside this go statement) receive from
	// any channel the goroutine signals?
	received := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if received {
			return false
		}
		if n != nil && n.Pos() >= gs.Pos() && n.End() <= gs.End() {
			return false // inside the go statement itself
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if obj := chanObj(pass, recvOperand(n)); obj != nil && signalled[obj] {
				received = true
			}
		case *ast.RangeStmt:
			if obj := chanObj(pass, n.X); obj != nil && signalled[obj] {
				received = true
			}
		case *ast.ReturnStmt:
			// Returning the signalled channel hands the handshake to the
			// caller (the `done := make(chan ...); go ...; return done` idiom).
			for _, res := range n.Results {
				if obj := chanObj(pass, res); obj != nil && signalled[obj] {
					received = true
				}
			}
		}
		return !received
	})
	return received
}

// recvOperand returns n's operand when n is a receive expression (<-ch).
func recvOperand(n *ast.UnaryExpr) ast.Expr {
	if n.Op.String() == "<-" {
		return n.X
	}
	return nil
}

// receiveFromExternal reports the channel object when n is a receive from
// a channel declared outside the go statement.
func receiveFromExternal(pass *framework.Pass, n *ast.UnaryExpr, gs *ast.GoStmt) types.Object {
	x := recvOperand(n)
	if x == nil {
		return nil
	}
	obj := chanObj(pass, x)
	if obj == nil || !declaredOutside(pass, obj, gs) {
		return nil
	}
	return obj
}

// chanObj resolves expr to the object of a channel-typed identifier or
// field selector, or nil.
func chanObj(pass *framework.Pass, expr ast.Expr) types.Object {
	if expr == nil {
		return nil
	}
	var obj types.Object
	switch x := expr.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = pass.TypesInfo.Defs[x]
		}
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return nil
	}
	if obj == nil || obj.Type() == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// declaredOutside reports whether obj's declaration lies outside the go
// statement's source range.
func declaredOutside(pass *framework.Pass, obj types.Object, gs *ast.GoStmt) bool {
	p := obj.Pos()
	return p < gs.Pos() || p >= gs.End()
}

// isContextVar reports whether obj is a context.Context-typed variable.
func isContextVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	n, ok := v.Type().(*types.Named)
	if !ok {
		return false
	}
	tn := n.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context"
}

// isWaitGroupMethod reports whether sel names a method on sync.WaitGroup.
func isWaitGroupMethod(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := n.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup"
}
