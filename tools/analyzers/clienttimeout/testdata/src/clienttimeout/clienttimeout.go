// Package clienttimeout is the flagged-code fixture for the clienttimeout
// analyzer: every http.Client literal without an explicit Timeout must be
// diagnosed, while clients that state a Timeout (even zero) stay clean.
package clienttimeout

import (
	nh "net/http"
	"time"
)

var bare = nh.Client{} // want `http\.Client literal without an explicit Timeout`

var ptr = &nh.Client{Transport: nil} // want `http\.Client literal without an explicit Timeout`

func bad() *nh.Client {
	c := nh.Client{ // want `http\.Client literal without an explicit Timeout`
		CheckRedirect: nil,
	}
	return &c
}

var withTimeout = &nh.Client{Timeout: 10 * time.Second}

// Explicit zero proves an unbounded client was chosen deliberately.
var deliberatelyUnbounded = nh.Client{Timeout: 0}

// Other composite literals with a Timeout-less shape are not http.Client
// and stay clean.
type dialer struct {
	Timeout time.Duration
	Retries int
}

var notAClient = dialer{Retries: 3}
