package clienttimeout

import nh "net/http"

// Test files may build throwaway clients freely; nothing here is
// diagnosed.
var testClient = nh.Client{}
