// Package clienttimeout flags http.Client composite literals without an
// explicit Timeout.
//
// A zero-Timeout http.Client never gives up on an unresponsive peer: the
// NodeStatus collector bug this analyzer grew out of had a nil-client
// HTTPInvoker fall back to http.DefaultClient, so one hung host pinned a
// sweep slot forever (see ISSUE 2). The repo's convention is that every
// constructed client states its deadline budget — even `Timeout: 0` is
// accepted, because writing it proves the author chose an unbounded
// client deliberately (e.g. under a per-request context deadline).
// Test files are exempt, as with the other repolint analyzers.
package clienttimeout

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
)

// Analyzer is the clienttimeout pass.
var Analyzer = &framework.Analyzer{
	Name: "clienttimeout",
	Doc: "flags http.Client composite literals without an explicit Timeout " +
		"field; a zero-Timeout client waits forever on a hung peer",
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isHTTPClient(pass, lit) {
				return true
			}
			if hasTimeoutKey(lit) {
				return true
			}
			pass.Reportf(lit.Pos(), "http.Client literal without an explicit Timeout waits forever on a hung peer; set Timeout (0 only if deliberate)")
			return true
		})
	}
	return nil, nil
}

// isHTTPClient reports whether the composite literal's type is
// net/http.Client (the literal itself, so &http.Client{...} and aliased
// imports are covered by the type checker, not by syntax).
func isHTTPClient(pass *framework.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "net/http" && obj.Name() == "Client"
}

// hasTimeoutKey reports whether the literal sets Timeout. An all-positional
// literal necessarily sets every field, Timeout included.
func hasTimeoutKey(lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return true // positional literal: every field present
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
			return true
		}
	}
	return false
}
