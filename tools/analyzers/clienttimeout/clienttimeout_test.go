package clienttimeout_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/clienttimeout"
)

func TestClientTimeout(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clienttimeout.Analyzer, "clienttimeout")
}
