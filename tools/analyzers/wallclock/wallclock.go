// Package wallclock flags direct wall-clock access outside the simclock
// package.
//
// The reproduction's determinism rests on the internal/simclock.Clock
// abstraction: the 25 s NodeStatus poller, time-of-day service windows,
// token expiry and audit timestamps all take an injected Clock so that a
// simclock.Manual can drive them in tests and simulations. A single stray
// time.Now() reintroduces nondeterminism that only shows up as flaky
// experiments, so the analyzer turns the convention into a build error:
// every use of the wall clock must flow through a Clock (simclock.Real in
// binaries), and only package simclock itself may touch package time's
// clock functions.
package wallclock

import (
	"go/ast"
	"path"

	"repro/tools/analyzers/framework"
)

// Analyzer is the wallclock pass.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Since/After/Sleep/... outside internal/simclock; " +
		"all wall-clock access must go through the injected simclock.Clock",
	Run: run,
}

// banned are the package time functions that read or wait on the wall
// clock. Pure constructors and arithmetic (time.Date, time.Duration,
// t.Add, time.Parse, ...) remain allowed.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func run(pass *framework.Pass) (interface{}, error) {
	// simclock is the sanctioned wrapper around the real clock.
	if path.Base(pass.Pkg.Path()) == "simclock" {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, name, ok := pass.SelectorOnPackage(sel, "time"); ok && banned[name] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; use the injected simclock.Clock", name)
			}
			return true
		})
	}
	return nil, nil
}
