package wallclock

import "time"

// Test files may use the wall clock freely; nothing here is diagnosed.
func waitABit() {
	time.Sleep(time.Millisecond)
	_ = time.Now()
}
