// Package wallclock is the flagged-code fixture for the wallclock
// analyzer: every clock-reading call in package time must be diagnosed,
// while pure time construction and arithmetic stay clean.
package wallclock

import "time"

func bad() {
	_ = time.Now()              // want `time\.Now reads the wall clock; use the injected simclock\.Clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{}) // want `time\.Until reads the wall clock`
	<-time.After(time.Second)   // want `time\.After reads the wall clock`
	time.Sleep(time.Second)     // want `time\.Sleep reads the wall clock`
	_ = time.NewTicker(1)       // want `time\.NewTicker reads the wall clock`
	_ = time.NewTimer(1)        // want `time\.NewTimer reads the wall clock`
	_ = time.AfterFunc(1, nil)  // want `time\.AfterFunc reads the wall clock`
}

// badValue passes the clock function as a value; that leaks the wall
// clock just as surely as calling it.
func badValue() func() time.Time {
	return time.Now // want `time\.Now reads the wall clock`
}

func good() time.Time {
	t := time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)
	d := 25 * time.Second
	t = t.Add(d).Truncate(time.Minute)
	_, _ = time.Parse(time.RFC3339, "2011-04-22T11:00:00Z")
	return t
}
