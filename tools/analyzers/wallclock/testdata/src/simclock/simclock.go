// Package simclock mirrors the sanctioned clock wrapper: inside the
// simclock package itself, wall-clock calls are the whole point and are
// not diagnosed.
package simclock

import "time"

type Real struct{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
