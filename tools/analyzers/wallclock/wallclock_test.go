package wallclock_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer, "wallclock", "simclock")
}
