package ctxprop_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/ctxprop"
)

func TestCtxprop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxprop.Analyzer, "ctxprop", "ctxpropclean")
}
