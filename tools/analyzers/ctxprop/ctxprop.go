// Package ctxprop enforces context propagation in library packages. A
// request's context carries its deadline, cancellation, and trace; any
// call that silently swaps in context.Background() detaches the callee
// from all three, so a cancelled request keeps burning sockets and its
// spans vanish from the trace tree.
//
// Two rules, both skipped in main packages and test files:
//
//  1. context.Background() and context.TODO() are banned. The only
//     legitimate sites are explicitly annotated compatibility shims —
//     context-free wrappers kept for API stability — marked with a
//     `//repolint:ctxprop-allow` directive on the function's doc comment.
//
//  2. A function that receives a context (a context.Context parameter, or
//     an *http.Request whose Context() is one call away) must thread it:
//     calling F(...) or x.M(...) when an FCtx/FContext (MCtx/MContext)
//     variant with a context.Context first parameter exists in the same
//     scope/method set drops the caller's context on the floor and is
//     reported.
package ctxprop

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
)

// Analyzer is the ctxprop pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxprop",
	Doc: "bans context.Background/TODO in library packages outside //repolint:ctxprop-allow shims, " +
		"and requires functions holding a context to call the Ctx/Context variant of any callee that has one",
	Run: run,
}

// AllowDirective marks a compatibility shim that may call
// context.Background.
const AllowDirective = "ctxprop-allow"

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// checkFunc applies both rules to one function declaration, tracking
// whether a context is in scope (the declaration's own parameters plus
// any enclosing func literal's parameters as the walk descends).
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	allowBackground := pass.FuncHasDirective(fd, AllowDirective)
	var walk func(n ast.Node, hasCtx bool)
	walk = func(n ast.Node, hasCtx bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			inner := hasCtx || fieldListHasContext(pass, n.Type.Params)
			walk(n.Body, inner)
			return
		case *ast.CallExpr:
			checkCall(pass, n, hasCtx, allowBackground)
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, hasCtx)
			return false
		})
	}
	walk(fd.Body, funcDeclHasContext(pass, fd))
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, hasCtx, allowBackground bool) {
	// Rule 1: context.Background / context.TODO.
	if _, name, ok := pass.SelectorOnPackage(call.Fun, "context"); ok {
		if name == "Background" || name == "TODO" {
			if !allowBackground {
				pass.Reportf(call.Pos(),
					"context.%s in library code detaches the call from the request's deadline, cancellation, and trace; "+
						"thread the caller's context, or annotate the enclosing function //repolint:%s if it is a compatibility shim",
					name, AllowDirective)
			}
			return
		}
	}
	if !hasCtx {
		return
	}
	// Rule 2: a context is in scope — if the callee has a Ctx/Context
	// variant taking a context, this call drops the context.
	callee, recv := staticCallee(pass, call)
	if callee == nil || takesContext(callee) {
		return
	}
	for _, suffix := range []string{"Ctx", "Context"} {
		variant := lookupVariant(pass, callee, recv, callee.Name()+suffix)
		if variant != nil && takesContext(variant) {
			pass.Reportf(call.Pos(),
				"call to %s drops the in-scope context; use %s and pass it through",
				callee.Name(), variant.Name())
			return
		}
	}
}

// staticCallee resolves call to the *types.Func it invokes (any package)
// plus the receiver type for method calls, or nil for function values,
// builtins, and conversions.
func staticCallee(pass *framework.Pass, call *ast.CallExpr) (fn *types.Func, recv types.Type) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, nil
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil, nil
		}
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			return fn, sel.Recv() // method call
		}
		return fn, nil // package-qualified function
	}
	return nil, nil
}

// lookupVariant finds a function named name alongside callee: in the
// receiver's method set for methods, in the defining package's scope for
// package-level functions.
func lookupVariant(pass *framework.Pass, callee *types.Func, recv types.Type, name string) *types.Func {
	if recv != nil {
		// Search the method set of the receiver's static type.
		ms := types.NewMethodSet(recv)
		if sel := ms.Lookup(callee.Pkg(), name); sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		// Pointer method sets are broader; retry through a pointer when the
		// static receiver is addressable-typed.
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(recv))
			if sel := ms.Lookup(callee.Pkg(), name); sel != nil {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
		}
		return nil
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return nil
	}
	if fn, ok := pkg.Scope().Lookup(name).(*types.Func); ok {
		return fn
	}
	return nil
}

// takesContext reports whether fn has a context.Context parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func funcDeclHasContext(pass *framework.Pass, fd *ast.FuncDecl) bool {
	return fieldListHasContext(pass, fd.Type.Params)
}

// fieldListHasContext reports whether params contains a context.Context
// or an *http.Request (whose Context method makes the request context one
// call away — an HTTP handler has no excuse for Background()).
func fieldListHasContext(pass *framework.Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if isContextType(t) || isHTTPRequest(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

func isHTTPRequest(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, "net/http", "Request")
}

func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
