// Package ctxprop is the positive fixture: unsanctioned
// context.Background/TODO calls and functions that hold a context but
// call the context-free variant of a callee that has a Ctx/Context one.
package ctxprop

import (
	"context"
	"net/http"
)

type Client struct{}

func (c *Client) Fetch(url string) error                          { return nil }
func (c *Client) FetchCtx(ctx context.Context, url string) error  { return nil }
func (c *Client) Send(body string) error                          { return nil }
func (c *Client) SendContext(ctx context.Context, s string) error { return nil }

func Query(q string) error                         { return nil }
func QueryCtx(ctx context.Context, q string) error { return nil }

// bareBackground manufactures a context with no shim annotation.
func bareBackground(c *Client) error {
	ctx := context.Background() // want `context\.Background in library code detaches`
	return c.FetchCtx(ctx, "x")
}

func bareTODO() context.Context {
	return context.TODO() // want `context\.TODO in library code detaches`
}

// dropsMethodCtx holds a context but calls the context-free method.
func dropsMethodCtx(ctx context.Context, c *Client) error {
	return c.Fetch("x") // want `call to Fetch drops the in-scope context; use FetchCtx`
}

// dropsFuncCtx holds a context but calls the context-free package function.
func dropsFuncCtx(ctx context.Context) error {
	return Query("q") // want `call to Query drops the in-scope context; use QueryCtx`
}

// dropsInHandler: an *http.Request parameter counts as having a context.
func dropsInHandler(w http.ResponseWriter, r *http.Request, c *Client) {
	_ = c.Send("x") // want `call to Send drops the in-scope context; use SendContext`
}

// dropsInClosure: the closure inherits the enclosing context parameter.
func dropsInClosure(ctx context.Context, c *Client) func() error {
	return func() error {
		return c.Fetch("x") // want `call to Fetch drops the in-scope context; use FetchCtx`
	}
}
