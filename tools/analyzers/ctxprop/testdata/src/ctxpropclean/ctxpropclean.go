// Package ctxpropclean is the negative fixture: annotated compatibility
// shims may call context.Background, threading the context is clean, and
// functions without a context in scope may call context-free APIs freely.
package ctxpropclean

import "context"

type Client struct{}

func (c *Client) Fetch(url string) error                         { return nil }
func (c *Client) FetchCtx(ctx context.Context, url string) error { return nil }

func Query(q string) error                         { return nil }
func QueryCtx(ctx context.Context, q string) error { return nil }

// Fetch1 is a compatibility shim kept for API stability.
//
//repolint:ctxprop-allow context-free wrapper retained for callers without a context
func Fetch1(c *Client) error {
	return c.FetchCtx(context.Background(), "x")
}

// threads passes the context to the Ctx variants: clean.
func threads(ctx context.Context, c *Client) error {
	if err := c.FetchCtx(ctx, "x"); err != nil {
		return err
	}
	return QueryCtx(ctx, "q")
}

// noCtxInScope has no context, so the context-free calls are fine.
func noCtxInScope(c *Client) error {
	if err := c.Fetch("x"); err != nil {
		return err
	}
	return Query("q")
}
