package norand

import "math/rand"

// Tests may use the global source; nothing here is diagnosed.
func fuzzSeed() int { return rand.Int() }
