// Package norand is the fixture for the norand analyzer: global-source
// calls are diagnosed, while seeded *rand.Rand usage and source
// construction stay clean.
package norand

import "math/rand"

func bad() {
	_ = rand.Int()                     // want `rand\.Int uses the global math/rand source`
	_ = rand.Intn(10)                  // want `rand\.Intn uses the global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 uses the global math/rand source`
	_ = rand.ExpFloat64()              // want `rand\.ExpFloat64 uses the global math/rand source`
	_ = rand.Perm(4)                   // want `rand\.Perm uses the global math/rand source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle uses the global math/rand source`
	rand.Seed(7)                       // want `rand\.Seed uses the global math/rand source`
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1.0, 100)
	var src rand.Source = rand.NewSource(seed)
	_ = src
	var spare *rand.Rand
	_ = spare
	return rng.ExpFloat64() + float64(z.Uint64())
}
