// Package norand flags use of math/rand's implicit global source in
// non-test code.
//
// Every stochastic component of the reproduction — the MTC workload
// generator's Poisson arrivals, host-load jitter in cmd/nodestatusd, the
// trading-partner demo — must draw from a *rand.Rand seeded from
// configuration, so that a run is reproducible from its recorded seed.
// The global source (rand.Intn, rand.Float64, rand.Shuffle, ...) is
// seeded behind the program's back and shared across goroutines, which
// destroys replayability; rand.Seed is additionally deprecated. The
// analyzer permits constructing sources (rand.New, rand.NewSource,
// rand.NewZipf) and referring to math/rand types, and bans everything
// that reads or mutates the package-level generator.
package norand

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
)

// Analyzer is the norand pass.
var Analyzer = &framework.Analyzer{
	Name: "norand",
	Doc: "flags math/rand global-source calls (rand.Intn, rand.Shuffle, rand.Seed, ...) in non-test code; " +
		"inject a seeded *rand.Rand instead",
	Run: run,
}

// allowed are the math/rand package-level names that do not touch the
// global source.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *framework.Pass) (interface{}, error) {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, pkgPath := range []string{"math/rand", "math/rand/v2"} {
				_, name, ok := pass.SelectorOnPackage(sel, pkgPath)
				if !ok || allowed[name] {
					continue
				}
				// Types (rand.Rand, rand.Source) are fine; only
				// functions and vars act on the global source.
				if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
					continue
				}
				pass.Reportf(sel.Pos(), "rand.%s uses the global math/rand source; inject a seeded *rand.Rand", name)
			}
			return true
		})
	}
	return nil, nil
}
