package norand_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/norand"
)

func TestNorand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), norand.Analyzer, "norand")
}
