// Package hotalloc gates allocation-prone constructs out of the warm
// discovery path. Functions carrying a `//repolint:hotpath` doc directive
// — and everything they reach along the intra-package call graph — form
// the hot set; a `//repolint:coldpath` directive on a callee (an error
// builder, a cache-miss parser) prunes that branch from the closure.
// Within the hot set the analyzer reports:
//
//   - any call into package fmt (Sprintf/Errorf format machinery
//     allocates and reflects unconditionally),
//   - append inside a loop to a slice created with zero capacity
//     (`make([]T, 0)` or an empty literal) — growth reallocates on the
//     first elements every single call; either presize or start from a
//     nil slice that only materializes on rare branches,
//   - map composite literals and unsized make(map...) — maps cannot be
//     stack-allocated,
//   - interface boxing of non-pointer values (basic, struct, array,
//     slice, or map values passed to interface parameters) — the
//     conversion copies the value to the heap,
//   - string <-> []byte conversions, which copy,
//   - capturing func literals — a closure over local variables forces
//     them (and the closure) to the heap.
//
// The dynamic counterpart is `make escapecheck` (cmd/escapecheck), which
// compiles the annotated packages with -gcflags=-m and diffs the heap
// escapes inside hotpath functions against ESCAPES_discovery.txt, and
// the allocs/op gate in BENCH_discovery.json.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the hotalloc pass.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "forbids allocation-prone constructs (fmt calls, zero-capacity append growth in loops, map literals, " +
		"interface boxing, string/[]byte copies, capturing closures) in //repolint:hotpath functions and their " +
		"intra-package callees, up to //repolint:coldpath boundaries",
	Run: run,
}

// Directives recognized by the analyzer.
const (
	HotDirective  = "hotpath"
	ColdDirective = "coldpath"
)

func run(pass *framework.Pass) (interface{}, error) {
	cg := framework.NewCallGraph(pass)

	var roots []*types.Func
	for fn, fd := range cg.Decls {
		if pass.FuncHasDirective(fd, HotDirective) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	hot := cg.Reachable(roots, func(fn *types.Func) bool {
		fd := cg.Decls[fn]
		return fd != nil && pass.FuncHasDirective(fd, ColdDirective)
	})

	// Deterministic order for stable diagnostics.
	var fns []*types.Func
	for fn := range hot {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		fd := cg.Decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		checkHotFunc(pass, fd)
	}
	return nil, nil
}

func checkHotFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	zeroCap := zeroCapSlices(pass, fd)
	var loopDepth int

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				walk(c)
				return false
			})
			loopDepth--
			return
		case *ast.FuncLit:
			if captured := capturedVars(pass, fd, n); len(captured) > 0 {
				pass.Reportf(n.Pos(),
					"hot path: closure captures %s, forcing the capture set to the heap; "+
						"hoist to a named function or pass the values as arguments",
					strings.Join(captured, ", "))
			}
			// Still scan the body: the literal runs on the hot path too.
		case *ast.CallExpr:
			checkCall(pass, n, zeroCap, loopDepth > 0)
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[n].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path: map literal allocates; maps cannot be stack-allocated — hoist it out of the hot path or reuse a cached map")
				}
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walk(fd.Body)
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, zeroCap map[types.Object]bool, inLoop bool) {
	// fmt.* — always allocates.
	if _, name, ok := pass.SelectorOnPackage(call.Fun, "fmt"); ok {
		pass.Reportf(call.Pos(),
			"hot path: fmt.%s allocates (format parsing + reflection); build the value without fmt or move this to a //repolint:%s helper",
			name, ColdDirective)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case id.Name == "append" && inLoop && len(call.Args) > 0:
			if arg, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[arg]; obj != nil && zeroCap[obj] {
					pass.Reportf(call.Pos(),
						"hot path: append in a loop grows %s from zero capacity, reallocating on the first elements every call; presize with make([]T, 0, n) or keep the slice nil until needed",
						arg.Name)
				}
			}
			return
		case id.Name == "make" && len(call.Args) == 1:
			if t := pass.TypesInfo.Types[call].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(call.Pos(), "hot path: unsized make(map) allocates and rehashes as it grows; size it or hoist it off the hot path")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypesInfo.Types[call.Args[0]].Type
		if isByteConv(to, from) {
			pass.Reportf(call.Pos(), "hot path: string/[]byte conversion copies the bytes; keep one representation (e.g. hash the string directly)")
		}
		return
	}
	checkBoxing(pass, call)
}

// checkBoxing reports arguments whose value kinds heap-box when passed to
// interface parameters.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil {
			continue
		}
		if kind := boxesOnConversion(at); kind != "" {
			pass.Reportf(arg.Pos(),
				"hot path: passing a %s to an interface parameter boxes it on the heap; pass a pointer or keep the call monomorphic",
				kind)
		}
	}
}

// boxesOnConversion names the allocating value kind, or "" when the
// conversion to interface is allocation-free (pointers, interfaces,
// untyped nil, channels, funcs with no capture already heap-bound, and
// zero-size values, which box to the runtime's shared zero base).
func boxesOnConversion(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UntypedNil {
			return ""
		}
		return u.Name() + " value"
	case *types.Struct:
		if u.NumFields() == 0 {
			return ""
		}
		return "struct value"
	case *types.Array:
		if u.Len() == 0 {
			return ""
		}
		return "array value"
	case *types.Slice:
		return "slice header"
	case *types.Map:
		return "map header"
	}
	return ""
}

func isByteConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// zeroCapSlices collects the objects of slices defined with zero capacity
// (`x := make([]T, 0)` or `x := []T{}`) in fd's body. Nil `var x []T`
// declarations are deliberately excluded: a nil slice allocates nothing
// until a rare branch actually appends.
func zeroCapSlices(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if isZeroCapSliceExpr(pass, as.Rhs[i]) {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isZeroCapSliceExpr(pass *framework.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false // make with an explicit capacity is the fix, not the bug
		}
		t := pass.TypesInfo.Types[e].Type
		if t == nil {
			return false
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return false
		}
		tv := pass.TypesInfo.Types[e.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	case *ast.CompositeLit:
		t := pass.TypesInfo.Types[e].Type
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	}
	return false
}

// capturedVars lists (deduplicated, in source order) the local variables
// of fd that lit captures by reference: identifiers inside lit resolving
// to *types.Var objects declared inside fd but outside lit, excluding
// struct fields and package-level variables (neither forces a closure
// allocation — fields ride the receiver pointer, globals are addressed
// directly).
func capturedVars(pass *framework.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || v.Pkg() != pass.Pkg {
			return true // package-level or foreign
		}
		// Declared inside fd but outside lit?
		if v.Pos() < fd.Pos() || v.Pos() > fd.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own params/locals
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
