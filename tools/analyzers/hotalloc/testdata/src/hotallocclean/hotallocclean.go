// Package hotallocclean is the negative fixture: a hot root written the
// allocation-conscious way, a coldpath helper that may allocate freely,
// and an unannotated function whose constructs are out of scope.
package hotallocclean

import (
	"errors"
	"fmt"
)

var errNotFound = errors.New("not found")

// Lookup stays allocation-clean: presized append, nil-until-needed
// slices, pointer arguments, and errors built in a coldpath helper.
//
//repolint:hotpath warm discovery chain fixture
func Lookup(keys []string, loads map[string]float64) ([]string, error) {
	if len(keys) == 0 {
		return nil, lookupErr("empty key set")
	}
	out := make([]string, 0, len(keys)) // presized: grows once
	for _, k := range keys {
		out = append(out, k)
	}
	var rare []string // nil slice: allocates only on the rare branch
	for _, k := range keys {
		if loads[k] > 0.99 {
			rare = append(rare, k)
		}
	}
	_ = rare
	return out, nil
}

// lookupErr builds errors off the measured path.
//
//repolint:coldpath error construction is off the measured path
func lookupErr(why string) error {
	return fmt.Errorf("lookup: %s: %w", why, errNotFound)
}

// report is not reachable from any hotpath root, so its allocations are
// out of scope.
func report(v interface{}) string {
	m := map[string]interface{}{"v": v}
	return fmt.Sprintf("%v", m)
}
