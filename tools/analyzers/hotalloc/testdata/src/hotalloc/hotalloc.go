// Package hotalloc is the positive fixture: one annotated hot root whose
// body — and an un-annotated intra-package callee's body — use each of
// the allocation-prone constructs.
package hotalloc

import "fmt"

type record struct {
	key  string
	load float64
}

func sink(v interface{}) {}

// Lookup is the annotated hot entry point.
//
//repolint:hotpath warm discovery chain fixture
func Lookup(keys []string, loads map[string]float64) []string {
	out := make([]string, 0) // zero capacity: every append below reallocates
	for _, k := range keys {
		out = append(out, k) // want `hot path: append in a loop grows out from zero capacity`
	}
	idx := map[string]int{} // want `hot path: map literal allocates`
	_ = idx
	scratch := make(map[string]bool) // want `hot path: unsized make\(map\) allocates`
	_ = scratch
	msg := fmt.Sprintf("%d keys", len(keys)) // want `hot path: fmt\.Sprintf allocates`
	_ = msg
	sink(record{key: "a"}) // want `hot path: passing a struct value to an interface parameter boxes it`
	sink(42)               // want `hot path: passing a int value to an interface parameter boxes it`
	b := []byte(keys[0])   // want `hot path: string/\[\]byte conversion copies the bytes`
	_ = b
	total := 0.0
	f := func() float64 { return total } // want `hot path: closure captures total`
	_ = f
	return helper(out)
}

// helper is hot by reachability from Lookup, not by annotation.
func helper(uris []string) []string {
	_ = fmt.Errorf("no hosts in %v", uris) // want `hot path: fmt\.Errorf allocates`
	return uris
}
