package hotalloc_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "hotalloc", "hotallocclean")
}
