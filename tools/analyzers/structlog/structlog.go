// Package structlog enforces structured logging in library packages:
// fmt.Print / fmt.Printf / fmt.Println and every stdlib log.* output call
// (log.Print*, log.Fatal*, log.Panic*, log.Output) are forbidden outside
// main packages and tests. Libraries must either log through an injected
// *slog.Logger (see internal/obs) so records carry component and trace
// attributes and honour -log-level/-log-format, or write to an
// explicitly injected io.Writer (fmt.Fprintf and friends stay legal —
// the caller chose the destination).
//
// Main packages (cmd/) are exempt: binaries own the process and compose
// user-facing output. Test files are exempt: t.Log already exists, but
// debugging prints in tests harm nobody's production logs.
package structlog

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
)

// Analyzer is the structlog pass.
var Analyzer = &framework.Analyzer{
	Name: "structlog",
	Doc: "forbids fmt.Print*/log.Print* (and log.Fatal*/Panic*/Output) in non-main packages; " +
		"libraries log via an injected *slog.Logger or write to an injected io.Writer",
	Run: run,
}

// banned maps the forbidden stdout/stderr-writing functions to the
// replacement named in the diagnostic.
var banned = map[string]string{
	"fmt.Print":   "an injected *slog.Logger (or fmt.Fprint to an injected io.Writer)",
	"fmt.Printf":  "an injected *slog.Logger (or fmt.Fprintf to an injected io.Writer)",
	"fmt.Println": "an injected *slog.Logger (or fmt.Fprintln to an injected io.Writer)",
	"log.Print":   "an injected *slog.Logger",
	"log.Printf":  "an injected *slog.Logger",
	"log.Println": "an injected *slog.Logger",
	"log.Fatal":   "an injected *slog.Logger and an error return",
	"log.Fatalf":  "an injected *slog.Logger and an error return",
	"log.Fatalln": "an injected *slog.Logger and an error return",
	"log.Panic":   "an injected *slog.Logger and an error return",
	"log.Panicf":  "an injected *slog.Logger and an error return",
	"log.Panicln": "an injected *slog.Logger and an error return",
	"log.Output":  "an injected *slog.Logger",
}

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if fix, bad := banned[fn.FullName()]; bad {
				pass.Reportf(call.Pos(), "%s in library package; use %s", fn.FullName(), fix)
			}
			return true
		})
	}
	return nil, nil
}
