package structlog_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/structlog"
)

func TestStructlog(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), structlog.Analyzer, "structlog", "structlogmain")
}
