// Package structlog is the fixture for the structlog analyzer: direct
// fmt.Print*/log.Print* output in a library package is diagnosed;
// injected slog loggers and Fprint-to-injected-writer stay clean.
package structlog

import (
	"fmt"
	"io"
	"log"
	"log/slog"
)

func bad(name string) {
	fmt.Println("starting", name)            // want `fmt\.Println in library package; use an injected \*slog\.Logger \(or fmt\.Fprintln to an injected io\.Writer\)`
	fmt.Printf("starting %s\n", name)        // want `fmt\.Printf in library package; use an injected \*slog\.Logger \(or fmt\.Fprintf to an injected io\.Writer\)`
	log.Printf("collection failed: %v", nil) // want `log\.Printf in library package; use an injected \*slog\.Logger`
	log.Println("sweep done")                // want `log\.Println in library package; use an injected \*slog\.Logger`
}

func fatal(err error) {
	log.Fatalf("unrecoverable: %v", err) // want `log\.Fatalf in library package; use an injected \*slog\.Logger and an error return`
	log.Panicln("unreachable")           // want `log\.Panicln in library package; use an injected \*slog\.Logger and an error return`
}

// good logs through an injected logger and writes human output to an
// injected writer — both are the caller's choice, so both are legal.
func good(l *slog.Logger, w io.Writer, name string) error {
	l.Info("starting", "name", name)
	fmt.Fprintf(w, "starting %s\n", name)
	fmt.Fprintln(w, "done")
	if name == "" {
		return fmt.Errorf("structlog: empty name")
	}
	return nil
}

// formatting helpers are not output calls.
func format(name string) string {
	return fmt.Sprintf("node %s", name)
}
