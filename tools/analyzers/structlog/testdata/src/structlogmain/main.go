// Command structlogmain is the fixture proving main packages are exempt:
// binaries own the process's stdout/stderr and may print and die freely.
package main

import (
	"fmt"
	"log"
)

func main() {
	fmt.Println("listening on :8080")
	log.Printf("policy %s", "filter")
	log.Fatal("bind failed")
}
