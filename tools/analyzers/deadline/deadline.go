// Package deadline enforces the serving edge's admission invariant: every
// route registered on the registry's mux — net/http.ServeMux or the
// frozen router.Router, via Handle/HandleFunc/HandlePrefix/
// HandlePrefixFunc — must pass its handler through the admission
// controller (a call whose callee is named Wrap, conventionally
// Admission.Wrap) or carry an explicit
// `//repolint:admit-exempt <reason>` directive on the registration line
// or the line above it.
//
// The admission middleware is where per-class in-flight bounds, load
// shedding, and — the analyzer's namesake — server-side deadline budgets
// are applied; a route registered around it silently serves without any
// of them, which is exactly the unbounded pre-admission edge PR 7
// removed. Exemptions are deliberate and must say why (health and
// metrics must answer while the edge sheds; pprof must work during
// incidents), so a bare directive without a reason is also flagged.
//
// The pass is scoped to packages named "registry" — the serving surface
// — so other packages may assemble muxes freely. Test files are exempt
// as with the other repolint analyzers.
package deadline

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the deadline pass.
var Analyzer = &framework.Analyzer{
	Name: "deadline",
	Doc: "flags registry ServeMux/Router registrations whose handler bypasses the admission middleware " +
		"(no Wrap call and no //repolint:admit-exempt reason)",
	Run: run,
}

// exemptDirective is the annotation that deliberately opts a route out of
// admission control.
const exemptDirective = framework.DirectivePrefix + "admit-exempt"

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "registry" {
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Handle" && method != "HandleFunc" &&
				method != "HandlePrefix" && method != "HandlePrefixFunc" {
				return true
			}
			if !isMux(pass, sel.X) || len(call.Args) != 2 {
				return true
			}
			if isAdmissionWrapped(call.Args[1]) {
				return true
			}
			reason, exempt := exemptionAt(pass, f, call)
			switch {
			case exempt && reason == "":
				pass.Reportf(call.Pos(), "route %s: //repolint:admit-exempt needs a reason (why may this route bypass admission?)",
					routeName(call))
			case !exempt:
				pass.Reportf(call.Pos(), "route %s registered without admission control: wrap the handler in Admission.Wrap or annotate //repolint:admit-exempt <reason>",
					routeName(call))
			}
			return true
		})
	}
	return nil, nil
}

// isMux reports whether expr's type is one of the serving edge's route
// tables — net/http.ServeMux or the repo's frozen router.Router — or a
// pointer to either. The router is matched by package path suffix so the
// analyzer's fixture packages (typechecked against the standard library
// only, with a local "router" stand-in) exercise the same code path as
// the real repro/internal/router.
func isMux(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "net/http" && obj.Name() == "ServeMux" {
		return true
	}
	return obj.Name() == "Router" &&
		(path == "router" || strings.HasSuffix(path, "/router"))
}

// isAdmissionWrapped reports whether the handler argument is a call whose
// callee is a method or function named Wrap — the admission middleware's
// constructor. The check is by name, not by type: fixture packages are
// typechecked against the standard library only, and any same-named
// wrapper in the registry package is by convention the admission one.
//
// Observation middleware may legitimately sit outside admission — the
// flight recorder wraps the whole stack so shed requests are recorded
// too — so when the argument is some other call, its own arguments are
// searched recursively: flightWrap(route, ctx, adm.Wrap(...)) passes.
func isAdmissionWrapped(arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Wrap" {
			return true
		}
	case *ast.Ident:
		if fun.Name == "Wrap" {
			return true
		}
	}
	for _, inner := range call.Args {
		if isAdmissionWrapped(inner) {
			return true
		}
	}
	return false
}

// exemptionAt looks for an admit-exempt directive on the registration's
// line or the line immediately above it, returning its reason text.
func exemptionAt(pass *framework.Pass, f *ast.File, n ast.Node) (reason string, ok bool) {
	line := pass.Fset.Position(n.Pos()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, exemptDirective) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, exemptDirective)
			if rest != "" && !strings.HasPrefix(rest, " ") {
				continue // a different, longer directive name
			}
			cl := pass.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// routeName renders the registration's pattern argument for diagnostics.
func routeName(call *ast.CallExpr) string {
	if lit, ok := call.Args[0].(*ast.BasicLit); ok {
		return lit.Value
	}
	return "<dynamic>"
}
