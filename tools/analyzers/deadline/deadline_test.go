package deadline_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/deadline"
)

func TestDeadline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), deadline.Analyzer, "registry", "other", "edge/router")
}
