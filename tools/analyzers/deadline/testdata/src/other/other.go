// Package other proves the deadline pass is scoped to the serving
// surface: a package not named "registry" may register bare handlers on
// a ServeMux freely.
package other

import "net/http"

func routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/anything", http.NotFoundHandler())
	mux.HandleFunc("/else", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}
