package registry

import "net/http"

// Test files may assemble muxes without admission: test servers exercise
// handlers directly and the repolint invariants govern production code.
func testRoutes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/registry/find", http.NotFoundHandler())
	mux.HandleFunc("/registry/query", serve)
	return mux
}
