// Package registry is the deadline analyzer's positive fixture: the
// package name matches the serving surface, so every mux registration
// must wrap its handler in the admission middleware or carry a reasoned
// admit-exempt directive.
package registry

import "net/http"

// admitter stands in for the admission controller; the analyzer matches
// the Wrap callee by name.
type admitter struct{}

func (admitter) Wrap(class int, next http.Handler) http.Handler { return next }

// Wrap is a package-level variant: plain-identifier callees count too.
func Wrap(next http.Handler) http.Handler { return next }

func routes() *http.ServeMux {
	var adm admitter
	mux := http.NewServeMux()

	// Wrapped registrations pass.
	mux.Handle("/soap/registry", adm.Wrap(1, http.NotFoundHandler()))
	mux.Handle("/registry/bindings", Wrap(http.NotFoundHandler()))

	// Observation middleware outside admission passes too: the Wrap call
	// is found recursively inside the outer wrapper's arguments.
	mux.Handle("/registry/find/flight", observe("find", adm.Wrap(1, http.NotFoundHandler())))

	// Bypassing the middleware is the defect this analyzer exists for.
	mux.Handle("/registry/find", http.NotFoundHandler()) // want `route "/registry/find" registered without admission control`
	mux.HandleFunc("/registry/query", serve)             // want `route "/registry/query" registered without admission control`

	// A reasoned exemption is a deliberate decision and passes.
	//repolint:admit-exempt health must answer while the edge sheds
	mux.HandleFunc("/registry/health", serve)
	//repolint:admit-exempt metrics must answer while the edge sheds
	mux.HandleFunc("/registry/metrics", serve)

	// A bare exemption hides the decision; it must say why.
	//repolint:admit-exempt
	mux.HandleFunc("/registry/traces", serve) // want `admit-exempt needs a reason`

	return mux
}

// notMux has Handle/HandleFunc methods but is not a net/http.ServeMux;
// the analyzer must leave it alone.
type notMux struct{}

func (notMux) Handle(pattern string, h http.Handler)                                 {}
func (notMux) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {}

func otherRegistrations() {
	var m notMux
	m.Handle("/x", http.NotFoundHandler())
	m.HandleFunc("/y", serve)
}

func serve(w http.ResponseWriter, r *http.Request) {}

// observe stands in for the flight-recorder middleware that deliberately
// sits outside admission so shed requests are recorded too.
func observe(route string, next http.Handler) http.Handler { return next }
