// This fixture exercises the frozen-router half of the deadline pass.
// The analyzer matches the repo's router by package path suffix
// ("/router"), while only analyzing packages *named* registry — so this
// fixture is package registry under the path edge/router, letting one
// stdlib-only package play both roles.
package registry

import "net/http"

// Router stands in for repro/internal/router.Router: same method set,
// declared in a package whose path ends in /router.
type Router struct{}

func (*Router) Handle(pattern string, h http.Handler)                                 {}
func (*Router) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {}
func (*Router) HandlePrefix(prefix string, h http.Handler)                            {}
func (*Router) HandlePrefixFunc(prefix string, h func(http.ResponseWriter, *http.Request)) {
}

type admitter struct{}

func (admitter) Wrap(class int, next http.Handler) http.Handler { return next }

func routes() *Router {
	var adm admitter
	mux := new(Router)

	// Wrapped registrations pass, exactly as on a ServeMux.
	mux.Handle("/soap/registry", adm.Wrap(1, http.NotFoundHandler()))

	// Bypassing the middleware is flagged on every registration method.
	mux.Handle("/registry/find", http.NotFoundHandler()) // want `route "/registry/find" registered without admission control`
	mux.HandleFunc("/registry/query", serve)             // want `route "/registry/query" registered without admission control`
	mux.HandlePrefix("/debug/", http.NotFoundHandler())  // want `route "/debug/" registered without admission control`
	mux.HandlePrefixFunc("/static/", serve)              // want `route "/static/" registered without admission control`

	// Reasoned exemptions pass on the prefix methods too.
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandlePrefixFunc("/debug/pprof/", serve)
	//repolint:admit-exempt health must answer while the edge sheds
	mux.HandleFunc("/registry/health", serve)

	// A bare exemption still needs a reason.
	//repolint:admit-exempt
	mux.HandlePrefix("/ui/", http.NotFoundHandler()) // want `admit-exempt needs a reason`

	return mux
}

// notMux has the same method names but is not named Router, so the
// analyzer must leave it alone even at this package path.
type notMux struct{}

func (notMux) Handle(pattern string, h http.Handler)      {}
func (notMux) HandlePrefix(prefix string, h http.Handler) {}

func otherRegistrations() {
	var m notMux
	m.Handle("/x", http.NotFoundHandler())
	m.HandlePrefix("/y/", http.NotFoundHandler())
}

func serve(w http.ResponseWriter, r *http.Request) {}
