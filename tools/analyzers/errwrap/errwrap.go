// Package errwrap enforces the repository's error-construction convention
// in library packages:
//
//   - every fmt.Errorf / errors.New message is prefixed with the package
//     name ("store: ...", "uddi: ...") so an error's origin is readable
//     from its text alone, or begins with %w when it re-prefixes a
//     sentinel that already carries one ("%w: business %s");
//   - an error value interpolated into fmt.Errorf must use the %w verb,
//     never %v or %s, so errors.Is/As keep working through the wrap.
//
// Test files and main packages (cmd/, examples/) are exempt: binaries
// compose user-facing messages, and tests fabricate errors freely.
package errwrap

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the errwrap pass.
var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc: `enforces the "pkg: ...: %w" error convention: package-name prefixes on fmt.Errorf/errors.New ` +
		"and %w (not %v/%s) for wrapped errors, in non-main packages",
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	prefix := pass.Pkg.Name() + ": "
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch fn.FullName() {
			case "errors.New":
				checkMessage(pass, call, prefix, false)
			case "fmt.Errorf":
				checkMessage(pass, call, prefix, true)
			}
			return true
		})
	}
	return nil, nil
}

// checkMessage validates one errors.New / fmt.Errorf call. Calls whose
// message is not a plain string literal are skipped: the convention is
// about human-written messages, not computed ones.
func checkMessage(pass *framework.Pass, call *ast.CallExpr, prefix string, isErrorf bool) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	msg, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !strings.HasPrefix(msg, prefix) && !strings.HasPrefix(msg, "%w") {
		pass.Reportf(lit.Pos(), "error message %q must start with %q (or %%w when re-prefixing a wrapped sentinel)",
			msg, prefix)
	}
	if !isErrorf {
		return
	}
	// Any error-typed argument must be formatted with %w so that
	// errors.Is / errors.As see through the wrap.
	if strings.Contains(msg, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if isErrorType(tv.Type) {
			pass.Reportf(arg.Pos(), "error value formatted without %%w; use %%w so errors.Is/As unwrap it")
		}
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
