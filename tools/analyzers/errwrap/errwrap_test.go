package errwrap_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errwrap.Analyzer, "errwrap", "errwrapmain")
}
