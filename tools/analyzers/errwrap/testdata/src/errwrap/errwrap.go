// Package errwrap is the fixture for the errwrap analyzer: unprefixed
// messages and %v-formatted errors are diagnosed; the "pkg: ...: %w"
// convention and sentinel re-prefixing stay clean.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("errwrap: not found")

var errBare = errors.New("not found") // want `error message "not found" must start with "errwrap: "`

func bad(err error, name string) error {
	if name == "" {
		return fmt.Errorf("empty name for %s", name) // want `error message "empty name for %s" must start with "errwrap: "`
	}
	return fmt.Errorf("errwrap: lookup %s: %v", name, err) // want `error value formatted without %w; use %w so errors\.Is/As unwrap it`
}

func good(err error, name string) error {
	if name == "" {
		return fmt.Errorf("errwrap: empty name (code %d)", 42)
	}
	if errors.Is(err, errSentinel) {
		return fmt.Errorf("%w: while looking up %s", errSentinel, name)
	}
	return fmt.Errorf("errwrap: lookup %s: %w", name, err)
}

// computed messages are outside the convention's scope.
func computed(msg string) error {
	return errors.New(msg)
}
