// Command errwrapmain shows that main packages are exempt: binaries
// compose user-facing messages without package prefixes.
package main

import (
	"errors"
	"fmt"
)

func main() {
	_ = errors.New("usage: errwrapmain <flags>")
	_ = fmt.Errorf("bad flag %q", "-x")
}
