// Package metricnames enforces Prometheus naming conventions on the
// metric families registered through the obs.Exposition surface. A scrape
// namespace accretes one registration at a time, and a family that goes
// out misnamed is effectively permanent — dashboards and alerts bind to
// it, so renaming later breaks every consumer. The analyzer checks each
// registration call statically, where the name is a string literal:
//
//   - counter families (Counter, LabelledCounter, CounterVec) must end in
//     `_total`, the Prometheus counter convention;
//   - gauge families (Gauge, GaugeVec) must NOT end in `_total` or
//     `_count` — those suffixes claim counter and histogram-series
//     semantics a gauge does not have (this caught the repo's own
//     `registry_wal_segment_count` gauge, renamed to
//     `registry_wal_segments`);
//   - histogram families (RegisterHistogram) must carry a base-unit
//     suffix (`_seconds`, `_bytes`, or `_ratio`) because the exposition
//     derives `_bucket`/`_sum`/`_count` series whose sums are unit-bound;
//   - every family name must be snake_case: lowercase ASCII segments
//     joined by single underscores;
//   - a family name may be registered only once per package —
//     re-registration either silently shadows or conflicts on type at
//     scrape time. LabelledCounter is the exception: it registers one
//     child per call, so repeated calls with the same family name are the
//     normal way to enumerate label values.
//
// The pass matches calls whose receiver is a (pointer to a) named type
// called Exposition, in any package: the fixtures are typechecked against
// the standard library only and declare a local stand-in, exercising the
// same code path as the real repro/internal/obs.Exposition. Dynamic
// (non-literal) names are skipped — none exist in the repo, and a string
// built at runtime cannot be checked here. Test files are exempt as with
// the other repolint analyzers.
package metricnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the metricnames pass.
var Analyzer = &framework.Analyzer{
	Name: "metricnames",
	Doc: "flags Exposition metric registrations that break Prometheus naming conventions " +
		"(counters without _total, gauges ending _total/_count, histograms without a unit suffix, " +
		"non-snake_case names, duplicate family registration)",
	Run: run,
}

// registrars maps each Exposition registration method to the family kind
// it creates.
var registrars = map[string]string{
	"Counter":           "counter",
	"LabelledCounter":   "counter",
	"CounterVec":        "counter",
	"Gauge":             "gauge",
	"GaugeVec":          "gauge",
	"RegisterHistogram": "histogram",
}

// snakeCase is the permitted family-name shape: lowercase ASCII segments
// joined by single underscores, no leading digit, no trailing underscore.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// unitSuffixes are the base units a histogram family must declare; the
// exposition emits _sum series whose totals are meaningless without one.
var unitSuffixes = []string{"_seconds", "_bytes", "_ratio"}

// registration remembers the first sighting of a family name for the
// duplicate check.
type registration struct {
	method string
	pos    token.Pos
}

func run(pass *framework.Pass) (interface{}, error) {
	seen := make(map[string]registration)
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registrars[sel.Sel.Name]
			if !ok || len(call.Args) == 0 || !isExposition(pass, sel.X) {
				return true
			}
			name, ok := literalName(call.Args[0])
			if !ok {
				return true // dynamic name: nothing to check statically
			}
			check(pass, call.Args[0].Pos(), name, sel.Sel.Name, kind, seen)
			return true
		})
	}
	return nil, nil
}

// check applies the naming rules to one registration.
func check(pass *framework.Pass, pos token.Pos, name, method, kind string, seen map[string]registration) {
	if !snakeCase.MatchString(name) {
		pass.Reportf(pos, "metric family %q is not snake_case (lowercase segments joined by single underscores)", name)
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter family %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge family %q must not end in _total (that suffix claims counter semantics)", name)
		} else if strings.HasSuffix(name, "_count") {
			pass.Reportf(pos, "gauge family %q must not end in _count (that suffix claims histogram-series semantics)", name)
		}
	case "histogram":
		if !hasUnitSuffix(name) {
			pass.Reportf(pos, "histogram family %q needs a base-unit suffix (%s)", name, strings.Join(unitSuffixes, ", "))
		}
	}
	prev, dup := seen[name]
	switch {
	case !dup:
		seen[name] = registration{method: method, pos: pos}
	case method == "LabelledCounter" && prev.method == "LabelledCounter":
		// One child per call is how labelled families enumerate values.
	default:
		pass.Reportf(pos, "metric family %q already registered via %s at %s",
			name, prev.method, pass.Fset.Position(prev.pos))
	}
}

func hasUnitSuffix(name string) bool {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// isExposition reports whether expr's type is a (pointer to a) named type
// called Exposition. Matching by type name rather than package path keeps
// the fixture packages — typechecked against the standard library only —
// on the same code path as the real repro/internal/obs.Exposition.
func isExposition(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj() != nil && named.Obj().Name() == "Exposition"
}

// literalName unquotes the registration's name argument when it is a
// string literal.
func literalName(arg ast.Expr) (string, bool) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
