package metricnames_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/metricnames"
)

func TestMetricnames(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metricnames.Analyzer, "metricnames", "metricnamesclean")
}
