// Package metricnames is the positive fixture: a local Exposition
// stand-in (the analyzer matches the receiver type by name, so fixtures
// typecheck against the standard library only) with one registration per
// naming defect.
package metricnames

// Exposition mirrors the registration surface of repro/internal/obs.
type Exposition struct{}

func (e *Exposition) Counter(name, help string, fn func() int64)                       {}
func (e *Exposition) LabelledCounter(name, help, label, value string, fn func() int64) {}
func (e *Exposition) CounterVec(name, help, label string, fn func() map[string]int64)  {}
func (e *Exposition) Gauge(name, help string, fn func() float64)                       {}
func (e *Exposition) GaugeVec(name, help, label string, fn func() map[string]float64)  {}
func (e *Exposition) RegisterHistogram(name, help string, h *struct{})                 {}

func register(e *Exposition) {
	// Counters must end in _total.
	e.Counter("registry_requests", "", nil)               // want `counter family "registry_requests" must end in _total`
	e.LabelledCounter("registry_hits", "", "k", "v", nil) // want `counter family "registry_hits" must end in _total`
	e.CounterVec("registry_assignments", "", "host", nil) // want `counter family "registry_assignments" must end in _total`

	// Gauges must not borrow counter or histogram-series suffixes.
	e.Gauge("registry_open_total", "", nil)              // want `gauge family "registry_open_total" must not end in _total`
	e.Gauge("registry_segment_count", "", nil)           // want `gauge family "registry_segment_count" must not end in _count`
	e.GaugeVec("registry_depth_total", "", "class", nil) // want `gauge family "registry_depth_total" must not end in _total`

	// Histograms need a base-unit suffix.
	e.RegisterHistogram("registry_latency", "", nil) // want `histogram family "registry_latency" needs a base-unit suffix`

	// Names must be snake_case.
	e.Counter("RegistryRequests_total", "", nil) // want `metric family "RegistryRequests_total" is not snake_case`
	e.Counter("registry__double_total", "", nil) // want `metric family "registry__double_total" is not snake_case`

	// A family may be registered once; a second sighting is a conflict.
	e.Gauge("registry_rows", "", nil)
	e.Counter("registry_rows", "", nil) // want `counter family "registry_rows" must end in _total` `metric family "registry_rows" already registered via Gauge`
}
