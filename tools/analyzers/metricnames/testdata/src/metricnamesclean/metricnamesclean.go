// Package metricnamesclean is the negative fixture: well-named
// registrations, the labelled-counter enumeration pattern, receivers that
// are not an Exposition, and a dynamic name the analyzer must skip.
package metricnamesclean

type Exposition struct{}

func (e *Exposition) Counter(name, help string, fn func() int64)                       {}
func (e *Exposition) LabelledCounter(name, help, label, value string, fn func() int64) {}
func (e *Exposition) CounterVec(name, help, label string, fn func() map[string]int64)  {}
func (e *Exposition) Gauge(name, help string, fn func() float64)                       {}
func (e *Exposition) GaugeVec(name, help, label string, fn func() map[string]float64)  {}
func (e *Exposition) RegisterHistogram(name, help string, h *struct{})                 {}

func register(e *Exposition) {
	e.Counter("registry_requests_total", "", nil)
	e.CounterVec("registry_balance_assignments_total", "", "host", nil)
	e.Gauge("registry_wal_segments", "", nil)
	e.Gauge("registry_snapshot_age_seconds", "", nil)
	e.GaugeVec("registry_slo_availability_burn_rate", "", "window", nil)
	e.RegisterHistogram("registry_discovery_latency_seconds", "", nil)
	e.RegisterHistogram("registry_wal_segment_bytes", "", nil)
	e.RegisterHistogram("registry_hit_ratio", "", nil)

	// The replication families: gauges stay bare (position, lag,
	// connected), counters end in _total.
	e.GaugeVec("registry_repl_position", "", "part", nil)
	e.Gauge("registry_repl_lag_records", "", nil)
	e.Gauge("registry_repl_lag_seconds", "", nil)
	e.Gauge("registry_repl_connected", "", nil)
	e.Counter("registry_repl_applied_total", "", nil)
	e.Counter("registry_repl_errors_total", "", nil)

	// One child per label value: repeated LabelledCounter registrations of
	// the same family are the enumeration idiom, not a conflict.
	e.LabelledCounter("registry_verdicts_total", "", "verdict", "stock", nil)
	e.LabelledCounter("registry_verdicts_total", "", "verdict", "degraded", nil)
	e.LabelledCounter("registry_verdicts_total", "", "verdict", "fallback", nil)

	// A runtime-built name cannot be checked statically.
	name := "registry_" + suffix()
	e.Counter(name, "", nil)
}

func suffix() string { return "dynamic" }

// notExpo has the same method set but a different type name; the analyzer
// must leave it alone.
type notExpo struct{}

func (notExpo) Counter(name, help string, fn func() int64) {}
func (notExpo) Gauge(name, help string, fn func() float64) {}

func other() {
	var n notExpo
	n.Counter("whatever", "", nil)
	n.Gauge("also_total", "", nil)
}
