// Package analysistest runs a framework.Analyzer over fixture packages
// under a testdata/src tree and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expects diagnostics by carrying a trailing comment with
// one regexp (quoted or backquoted) per expected diagnostic:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Every diagnostic must be matched by an expectation on its line and vice
// versa; mismatches fail the test with the position of the offender.
// Fixtures are typechecked with the standard library's source importer,
// so they may import any stdlib package but nothing else.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyzers/framework"
)

// Run applies a to each fixture package (a directory under dir/src) and
// verifies the diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runOne(t, filepath.Join(dir, "src", pkg), pkg, a)
		})
	}
}

// TestData returns the absolute path of the caller's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return abs
}

type diag struct {
	file string
	line int
	msg  string
}

func runOne(t *testing.T, dir, pkgPath string, a *framework.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typechecking %s: %v", dir, err)
	}

	var got []diag
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d framework.Diagnostic) {
			pos := fset.Position(d.Pos)
			got = append(got, diag{file: filepath.Base(pos.Filename), line: pos.Line, msg: d.Message})
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	sort.Slice(got, func(i, j int) bool {
		if got[i].file != got[j].file {
			return got[i].file < got[j].file
		}
		return got[i].line < got[j].line
	})

	used := make([]bool, len(got))
	for _, w := range wants {
		matched := false
		for i, d := range got {
			if used[i] || d.file != w.file || d.line != w.line {
				continue
			}
			if w.re.MatchString(d.msg) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range got {
		if !used[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.msg)
		}
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysistest: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe finds the expectation regexps after a "want" marker: backquoted
// or double-quoted Go string literals.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					var pattern string
					if lit[0] == '`' {
						pattern = lit[1 : len(lit)-1]
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
