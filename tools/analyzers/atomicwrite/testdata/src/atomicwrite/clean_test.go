package atomicwrite

import "os"

// Test files may stage snapshot fixtures however they like.
func writeSnapshotFixture(snapshotPath string) {
	f, _ := os.Create(snapshotPath)
	f.Close()
}
