// Package atomicwrite is the fixture for the atomicwrite analyzer:
// in-place writes of snapshot/checkpoint paths are diagnosed, unrelated
// files stay clean.
package atomicwrite

import "os"

func bad(snapshotPath string, dir string) {
	f, _ := os.Create(snapshotPath) // want `os\.Create writes snapshot/checkpoint state non-atomically`
	f.Close()
	g, _ := os.Create(dir + "/checkpoint-0000000001.json") // want `os\.Create writes snapshot/checkpoint state non-atomically`
	g.Close()
	_ = os.WriteFile(registrySnapshotFile(), nil, 0o644) // want `os\.WriteFile writes snapshot/checkpoint state non-atomically`
}

func good(logPath string) {
	// Unrelated files may be created in place.
	f, _ := os.Create(logPath)
	f.Close()
	_ = os.WriteFile("report.txt", nil, 0o644)
}

func registrySnapshotFile() string { return "registry.json" }
