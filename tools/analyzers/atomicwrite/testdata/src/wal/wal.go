// Package wal is the exemption fixture: the real internal/wal implements
// WriteFileAtomic and manages checkpoint files directly, so nothing in a
// package named wal is diagnosed.
package wal

import "os"

func writeCheckpointDirect(checkpointPath string) {
	f, _ := os.Create(checkpointPath)
	f.Close()
}
