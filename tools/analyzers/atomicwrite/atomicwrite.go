// Package atomicwrite flags non-atomic writes of snapshot and checkpoint
// files in non-test code.
//
// Durability state must never be rewritten in place: a crash between
// os.Create (which truncates) and the final Write destroys the previous
// good copy, which is exactly the failure the WAL + checkpoint subsystem
// exists to rule out. The sanctioned writer is wal.WriteFileAtomic, which
// stages into a temp file in the same directory, fsyncs, and renames over
// the target so readers observe either the old or the new file, never a
// torn one. The analyzer diagnoses os.Create and os.WriteFile calls whose
// path argument mentions a snapshot or checkpoint; package wal itself is
// exempt (it implements the atomic writer), as are test files. Package
// main is deliberately NOT exempt — cmd/regserver's snapshot save was the
// original offender.
package atomicwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the atomicwrite pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicwrite",
	Doc: "flags os.Create/os.WriteFile of snapshot or checkpoint files in non-test code; " +
		"use wal.WriteFileAtomic (temp file + fsync + rename) so a crash cannot destroy the previous copy",
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "wal" {
		// internal/wal implements WriteFileAtomic and owns its file layout.
		return nil, nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name, ok := pass.SelectorOnPackage(call.Fun, "os")
			if !ok || (name != "Create" && name != "WriteFile") || len(call.Args) == 0 {
				return true
			}
			arg := strings.ToLower(types.ExprString(call.Args[0]))
			if strings.Contains(arg, "snapshot") || strings.Contains(arg, "checkpoint") {
				pass.Reportf(call.Pos(),
					"os.%s writes snapshot/checkpoint state non-atomically; use wal.WriteFileAtomic (temp file + rename)", name)
			}
			return true
		})
	}
	return nil, nil
}
