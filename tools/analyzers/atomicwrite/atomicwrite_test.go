package atomicwrite_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/atomicwrite"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicwrite.Analyzer, "atomicwrite", "wal")
}
