package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one machine-readable `//repolint:<name> [args]` comment.
// Directives attach behaviour to declarations and statements:
//
//	//repolint:hotpath        — function is on the allocation-gated warm path
//	//repolint:coldpath       — function terminates hotpath closure (cold branch)
//	//repolint:ctxprop-allow  — compatibility shim may call context.Background
//	//repolint:gorolife-allow — goroutine's lifecycle is managed elsewhere
//
// The arguments (everything after the name) are free text, conventionally a
// one-line justification that shows up in reviews.
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// DirectivePrefix introduces a repolint directive comment. Like go:build
// constraints, a directive comment has no space after the slashes, so
// gofmt keeps it attached to the commented declaration.
const DirectivePrefix = "//repolint:"

// parseDirective decodes c as a repolint directive, reporting ok=false for
// ordinary comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, DirectivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// FuncDirectives returns the directives attached to fd's doc comment.
func (p *Pass) FuncDirectives(fd *ast.FuncDecl) []Directive {
	if fd.Doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range fd.Doc.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncHasDirective reports whether fd's doc comment carries the named
// directive.
func (p *Pass) FuncHasDirective(fd *ast.FuncDecl, name string) bool {
	for _, d := range p.FuncDirectives(fd) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// NodeHasDirective reports whether a directive with the given name
// annotates node n in file f: the directive comment must sit on n's
// starting line or on the line immediately above it. This is how
// statement-level directives (e.g. gorolife-allow on a go statement) are
// attached.
func (p *Pass) NodeHasDirective(f *ast.File, n ast.Node, name string) bool {
	line := p.Fset.Position(n.Pos()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok || d.Name != name {
				continue
			}
			cl := p.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}
