// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// used by the repolint analyzers. The container image deliberately carries
// no module dependencies beyond the standard library, so rather than
// vendoring x/tools we reproduce the small slice of its API that the
// analyzers need; an analyzer written against this package ports to the
// real go/analysis framework by changing one import path.
//
// Drivers: cmd/repolint implements the `go vet -vettool` unitchecker
// protocol on top of this package, and analysistest runs analyzers over
// testdata fixtures with // want expectations.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `repolint help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzed package to an Analyzer's Run function,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos, tagged with the
// analyzer's name so multi-analyzer output stays attributable.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...) + " (" + p.Analyzer.Name + ")"})
}

// IsTestFile reports whether the file node comes from a _test.go file.
// The repolint invariants govern production code; tests may use the wall
// clock, the global rand, and ad-hoc errors freely.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// NonTestFiles returns the package's non-test files.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// PkgNameOf resolves an identifier to the imported package it names, or
// nil if the identifier is not a package qualifier. It is the building
// block for "calls into package X" checks.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// SelectorOnPackage reports whether expr is a selector `q.Name` whose
// qualifier q names the package with the given import path, returning the
// selected name.
func (p *Pass) SelectorOnPackage(expr ast.Expr, pkgPath string) (sel *ast.SelectorExpr, name string, ok bool) {
	s, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return nil, "", false
	}
	pn := p.PkgNameOf(id)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return nil, "", false
	}
	return s, s.Sel.Name, true
}
