package framework

import (
	"go/ast"
	"go/types"
)

// CallSite is one statically resolved call from a package function to
// another function of the same package.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Call   *ast.CallExpr
}

// CallGraph is the intra-package static call graph: one node per
// package-level function or method declared in the analyzed package, one
// edge per call expression whose callee resolves statically (direct calls
// and method calls on typed receivers — not interface dispatch through
// values whose dynamic type is unknown, and not calls through stored
// function values). It is deliberately an under-approximation: analyzers
// use it to propagate properties along calls they can prove, and fall back
// to per-function reasoning elsewhere.
//
// The graph covers non-test files only, matching the analyzers' scope.
type CallGraph struct {
	pass *Pass
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Files maps each declared function to the file declaring it.
	Files map[*types.Func]*ast.File
	// Calls lists the resolved intra-package call sites per caller.
	Calls map[*types.Func][]CallSite
}

// NewCallGraph builds the call graph for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		pass:  pass,
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Files: make(map[*types.Func]*ast.File),
		Calls: make(map[*types.Func][]CallSite),
	}
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
			g.Files[fn] = f
		}
	}
	for fn, fd := range g.Decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := g.CalleeOf(call); callee != nil {
				g.Calls[fn] = append(g.Calls[fn], CallSite{Caller: fn, Callee: callee, Call: call})
			}
			return true
		})
	}
	return g
}

// CalleeOf statically resolves call's target to a function declared in the
// analyzed package, or nil (cross-package call, interface dispatch on an
// unknown dynamic type, function value, builtin, conversion).
func (g *CallGraph) CalleeOf(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = g.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = g.pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != g.pass.Pkg {
		return nil
	}
	if _, declared := g.Decls[fn]; !declared {
		return nil // e.g. interface method of a locally defined interface
	}
	return fn
}

// Reachable computes the functions reachable from roots along Calls edges.
// stop, when non-nil, prunes traversal: a function for which stop returns
// true is excluded from the result and not descended into (roots are never
// pruned). The result includes the roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func, stop func(*types.Func) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func, isRoot bool)
	visit = func(fn *types.Func, isRoot bool) {
		if seen[fn] {
			return
		}
		if !isRoot && stop != nil && stop(fn) {
			return
		}
		seen[fn] = true
		for _, site := range g.Calls[fn] {
			visit(site.Callee, false)
		}
	}
	for _, r := range roots {
		visit(r, true)
	}
	return seen
}
