// Package respcache caches preserialized discovery responses. The JSON
// and SOAP encodings of a per-service binding list are rendered once, on
// the first request after a change, and then served with a single Write
// until something that could alter the answer moves:
//
//   - a registry write (lcm.Manager.OnWrite chains into BumpEpoch),
//   - a brownout tier change (tier is part of the entry key, and the
//     registry also bumps the epoch on transitions),
//   - an RCU snapshot republish (the balancer's snapshot generation is
//     part of the entry key),
//   - wall-clock movement across a constraint time-window boundary or a
//     freshness horizon (entries carry an Expires instant).
//
// Entries are stamped with the epoch observed *before* the decision was
// computed, so a write that lands mid-flight leaves a stamp that never
// validates — conservative, never stale. Eviction is a deterministic
// whole-cache flush when the entry cap is reached (no RNG, per the
// repo's norand invariant); the cap exists to bound memory under a
// service-name scan, not to approximate an LRU.
package respcache

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// DefaultSize is the entry cap used when New is given a non-positive max.
const DefaultSize = 1024

// Space separates the cache's key namespaces: discovery by service name
// (REST and SOAP GetServiceBindingsByName) and by service id (SOAP
// GetServiceBindings). The same string could legally be both a name and
// an id, so the spaces never share keys.
type Space int

const (
	SpaceName Space = iota
	SpaceID
	numSpaces
)

// Entry is one preserialized response. Gen, Tier, and Expires record the
// world the entry was rendered in; Lookup revalidates all three plus the
// write epoch. Decision is retained so a cache hit can feed the same
// discovery metrics a rendered response would.
type Entry struct {
	Gen      uint64
	Tier     uint32
	Expires  time.Time // zero means no time-dependent constraint or freshness horizon
	JSON     []byte
	SOAP     []byte
	Decision core.Decision
	// FirstHost is the host of the first (chosen) binding, precomputed at
	// store time so the flight recorder can stamp cache hits without
	// touching Decision.Bindings on the zero-allocation path.
	FirstHost string

	epoch uint64 // write epoch observed before the decision was computed
}

// Cache is a write-epoch-validated map of preserialized responses. All
// methods are safe for concurrent use and safe on a nil receiver, so a
// registry configured without a cache needs no branches at call sites.
type Cache struct {
	max   int
	epoch atomic.Uint64

	mu     sync.RWMutex
	spaces [numSpaces]map[string]*Entry // guarded by mu

	Hits          metrics.Counter
	Misses        metrics.Counter
	Invalidations metrics.Counter
}

// New creates a cache holding at most max entries across all spaces;
// max <= 0 means DefaultSize.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultSize
	}
	c := &Cache{max: max}
	c.mu.Lock()
	for i := range c.spaces {
		c.spaces[i] = make(map[string]*Entry)
	}
	c.mu.Unlock()
	return c
}

// Epoch returns the current write epoch. Callers read it before
// computing a decision and pass it back to StoreAt, so entries rendered
// across a concurrent write can never validate.
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// BumpEpoch invalidates every live entry by advancing the write epoch.
// Chained into lcm.Manager.OnWrite and fired on brownout transitions.
func (c *Cache) BumpEpoch() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
	c.Invalidations.Inc()
}

// Lookup returns the cached entry for (space, key) if it was rendered in
// the current world: same write epoch, same snapshot generation, same
// brownout tier, and not past its expiry. Misses and invalid entries
// count as misses.
//
//repolint:hotpath runs on every discovery request before the balancer
func (c *Cache) Lookup(space Space, key string, gen uint64, tier uint32, now time.Time) *Entry {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	e := c.spaces[space][key]
	c.mu.RUnlock()
	if e == nil || e.epoch != c.epoch.Load() || e.Gen != gen || e.Tier != tier ||
		(!e.Expires.IsZero() && !now.Before(e.Expires)) {
		c.Misses.Inc()
		return nil
	}
	c.Hits.Inc()
	return e
}

// StoreAt inserts an entry stamped with the epoch the caller read before
// computing it. When the cache is full the whole table is flushed first —
// a deterministic reset rather than a randomized eviction.
func (c *Cache) StoreAt(space Space, key string, e *Entry, epoch uint64) {
	if c == nil || e == nil {
		return
	}
	e.epoch = epoch
	c.mu.Lock()
	if _, exists := c.spaces[space][key]; !exists && c.lenLocked() >= c.max {
		for i := range c.spaces {
			c.spaces[i] = make(map[string]*Entry)
		}
	}
	c.spaces[space][key] = e
	c.mu.Unlock()
}

// Len reports the live entry count across all spaces.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	n := c.lenLocked()
	c.mu.RUnlock()
	return n
}

// lenLocked sums the space sizes; callers hold mu.
func (c *Cache) lenLocked() int {
	n := 0
	for i := range c.spaces {
		n += len(c.spaces[i])
	}
	return n
}

// bufPool recycles the scratch buffers used to render responses (and by
// the registry's pooled JSON writer). Oversized buffers are dropped on
// return so one pathological response cannot pin memory forever.
var bufPool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

const maxPooledBuffer = 1 << 20

// GetBuffer returns a reset scratch buffer from the pool.
func GetBuffer() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool unless it has grown past the
// pooling cap.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuffer {
		return
	}
	bufPool.Put(b)
}
