package respcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var testEpoch = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func TestLookupHitAndMiss(t *testing.T) {
	c := New(8)
	now := testEpoch
	if e := c.Lookup(SpaceName, "Adder", 1, 0, now); e != nil {
		t.Fatal("empty cache returned an entry")
	}
	if c.Misses.Value() != 1 {
		t.Fatalf("Misses = %d, want 1", c.Misses.Value())
	}

	epoch := c.Epoch()
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 1, JSON: []byte(`{"a":1}`)}, epoch)
	e := c.Lookup(SpaceName, "Adder", 1, 0, now)
	if e == nil {
		t.Fatal("stored entry not returned")
	}
	if string(e.JSON) != `{"a":1}` {
		t.Fatalf("JSON = %q", e.JSON)
	}
	if c.Hits.Value() != 1 {
		t.Fatalf("Hits = %d, want 1", c.Hits.Value())
	}
}

func TestSpacesAreDisjoint(t *testing.T) {
	c := New(8)
	c.StoreAt(SpaceName, "k", &Entry{Gen: 1}, c.Epoch())
	if e := c.Lookup(SpaceID, "k", 1, 0, testEpoch); e != nil {
		t.Fatal("SpaceID lookup found a SpaceName entry")
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(8)
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 1}, c.Epoch())
	c.BumpEpoch()
	if e := c.Lookup(SpaceName, "Adder", 1, 0, testEpoch); e != nil {
		t.Fatal("entry survived an epoch bump")
	}
	if c.Invalidations.Value() != 1 {
		t.Fatalf("Invalidations = %d, want 1", c.Invalidations.Value())
	}
}

func TestStaleEpochStampNeverValidates(t *testing.T) {
	c := New(8)
	epoch := c.Epoch()
	// A write lands while the response is being rendered.
	c.BumpEpoch()
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 1}, epoch)
	if e := c.Lookup(SpaceName, "Adder", 1, 0, testEpoch); e != nil {
		t.Fatal("entry stamped with a pre-write epoch validated")
	}
}

func TestGenAndTierKeying(t *testing.T) {
	c := New(8)
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 3, Tier: 1}, c.Epoch())
	if e := c.Lookup(SpaceName, "Adder", 4, 1, testEpoch); e != nil {
		t.Fatal("entry validated across a snapshot generation change")
	}
	if e := c.Lookup(SpaceName, "Adder", 3, 2, testEpoch); e != nil {
		t.Fatal("entry validated across a brownout tier change")
	}
	if e := c.Lookup(SpaceName, "Adder", 3, 1, testEpoch); e == nil {
		t.Fatal("entry did not validate at its own gen/tier")
	}
}

func TestExpiry(t *testing.T) {
	c := New(8)
	exp := testEpoch.Add(30 * time.Second)
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 1, Expires: exp}, c.Epoch())
	if e := c.Lookup(SpaceName, "Adder", 1, 0, exp.Add(-time.Second)); e == nil {
		t.Fatal("entry expired early")
	}
	if e := c.Lookup(SpaceName, "Adder", 1, 0, exp); e != nil {
		t.Fatal("entry validated at its expiry instant")
	}
	// Zero Expires means no time dependence at all.
	c.StoreAt(SpaceName, "Timeless", &Entry{Gen: 1}, c.Epoch())
	if e := c.Lookup(SpaceName, "Timeless", 1, 0, testEpoch.Add(1000*time.Hour)); e == nil {
		t.Fatal("zero-expiry entry did not validate far in the future")
	}
}

func TestFlushOnFull(t *testing.T) {
	c := New(4)
	for i := 0; i < 4; i++ {
		c.StoreAt(SpaceName, fmt.Sprintf("svc-%d", i), &Entry{Gen: 1}, c.Epoch())
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Restoring an existing key does not trigger the flush.
	c.StoreAt(SpaceName, "svc-0", &Entry{Gen: 2}, c.Epoch())
	if c.Len() != 4 {
		t.Fatalf("Len after re-store = %d, want 4", c.Len())
	}
	// A new key at capacity flushes everything, then inserts.
	c.StoreAt(SpaceName, "svc-4", &Entry{Gen: 1}, c.Epoch())
	if c.Len() != 1 {
		t.Fatalf("Len after flush = %d, want 1", c.Len())
	}
	if e := c.Lookup(SpaceName, "svc-4", 1, 0, testEpoch); e == nil {
		t.Fatal("entry inserted after flush not found")
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if e := c.Lookup(SpaceName, "x", 1, 0, testEpoch); e != nil {
		t.Fatal("nil cache returned an entry")
	}
	c.StoreAt(SpaceName, "x", &Entry{}, 0)
	c.BumpEpoch()
	if c.Epoch() != 0 {
		t.Fatal("nil cache epoch != 0")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("svc-%d", g%4)
			for i := 0; i < 500; i++ {
				epoch := c.Epoch()
				if c.Lookup(SpaceName, key, 1, 0, testEpoch) == nil {
					c.StoreAt(SpaceName, key, &Entry{Gen: 1}, epoch)
				}
				if i%100 == 0 {
					c.BumpEpoch()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	b.WriteString("hello")
	PutBuffer(b)
	b2 := GetBuffer()
	if b2.Len() != 0 {
		t.Fatalf("pooled buffer not reset: len = %d", b2.Len())
	}
	PutBuffer(b2)
	PutBuffer(nil) // must not panic
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(8)
	c.StoreAt(SpaceName, "Adder", &Entry{Gen: 1, JSON: []byte("{}")}, c.Epoch())
	now := testEpoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(SpaceName, "Adder", 1, 0, now) == nil {
			b.Fatal("miss")
		}
	}
}
