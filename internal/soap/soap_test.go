package soap

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type ping struct {
	XMLName struct{} `xml:"Ping"`
	Msg     string   `xml:"msg"`
	N       int      `xml:"n"`
}

type pong struct {
	XMLName struct{} `xml:"Pong"`
	Msg     string   `xml:"msg"`
	N       int      `xml:"n"`
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	data, err := Marshal(&ping{Msg: "hello <world> & co", N: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "Envelope") || !strings.Contains(s, "Body") || !strings.Contains(s, "Ping") {
		t.Fatalf("envelope missing parts:\n%s", s)
	}
	var got ping
	if err := Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Msg != "hello <world> & co" || got.N != 42 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestUnmarshalFault(t *testing.T) {
	data, err := Marshal(ServerFault("boom %d", 7))
	if err != nil {
		t.Fatal(err)
	}
	var got ping
	err = Unmarshal(data, &got)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if f.Code != "Server" || f.String != "boom 7" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if err := Unmarshal([]byte("not xml"), &ping{}); err == nil {
		t.Fatal("garbage accepted")
	}
	empty := `<Envelope xmlns="` + NS + `"><Body></Body></Envelope>`
	if err := Unmarshal([]byte(empty), &ping{}); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestUnmarshalNilPayloadSkipsDecode(t *testing.T) {
	data, _ := Marshal(&ping{Msg: "x"})
	if err := Unmarshal(data, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointAndPost(t *testing.T) {
	srv := httptest.NewServer(Endpoint(func(req *ping) (interface{}, error) {
		if req.Msg == "fail" {
			return nil, ClientFault("bad message")
		}
		if req.Msg == "crash" {
			return nil, errors.New("internal explosion")
		}
		return &pong{Msg: strings.ToUpper(req.Msg), N: req.N + 1}, nil
	}))
	defer srv.Close()

	var resp pong
	if err := Post(srv.Client(), srv.URL, &ping{Msg: "hi", N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "HI" || resp.N != 2 {
		t.Fatalf("resp = %+v", resp)
	}

	// Client fault surfaces with code Client.
	err := Post(srv.Client(), srv.URL, &ping{Msg: "fail"}, &resp)
	var f *Fault
	if !errors.As(err, &f) || f.Code != "Client" {
		t.Fatalf("want client fault, got %v", err)
	}

	// Generic errors become Server faults.
	err = Post(srv.Client(), srv.URL, &ping{Msg: "crash"}, &resp)
	if !errors.As(err, &f) || f.Code != "Server" || !strings.Contains(f.String, "explosion") {
		t.Fatalf("want server fault, got %v", err)
	}
}

func TestEndpointRejectsGet(t *testing.T) {
	srv := httptest.NewServer(Endpoint(func(req *ping) (interface{}, error) { return &pong{}, nil }))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestEndpointRejectsGarbageBody(t *testing.T) {
	srv := httptest.NewServer(Endpoint(func(req *ping) (interface{}, error) { return &pong{}, nil }))
	defer srv.Close()
	resp, err := http.Post(srv.URL, ContentType, strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPostConnectionError(t *testing.T) {
	err := Post(nil, "http://127.0.0.1:1/nothing", &ping{}, nil)
	if err == nil {
		t.Fatal("dead endpoint succeeded")
	}
}

func TestFaultBodyWithPayloadNamedFault(t *testing.T) {
	// A legitimate payload whose content merely mentions "Fault" must not
	// be mistaken for a fault (the sniff checks decode success and code).
	data, err := Marshal(&ping{Msg: "Fault tolerance"})
	if err != nil {
		t.Fatal(err)
	}
	var got ping
	if err := Unmarshal(data, &got); err != nil {
		t.Fatalf("payload mentioning Fault rejected: %v", err)
	}
	if got.Msg != "Fault tolerance" {
		t.Fatalf("got %+v", got)
	}
}
