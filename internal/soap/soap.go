// Package soap implements the lightweight SOAP 1.1-style XML envelope the
// registry and the NodeStatus service exchange over HTTP — the messaging
// layer of the Web Service stack (thesis Fig. 1.1, §1.3.1.2): a request
// payload is wrapped in <Envelope><Body>, POSTed, and answered with either
// a response payload or a <Fault>.
//
// The envelope is intentionally a faithful subset: one body element, an
// optional fault, no attachments. It is enough to run every protocol in
// the reproduction (SubmitObjectsRequest, AdhocQueryRequest, NodeStatus
// invocations) over real net/http connections.
package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// NS is the SOAP 1.1 envelope namespace.
const NS = "http://schemas.xmlsoap.org/soap/envelope/"

// ContentType is the media type for SOAP 1.1 over HTTP.
const ContentType = "text/xml; charset=utf-8"

// Fault is a SOAP fault. It implements error so transport helpers can
// return it directly.
type Fault struct {
	XMLName xml.Name `xml:"Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// ClientFault builds a Client-code fault (the caller's request was bad).
func ClientFault(format string, args ...interface{}) *Fault {
	return &Fault{Code: "Client", String: fmt.Sprintf(format, args...)}
}

// ServerFault builds a Server-code fault (the service failed).
func ServerFault(format string, args ...interface{}) *Fault {
	return &Fault{Code: "Server", String: fmt.Sprintf(format, args...)}
}

// Redirect is returned by a handler whose operation must be performed by
// a different node — a replication follower refusing a write. The
// endpoint answers 307 Temporary Redirect with a Location header, plus
// the typed fault as the body for clients that do not follow redirects;
// Go's http.Client re-POSTs the identical envelope at Location
// automatically, so callers land on the right node transparently.
type Redirect struct {
	Location string
	Fault    *Fault
}

// Error implements error.
func (r *Redirect) Error() string { return r.Fault.Error() }

// envelope is the wire form.
type envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	XMLNS   string   `xml:"xmlns,attr,omitempty"`
	Body    body     `xml:"Body"`
}

type body struct {
	Inner []byte `xml:",innerxml"`
}

// Marshal wraps payload in a SOAP envelope. A *Fault payload becomes a
// fault body.
func Marshal(payload interface{}) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal body: %w", err)
	}
	env := envelope{XMLNS: NS, Body: body{Inner: inner}}
	out, err := xml.MarshalIndent(&env, "", " ")
	if err != nil {
		return nil, fmt.Errorf("soap: marshal envelope: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal extracts the envelope body into payload. If the body carries a
// fault, Unmarshal returns it as a *Fault error and leaves payload
// untouched.
func Unmarshal(data []byte, payload interface{}) error {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("soap: bad envelope: %w", err)
	}
	inner := bytes.TrimSpace(env.Body.Inner)
	if len(inner) == 0 {
		return fmt.Errorf("soap: empty body")
	}
	if bytes.Contains(inner[:min(len(inner), 64)], []byte("Fault")) {
		var f Fault
		if err := xml.Unmarshal(inner, &f); err == nil && f.Code != "" {
			return &f
		}
	}
	if payload == nil {
		return nil
	}
	if err := xml.Unmarshal(inner, payload); err != nil {
		return fmt.Errorf("soap: decode body: %w", err)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Post sends req to url as a SOAP request and decodes the reply into resp
// (which may be nil to ignore the body). Faults come back as *Fault errors.
//
//repolint:ctxprop-allow context-free compatibility wrapper for callers without a request context
func Post(client *http.Client, url string, req, resp interface{}) error {
	return PostContext(context.Background(), client, url, req, resp)
}

// PostContext is Post with a caller-supplied context so an in-flight
// invocation can be cancelled (the collector's per-invocation deadline
// tears the socket down through here).
func PostContext(ctx context.Context, client *http.Client, url string, req, resp interface{}) error {
	if client == nil {
		client = http.DefaultClient
	}
	data, err := Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("soap: build request for %s: %w", url, err)
	}
	httpReq.Header.Set("Content-Type", ContentType)
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: post %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("soap: read response: %w", err)
	}
	if err := Unmarshal(raw, resp); err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("soap: http status %d from %s", httpResp.StatusCode, url)
	}
	return nil
}

// Raw is a pre-marshalled SOAP envelope. A handler that returns Raw from
// Endpoint/EndpointCtx skips the Marshal step entirely — the bytes are
// written as-is under the SOAP content type. The registry's response
// cache uses this to serve preserialized GetBindings envelopes.
type Raw []byte

// Endpoint adapts a typed handler to http.Handler. The handler receives
// the decoded request and returns a response payload or an error; errors
// that are not already *Fault become Server faults. Req must be a struct
// type decodable from the request body. Handlers that need the request's
// context (deadline, cancellation, trace) use EndpointCtx instead.
func Endpoint[Req any](handle func(*Req) (interface{}, error)) http.Handler {
	return EndpointCtx(func(_ context.Context, req *Req) (interface{}, error) {
		return handle(req)
	})
}

// EndpointCtx is Endpoint for context-aware handlers: the handler receives
// the HTTP request's context, so per-request deadlines, client
// disconnects, and trace values propagate into the SOAP dispatch.
func EndpointCtx[Req any](handle func(context.Context, *Req) (interface{}, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, http.StatusMethodNotAllowed, ClientFault("method %s not allowed", r.Method))
			return
		}
		raw, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			writeFault(w, http.StatusBadRequest, ClientFault("read request: %v", err))
			return
		}
		var req Req
		if err := Unmarshal(raw, &req); err != nil {
			writeFault(w, http.StatusBadRequest, ClientFault("decode request: %v", err))
			return
		}
		resp, err := handle(r.Context(), &req)
		if err != nil {
			var rd *Redirect
			if errors.As(err, &rd) {
				w.Header().Set("Location", rd.Location)
				writeFault(w, http.StatusTemporaryRedirect, rd.Fault)
				return
			}
			f, ok := err.(*Fault)
			if !ok {
				f = ServerFault("%v", err)
			}
			status := http.StatusInternalServerError
			if f.Code == "Client" {
				status = http.StatusBadRequest
			}
			writeFault(w, status, f)
			return
		}
		if raw, ok := resp.(Raw); ok {
			w.Header().Set("Content-Type", ContentType)
			w.Write(raw)
			return
		}
		data, err := Marshal(resp)
		if err != nil {
			writeFault(w, http.StatusInternalServerError, ServerFault("encode response: %v", err))
			return
		}
		w.Header().Set("Content-Type", ContentType)
		w.Write(data)
	})
}

func writeFault(w http.ResponseWriter, status int, f *Fault) {
	data, err := Marshal(f)
	if err != nil {
		http.Error(w, f.String, status)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	w.Write(data)
}
