package federation

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// newMember spins up a registry with a logged-in local connection.
func newMember(t *testing.T, name string) (Member, *registry.Registry) {
	t.Helper()
	reg, err := registry.New(registry.Config{Clock: simclock.NewManual(t0), Policy: core.PolicyStock})
	if err != nil {
		t.Fatal(err)
	}
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("fed-"+name, "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	return Member{Name: name, Conn: conn}, reg
}

func publishOrg(t *testing.T, m Member, name string) *rim.Organization {
	t.Helper()
	org := rim.NewOrganization(name)
	if _, err := m.Conn.Submit(org); err != nil {
		t.Fatal(err)
	}
	return org
}

func TestNewValidation(t *testing.T) {
	m1, _ := newMember(t, "a")
	if _, err := New(); err == nil {
		t.Fatal("empty federation accepted")
	}
	if _, err := New(Member{Name: "", Conn: m1.Conn}); err == nil {
		t.Fatal("nameless member accepted")
	}
	if _, err := New(m1, Member{Name: "a", Conn: m1.Conn}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	f, err := New(m1)
	if err != nil || len(f.Members()) != 1 {
		t.Fatalf("members = %v, %v", f.Members(), err)
	}
}

func TestFederatedFindMergesAndDedups(t *testing.T) {
	m1, _ := newMember(t, "sdsu")
	m2, _ := newMember(t, "ucsd")
	publishOrg(t, m1, "Shared Research Lab")
	publishOrg(t, m2, "Shared Compute Center")
	// The same object id present in both registries (previously
	// replicated) must appear once, attributed to the first member.
	dup := publishOrg(t, m1, "Duplicated Org")
	if _, err := m2.Conn.Submit(dup.Clone()); err != nil {
		t.Fatal(err)
	}

	f, err := New(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.Find("Organization", "%")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]string{}
	for _, r := range results {
		byName[r.Object.Base().Name.String()] = r.Member
	}
	if byName["Duplicated Org"] != "sdsu" {
		t.Fatalf("dedup attribution = %q", byName["Duplicated Org"])
	}
	if byName["Shared Compute Center"] != "ucsd" {
		t.Fatalf("attribution = %v", byName)
	}
}

func TestFederatedFindPartialFailure(t *testing.T) {
	m1, _ := newMember(t, "up")
	publishOrg(t, m1, "Only Org")
	// A remote member whose server is already closed.
	regDown, err := registry.New(registry.Config{Clock: simclock.NewManual(t0)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(regDown.Handler())
	downConn := jaxr.Connect(srv.URL, srv.Client())
	srv.Close()

	f, err := New(m1, Member{Name: "down", Conn: downConn})
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.Find("Organization", "%")
	if err == nil {
		t.Fatal("dead member produced no error")
	}
	var errs Errors
	if !asErrors(err, &errs) || len(errs) != 1 || errs[0].Member != "down" {
		t.Fatalf("errors = %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("partial results = %d", len(results))
	}
	if !strings.Contains(err.Error(), "down") {
		t.Fatalf("error text: %v", err)
	}
}

func asErrors(err error, out *Errors) bool {
	es, ok := err.(Errors)
	if ok {
		*out = es
	}
	return ok
}

func TestFederatedQuery(t *testing.T) {
	m1, _ := newMember(t, "sdsu")
	m2, _ := newMember(t, "ucsd")
	publishOrg(t, m1, "Org A")
	publishOrg(t, m2, "Org B")
	f, _ := New(m1, m2)
	cols, rows, err := f.Query("SELECT o.name FROM Organization o WHERE o.name LIKE 'Org %' ORDER BY o.name", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || len(rows) != 2 {
		t.Fatalf("cols=%v rows=%v", cols, rows)
	}
	members := map[string]bool{}
	for _, r := range rows {
		members[r.Member] = true
	}
	if !members["sdsu"] || !members["ucsd"] {
		t.Fatalf("row attribution = %v", rows)
	}
}

func TestReplicateSelective(t *testing.T) {
	m1, _ := newMember(t, "source")
	m2, reg2 := newMember(t, "target")
	publishOrg(t, m1, "ReplicateMe One")
	publishOrg(t, m1, "ReplicateMe Two")
	publishOrg(t, m1, "PrivateOrg") // outside the pattern

	f, _ := New(m1, m2)
	report, err := f.Replicate("source", "target", "Organization", "ReplicateMe%")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Copied) != 2 || len(report.Skipped) != 0 {
		t.Fatalf("report = %+v", report)
	}
	got := reg2.QM.FindObjects(rim.TypeOrganization, "ReplicateMe%")
	if len(got) != 2 {
		t.Fatalf("replicated = %d", len(got))
	}
	// Home stamped to the source.
	for _, o := range got {
		if o.Base().Home != "source" {
			t.Fatalf("home = %q", o.Base().Home)
		}
	}
	// Selective: PrivateOrg did not travel.
	if len(reg2.QM.FindObjects(rim.TypeOrganization, "PrivateOrg")) != 0 {
		t.Fatal("selective replication leaked")
	}
	// Idempotent: the second run skips everything.
	report2, err := f.Replicate("source", "target", "Organization", "ReplicateMe%")
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Copied) != 0 || len(report2.Skipped) != 2 {
		t.Fatalf("second report = %+v", report2)
	}
}

func TestReplicateValidation(t *testing.T) {
	m1, _ := newMember(t, "a")
	m2, _ := newMember(t, "b")
	f, _ := New(m1, m2)
	if _, err := f.Replicate("a", "a", "Organization", "%"); err == nil {
		t.Fatal("self replication accepted")
	}
	if _, err := f.Replicate("ghost", "b", "Organization", "%"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := f.Replicate("a", "ghost", "Organization", "%"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestReplicateOverSOAP(t *testing.T) {
	// Source local, target reached over real HTTP — federation mixing
	// transports.
	m1, _ := newMember(t, "local")
	publishOrg(t, m1, "WireOrg")

	regRemote, err := registry.New(registry.Config{Clock: simclock.NewManual(t0)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(regRemote.Handler())
	defer srv.Close()
	remote := jaxr.Connect(srv.URL, srv.Client())
	creds, _, err := remote.Register("remote-user", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Login(creds); err != nil {
		t.Fatal(err)
	}

	f, _ := New(m1, Member{Name: "remote", Conn: remote})
	report, err := f.Replicate("local", "remote", "Organization", "WireOrg")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Copied) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if got := regRemote.QM.FindObjects(rim.TypeOrganization, "WireOrg"); len(got) != 1 || got[0].Base().Home != "local" {
		t.Fatalf("remote copy = %+v", got)
	}
}
