// Package federation implements the multi-registry features of thesis
// Table 1.1 ("Federation Support"): federated queries that fan out across
// member registries and merge results, and selective object replication
// from one registry to another with the object's Home attribute stamped to
// its origin — the ebXML counterpart of UDDI v3's registry affiliation
// (Fig. 1.12).
//
// Members are addressed through jaxr connections, so a federation can mix
// in-process registries (localCall) and remote ones (SOAP) transparently.
package federation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/jaxr"
	"repro/internal/rim"
)

// Member is one registry in the federation.
type Member struct {
	// Name identifies the registry in results and Home stamps, e.g.
	// "sdsu" or "http://volta.sdsu.edu:8080/omar".
	Name string
	// Conn is a ready (logged-in where writes are needed) connection.
	Conn *jaxr.Connection
}

// Federation is an ordered set of member registries.
type Federation struct {
	members []Member
}

// New creates a federation; member names must be unique and non-empty.
func New(members ...Member) (*Federation, error) {
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" || m.Conn == nil {
			return nil, fmt.Errorf("federation: member needs a name and a connection")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("federation: duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("federation: no members")
	}
	return &Federation{members: append([]Member(nil), members...)}, nil
}

// Members returns the member names in federation order.
func (f *Federation) Members() []string {
	out := make([]string, len(f.members))
	for i, m := range f.members {
		out[i] = m.Name
	}
	return out
}

// Result is one federated find hit.
type Result struct {
	Member string
	Object rim.Object
}

// MemberError reports one member's failure during a fan-out.
type MemberError struct {
	Member string
	Err    error
}

// Error implements error.
func (e *MemberError) Error() string {
	return fmt.Sprintf("federation: member %s: %v", e.Member, e.Err)
}

// Errors aggregates partial fan-out failures; successful members' results
// are still returned alongside it.
type Errors []*MemberError

// Error implements error.
func (es Errors) Error() string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.Error()
	}
	return strings.Join(parts, "; ")
}

// Find fans a name search out to every member in parallel and merges the
// hits, deduplicating by object id (the first member in federation order
// wins, mirroring "home registry" preference). A non-nil error is of type
// Errors and accompanies whatever partial results were gathered.
func (f *Federation) Find(kind, namePattern string) ([]Result, error) {
	type memberHits struct {
		idx  int
		objs []rim.Object
		err  error
	}
	hits := make([]memberHits, len(f.members))
	var wg sync.WaitGroup
	for i, m := range f.members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			objs, err := m.Conn.Find(kind, namePattern)
			hits[i] = memberHits{idx: i, objs: objs, err: err}
		}(i, m)
	}
	wg.Wait()

	var out []Result
	var errs Errors
	seen := make(map[string]bool)
	for i, h := range hits {
		if h.err != nil {
			errs = append(errs, &MemberError{Member: f.members[i].Name, Err: h.err})
			continue
		}
		for _, o := range h.objs {
			id := o.Base().ID
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, Result{Member: f.members[i].Name, Object: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := out[i].Object.Base().Name.String(), out[j].Object.Base().Name.String()
		if ni != nj {
			return ni < nj
		}
		return out[i].Object.Base().ID < out[j].Object.Base().ID
	})
	if len(errs) > 0 {
		return out, errs
	}
	return out, nil
}

// MemberBindings is one registry's answer to a federated service-binding
// discovery: its balancer-ordered URIs plus the registry's own health
// rollup verdict ("ok", "degraded", or "unreachable" when the probe or
// the lookup failed).
type MemberBindings struct {
	Member   string
	URIs     []string
	Decision jaxr.BindingsDecision
	Health   string
	Err      error
}

// Bindings fans a service-binding discovery out to every member in
// parallel — each answering from its own local state, leader and
// replication followers alike — and merges the URIs in federation order,
// deduplicating while preserving each member's load ordering. The
// per-member slice carries every registry's URIs, balancer decision, and
// health verdict, so callers can weigh a degraded registry's answer. A
// non-nil error is of type Errors and accompanies the partial merge.
func (f *Federation) Bindings(serviceName string) ([]string, []MemberBindings, error) {
	per := make([]MemberBindings, len(f.members))
	var wg sync.WaitGroup
	for i, m := range f.members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			mb := MemberBindings{Member: m.Name}
			mb.URIs, mb.Decision, mb.Err = m.Conn.ServiceBindings(serviceName)
			if health, err := m.Conn.Health(); err != nil {
				mb.Health = "unreachable"
				if mb.Err == nil {
					mb.Err = err
				}
			} else {
				mb.Health = health
			}
			if mb.Err != nil && mb.Health != "unreachable" {
				mb.Health = "unreachable"
			}
			per[i] = mb
		}(i, m)
	}
	wg.Wait()

	var merged []string
	var errs Errors
	seen := make(map[string]bool)
	for i := range per {
		if per[i].Err != nil {
			errs = append(errs, &MemberError{Member: per[i].Member, Err: per[i].Err})
			continue
		}
		for _, uri := range per[i].URIs {
			if seen[uri] {
				continue
			}
			seen[uri] = true
			merged = append(merged, uri)
		}
	}
	if len(errs) > 0 {
		return merged, per, errs
	}
	return merged, per, nil
}

// QueryRow is one federated ad-hoc query row, tagged with its member.
type QueryRow struct {
	Member string
	Cells  []string
}

// Query fans a SQL ad-hoc query out to every member and concatenates the
// rows, each tagged with the member it came from.
func (f *Federation) Query(sql string, params map[string]string) (columns []string, rows []QueryRow, err error) {
	var errs Errors
	for _, m := range f.members {
		res, qerr := m.Conn.AdhocQuery(sql, params)
		if qerr != nil {
			errs = append(errs, &MemberError{Member: m.Name, Err: qerr})
			continue
		}
		if columns == nil {
			columns = res.Columns
		}
		for _, r := range res.Rows {
			rows = append(rows, QueryRow{Member: m.Name, Cells: r})
		}
	}
	if len(errs) > 0 {
		return columns, rows, errs
	}
	return columns, rows, nil
}

// ReplicationReport summarizes one Replicate call.
type ReplicationReport struct {
	Copied  []string // object ids copied
	Skipped []string // ids already present at the target
}

// Replicate copies the source member's objects of the given kind matching
// namePattern into the target member — selective replication, unlike
// UDDI's "all data replicated across all registries all the time" (Table
// 1.1). Copied objects keep their ids (so references stay valid) and get
// their Home attribute stamped with the source member's name; objects
// whose id already exists at the target are skipped, making replication
// idempotent. The target connection must be authenticated.
func (f *Federation) Replicate(sourceName, targetName, kind, namePattern string) (*ReplicationReport, error) {
	src, err := f.member(sourceName)
	if err != nil {
		return nil, err
	}
	dst, err := f.member(targetName)
	if err != nil {
		return nil, err
	}
	if sourceName == targetName {
		return nil, fmt.Errorf("federation: cannot replicate %s onto itself", sourceName)
	}
	objs, err := src.Conn.Find(kind, namePattern)
	if err != nil {
		return nil, &MemberError{Member: sourceName, Err: err}
	}
	report := &ReplicationReport{}
	for _, o := range objs {
		id := o.Base().ID
		if _, err := dst.Conn.GetObject(id); err == nil {
			report.Skipped = append(report.Skipped, id)
			continue
		}
		o.Base().Home = sourceName
		if _, err := dst.Conn.Submit(o); err != nil {
			return report, &MemberError{Member: targetName, Err: err}
		}
		report.Copied = append(report.Copied, id)
	}
	return report, nil
}

func (f *Federation) member(name string) (Member, error) {
	for _, m := range f.members {
		if m.Name == name {
			return m, nil
		}
	}
	return Member{}, fmt.Errorf("federation: unknown member %q", name)
}
