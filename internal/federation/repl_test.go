package federation

// Federated discovery over a WAL-replication pair: the leader and its
// read-fleet follower both answer Bindings from local state, the
// federation merges and dedups their URIs, and per-member health makes a
// dead registry visible without sinking the whole fan-out.

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/repl"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// newReplPair boots a durable leader registry and a follower tailing its
// WAL, each behind a test server, and returns the follower handle so the
// test can drive replication deterministically.
func newReplPair(t *testing.T) (leader *registry.Registry, lsrv *httptest.Server, fsrv *httptest.Server, f *repl.Follower) {
	t.Helper()
	leader, err := registry.New(registry.Config{
		Clock:      simclock.NewManual(t0),
		Policy:     core.PolicyStock,
		DataDir:    t.TempDir(),
		Fsync:      wal.FsyncAlways,
		ReplLeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsrv = httptest.NewServer(leader.Handler())
	t.Cleanup(lsrv.Close)

	follower, err := registry.New(registry.Config{
		Clock:         simclock.NewManual(t0),
		Policy:        core.PolicyStock,
		ReplFollowURL: lsrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err = repl.OpenFollower(t.TempDir(), follower.Store, repl.FollowerOptions{
		LeaderURL: lsrv.URL,
		Clock:     simclock.NewManual(t0),
		Client:    lsrv.Client(),
		Seed:      11,
		PollWait:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	follower.AttachFollower(f)
	t.Cleanup(func() { f.Close() })
	fsrv = httptest.NewServer(follower.Handler())
	t.Cleanup(fsrv.Close)
	return leader, lsrv, fsrv, f
}

func replCatchUp(t *testing.T, f *repl.Follower, leader *registry.Registry) {
	t.Helper()
	ctx := context.Background()
	if f.Cold() {
		if err := f.Bootstrap(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		want, _ := leader.Durable.WAL().Committed()
		if f.Stats().Applied == want {
			return
		}
		if _, err := f.Poll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("follower did not catch up to the leader")
}

func TestReplFederatedBindingsMergeWithHealth(t *testing.T) {
	leader, _, fsrv, f := newReplPair(t)

	// Publish a service with two bindings on the leader.
	lconn := jaxr.ConnectLocal(leader)
	creds, _, err := lconn.Register("fed-repl", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lconn.Login(creds); err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("FedReplSvc", "replicated discovery target")
	svc.AddBinding("http://thermo.sdsu.edu:8080/FedReplSvc/a")
	svc.AddBinding("http://exergy.sdsu.edu:8080/FedReplSvc/b")
	if _, err := lconn.Submit(svc); err != nil {
		t.Fatal(err)
	}
	replCatchUp(t, f, leader)

	fconn := jaxr.Connect(fsrv.URL, fsrv.Client())
	fed, err := New(
		Member{Name: "leader", Conn: lconn},
		Member{Name: "follower", Conn: fconn},
	)
	if err != nil {
		t.Fatal(err)
	}

	merged, per, err := fed.Bindings("FedReplSvc")
	if err != nil {
		t.Fatal(err)
	}
	// Both members answered the same replicated bindings; the merge
	// dedups, so each URI appears exactly once.
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	seen := map[string]bool{}
	for _, uri := range merged {
		seen[uri] = true
	}
	if !seen["http://thermo.sdsu.edu:8080/FedReplSvc/a"] || !seen["http://exergy.sdsu.edu:8080/FedReplSvc/b"] {
		t.Fatalf("merged = %v", merged)
	}
	if len(per) != 2 {
		t.Fatalf("per-member answers = %d", len(per))
	}
	for _, mb := range per {
		if mb.Health != "ok" {
			t.Fatalf("member %s health = %q", mb.Member, mb.Health)
		}
		if len(mb.URIs) != 2 {
			t.Fatalf("member %s URIs = %v", mb.Member, mb.URIs)
		}
	}
}

func TestReplFederatedBindingsDownMemberPartial(t *testing.T) {
	leader, _, fsrv, f := newReplPair(t)

	lconn := jaxr.ConnectLocal(leader)
	creds, _, err := lconn.Register("fed-repl-down", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lconn.Login(creds); err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("FedReplDownSvc", "")
	svc.AddBinding("http://thermo.sdsu.edu:8080/FedReplDownSvc/a")
	if _, err := lconn.Submit(svc); err != nil {
		t.Fatal(err)
	}
	replCatchUp(t, f, leader)

	// A member whose server is already gone.
	regDown, err := registry.New(registry.Config{Clock: simclock.NewManual(t0)})
	if err != nil {
		t.Fatal(err)
	}
	dsrv := httptest.NewServer(regDown.Handler())
	downConn := jaxr.Connect(dsrv.URL, dsrv.Client())
	dsrv.Close()

	fed, err := New(
		Member{Name: "leader", Conn: lconn},
		Member{Name: "follower", Conn: jaxr.Connect(fsrv.URL, fsrv.Client())},
		Member{Name: "down", Conn: downConn},
	)
	if err != nil {
		t.Fatal(err)
	}
	merged, per, err := fed.Bindings("FedReplDownSvc")
	if err == nil {
		t.Fatal("dead member produced no error")
	}
	var errs Errors
	if !asErrors(err, &errs) || len(errs) != 1 || errs[0].Member != "down" {
		t.Fatalf("errors = %v", err)
	}
	// The healthy pair's merged answer survives the partial failure.
	if len(merged) != 1 || merged[0] != "http://thermo.sdsu.edu:8080/FedReplDownSvc/a" {
		t.Fatalf("merged = %v", merged)
	}
	health := map[string]string{}
	for _, mb := range per {
		health[mb.Member] = mb.Health
	}
	if health["leader"] != "ok" || health["follower"] != "ok" || health["down"] != "unreachable" {
		t.Fatalf("per-member health = %v", health)
	}
}
