package faults

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/nodestatus"
	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// fakeInvoker returns a fixed healthy response and counts invocations.
type fakeInvoker struct {
	mu    sync.Mutex
	calls map[string]int
	err   error
}

func newFake() *fakeInvoker { return &fakeInvoker{calls: make(map[string]int)} }

func (f *fakeInvoker) Invoke(uri string) (nodestatus.Response, error) {
	f.mu.Lock()
	f.calls[uri]++
	f.mu.Unlock()
	if f.err != nil {
		return nodestatus.Response{}, f.err
	}
	return nodestatus.Response{Host: "fake", Load: 0.5, MemoryB: 1 << 30}, nil
}

func (f *fakeInvoker) count(uri string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[uri]
}

const uriA = "http://thermo.sdsu.edu:8080/NodeStatus"
const uriB = "http://exergy.sdsu.edu:8080/NodeStatus"

func TestPassThroughWithEmptyPlan(t *testing.T) {
	fake := newFake()
	clk := simclock.NewManual(t0)
	inj := New(fake, clk, Plan{})
	resp, err := inj.Invoke(uriA)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Load != 0.5 {
		t.Fatalf("response not passed through: %+v", resp)
	}
	if got := inj.Log("thermo.sdsu.edu"); len(got) != 1 || got[0] != KindNone {
		t.Fatalf("log = %v", got)
	}
}

func TestDropInjectsErrors(t *testing.T) {
	fake := newFake()
	inj := New(fake, simclock.NewManual(t0), Plan{DropRate: 1, Seed: 1})
	if _, err := inj.Invoke(uriA); err == nil {
		t.Fatal("drop did not error")
	}
	if fake.count(uriA) != 0 {
		t.Fatal("dropped invocation reached the wrapped invoker")
	}
	if inj.Counts()[KindDrop] != 1 {
		t.Fatalf("counts = %v", inj.Counts())
	}
}

func TestTargetedHostsOnly(t *testing.T) {
	fake := newFake()
	inj := New(fake, simclock.NewManual(t0), Plan{Hosts: []string{"thermo.sdsu.edu"}, DropRate: 1, Seed: 1})
	if _, err := inj.Invoke(uriA); err == nil {
		t.Fatal("targeted host not dropped")
	}
	if _, err := inj.Invoke(uriB); err != nil {
		t.Fatalf("untargeted host faulted: %v", err)
	}
	if got := inj.Log("exergy.sdsu.edu"); got != nil {
		t.Fatalf("untargeted host logged decisions: %v", got)
	}
}

func TestCorruptMangles(t *testing.T) {
	fake := newFake()
	inj := New(fake, simclock.NewManual(t0), Plan{CorruptRate: 1, Seed: 1})
	resp, err := inj.Invoke(uriA)
	if err != nil {
		t.Fatalf("corrupt should not error: %v", err)
	}
	if resp.Load >= 0 || resp.MemoryB >= 0 {
		t.Fatalf("response not corrupted: %+v", resp)
	}
	if fake.count(uriA) != 1 {
		t.Fatal("corrupt skipped the wrapped invoker")
	}
}

func TestFlapFollowsClock(t *testing.T) {
	fake := newFake()
	clk := simclock.NewManual(t0)
	inj := New(fake, clk, Plan{FlapPeriod: 100 * time.Second, FlapDuty: 0.3, Seed: 1})
	// t0: phase 0 < 30 s → down window.
	if _, err := inj.Invoke(uriA); err == nil {
		t.Fatal("down window did not fail")
	}
	clk.Advance(50 * time.Second) // phase 50 ≥ 30 → up
	if _, err := inj.Invoke(uriA); err != nil {
		t.Fatalf("up window failed: %v", err)
	}
	clk.Advance(60 * time.Second) // phase 10 < 30 → down again
	if _, err := inj.Invoke(uriA); err == nil {
		t.Fatal("second down window did not fail")
	}
	want := []Kind{KindFlap, KindNone, KindFlap}
	if got := inj.Log("thermo.sdsu.edu"); !reflect.DeepEqual(got, want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
}

func TestDelayAndHangParkOnClock(t *testing.T) {
	fake := newFake()
	clk := simclock.NewManual(t0)
	inj := New(fake, clk, Plan{DelayRate: 0.5, Delay: 5 * time.Second, HangRate: 0.5, Hang: 30 * time.Second, Seed: 3})
	type result struct {
		err error
	}
	// Run a batch of invocations; each parks on clk.Sleep, so advance the
	// clock from this goroutine until all resolve.
	const n = 8
	done := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := inj.Invoke(uriA)
			done <- result{err}
		}()
	}
	var failures, successes int
	for got := 0; got < n; {
		select {
		case r := <-done:
			got++
			if r.err != nil {
				failures++
			} else {
				successes++
			}
		default:
			clk.Advance(time.Second)
		}
	}
	counts := inj.Counts()
	if counts[KindHang] != failures || counts[KindDelay] != successes {
		t.Fatalf("counts = %v vs failures=%d successes=%d", counts, failures, successes)
	}
	if counts[KindHang] == 0 || counts[KindDelay] == 0 {
		t.Fatalf("expected both kinds with rate 0.5 each over %d draws: %v", n, counts)
	}
	if fake.count(uriA) != successes {
		t.Fatalf("wrapped invoker calls = %d, want %d", fake.count(uriA), successes)
	}
}

func TestSeedReproducibility(t *testing.T) {
	hosts := []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu"}
	schedule := func(seed int64, reverse bool) map[string][]Kind {
		inj := New(newFake(), simclock.NewManual(t0), Plan{DropRate: 0.3, CorruptRate: 0.2, Seed: seed})
		for i := 0; i < 40; i++ {
			order := hosts
			if reverse { // different cross-host interleaving, same per-host order
				order = []string{hosts[2], hosts[1], hosts[0]}
			}
			for _, h := range order {
				inj.Invoke(fmt.Sprintf("http://%s:8080/NodeStatus", h))
			}
		}
		out := make(map[string][]Kind)
		for _, h := range hosts {
			out[h] = inj.Log(h)
		}
		return out
	}
	a := schedule(42, false)
	b := schedule(42, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed diverged under different cross-host interleaving")
	}
	if reflect.DeepEqual(a, schedule(43, false)) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Distinct hosts draw distinct streams even under one seed.
	if reflect.DeepEqual(a[hosts[0]], a[hosts[1]]) {
		t.Fatal("per-host streams identical")
	}
}

func TestWrappedErrorPassesThrough(t *testing.T) {
	fake := newFake()
	sentinel := errors.New("nodestatus: boom")
	fake.err = sentinel
	inj := New(fake, simclock.NewManual(t0), Plan{CorruptRate: 1, Seed: 1})
	if _, err := inj.Invoke(uriA); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}
