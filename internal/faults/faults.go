// Package faults provides a deterministic fault-injecting wrapper around a
// nodestatus.Invoker, for testing and simulating the collection path under
// unreliable clusters. Real NodeStatus deployments fail in a handful of
// characteristic ways — the request is lost (drop), the socket answers
// late (delay) or never (hang), the response is garbage (corrupt), or the
// host oscillates between reachable and dead (flap) — and the Injector
// reproduces each of them on schedule.
//
// Determinism is the point: every probabilistic decision is drawn from a
// per-host *rand.Rand seeded from Plan.Seed and the host name, and every
// time read comes from the injected simclock.Clock. Because the collector
// invokes each host at most once per sweep (retries included, they run
// sequentially in the host's goroutine), the per-host decision sequence is
// a pure function of the seed and the invocation count — runs replay
// byte-identically no matter how sweep goroutines interleave across hosts.
// The flap fault draws from the clock instead of the rng: the host is down
// whenever the virtual time falls inside the down-window of its period.
//
// Delay and hang park on Clock.Sleep, so under a simclock.Manual they
// require another goroutine to advance the clock (as the deadline tests in
// internal/nodestate do). Scenarios driven from a single goroutine — the
// lbsim flaky-cluster experiment — use the non-blocking faults (drop,
// corrupt, flap).
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/nodestatus"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// Kind labels one injected fault decision.
type Kind int

// Fault kinds. KindNone records an invocation the injector passed through
// untouched, keeping per-host logs aligned with invocation counts.
const (
	KindNone Kind = iota
	KindDrop
	KindHang
	KindDelay
	KindCorrupt
	KindFlap
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindHang:
		return "hang"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	case KindFlap:
		return "flap"
	default:
		return "unknown-fault"
	}
}

// Plan schedules faults for a set of hosts. Rates are independent
// per-invocation probabilities stacked in the order drop, hang, delay,
// corrupt; their sum must not exceed 1.
type Plan struct {
	// Hosts restricts injection to these hostnames; empty targets every
	// host.
	Hosts []string
	// DropRate is the probability an invocation fails immediately, as if
	// the request were lost.
	DropRate float64
	// HangRate is the probability an invocation parks for Hang before
	// failing, simulating a socket that never answers (exercises the
	// collector's deadline).
	HangRate float64
	Hang     time.Duration
	// DelayRate is the probability an invocation is delayed by Delay
	// before proceeding normally (late but valid answers).
	DelayRate float64
	Delay     time.Duration
	// CorruptRate is the probability a successful response is mangled
	// into out-of-range values the collector must reject.
	CorruptRate float64
	// FlapPeriod, when positive, makes targeted hosts unreachable during
	// the first FlapDuty fraction of every period (measured from the
	// injector's construction time).
	FlapPeriod time.Duration
	// FlapDuty is the down fraction of each flap period (default 0.5).
	FlapDuty float64
	// Seed drives every per-host decision sequence.
	Seed int64
}

// hostFaults is one host's decision state, always accessed under
// Injector.mu.
type hostFaults struct {
	rng *rand.Rand
	log []Kind
}

// Injector wraps an Invoker with scheduled faults.
type Injector struct {
	next  nodestatus.Invoker
	clock simclock.Clock
	plan  Plan
	epoch time.Time       // flap phase reference
	only  map[string]bool // nil = every host targeted

	mu     sync.Mutex
	hosts  map[string]*hostFaults // guarded by mu
	counts map[Kind]int           // guarded by mu
}

// New wraps next with the fault plan, phased off clock's current time.
func New(next nodestatus.Invoker, clock simclock.Clock, plan Plan) *Injector {
	if clock == nil {
		clock = simclock.Real{}
	}
	if plan.FlapDuty <= 0 || plan.FlapDuty > 1 {
		plan.FlapDuty = 0.5
	}
	inj := &Injector{
		next:   next,
		clock:  clock,
		plan:   plan,
		epoch:  clock.Now(),
		hosts:  make(map[string]*hostFaults),
		counts: make(map[Kind]int),
	}
	if len(plan.Hosts) > 0 {
		inj.only = make(map[string]bool, len(plan.Hosts))
		for _, h := range plan.Hosts {
			inj.only[h] = true
		}
	}
	return inj
}

// decide draws the fault for one invocation of host at time now and logs
// it. The rng is always advanced exactly once per invocation so per-host
// schedules stay count-aligned even when flap windows pre-empt the draw.
func (i *Injector) decide(host string, now time.Time) Kind {
	i.mu.Lock()
	defer i.mu.Unlock()
	h, ok := i.hosts[host]
	if !ok {
		h = &hostFaults{rng: rand.New(rand.NewSource(i.plan.Seed ^ hostSeed(host)))}
		i.hosts[host] = h
	}
	u := h.rng.Float64()
	kind := KindNone
	if i.plan.FlapPeriod > 0 && i.downWindow(now) {
		kind = KindFlap
	} else {
		switch threshold := i.plan.DropRate; {
		case u < threshold:
			kind = KindDrop
		case u < threshold+i.plan.HangRate:
			kind = KindHang
		case u < threshold+i.plan.HangRate+i.plan.DelayRate:
			kind = KindDelay
		case u < threshold+i.plan.HangRate+i.plan.DelayRate+i.plan.CorruptRate:
			kind = KindCorrupt
		}
	}
	h.log = append(h.log, kind)
	i.counts[kind]++
	return kind
}

// downWindow reports whether now falls in the down fraction of the flap
// period.
func (i *Injector) downWindow(now time.Time) bool {
	period := i.plan.FlapPeriod
	phase := now.Sub(i.epoch) % period
	if phase < 0 {
		phase += period
	}
	return float64(phase) < i.plan.FlapDuty*float64(period)
}

// Invoke implements nodestatus.Invoker, applying the scheduled fault for
// this invocation before (or instead of) delegating to the wrapped
// invoker.
func (i *Injector) Invoke(accessURI string) (nodestatus.Response, error) {
	host := rim.HostOfURI(accessURI)
	if host == "" || (i.only != nil && !i.only[host]) {
		return i.next.Invoke(accessURI)
	}
	switch kind := i.decide(host, i.clock.Now()); kind {
	case KindDrop:
		return nodestatus.Response{}, fmt.Errorf("faults: injected drop for %s", host)
	case KindFlap:
		return nodestatus.Response{}, fmt.Errorf("faults: host %s is flapping (down window)", host)
	case KindHang:
		i.clock.Sleep(i.plan.Hang)
		return nodestatus.Response{}, fmt.Errorf("faults: injected hang for %s gave up after %s", host, i.plan.Hang)
	case KindDelay:
		i.clock.Sleep(i.plan.Delay)
		return i.next.Invoke(accessURI)
	case KindCorrupt:
		resp, err := i.next.Invoke(accessURI)
		if err != nil {
			return nodestatus.Response{}, err
		}
		// Out-of-range measurements the collector's validation must
		// reject: negative load and memory.
		resp.Load = -1 - resp.Load
		resp.MemoryB = -1
		return resp, nil
	default:
		return i.next.Invoke(accessURI)
	}
}

// Counts returns how many decisions of each kind have been made.
func (i *Injector) Counts() map[Kind]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]int, len(i.counts))
	for k, n := range i.counts {
		out[k] = n
	}
	return out
}

// Log returns host's decision sequence in invocation order — the fault
// schedule a seed-reproducibility test compares across runs.
func (i *Injector) Log(host string) []Kind {
	i.mu.Lock()
	defer i.mu.Unlock()
	if h, ok := i.hosts[host]; ok {
		return append([]Kind(nil), h.log...)
	}
	return nil
}

// hostSeed folds a host name into a seed component, mirroring the breaker
// package's per-host stream derivation.
func hostSeed(host string) int64 {
	f := fnv.New64a()
	f.Write([]byte(host))
	return int64(f.Sum64())
}
