package auth

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Keystore is the client-side credential store of thesis §3.4.3 — the
// analog of keystore.jks that the KeystoreMover populates. Entries are
// keyed by alias; the whole store is encrypted at rest with a key derived
// from the keystore password (the thesis's default is "ebxmlrr").
type Keystore struct {
	mu      sync.Mutex
	entries map[string]*Credentials
}

// DefaultKeystorePassword is freebXML's out-of-the-box keystore password.
const DefaultKeystorePassword = "ebxmlrr"

// NewKeystore creates an empty keystore.
func NewKeystore() *Keystore {
	return &Keystore{entries: make(map[string]*Credentials)}
}

// Import stores credentials under their alias, replacing an existing entry
// (the KeystoreMover's -destinationAlias semantics).
func (k *Keystore) Import(c *Credentials) {
	k.mu.Lock()
	defer k.mu.Unlock()
	cp := *c
	cp.CertPEM = append([]byte(nil), c.CertPEM...)
	cp.KeyPEM = append([]byte(nil), c.KeyPEM...)
	k.entries[c.Alias] = &cp
}

// Get retrieves the credentials for alias.
func (k *Keystore) Get(alias string) (*Credentials, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.entries[alias]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAlias, alias)
	}
	cp := *c
	return &cp, nil
}

// Aliases lists stored aliases in sorted order.
func (k *Keystore) Aliases() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.entries))
	for a := range k.entries {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Delete removes an alias, reporting whether it was present.
func (k *Keystore) Delete(alias string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.entries[alias]
	delete(k.entries, alias)
	return ok
}

// keystoreFile is the serialized layout.
type keystoreFile struct {
	Salt  []byte `json:"salt"`
	Nonce []byte `json:"nonce"`
	Data  []byte `json:"data"` // AES-GCM sealed JSON of entries
}

// deriveKey stretches the password with an iterated salted SHA-256 —
// stdlib-only key derivation adequate for the simulated keystore.
func deriveKey(password string, salt []byte) []byte {
	h := sha256.Sum256(append([]byte(password), salt...))
	for i := 0; i < 4096; i++ {
		h = sha256.Sum256(h[:])
	}
	return h[:]
}

// Save encrypts the keystore with password and writes it to w.
func (k *Keystore) Save(w io.Writer, password string) error {
	k.mu.Lock()
	plain, err := json.Marshal(k.entries)
	k.mu.Unlock()
	if err != nil {
		return fmt.Errorf("auth: marshal keystore: %w", err)
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return fmt.Errorf("auth: salt: %w", err)
	}
	block, err := aes.NewCipher(deriveKey(password, salt))
	if err != nil {
		return err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("auth: nonce: %w", err)
	}
	sealed := gcm.Seal(nil, nonce, plain, nil)
	return json.NewEncoder(w).Encode(&keystoreFile{Salt: salt, Nonce: nonce, Data: sealed})
}

// Load decrypts a keystore written by Save, replacing current entries. A
// wrong password yields an error, not silent corruption.
func (k *Keystore) Load(r io.Reader, password string) error {
	var f keystoreFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("auth: decode keystore: %w", err)
	}
	block, err := aes.NewCipher(deriveKey(password, f.Salt))
	if err != nil {
		return err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return err
	}
	if len(f.Nonce) != gcm.NonceSize() {
		return fmt.Errorf("auth: corrupt keystore nonce")
	}
	plain, err := gcm.Open(nil, f.Nonce, f.Data, nil)
	if err != nil {
		return fmt.Errorf("auth: keystore password rejected: %w", err)
	}
	entries := make(map[string]*Credentials)
	if err := json.Unmarshal(plain, &entries); err != nil {
		return fmt.Errorf("auth: decode entries: %w", err)
	}
	k.mu.Lock()
	k.entries = entries
	k.mu.Unlock()
	return nil
}
