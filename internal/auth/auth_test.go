package auth

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func TestGenerateCredentials(t *testing.T) {
	c, err := GenerateCredentials("gold", t0)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := c.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject.CommonName != "gold" {
		t.Fatalf("CN = %q", cert.Subject.CommonName)
	}
	if _, err := c.PrivateKey(); err != nil {
		t.Fatal(err)
	}
	fp, err := c.Fingerprint()
	if err != nil || len(fp) != 64 {
		t.Fatalf("fingerprint = %q, %v", fp, err)
	}
}

func TestRegisterAndChallengeLogin(t *testing.T) {
	clk := simclock.NewManual(t0)
	r := NewRegistrar(clk)
	creds, user, err := r.Register("gold", "gold123", rim.PersonName{FirstName: "G"})
	if err != nil {
		t.Fatal(err)
	}
	if user.Alias != "gold" || !rim.IsUUIDURN(user.ID) {
		t.Fatalf("user = %+v", user)
	}
	if !r.CheckPassword("gold", "gold123") || r.CheckPassword("gold", "wrong") {
		t.Fatal("password check broken")
	}

	nonce, err := r.Challenge("gold")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := creds.SignChallenge(nonce)
	if err != nil {
		t.Fatal(err)
	}
	token, uid, err := r.Login("gold", sig)
	if err != nil {
		t.Fatal(err)
	}
	if uid != user.ID {
		t.Fatalf("login uid = %s", uid)
	}
	got, err := r.Validate(token)
	if err != nil || got != user.ID {
		t.Fatalf("validate: %q, %v", got, err)
	}
	r.Logout(token)
	if _, err := r.Validate(token); !errors.Is(err, ErrBadSession) {
		t.Fatalf("after logout: %v", err)
	}
}

func TestLoginRejectsForgedSignature(t *testing.T) {
	r := NewRegistrar(simclock.NewManual(t0))
	_, _, err := r.Register("gold", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	// A different key signs the challenge.
	evil, _ := GenerateCredentials("gold", t0)
	nonce, _ := r.Challenge("gold")
	sig, _ := evil.SignChallenge(nonce)
	if _, _, err := r.Login("gold", sig); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("forged login: %v", err)
	}
}

func TestChallengeSingleUse(t *testing.T) {
	r := NewRegistrar(simclock.NewManual(t0))
	creds, _, _ := r.Register("gold", "pw", rim.PersonName{})
	nonce, _ := r.Challenge("gold")
	sig, _ := creds.SignChallenge(nonce)
	if _, _, err := r.Login("gold", sig); err != nil {
		t.Fatal(err)
	}
	// Replaying the same signature must fail: the nonce is consumed.
	if _, _, err := r.Login("gold", sig); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("replay: %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	clk := simclock.NewManual(t0)
	r := NewRegistrar(clk)
	creds, _, _ := r.Register("gold", "pw", rim.PersonName{})
	nonce, _ := r.Challenge("gold")
	sig, _ := creds.SignChallenge(nonce)
	token, _, err := r.Login("gold", sig)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(31 * time.Minute)
	if _, err := r.Validate(token); !errors.Is(err, ErrBadSession) {
		t.Fatalf("expired session: %v", err)
	}
}

func TestDuplicateAliasAndUnknowns(t *testing.T) {
	r := NewRegistrar(simclock.NewManual(t0))
	if _, _, err := r.Register("", "pw", rim.PersonName{}); err == nil {
		t.Fatal("empty alias accepted")
	}
	if _, _, err := r.Register("gold", "pw", rim.PersonName{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Register("gold", "pw2", rim.PersonName{}); !errors.Is(err, ErrDuplicateAlias) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := r.Challenge("ghost"); !errors.Is(err, ErrUnknownAlias) {
		t.Fatalf("ghost challenge: %v", err)
	}
	if _, _, err := r.Login("ghost", nil); !errors.Is(err, ErrUnknownAlias) {
		t.Fatalf("ghost login: %v", err)
	}
	if _, err := r.UserID("ghost"); !errors.Is(err, ErrUnknownAlias) {
		t.Fatalf("ghost userid: %v", err)
	}
	if uid, err := r.UserID("gold"); err != nil || uid == "" {
		t.Fatalf("userid: %q, %v", uid, err)
	}
	if len(r.Aliases()) != 1 {
		t.Fatalf("aliases = %v", r.Aliases())
	}
}

func TestLoginWithoutChallenge(t *testing.T) {
	r := NewRegistrar(simclock.NewManual(t0))
	r.Register("gold", "pw", rim.PersonName{})
	if _, _, err := r.Login("gold", []byte("sig")); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("no-challenge login: %v", err)
	}
}

func TestKeystoreRoundTrip(t *testing.T) {
	ks := NewKeystore()
	c1, _ := GenerateCredentials("gold", t0)
	c2, _ := GenerateCredentials("registryOperator", t0)
	ks.Import(c1)
	ks.Import(c2)
	if got := ks.Aliases(); len(got) != 2 || got[0] != "gold" {
		t.Fatalf("aliases = %v", got)
	}

	var buf bytes.Buffer
	if err := ks.Save(&buf, DefaultKeystorePassword); err != nil {
		t.Fatal(err)
	}
	restored := NewKeystore()
	if err := restored.Load(bytes.NewReader(buf.Bytes()), DefaultKeystorePassword); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Get("gold")
	if err != nil || !bytes.Equal(got.CertPEM, c1.CertPEM) {
		t.Fatalf("restored creds mismatch: %v", err)
	}
	// The restored credentials must still sign correctly.
	if _, err := got.SignChallenge([]byte("nonce")); err != nil {
		t.Fatal(err)
	}
}

func TestKeystoreWrongPassword(t *testing.T) {
	ks := NewKeystore()
	c, _ := GenerateCredentials("gold", t0)
	ks.Import(c)
	var buf bytes.Buffer
	if err := ks.Save(&buf, "right"); err != nil {
		t.Fatal(err)
	}
	if err := NewKeystore().Load(bytes.NewReader(buf.Bytes()), "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if err := NewKeystore().Load(bytes.NewReader([]byte("garbage")), "x"); err == nil {
		t.Fatal("garbage keystore accepted")
	}
}

func TestKeystoreGetIsolationAndDelete(t *testing.T) {
	ks := NewKeystore()
	c, _ := GenerateCredentials("gold", t0)
	ks.Import(c)
	if _, err := ks.Get("ghost"); err == nil {
		t.Fatal("ghost alias found")
	}
	if !ks.Delete("gold") || ks.Delete("gold") {
		t.Fatal("delete semantics wrong")
	}
}
