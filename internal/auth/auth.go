// Package auth implements the registry's authentication substrate: the user
// registration wizard of thesis §3.4.2 (alias + password producing a
// self-signed X.509 certificate and private key), the client keystore of
// §3.4.3, and the certificate-based session authentication the registry
// performs before any LifeCycleManager request ("unauthenticated clients
// cannot access the LifeCycleManager interface", §2.2.3).
//
// Credentials are real ECDSA P-256 keys and self-signed X.509 certificates
// from the standard library. Authentication is challenge/response: the
// registry issues a nonce, the client signs it with its private key, and
// the registry verifies the signature against the certificate recorded at
// registration — the same trust shape as the thesis's SSL client-cert
// login, without needing TLS termination inside the tests.
package auth

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/base64"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
)

// Errors returned by the registrar.
var (
	ErrDuplicateAlias = errors.New("auth: alias already registered")
	ErrUnknownAlias   = errors.New("auth: unknown alias")
	ErrBadCredentials = errors.New("auth: credentials rejected")
	ErrBadSession     = errors.New("auth: invalid or expired session")
)

// Credentials bundle a user's certificate and private key — the contents
// of the .p12 file the registration wizard produces (Fig. 3.14).
type Credentials struct {
	Alias   string
	CertPEM []byte
	KeyPEM  []byte
}

// Certificate parses the credential's certificate.
func (c *Credentials) Certificate() (*x509.Certificate, error) {
	block, _ := pem.Decode(c.CertPEM)
	if block == nil {
		return nil, fmt.Errorf("auth: no PEM certificate block")
	}
	return x509.ParseCertificate(block.Bytes)
}

// PrivateKey parses the credential's private key.
func (c *Credentials) PrivateKey() (*ecdsa.PrivateKey, error) {
	block, _ := pem.Decode(c.KeyPEM)
	if block == nil {
		return nil, fmt.Errorf("auth: no PEM key block")
	}
	return x509.ParseECPrivateKey(block.Bytes)
}

// Fingerprint returns the SHA-256 fingerprint of the certificate DER.
func (c *Credentials) Fingerprint() (string, error) {
	block, _ := pem.Decode(c.CertPEM)
	if block == nil {
		return "", fmt.Errorf("auth: no PEM certificate block")
	}
	sum := sha256.Sum256(block.Bytes)
	return hex.EncodeToString(sum[:]), nil
}

// GenerateCredentials creates a fresh ECDSA key pair and self-signed
// certificate for alias, valid from now for ten years (the wizard's
// "registry can generate one for the user" path, Fig. 3.11).
func GenerateCredentials(alias string, now time.Time) (*Credentials, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("auth: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("auth: serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: alias, Organization: []string{"ebXML Registry Users"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.AddDate(10, 0, 0),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("auth: create certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("auth: marshal key: %w", err)
	}
	return &Credentials{
		Alias:   alias,
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
	}, nil
}

// SignChallenge signs a registry nonce with the credential's private key,
// producing the proof the client presents at login.
func (c *Credentials) SignChallenge(nonce []byte) ([]byte, error) {
	key, err := c.PrivateKey()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(nonce)
	return ecdsa.SignASN1(rand.Reader, key, sum[:])
}

// registeredUser is the registrar's record for one alias.
type registeredUser struct {
	userID      string
	fingerprint string
	cert        *x509.Certificate
	passwordH   [32]byte
}

// session is a live authenticated session.
type session struct {
	userID  string
	alias   string
	expires time.Time
}

// Registrar manages user registration, challenge issuance, and sessions.
type Registrar struct {
	clock      simclock.Clock
	sessionTTL time.Duration

	mu       sync.Mutex
	users    map[string]*registeredUser // by alias
	nonces   map[string][]byte          // outstanding challenges by alias
	sessions map[string]*session        // by token
}

// NewRegistrar creates a registrar with the given clock (nil = real) and a
// 30-minute session TTL.
func NewRegistrar(clock simclock.Clock) *Registrar {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Registrar{
		clock:      clock,
		sessionTTL: 30 * time.Minute,
		users:      make(map[string]*registeredUser),
		nonces:     make(map[string][]byte),
		sessions:   make(map[string]*session),
	}
}

// Register runs the wizard: it creates credentials for alias/password and
// a rim.User object the caller should persist. The password is stored only
// as a salted hash, used for keystore re-issue.
func (r *Registrar) Register(alias, password string, name rim.PersonName) (*Credentials, *rim.User, error) {
	if alias == "" {
		return nil, nil, fmt.Errorf("auth: empty alias")
	}
	creds, err := GenerateCredentials(alias, r.clock.Now())
	if err != nil {
		return nil, nil, err
	}
	cert, err := creds.Certificate()
	if err != nil {
		return nil, nil, err
	}
	fp, err := creds.Fingerprint()
	if err != nil {
		return nil, nil, err
	}
	user := rim.NewUser(alias, name)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.users[alias]; dup {
		return nil, nil, fmt.Errorf("%w: %s", ErrDuplicateAlias, alias)
	}
	r.users[alias] = &registeredUser{
		userID:      user.ID,
		fingerprint: fp,
		cert:        cert,
		passwordH:   hashPassword(alias, password),
	}
	return creds, user, nil
}

func hashPassword(alias, password string) [32]byte {
	return sha256.Sum256([]byte("ebxmlrr:" + alias + ":" + password))
}

// CheckPassword verifies the password chosen at registration.
func (r *Registrar) CheckPassword(alias, password string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[alias]
	return ok && u.passwordH == hashPassword(alias, password)
}

// Challenge issues a login nonce for alias.
func (r *Registrar) Challenge(alias string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.users[alias]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAlias, alias)
	}
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("auth: nonce: %w", err)
	}
	r.nonces[alias] = nonce
	return nonce, nil
}

// Login verifies the signature over the previously issued nonce and, on
// success, opens a session and returns its token plus the user id.
func (r *Registrar) Login(alias string, signature []byte) (token, userID string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[alias]
	if !ok {
		return "", "", fmt.Errorf("%w: %s", ErrUnknownAlias, alias)
	}
	nonce, ok := r.nonces[alias]
	if !ok {
		return "", "", fmt.Errorf("%w: no outstanding challenge", ErrBadCredentials)
	}
	delete(r.nonces, alias) // single use
	pub, ok := u.cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return "", "", fmt.Errorf("%w: unsupported key type", ErrBadCredentials)
	}
	sum := sha256.Sum256(nonce)
	if !ecdsa.VerifyASN1(pub, sum[:], signature) {
		return "", "", fmt.Errorf("%w: signature verification failed", ErrBadCredentials)
	}
	tok := make([]byte, 24)
	if _, err := rand.Read(tok); err != nil {
		return "", "", fmt.Errorf("auth: token: %w", err)
	}
	token = base64.RawURLEncoding.EncodeToString(tok)
	r.sessions[token] = &session{
		userID:  u.userID,
		alias:   alias,
		expires: r.clock.Now().Add(r.sessionTTL),
	}
	return token, u.userID, nil
}

// Validate resolves a session token to the user id, enforcing expiry.
func (r *Registrar) Validate(token string) (userID string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[token]
	if !ok {
		return "", ErrBadSession
	}
	if r.clock.Now().After(s.expires) {
		delete(r.sessions, token)
		return "", fmt.Errorf("%w: expired", ErrBadSession)
	}
	return s.userID, nil
}

// Logout discards a session.
func (r *Registrar) Logout(token string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, token)
}

// UserID returns the registered user id for alias.
func (r *Registrar) UserID(alias string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[alias]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownAlias, alias)
	}
	return u.userID, nil
}

// Aliases returns the registered aliases (sorted order is not guaranteed).
func (r *Registrar) Aliases() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.users))
	for a := range r.users {
		out = append(out, a)
	}
	return out
}
