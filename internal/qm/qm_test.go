package qm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/sqlq"
	"repro/internal/store"
	"repro/internal/taxonomy"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// fixture builds a store with the thesis's running example: SDSU offering
// NodeStatus (2 hosts) and a constrained Adder service (2 hosts), plus
// NodeState rows making thermo eligible and exergy overloaded.
func fixture() (*Manager, *rim.Organization, *rim.Service, *rim.Service) {
	s := store.New()
	org := rim.NewOrganization("San Diego State University (SDSU)")
	ns := rim.NewService("NodeStatus", "Service to monitor node status")
	ns.AddBinding("http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService")
	ns.AddBinding("http://exergy.sdsu.edu:8080/NodeStatus/NodeStatusService")
	adder := rim.NewService("ServiceAdder", `adds <constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>`)
	adder.AddBinding("http://exergy.sdsu.edu:8080/Adder/addService")
	adder.AddBinding("http://thermo.sdsu.edu:8080/Adder/addService")
	a1 := rim.NewAssociation(rim.AssocOffersService, org.ID, ns.ID)
	a2 := rim.NewAssociation(rim.AssocOffersService, org.ID, adder.ID)
	for _, o := range []rim.Object{org, ns, adder, a1, a2} {
		o.Base().Owner = "urn:uuid:gold"
		if err := s.Put(o); err != nil {
			panic(err)
		}
	}
	s.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
	s.NodeState().Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 2.5, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})

	bal := &core.Balancer{Table: s.NodeState(), Policy: core.PolicyFilter}
	m := New(s, bal, simclock.NewManual(t0))
	return m, org, ns, adder
}

func TestGetRegistryObject(t *testing.T) {
	m, org, _, _ := fixture()
	got, err := m.GetRegistryObject(org.ID)
	if err != nil || got.Base().Name.String() != org.Name.String() {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := m.GetRegistryObject("urn:uuid:ghost"); err == nil {
		t.Fatal("ghost id found")
	}
}

func TestFindObjectsAndAllMyObjects(t *testing.T) {
	m, _, _, _ := fixture()
	svcs := m.FindObjects(rim.TypeService, "%")
	if len(svcs) != 2 {
		t.Fatalf("services = %d", len(svcs))
	}
	if got := m.FindObjects(rim.TypeService, "Node%"); len(got) != 1 {
		t.Fatalf("Node%% = %d", len(got))
	}
	if got := m.FindObjects(rim.TypeService, ""); len(got) != 2 {
		t.Fatalf("empty pattern = %d", len(got))
	}
	mine := m.FindAllMyObjects("urn:uuid:gold")
	if len(mine) != 5 {
		t.Fatalf("my objects = %d", len(mine))
	}
}

func TestByNameLookups(t *testing.T) {
	m, _, _, _ := fixture()
	org, err := m.GetOrganizationByName("San Diego State University (SDSU)")
	if err != nil {
		t.Fatal(err)
	}
	if org.Name.String() == "" {
		t.Fatal("empty org")
	}
	if _, err := m.GetOrganizationByName("NodeStatus"); err == nil {
		t.Fatal("service resolved as organization")
	}
	svc, err := m.GetServiceByName("nodestatus") // case-insensitive
	if err != nil || len(svc.Bindings) != 2 {
		t.Fatalf("service: %+v, %v", svc, err)
	}
}

func TestOfferedServices(t *testing.T) {
	m, org, _, _ := fixture()
	svcs := m.OfferedServices(org.ID)
	if len(svcs) != 2 || svcs[0].Name.String() != "NodeStatus" || svcs[1].Name.String() != "ServiceAdder" {
		names := []string{}
		for _, s := range svcs {
			names = append(names, s.Name.String())
		}
		t.Fatalf("offered = %v", names)
	}
}

func TestGetServiceBindingsAppliesBalancer(t *testing.T) {
	m, _, _, adder := fixture()
	uris, dec, err := m.GetServiceBindings(adder.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Only thermo satisfies load ls 1.0 under PolicyFilter.
	if len(uris) != 1 || !strings.Contains(uris[0], "thermo") {
		t.Fatalf("uris = %v", uris)
	}
	if dec.Eligible() != 1 || dec.Ineligible() != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	// Unconstrained NodeStatus service returns stored order.
	uris2, _, err := m.GetServiceBindingsByName("NodeStatus")
	if err != nil || len(uris2) != 2 {
		t.Fatalf("nodestatus uris = %v, %v", uris2, err)
	}
	if _, _, err := m.GetServiceBindings("urn:uuid:ghost"); err == nil {
		t.Fatal("ghost service found")
	}
	if _, _, err := m.GetServiceBindingsByName("nope"); err == nil {
		t.Fatal("ghost name found")
	}
}

func TestSubmitAdhocQuerySQL(t *testing.T) {
	m, _, _, _ := fixture()
	resp, err := m.SubmitAdhocQuery(AdhocQueryRequest{
		Syntax: SyntaxSQL,
		Query:  "SELECT s.name FROM Service s WHERE s.name LIKE $p ORDER BY s.name",
		Params: map[string]sqlq.Value{"p": "%"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalResultsCount != 2 || len(resp.Rows) != 2 || resp.Rows[0][0] != "NodeStatus" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestSubmitAdhocQueryFilter(t *testing.T) {
	m, _, _, _ := fixture()
	resp, err := m.SubmitAdhocQuery(AdhocQueryRequest{
		Syntax: SyntaxFilter,
		Query:  `<FilterQuery target="Service"><Clause leftArgument="name" comparator="LIKE" rightArgument="Node%"/></FilterQuery>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalResultsCount != 1 {
		t.Fatalf("total = %d", resp.TotalResultsCount)
	}
}

func TestSubmitAdhocQueryIterativeWindow(t *testing.T) {
	m, _, _, _ := fixture()
	resp, err := m.SubmitAdhocQuery(AdhocQueryRequest{
		Query:      "SELECT name FROM Service ORDER BY name",
		StartIndex: 1, MaxResults: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalResultsCount != 2 || len(resp.Rows) != 1 || resp.Rows[0][0] != "ServiceAdder" {
		t.Fatalf("windowed = %+v", resp)
	}
	// StartIndex beyond end.
	resp, _ = m.SubmitAdhocQuery(AdhocQueryRequest{Query: "SELECT name FROM Service", StartIndex: 99})
	if len(resp.Rows) != 0 || resp.TotalResultsCount != 2 {
		t.Fatalf("overshoot = %+v", resp)
	}
}

func TestSubmitAdhocQueryBadSyntax(t *testing.T) {
	m, _, _, _ := fixture()
	if _, err := m.SubmitAdhocQuery(AdhocQueryRequest{Syntax: "XQuery", Query: "x"}); err == nil {
		t.Fatal("unknown syntax accepted")
	}
	if _, err := m.SubmitAdhocQuery(AdhocQueryRequest{Query: "SELEC nope"}); err == nil {
		t.Fatal("bad sql accepted")
	}
}

func TestNodeStateQueryableViaSQL(t *testing.T) {
	m, _, _, _ := fixture()
	resp, err := m.SubmitAdhocQuery(AdhocQueryRequest{
		Query: "SELECT host FROM NodeState WHERE load < 1.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0] != "thermo.sdsu.edu" {
		t.Fatalf("nodestate rows = %+v", resp.Rows)
	}
}

func TestStoredQueries(t *testing.T) {
	m, _, _, _ := fixture()
	if _, err := m.StoreQuery("FindServicesByName", SyntaxSQL,
		"SELECT s.id, s.name FROM Service s WHERE s.name LIKE $name ORDER BY s.name"); err != nil {
		t.Fatal(err)
	}
	resp, err := m.InvokeStoredQuery("FindServicesByName", map[string]sqlq.Value{"name": "Service%"}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalResultsCount != 1 || resp.Rows[0][1] != "ServiceAdder" {
		t.Fatalf("stored query = %+v", resp)
	}
	if _, err := m.InvokeStoredQuery("Nope", nil, 0, 0); err == nil {
		t.Fatal("missing stored query invoked")
	}
	if _, err := m.StoreQuery("bad", "XQuery", "x"); err == nil {
		t.Fatal("invalid stored query accepted")
	}
}

func TestCollectionTargets(t *testing.T) {
	m, _, ns, _ := fixture()
	targets := m.CollectionTargets()
	if len(targets) != 2 || targets[0] != ns.Bindings[0].AccessURI {
		t.Fatalf("targets = %v", targets)
	}
	// Without a NodeStatus service: empty, no error.
	empty := New(store.New(), nil, simclock.NewManual(t0))
	if got := empty.CollectionTargets(); len(got) != 0 {
		t.Fatalf("empty registry targets = %v", got)
	}
}

func TestCatalogTablesListAndUnknown(t *testing.T) {
	m, _, _, _ := fixture()
	if len(m.Catalog().Tables()) < 10 {
		t.Fatalf("tables = %v", m.Catalog().Tables())
	}
	if _, err := m.Catalog().Table("Martian"); err == nil {
		t.Fatal("unknown table resolved")
	}
	// Every declared table is resolvable and queryable.
	for _, name := range m.Catalog().Tables() {
		if _, err := m.SubmitAdhocQuery(AdhocQueryRequest{Query: "SELECT * FROM " + name}); err != nil {
			t.Errorf("SELECT * FROM %s: %v", name, err)
		}
	}
}

func TestFindByClassification(t *testing.T) {
	s := store.New()
	if _, err := taxonomy.Seed(s); err != nil {
		t.Fatal(err)
	}
	m := New(s, nil, simclock.NewManual(t0))

	org := rim.NewOrganization("SDSU")
	cls, err := taxonomy.Classify(s, org.ID, taxonomy.SchemeNAICS, "61")
	if err != nil {
		t.Fatal(err)
	}
	org.Classifications = append(org.Classifications, cls)
	other := rim.NewOrganization("Acme Mining")
	clsOther, err := taxonomy.Classify(s, other.ID, taxonomy.SchemeNAICS, "21")
	if err != nil {
		t.Fatal(err)
	}
	other.Classifications = append(other.Classifications, clsOther)
	for _, o := range []rim.Object{org, other} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}

	got, err := m.FindByClassification(taxonomy.SchemeNAICS, "61")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Base().Name.String() != "SDSU" {
		t.Fatalf("classified = %+v", got)
	}
	if _, err := m.FindByClassification(taxonomy.SchemeNAICS, "99"); err == nil {
		t.Fatal("ghost code accepted")
	}
	if _, err := m.FindByClassification("ghost-scheme", "61"); err == nil {
		t.Fatal("ghost scheme accepted")
	}
	// Case-insensitive code matching.
	if got, err := m.FindByClassification(taxonomy.SchemeISO3166, "us"); err != nil || len(got) != 0 {
		t.Fatalf("iso lookup: %v, %d", err, len(got))
	}
}

// TestCatalogRowShapes populates every row-producing table and verifies
// its columns come back fully through SQL (covering the per-type row
// builders of catalog.go).
func TestCatalogRowShapes(t *testing.T) {
	s := store.New()
	if _, err := taxonomy.Seed(s); err != nil {
		t.Fatal(err)
	}
	user := rim.NewUser("gold", rim.PersonName{FirstName: "G", LastName: "User"})
	ev := rim.NewAuditableEvent(rim.EventCreated, user.ID, t0, "urn:uuid:x")
	q := rim.NewAdhocQuery("stored", "SQL-92", "SELECT 1")
	for _, o := range []rim.Object{user, ev, q} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	m := New(s, nil, simclock.NewManual(t0))

	for query, wantMin := range map[string]int{
		"SELECT alias, firstname, lastname FROM User WHERE alias = 'gold'":    1,
		"SELECT eventtype, userid, timestamp FROM AuditableEvent":             1,
		"SELECT name, isinternal, nodetype FROM ClassificationScheme":         5,
		"SELECT code, path, parent FROM ClassificationNode WHERE code = '61'": 1,
		"SELECT name, querysyntax, query FROM AdhocQuery":                     1,
	} {
		resp, err := m.SubmitAdhocQuery(AdhocQueryRequest{Query: query})
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		if resp.TotalResultsCount < wantMin {
			t.Errorf("%s: total = %d, want >= %d", query, resp.TotalResultsCount, wantMin)
		}
	}
	if m.Now().IsZero() {
		t.Fatal("Now returned zero time")
	}
}
