package qm

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rim"
	"repro/internal/sqlq"
	"repro/internal/store"
)

// Catalog exposes the registry's contents as the logical tables the
// AdhocQuery protocol queries — the view Derby provides under freebXML.
// Rows are materialized per query from the live store, so results always
// reflect current contents.
type Catalog struct {
	Store *store.Store
}

// Tables lists the queryable logical tables.
func (c *Catalog) Tables() []string {
	return []string{
		"RegistryObject", "Organization", "Service", "ServiceBinding",
		"Association", "User", "AuditableEvent", "ClassificationScheme",
		"ClassificationNode", "AdhocQuery", "NodeState",
	}
}

// Table implements sqlq.Catalog.
func (c *Catalog) Table(name string) (sqlq.Table, error) {
	switch strings.ToLower(name) {
	case "registryobject":
		return &lazyTable{cols: baseCols, build: c.registryObjectRows}, nil
	case "organization":
		return &lazyTable{cols: append(baseCols[:len(baseCols):len(baseCols)], "city", "state", "country", "parent"), build: c.organizationRows}, nil
	case "service":
		return &lazyTable{cols: append(baseCols[:len(baseCols):len(baseCols)], "bindings"), build: c.serviceRows}, nil
	case "servicebinding":
		return &lazyTable{cols: []string{"id", "serviceid", "accessuri", "host", "targetbinding", "description"}, build: c.bindingRows}, nil
	case "association":
		return &lazyTable{cols: []string{"id", "associationtype", "sourceid", "targetid", "owner"}, build: c.associationRows}, nil
	case "user":
		return &lazyTable{cols: []string{"id", "alias", "firstname", "lastname", "organization"}, build: c.userRows}, nil
	case "auditableevent":
		return &lazyTable{cols: []string{"id", "eventtype", "userid", "timestamp"}, build: c.eventRows}, nil
	case "classificationscheme":
		return &lazyTable{cols: append(baseCols[:len(baseCols):len(baseCols)], "isinternal", "nodetype"), build: c.schemeRows}, nil
	case "classificationnode":
		return &lazyTable{cols: append(baseCols[:len(baseCols):len(baseCols)], "parent", "code", "path"), build: c.nodeRows}, nil
	case "adhocquery":
		return &lazyTable{cols: append(baseCols[:len(baseCols):len(baseCols)], "querysyntax", "query"), build: c.queryRows}, nil
	case "nodestate":
		return &lazyTable{cols: []string{"host", "load", "memory", "swapmemory", "updated", "failures", "health"}, build: c.nodeStateRows}, nil
	default:
		return nil, fmt.Errorf("qm: unknown table %q", name)
	}
}

var baseCols = []string{"id", "lid", "name", "description", "objecttype", "status", "owner", "versionname"}

type lazyTable struct {
	cols  []string
	build func() []sqlq.Row
}

func (t *lazyTable) Columns() []string { return t.cols }
func (t *lazyTable) Rows() []sqlq.Row  { return t.build() }

// baseRow projects the shared RegistryObject columns.
func baseRow(o rim.Object) sqlq.Row {
	b := o.Base()
	return sqlq.Row{
		"id":          b.ID,
		"lid":         b.LID,
		"name":        nullable(b.Name.String()),
		"description": nullable(b.Description.String()),
		"objecttype":  b.ObjectType.Short(),
		"status":      string(b.Status),
		"owner":       nullable(b.Owner),
		"versionname": b.Version.VersionName,
	}
}

// nullable maps "" to SQL NULL.
func nullable(s string) sqlq.Value {
	if s == "" {
		return nil
	}
	return s
}

func (c *Catalog) registryObjectRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.All() {
		rows = append(rows, baseRow(o))
	}
	return rows
}

func (c *Catalog) organizationRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeOrganization) {
		org, ok := o.(*rim.Organization)
		if !ok {
			continue
		}
		r := baseRow(o)
		if len(org.Addresses) > 0 {
			r["city"] = nullable(org.Addresses[0].City)
			r["state"] = nullable(org.Addresses[0].State)
			r["country"] = nullable(org.Addresses[0].Country)
		} else {
			r["city"], r["state"], r["country"] = nil, nil, nil
		}
		r["parent"] = nullable(org.ParentID)
		rows = append(rows, r)
	}
	return rows
}

func (c *Catalog) serviceRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeService) {
		svc, ok := o.(*rim.Service)
		if !ok {
			continue
		}
		r := baseRow(o)
		r["bindings"] = float64(len(svc.Bindings))
		rows = append(rows, r)
	}
	return rows
}

func (c *Catalog) bindingRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeService) {
		svc, ok := o.(*rim.Service)
		if !ok {
			continue
		}
		for _, b := range svc.Bindings {
			rows = append(rows, sqlq.Row{
				"id":            b.ID,
				"serviceid":     svc.ID,
				"accessuri":     nullable(b.AccessURI),
				"host":          nullable(b.Host()),
				"targetbinding": nullable(b.TargetBindingID),
				"description":   nullable(b.Description.String()),
			})
		}
	}
	return rows
}

func (c *Catalog) associationRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeAssociation) {
		a, ok := o.(*rim.Association)
		if !ok {
			continue
		}
		rows = append(rows, sqlq.Row{
			"id":              a.ID,
			"associationtype": string(a.AssociationType),
			"sourceid":        a.SourceID,
			"targetid":        a.TargetID,
			"owner":           nullable(a.Owner),
		})
	}
	return rows
}

func (c *Catalog) userRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeUser) {
		u, ok := o.(*rim.User)
		if !ok {
			continue
		}
		rows = append(rows, sqlq.Row{
			"id":           u.ID,
			"alias":        u.Alias,
			"firstname":    nullable(u.PersonName.FirstName),
			"lastname":     nullable(u.PersonName.LastName),
			"organization": nullable(u.OrganizationID),
		})
	}
	return rows
}

func (c *Catalog) eventRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeAuditableEvent) {
		e, ok := o.(*rim.AuditableEvent)
		if !ok {
			continue
		}
		rows = append(rows, sqlq.Row{
			"id":        e.ID,
			"eventtype": string(e.EventKind),
			"userid":    nullable(e.UserID),
			"timestamp": e.Timestamp.UTC().Format(time.RFC3339Nano),
		})
	}
	return rows
}

func (c *Catalog) schemeRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeClassificationScheme) {
		s, ok := o.(*rim.ClassificationScheme)
		if !ok {
			continue
		}
		r := baseRow(o)
		r["isinternal"] = s.IsInternal
		r["nodetype"] = s.NodeType
		rows = append(rows, r)
	}
	return rows
}

func (c *Catalog) nodeRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeClassificationNode) {
		n, ok := o.(*rim.ClassificationNode)
		if !ok {
			continue
		}
		r := baseRow(o)
		r["parent"] = n.ParentID
		r["code"] = n.Code
		r["path"] = nullable(n.Path)
		rows = append(rows, r)
	}
	return rows
}

func (c *Catalog) queryRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, o := range c.Store.ByType(rim.TypeAdhocQuery) {
		q, ok := o.(*rim.AdhocQuery)
		if !ok {
			continue
		}
		r := baseRow(o)
		r["querysyntax"] = q.QuerySyntax
		r["query"] = q.Query
		rows = append(rows, r)
	}
	return rows
}

func (c *Catalog) nodeStateRows() []sqlq.Row {
	var rows []sqlq.Row
	for _, ns := range c.Store.NodeState().Rows() {
		rows = append(rows, sqlq.Row{
			"host":       ns.Host,
			"load":       ns.Load,
			"memory":     float64(ns.MemoryB),
			"swapmemory": float64(ns.SwapB),
			"updated":    ns.Updated.UTC().Format(time.RFC3339Nano),
			"failures":   float64(ns.Failures),
			"health":     ns.Health.String(),
		})
	}
	return rows
}
