// Package qm implements the registry's QueryManager interface — the QM
// half of the Registry Service (thesis §1.3.2.4, Table 1.7): object
// retrieval by id, browse/drill-down discovery, the AdhocQuery protocol in
// both SQL-92 and XML Filter Query syntaxes with iterative startIndex /
// maxResults parameters, and stored parameterized queries.
//
// Crucially, qm is where the load-balancing scheme hooks the discovery
// path: GetServiceBindings runs the service's bindings through the
// core.Balancer before returning access URIs, exactly where the modified
// ServiceDAO populates ServiceBindingDAO in Figures 3.5–3.6. The
// QueryManager is open to unauthenticated clients (§2.2.3).
package qm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/filterq"
	"repro/internal/obs"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/sqlq"
	"repro/internal/store"
)

// Query syntaxes accepted by SubmitAdhocQuery.
const (
	SyntaxSQL    = "SQL-92"
	SyntaxFilter = "FilterQuery"
)

// ErrUnknownSyntax is returned for unsupported query syntaxes.
var ErrUnknownSyntax = errors.New("qm: unknown query syntax")

// AdhocQueryRequest is the protocol request (§1.3.2.4: "AdhocQueryRequest
// contains: Standard SQL-92 query ..., XML Filter Query, and Iterative
// query parameters: startIndex, maxResults").
type AdhocQueryRequest struct {
	Syntax     string
	Query      string
	Params     map[string]sqlq.Value
	StartIndex int
	MaxResults int // <= 0 means unbounded
}

// AdhocQueryResponse carries the matched window plus the iterative
// parameters (§1.3.2.4: "objects matched by query, and Iterative query
// parameters: startIndex, totalResultsCount").
type AdhocQueryResponse struct {
	Columns           []string
	Rows              [][]sqlq.Value
	StartIndex        int
	TotalResultsCount int
}

// Manager is the QueryManager implementation.
type Manager struct {
	Store    *store.Store
	Balancer *core.Balancer
	Clock    simclock.Clock
	catalog  *Catalog
}

// New creates a query manager. balancer may be nil (stock behaviour);
// clock nil means real time.
func New(s *store.Store, balancer *core.Balancer, clock simclock.Clock) *Manager {
	if clock == nil {
		clock = simclock.Real{}
	}
	if balancer == nil {
		balancer = &core.Balancer{Table: s.NodeState(), Policy: core.PolicyStock}
	}
	return &Manager{Store: s, Balancer: balancer, Clock: clock, catalog: &Catalog{Store: s}}
}

// Catalog returns the SQL catalog over the registry.
func (m *Manager) Catalog() *Catalog { return m.catalog }

// GetRegistryObject retrieves one object by id.
func (m *Manager) GetRegistryObject(id string) (rim.Object, error) {
	return m.Store.Get(id)
}

// FindObjects returns objects of the given type whose name matches the
// LIKE pattern — the Web UI's search box behaviour (Figs. 3.53–3.56).
func (m *Manager) FindObjects(t rim.ObjectType, namePattern string) []rim.Object {
	if namePattern == "" {
		namePattern = "%"
	}
	return m.Store.FindByName(t, namePattern)
}

// FindAllMyObjects lists everything owned by the given user — the
// FindAllMyObjects search option (Fig. 3.41).
func (m *Manager) FindAllMyObjects(userID string) []rim.Object {
	return m.Store.ByOwner(userID)
}

// GetOrganizationByName resolves an organization by exact name.
func (m *Manager) GetOrganizationByName(name string) (*rim.Organization, error) {
	o, err := m.Store.FindOneByName(rim.TypeOrganization, name)
	if err != nil {
		return nil, err
	}
	org, ok := o.(*rim.Organization)
	if !ok {
		return nil, fmt.Errorf("qm: object named %q is not an organization", name)
	}
	return org, nil
}

// GetServiceByName resolves a service by exact name.
func (m *Manager) GetServiceByName(name string) (*rim.Service, error) {
	o, err := m.Store.FindOneByName(rim.TypeService, name)
	if err != nil {
		return nil, err
	}
	svc, ok := o.(*rim.Service)
	if !ok {
		return nil, fmt.Errorf("qm: object named %q is not a service", name)
	}
	return svc, nil
}

// OfferedServices returns the services an organization offers via
// OffersService associations, sorted by name.
func (m *Manager) OfferedServices(orgID string) []*rim.Service {
	var out []*rim.Service
	for _, a := range m.Store.AssociationsFrom(orgID) {
		if a.AssociationType != rim.AssocOffersService {
			continue
		}
		if o, err := m.Store.Get(a.TargetID); err == nil {
			if svc, ok := o.(*rim.Service); ok {
				out = append(out, svc)
			}
		}
	}
	sortServices(out)
	return out
}

func sortServices(ss []*rim.Service) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j-1].Name.String() > ss[j].Name.String(); j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
}

// GetServiceBindings is the discovery call the thesis modifies: it loads
// the service's discovery view (id, description, access URIs — no object-
// graph clone), runs it through the balancer against the current NodeState
// table, and returns the access URIs in the arranged order together with
// the balancing decision.
//
//repolint:ctxprop-allow context-free compatibility wrapper for callers without a request context
func (m *Manager) GetServiceBindings(serviceID string) ([]string, core.Decision, error) {
	return m.GetServiceBindingsCtx(context.Background(), serviceID)
}

// GetServiceBindingsCtx is GetServiceBindings with request context: when
// ctx carries an obs trace (a sampled HTTP discovery), the view load and
// every balancer step record spans onto it. The untraced case costs one
// context value lookup and nil-receiver calls — nothing allocates.
//
//repolint:hotpath warm discovery chain: view load + balancer arrange
func (m *Manager) GetServiceBindingsCtx(ctx context.Context, serviceID string) ([]string, core.Decision, error) {
	tr := obs.TraceFrom(ctx)
	span := tr.BeginSpan("view")
	view, err := m.Store.ServiceView(serviceID)
	tr.EndSpan(span)
	if err != nil {
		return nil, core.Decision{}, err
	}
	// A deadline that fired while the view loaded (or while the request
	// waited in the admission queue) stops the arrangement mid-flight;
	// ctx.Err is one atomic-free check on the unexpired path.
	if err := ctx.Err(); err != nil {
		return nil, core.Decision{}, err
	}
	return m.arrangeView(view, tr)
}

// GetServiceBindingsByName is GetServiceBindings keyed by service name —
// the AccessRegistry API's access path (§4.6).
//
//repolint:ctxprop-allow context-free compatibility wrapper for callers without a request context
func (m *Manager) GetServiceBindingsByName(name string) ([]string, core.Decision, error) {
	return m.GetServiceBindingsByNameCtx(context.Background(), name)
}

// GetServiceBindingsByNameCtx is GetServiceBindingsByName with request
// context; see GetServiceBindingsCtx.
//
//repolint:hotpath warm discovery chain: name-keyed view load + balancer arrange
func (m *Manager) GetServiceBindingsByNameCtx(ctx context.Context, name string) ([]string, core.Decision, error) {
	tr := obs.TraceFrom(ctx)
	span := tr.BeginSpan("view")
	view, err := m.Store.ServiceViewByName(name)
	tr.EndSpan(span)
	if err != nil {
		return nil, core.Decision{}, err
	}
	// See GetServiceBindingsCtx: honor a mid-flight deadline before the
	// balancer arrange.
	if err := ctx.Err(); err != nil {
		return nil, core.Decision{}, err
	}
	return m.arrangeView(view, tr)
}

func (m *Manager) arrangeView(view store.DiscoveryView, tr *obs.Trace) ([]string, core.Decision, error) {
	tr.SetAttr("service", view.ID)
	uris, dec := m.Balancer.ArrangeViewTraced(view, m.Clock.Now(), tr)
	return uris, dec, nil
}

// SubmitAdhocQuery runs an ad-hoc query in either supported syntax and
// applies the iterative window.
func (m *Manager) SubmitAdhocQuery(req AdhocQueryRequest) (*AdhocQueryResponse, error) {
	var rs *sqlq.ResultSet
	var err error
	switch {
	case strings.EqualFold(req.Syntax, SyntaxSQL), req.Syntax == "":
		rs, err = sqlq.Exec(m.catalog, req.Query, req.Params)
	case strings.EqualFold(req.Syntax, SyntaxFilter):
		rs, err = filterq.Exec(m.catalog, req.Query)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownSyntax, req.Syntax)
	}
	if err != nil {
		return nil, err
	}
	resp := &AdhocQueryResponse{
		Columns:           rs.Columns,
		StartIndex:        req.StartIndex,
		TotalResultsCount: rs.Total,
	}
	rows := rs.Rows
	if req.StartIndex > 0 {
		if req.StartIndex >= len(rows) {
			rows = nil
		} else {
			rows = rows[req.StartIndex:]
		}
	}
	if req.MaxResults > 0 && len(rows) > req.MaxResults {
		rows = rows[:req.MaxResults]
	}
	resp.Rows = rows
	return resp, nil
}

// StoreQuery registers a named parameterized query as registry metadata
// (Table 1.1, "Stored parameterized queries"). It returns the stored
// AdhocQuery object.
func (m *Manager) StoreQuery(name, syntax, query string) (*rim.AdhocQuery, error) {
	q := rim.NewAdhocQuery(name, syntax, query)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := m.Store.Put(q); err != nil {
		return nil, err
	}
	return q, nil
}

// InvokeStoredQuery executes a previously stored query by name with the
// given parameter bindings.
func (m *Manager) InvokeStoredQuery(name string, params map[string]sqlq.Value, startIndex, maxResults int) (*AdhocQueryResponse, error) {
	o, err := m.Store.FindOneByName(rim.TypeAdhocQuery, name)
	if err != nil {
		return nil, err
	}
	q, ok := o.(*rim.AdhocQuery)
	if !ok {
		return nil, fmt.Errorf("qm: stored object %q is not a query", name)
	}
	return m.SubmitAdhocQuery(AdhocQueryRequest{
		Syntax: q.QuerySyntax, Query: q.Query, Params: params,
		StartIndex: startIndex, MaxResults: maxResults,
	})
}

// FindByClassification returns the objects carrying an internal
// classification by the named scheme's node with the given code — the
// drill-down, category-based discovery of Table 1.1 ("Taxonomy browsing",
// "Classification of any metadata object").
func (m *Manager) FindByClassification(schemeName, code string) ([]rim.Object, error) {
	scheme, err := m.Store.FindOneByName(rim.TypeClassificationScheme, schemeName)
	if err != nil {
		return nil, err
	}
	// Resolve the node id for (scheme, code).
	var nodeID string
	for _, o := range m.Store.ByType(rim.TypeClassificationNode) {
		n, ok := o.(*rim.ClassificationNode)
		if !ok {
			continue
		}
		if n.ParentID == scheme.Base().ID && strings.EqualFold(n.Code, code) {
			nodeID = n.ID
			break
		}
	}
	if nodeID == "" {
		return nil, fmt.Errorf("qm: scheme %q has no node with code %q", schemeName, code)
	}
	var out []rim.Object
	for _, o := range m.Store.All() {
		for _, c := range o.Base().Classifications {
			if c.ClassificationNode == nodeID {
				out = append(out, o)
				break
			}
		}
	}
	return out, nil
}

// CollectionTargets returns the access URIs of the published NodeStatus
// service — the deployment list the nodestate collector polls (Fig. 3.7).
// A missing NodeStatus service yields an empty list, not an error: the
// administrator simply has not enabled load balancing yet.
func (m *Manager) CollectionTargets() []string {
	svc, err := m.GetServiceByName("NodeStatus")
	if err != nil {
		return nil
	}
	return svc.AccessURIs()
}

// Now exposes the manager's clock (used by protocol layers for audit
// stamps).
func (m *Manager) Now() time.Time { return m.Clock.Now() }
