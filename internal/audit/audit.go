// Package audit maintains the registry's audit trail: every
// LifeCycleManager action appends AuditableEvent objects recording who did
// what to which objects and when (thesis Fig. 1.18; Table 1.1 "Audit
// trail: Yes"). Events are themselves registry objects, stored in the same
// store and queryable through the same catalogs.
package audit

import (
	"sort"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// Trail records events into a store.
type Trail struct {
	store *store.Store
	clock simclock.Clock
}

// New creates a trail writing to s, timestamped by clock (nil = real).
func New(s *store.Store, clock simclock.Clock) *Trail {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Trail{store: s, clock: clock}
}

// Record appends one event covering the affected object ids and returns
// it. Recording is best-effort: a store failure panics because an
// unauditable registry violates the spec's mandatory-audit requirement.
func (t *Trail) Record(kind rim.EventType, userID string, affected ...string) *rim.AuditableEvent {
	e := rim.NewAuditableEvent(kind, userID, t.clock.Now(), affected...)
	if err := t.store.Put(e); err != nil {
		panic("audit: cannot record event: " + err.Error())
	}
	return e
}

// EventsFor returns the events whose AffectedIDs include objectID, oldest
// first.
func (t *Trail) EventsFor(objectID string) []*rim.AuditableEvent {
	return t.filter(func(e *rim.AuditableEvent) bool {
		for _, id := range e.AffectedIDs {
			if id == objectID {
				return true
			}
		}
		return false
	})
}

// EventsBy returns the events performed by the given user, oldest first.
func (t *Trail) EventsBy(userID string) []*rim.AuditableEvent {
	return t.filter(func(e *rim.AuditableEvent) bool { return e.UserID == userID })
}

// EventsSince returns events at or after the cutoff, oldest first — the
// feed the subscription bus consumes.
func (t *Trail) EventsSince(cutoff time.Time) []*rim.AuditableEvent {
	return t.filter(func(e *rim.AuditableEvent) bool { return !e.Timestamp.Before(cutoff) })
}

func (t *Trail) filter(keep func(*rim.AuditableEvent) bool) []*rim.AuditableEvent {
	var out []*rim.AuditableEvent
	for _, o := range t.store.ByType(rim.TypeAuditableEvent) {
		if e, ok := o.(*rim.AuditableEvent); ok && keep(e) {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Timestamp.Equal(out[j].Timestamp) {
			return out[i].Timestamp.Before(out[j].Timestamp)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
