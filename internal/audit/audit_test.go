package audit

import (
	"testing"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func TestRecordAndQuery(t *testing.T) {
	s := store.New()
	clk := simclock.NewManual(t0)
	trail := New(s, clk)

	e1 := trail.Record(rim.EventCreated, "urn:uuid:gold", "urn:uuid:org")
	clk.Advance(time.Second)
	trail.Record(rim.EventUpdated, "urn:uuid:gold", "urn:uuid:org", "urn:uuid:svc")
	clk.Advance(time.Second)
	trail.Record(rim.EventDeleted, "urn:uuid:admin", "urn:uuid:svc")

	org := trail.EventsFor("urn:uuid:org")
	if len(org) != 2 || org[0].ID != e1.ID || org[0].EventKind != rim.EventCreated {
		t.Fatalf("EventsFor(org) = %+v", org)
	}
	svc := trail.EventsFor("urn:uuid:svc")
	if len(svc) != 2 || svc[1].EventKind != rim.EventDeleted {
		t.Fatalf("EventsFor(svc) = %+v", svc)
	}
	if got := trail.EventsBy("urn:uuid:gold"); len(got) != 2 {
		t.Fatalf("EventsBy = %d", len(got))
	}
	if got := trail.EventsSince(t0.Add(time.Second)); len(got) != 2 {
		t.Fatalf("EventsSince = %d", len(got))
	}
	if got := trail.EventsFor("urn:uuid:ghost"); len(got) != 0 {
		t.Fatalf("ghost events = %d", len(got))
	}
}

func TestEventsArePersistedObjects(t *testing.T) {
	s := store.New()
	trail := New(s, simclock.NewManual(t0))
	e := trail.Record(rim.EventApproved, "urn:uuid:u", "urn:uuid:x")
	got, err := s.Get(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base().ObjectType != rim.TypeAuditableEvent {
		t.Fatalf("stored type = %s", got.Base().ObjectType)
	}
}

func TestOrderingStableAtSameTimestamp(t *testing.T) {
	s := store.New()
	trail := New(s, simclock.NewManual(t0))
	for i := 0; i < 5; i++ {
		trail.Record(rim.EventUpdated, "urn:uuid:u", "urn:uuid:x")
	}
	got := trail.EventsFor("urn:uuid:x")
	if len(got) != 5 {
		t.Fatalf("events = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID > got[i].ID {
			t.Fatal("tie-break ordering not by id")
		}
	}
}
