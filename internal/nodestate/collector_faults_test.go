package nodestate

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/faults"
	"repro/internal/nodestatus"
	"repro/internal/simclock"
	"repro/internal/store"
)

// scriptedInvoker fails for the first `failures` invocations per URI, then
// answers healthily. A negative failures count means fail forever.
type scriptedInvoker struct {
	mu       sync.Mutex
	failures int
	calls    map[string]int
	resp     nodestatus.Response
}

func newScripted(failures int) *scriptedInvoker {
	return &scriptedInvoker{
		failures: failures,
		calls:    make(map[string]int),
		resp:     nodestatus.Response{Host: "scripted", Load: 0.25, MemoryB: 2 << 30, SwapB: 1 << 30},
	}
}

func (s *scriptedInvoker) Invoke(uri string) (nodestatus.Response, error) {
	s.mu.Lock()
	n := s.calls[uri]
	s.calls[uri] = n + 1
	s.mu.Unlock()
	if s.failures < 0 || n < s.failures {
		return nodestatus.Response{}, errors.New("nodestatus: scripted failure")
	}
	return s.resp, nil
}

func (s *scriptedInvoker) count(uri string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[uri]
}

const faultURI = "http://thermo.sdsu.edu:8080/NodeStatus"

func staticURIs(uris ...string) URIProvider {
	return func() []string { return uris }
}

func TestRetriesRecoverTransientFailure(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inv := newScripted(1) // first attempt fails, retry succeeds
	tel := NewTelemetry()
	col := New(table, inv, clk, staticURIs(faultURI),
		WithRetries(1, 0), WithTelemetry(tel))

	col.CollectOnce()
	row, ok := table.Get("thermo.sdsu.edu")
	if !ok || row.Failures != 0 || row.Health != store.HealthHealthy {
		t.Fatalf("row = %+v %v", row, ok)
	}
	stats := col.FaultStats()
	if stats.Errs != 0 || stats.Retries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if tel.Retries.Value() != 1 {
		t.Fatalf("telemetry retries = %d", tel.Retries.Value())
	}
}

func TestExhaustedRetriesDegradeRow(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inv := newScripted(-1)
	col := New(table, inv, clk, staticURIs(faultURI), WithRetries(2, 0))

	col.CollectOnce()
	row, _ := table.Get("thermo.sdsu.edu")
	if row.Failures != 1 || row.Health != store.HealthDegraded {
		t.Fatalf("row = %+v", row)
	}
	stats := col.FaultStats()
	if stats.Errs != 1 || stats.Retries != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if inv.count(faultURI) != 3 { // initial attempt + 2 retries
		t.Fatalf("attempts = %d", inv.count(faultURI))
	}
}

func TestBreakerQuarantinesAndProbes(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inv := newScripted(3) // exactly Threshold failures, then healthy
	tel := NewTelemetry()
	bset := breaker.NewSet(breaker.Config{Threshold: 3, BaseBackoff: 50 * time.Second, Jitter: -1})
	col := New(table, inv, clk, staticURIs(faultURI),
		WithBreakers(bset), WithTelemetry(tel))

	// Three failing sweeps trip the breaker.
	for i := 0; i < 3; i++ {
		col.CollectOnce()
		clk.Advance(25 * time.Second)
	}
	row, _ := table.Get("thermo.sdsu.edu")
	if row.Health != store.HealthQuarantined || row.Failures != 3 {
		t.Fatalf("row after trip = %+v", row)
	}
	if bset.State("thermo.sdsu.edu") != breaker.Open {
		t.Fatalf("breaker state = %v", bset.State("thermo.sdsu.edu"))
	}

	// The next sweep happens inside the backoff window: skipped, not invoked.
	before := inv.count(faultURI)
	col.CollectOnce()
	if inv.count(faultURI) != before {
		t.Fatal("open breaker did not skip invocation")
	}
	if stats := col.FaultStats(); stats.Skipped != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if tel.Skipped.Value() != 1 || tel.BreakerState.Value("thermo.sdsu.edu") != float64(breaker.Open) {
		t.Fatalf("telemetry skipped=%d gauge=%v", tel.Skipped.Value(), tel.BreakerState.Value("thermo.sdsu.edu"))
	}

	// Past the backoff the probe is admitted; the invoker has healed, so
	// the host returns to service.
	clk.Advance(50 * time.Second)
	col.CollectOnce()
	row, _ = table.Get("thermo.sdsu.edu")
	if row.Health != store.HealthHealthy || row.Failures != 0 {
		t.Fatalf("row after probe = %+v", row)
	}
	if bset.State("thermo.sdsu.edu") != breaker.Closed {
		t.Fatalf("breaker not closed after probe: %v", bset.State("thermo.sdsu.edu"))
	}
}

func TestDeadlineCancelsHungInvocation(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	// Every invocation hangs for a minute; the collector gives up at 5 s.
	inj := faults.New(newScripted(0), clk, faults.Plan{HangRate: 1, Hang: time.Minute, Seed: 9})
	col := New(table, inj, clk, staticURIs(faultURI), WithTimeout(5*time.Second))

	done := make(chan struct{})
	go func() { col.CollectOnce(); close(done) }()
	for {
		select {
		case <-done:
			stats := col.FaultStats()
			if stats.Timeouts != 1 || stats.Errs != 1 {
				t.Fatalf("stats = %+v", stats)
			}
			row, _ := table.Get("thermo.sdsu.edu")
			if row.Health != store.HealthDegraded || row.Failures != 1 {
				t.Fatalf("row = %+v", row)
			}
			return
		default:
			clk.Advance(time.Second)
		}
	}
}

func TestCollectorUnderDropFaults(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inj := faults.New(newScripted(0), clk, faults.Plan{DropRate: 0.5, Seed: 11})
	col := New(table, inj, clk, staticURIs(faultURI))

	for i := 0; i < 40; i++ {
		col.CollectOnce()
		clk.Advance(25 * time.Second)
	}
	stats := col.FaultStats()
	if stats.Sweeps != 40 {
		t.Fatalf("sweeps = %d", stats.Sweeps)
	}
	drops := inj.Counts()[faults.KindDrop]
	if drops == 0 || drops == 40 {
		t.Fatalf("drops = %d over 40 sweeps at rate 0.5", drops)
	}
	if stats.Errs != drops {
		t.Fatalf("errs = %d, drops = %d", stats.Errs, drops)
	}
}

func TestCollectorUnderFlapFaults(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	// Down the first 50 s of every 100 s window: two failing sweeps, two
	// healthy sweeps, repeating.
	inj := faults.New(newScripted(0), clk, faults.Plan{FlapPeriod: 100 * time.Second, FlapDuty: 0.5, Seed: 13})
	bset := breaker.NewSet(breaker.Config{Threshold: 2, BaseBackoff: 25 * time.Second, Jitter: -1})
	col := New(table, inj, clk, staticURIs(faultURI), WithBreakers(bset))

	sawQuarantine, sawRecovery := false, false
	for i := 0; i < 16; i++ {
		col.CollectOnce()
		row, _ := table.Get("thermo.sdsu.edu")
		if row.Health == store.HealthQuarantined {
			sawQuarantine = true
		}
		if sawQuarantine && row.Health == store.HealthHealthy {
			sawRecovery = true
		}
		clk.Advance(25 * time.Second)
	}
	if !sawQuarantine || !sawRecovery {
		t.Fatalf("quarantine=%v recovery=%v over flap cycles", sawQuarantine, sawRecovery)
	}
}

func TestCorruptResponsesRejected(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inj := faults.New(newScripted(0), clk, faults.Plan{CorruptRate: 1, Seed: 17})
	col := New(table, inj, clk, staticURIs(faultURI))

	col.CollectOnce()
	row, _ := table.Get("thermo.sdsu.edu")
	if row.Health != store.HealthDegraded || row.Failures != 1 {
		t.Fatalf("corrupt response accepted: %+v", row)
	}
	if stats := col.FaultStats(); stats.Errs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestHealthSnapshotMergesBreakerState(t *testing.T) {
	clk := simclock.NewManual(t0)
	table := store.NewNodeStateTable()
	inv := newScripted(-1)
	bset := breaker.NewSet(breaker.Config{Threshold: 1, BaseBackoff: 50 * time.Second, Jitter: -1})
	col := New(table, inv, clk, staticURIs(faultURI), WithBreakers(bset))

	col.CollectOnce()
	reports := col.HealthSnapshot()
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	rep := reports[0]
	if rep.Host != "thermo.sdsu.edu" || rep.Health != store.HealthQuarantined ||
		rep.Breaker != breaker.Open || rep.Consecutive != 1 || rep.Trips != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.NextProbe.Equal(t0.Add(50 * time.Second)) {
		t.Fatalf("next probe = %v", rep.NextProbe)
	}
}
