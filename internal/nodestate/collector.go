// Package nodestate implements the registry-side collection loop of thesis
// §3.2 — the TimeHits class (Fig. 3.1): a timer that periodically invokes
// the NodeStatus Web Service on every host that deploys it and stores the
// returned CPU load, physical memory and swap memory in the NodeState
// table (Fig. 3.2). The thesis collects every 25 seconds, a period the
// freebXML administrator can reconfigure; DefaultPeriod preserves that
// default and experiments sweep it (EXPERIMENTS.md, H2).
//
// Beyond the thesis, the collector is fault-tolerant: each invocation can
// carry a deadline (WithTimeout), fail over to bounded retries with a
// jittered backoff (WithRetries), and feed a per-host circuit breaker
// (WithBreakers) whose open hosts are skipped in subsequent sweeps and
// marked Quarantined on their NodeState rows so discovery excludes them.
package nodestate

import (
	"context"
	"errors"
	"hash/fnv"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/metrics"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// DefaultPeriod is the thesis's collection interval: 25 seconds, "decided
// upon after observing the frequency of load change on our system" (§3.2).
const DefaultPeriod = 25 * time.Second

// defaultParallelism bounds concurrent NodeStatus invocations per sweep.
const defaultParallelism = 16

// ErrDeadline reports an invocation that exceeded the collector's
// per-invocation timeout.
var ErrDeadline = errors.New("nodestate: invocation deadline exceeded")

// URIProvider supplies the current NodeStatus deployment URIs. The
// registry wires this to "the bindings of the service named NodeStatus",
// so newly published hosts are picked up on the next sweep without
// restarting the collector.
type URIProvider func() []string

// Stats aggregates a collector's fault-tolerance counters.
type Stats struct {
	// Sweeps is the number of completed CollectOnce passes.
	Sweeps int
	// Errs counts invocations that exhausted their retries and failed.
	Errs int
	// Timeouts counts individual invocation attempts that hit the
	// per-invocation deadline.
	Timeouts int
	// Retries counts re-attempts after a failed invocation.
	Retries int
	// Skipped counts sweep slots not invoked because the host's breaker
	// was open.
	Skipped int
}

// Telemetry exports the collector's fault-tolerance counters and per-host
// breaker state gauges (0 closed, 1 open, 2 half-open) to a metrics
// consumer. All fields are optional; nil members are simply not updated.
type Telemetry struct {
	Timeouts    *metrics.Counter
	Retries     *metrics.Counter
	SweepErrors *metrics.Counter
	Skipped     *metrics.Counter
	// BreakerState maps host → breaker state ordinal after each sweep
	// decision for that host.
	BreakerState *metrics.GaugeSet
}

// NewTelemetry allocates every member.
func NewTelemetry() *Telemetry {
	return &Telemetry{
		Timeouts:     &metrics.Counter{},
		Retries:      &metrics.Counter{},
		SweepErrors:  &metrics.Counter{},
		Skipped:      &metrics.Counter{},
		BreakerState: &metrics.GaugeSet{},
	}
}

// Collector periodically polls NodeStatus endpoints into a NodeStateTable.
type Collector struct {
	table   *store.NodeStateTable
	invoker nodestatus.Invoker
	clock   simclock.Clock
	period  time.Duration
	uris    URIProvider

	parallelism  int
	timeout      time.Duration // per-invocation deadline; 0 = none
	maxRetries   int           // re-attempts after the first failure
	retryBackoff time.Duration // base backoff between attempts; 0 = immediate
	breakers     *breaker.Set  // nil = breakers disabled
	telemetry    *Telemetry    // nil = no telemetry
	log          *slog.Logger  // never nil; nop by default
	afterSweep   func()        // nil = no hook; runs after each publish

	mu    sync.Mutex
	stats Stats // guarded by mu
}

// Option configures a Collector.
type Option func(*Collector)

// WithPeriod overrides the collection period.
func WithPeriod(d time.Duration) Option {
	return func(c *Collector) {
		if d > 0 {
			c.period = d
		}
	}
}

// WithParallelism bounds the number of concurrent NodeStatus invocations.
func WithParallelism(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// WithTimeout sets the per-invocation deadline. An attempt still running
// when it expires counts as failed (and is cancelled when the invoker
// supports contexts). Zero or negative disables the deadline.
func WithTimeout(d time.Duration) Option {
	return func(c *Collector) { c.timeout = d }
}

// WithRetries allows n re-attempts after a failed invocation, waiting a
// jittered backoff (base, ±25% by host/attempt hash) before each. A zero
// backoff retries immediately, which is the right choice when the
// collector is driven synchronously off a manual clock (nothing else
// advances time mid-sweep).
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Collector) {
		if n > 0 {
			c.maxRetries = n
		}
		if backoff > 0 {
			c.retryBackoff = backoff
		}
	}
}

// WithBreakers attaches a per-host circuit breaker set: hosts whose
// breaker is open are skipped in sweeps and quarantined on their rows
// until a half-open probe succeeds.
func WithBreakers(b *breaker.Set) Option {
	return func(c *Collector) { c.breakers = b }
}

// WithTelemetry attaches fault-tolerance counters and gauges.
func WithTelemetry(t *Telemetry) Option {
	return func(c *Collector) { c.telemetry = t }
}

// WithAfterSweep attaches a hook that runs at the end of every sweep,
// after the refreshed table is published. The registry uses it to drive
// periodic rollups (balance fairness, SLO burn rates) off the collector's
// cadence so they tick identically on wall and simulated clocks. The hook
// runs on the sweep goroutine; it must be fast and must not call back
// into the collector.
func WithAfterSweep(fn func()) Option {
	return func(c *Collector) { c.afterSweep = fn }
}

// WithLogger attaches a structured logger; sweep failures, breaker
// quarantines, and retry exhaustion are logged through it. Nil keeps the
// default nop logger.
func WithLogger(l *slog.Logger) Option {
	return func(c *Collector) {
		if l != nil {
			c.log = l
		}
	}
}

// New creates a collector writing to table, invoking via invoker, timed by
// clock, polling the URIs returned by uris.
func New(table *store.NodeStateTable, invoker nodestatus.Invoker, clock simclock.Clock, uris URIProvider, opts ...Option) *Collector {
	if clock == nil {
		clock = simclock.Real{}
	}
	c := &Collector{
		table:       table,
		invoker:     invoker,
		clock:       clock,
		period:      DefaultPeriod,
		uris:        uris,
		parallelism: defaultParallelism,
		log:         obs.NopLogger(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Period returns the configured collection period.
func (c *Collector) Period() time.Duration { return c.period }

// Breakers returns the attached breaker set (nil when disabled).
func (c *Collector) Breakers() *breaker.Set { return c.breakers }

// Stats reports completed sweeps and accumulated invocation errors (the
// pre-fault-tolerance signature; FaultStats has the full counters).
func (c *Collector) Stats() (sweeps, errs int) {
	s := c.FaultStats()
	return s.Sweeps, s.Errs
}

// FaultStats returns a copy of all fault-tolerance counters.
func (c *Collector) FaultStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CollectOnce performs one sweep without an external context; cancelling
// an in-flight sweep requires CollectOnceCtx.
//
//repolint:ctxprop-allow context-free compatibility wrapper for callers without a sweep context
func (c *Collector) CollectOnce() {
	c.CollectOnceCtx(context.Background())
}

// CollectOnceCtx performs one sweep at the clock's current time: it invokes
// NodeStatus on every deployment URI (boundedly in parallel) and upserts a
// NodeState row per host; failed invocations record a failure on the row
// instead so stale data is distinguishable from fresh (strict policies can
// then exclude the host). Hosts with an open breaker are skipped and left
// quarantined. ctx bounds every invocation in the sweep: cancelling it
// makes context-aware invokers release their sockets mid-flight.
func (c *Collector) CollectOnceCtx(ctx context.Context) {
	uris := c.uris()
	now := c.clock.Now()

	sem := make(chan struct{}, c.parallelism)
	var wg sync.WaitGroup
	var sweep Stats

	var sweepMu sync.Mutex
	count := func(f func(*Stats)) {
		sweepMu.Lock()
		f(&sweep)
		sweepMu.Unlock()
	}

	for _, uri := range uris {
		wg.Add(1)
		sem <- struct{}{}
		go func(uri string) {
			defer wg.Done()
			defer func() { <-sem }()
			host := rim.HostOfURI(uri)
			if host == "" {
				count(func(s *Stats) { s.Errs++ })
				return
			}
			if c.breakers != nil && !c.breakers.Allow(host, now) {
				c.table.SetHealth(host, store.HealthQuarantined)
				c.log.DebugContext(ctx, "sweep skip: breaker open", "host", host)
				count(func(s *Stats) { s.Skipped++ })
				c.observeBreaker(host)
				if c.telemetry != nil && c.telemetry.Skipped != nil {
					c.telemetry.Skipped.Inc()
				}
				return
			}
			c.collectHost(ctx, uri, host, now, count)
			c.observeBreaker(host)
		}(uri)
	}
	wg.Wait()

	// Republish the RCU snapshot once per sweep so discovery reads the
	// sweep's rows lock-free until the next one.
	c.table.Publish(c.clock.Now())

	sweep.Sweeps = 1
	c.mu.Lock()
	c.stats.Sweeps += sweep.Sweeps
	c.stats.Errs += sweep.Errs
	c.stats.Timeouts += sweep.Timeouts
	c.stats.Retries += sweep.Retries
	c.stats.Skipped += sweep.Skipped
	c.mu.Unlock()
	if c.telemetry != nil && c.telemetry.SweepErrors != nil {
		c.telemetry.SweepErrors.Add(int64(sweep.Errs))
	}
	if c.afterSweep != nil {
		c.afterSweep()
	}
}

// collectHost runs the retry loop for one host within a sweep.
func (c *Collector) collectHost(ctx context.Context, uri, host string, now time.Time, count func(func(*Stats))) {
	var resp nodestatus.Response
	var err error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			count(func(s *Stats) { s.Retries++ })
			if c.telemetry != nil && c.telemetry.Retries != nil {
				c.telemetry.Retries.Inc()
			}
			if c.retryBackoff > 0 {
				c.clock.Sleep(jitteredBackoff(c.retryBackoff, host, attempt))
			}
		}
		resp, err = c.invokeOnce(ctx, uri)
		if err == nil {
			err = validate(resp)
		}
		if err == nil {
			break
		}
		if errors.Is(err, ErrDeadline) {
			count(func(s *Stats) { s.Timeouts++ })
			if c.telemetry != nil && c.telemetry.Timeouts != nil {
				c.telemetry.Timeouts.Inc()
			}
		}
	}
	if err != nil {
		c.table.RecordFailure(host, now)
		c.log.WarnContext(ctx, "collection failed", "host", host, "uri", uri,
			"attempts", c.maxRetries+1, "error", err)
		if c.breakers != nil {
			c.breakers.Failure(host, now)
			if st := c.breakers.State(host); st != breaker.Closed {
				c.table.SetHealth(host, store.HealthQuarantined)
				c.log.WarnContext(ctx, "host quarantined", "host", host, "breaker", st.String())
			}
		}
		count(func(s *Stats) { s.Errs++ })
		return
	}
	if c.breakers != nil {
		c.breakers.Success(host, now)
	}
	c.table.Upsert(store.NodeState{
		Host:       host,
		Load:       resp.Load,
		MemoryB:    resp.MemoryB,
		SwapB:      resp.SwapB,
		NetDelayMs: resp.NetDelayMs,
		Updated:    now,
		Health:     store.HealthHealthy,
	})
}

// invokeOnce performs one invocation attempt under the per-invocation
// deadline. With no deadline it calls the invoker inline; otherwise the
// invocation runs in a goroutine raced against clock.After, and on expiry
// (or when the sweep context is cancelled) the derived context is
// cancelled so a ContextInvoker releases its socket.
func (c *Collector) invokeOnce(ctx context.Context, uri string) (nodestatus.Response, error) {
	if c.timeout <= 0 {
		if ci, ok := c.invoker.(nodestatus.ContextInvoker); ok {
			return ci.InvokeContext(ctx, uri)
		}
		return c.invoker.Invoke(uri)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp nodestatus.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		if ci, ok := c.invoker.(nodestatus.ContextInvoker); ok {
			r.resp, r.err = ci.InvokeContext(ctx, uri)
		} else {
			r.resp, r.err = c.invoker.Invoke(uri)
		}
		ch <- r
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-c.clock.After(c.timeout):
		return nodestatus.Response{}, ErrDeadline
	}
}

// validate rejects responses whose measurements are physically impossible
// (negative load, memory, swap, or delay, or NaN) — the corrupt-response
// fault mode. It deliberately does not compare the reported hostname to
// the URI host: deployments behind load balancers or loopback test servers
// legitimately report a different name.
func validate(r nodestatus.Response) error {
	bad := r.Load < 0 || r.MemoryB < 0 || r.SwapB < 0 || r.NetDelayMs < 0 ||
		math.IsNaN(r.Load) || math.IsNaN(r.NetDelayMs)
	if bad {
		return errors.New("nodestate: corrupt response: measurement out of range")
	}
	return nil
}

// jitteredBackoff spreads base by ±25% using a host/attempt hash, so
// retries across hosts de-synchronize without consuming any rng state
// (keeping fault schedules seed-reproducible).
func jitteredBackoff(base time.Duration, host string, attempt int) time.Duration {
	f := fnv.New64a()
	f.Write([]byte(host))
	f.Write([]byte{byte(attempt)})
	u := float64(f.Sum64()%1000) / 1000 // [0,1)
	return time.Duration(float64(base) * (0.75 + 0.5*u))
}

// observeBreaker exports host's current breaker state to the gauge set.
func (c *Collector) observeBreaker(host string) {
	if c.breakers == nil || c.telemetry == nil || c.telemetry.BreakerState == nil {
		return
	}
	c.telemetry.BreakerState.Set(host, float64(c.breakers.State(host)))
}

// HostHealthReport is one host's merged collection/breaker status for the
// web UI and the /registry/health endpoint.
type HostHealthReport struct {
	Host     string
	Health   store.HostHealth
	Failures int
	Updated  time.Time
	// Breaker fields are zero-valued when breakers are disabled.
	Breaker     breaker.State
	Consecutive int
	Trips       int
	NextProbe   time.Time
}

// HealthSnapshot merges the NodeState table with the breaker set into one
// per-host report, sorted by host.
func (c *Collector) HealthSnapshot() []HostHealthReport {
	byHost := make(map[string]HostHealthReport)
	for _, r := range c.table.Rows() {
		byHost[r.Host] = HostHealthReport{Host: r.Host, Health: r.Health, Failures: r.Failures, Updated: r.Updated}
	}
	if c.breakers != nil {
		for _, b := range c.breakers.Snapshot() {
			rep := byHost[b.Host]
			rep.Host = b.Host
			rep.Breaker = b.State
			rep.Consecutive = b.Consecutive
			rep.Trips = b.Trips
			rep.NextProbe = b.NextProbe
			byHost[b.Host] = rep
		}
	}
	out := make([]HostHealthReport, 0, len(byHost))
	for _, rep := range byHost {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Run collects immediately and then on every period tick until ctx is
// cancelled. It uses the collector's clock, so tests drive it with a
// simclock.Manual.
func (c *Collector) Run(ctx context.Context) {
	for {
		c.CollectOnceCtx(ctx)
		select {
		case <-ctx.Done():
			return
		case <-c.clock.After(c.period):
		}
	}
}
