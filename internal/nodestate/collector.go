// Package nodestate implements the registry-side collection loop of thesis
// §3.2 — the TimeHits class (Fig. 3.1): a timer that periodically invokes
// the NodeStatus Web Service on every host that deploys it and stores the
// returned CPU load, physical memory and swap memory in the NodeState
// table (Fig. 3.2). The thesis collects every 25 seconds, a period the
// freebXML administrator can reconfigure; DefaultPeriod preserves that
// default and experiments sweep it (EXPERIMENTS.md, H2).
package nodestate

import (
	"context"
	"sync"
	"time"

	"repro/internal/nodestatus"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// DefaultPeriod is the thesis's collection interval: 25 seconds, "decided
// upon after observing the frequency of load change on our system" (§3.2).
const DefaultPeriod = 25 * time.Second

// defaultParallelism bounds concurrent NodeStatus invocations per sweep.
const defaultParallelism = 16

// URIProvider supplies the current NodeStatus deployment URIs. The
// registry wires this to "the bindings of the service named NodeStatus",
// so newly published hosts are picked up on the next sweep without
// restarting the collector.
type URIProvider func() []string

// Collector periodically polls NodeStatus endpoints into a NodeStateTable.
type Collector struct {
	table   *store.NodeStateTable
	invoker nodestatus.Invoker
	clock   simclock.Clock
	period  time.Duration
	uris    URIProvider

	parallelism int

	mu     sync.Mutex
	sweeps int // guarded by mu
	errs   int // guarded by mu
}

// Option configures a Collector.
type Option func(*Collector)

// WithPeriod overrides the collection period.
func WithPeriod(d time.Duration) Option {
	return func(c *Collector) {
		if d > 0 {
			c.period = d
		}
	}
}

// WithParallelism bounds the number of concurrent NodeStatus invocations.
func WithParallelism(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

// New creates a collector writing to table, invoking via invoker, timed by
// clock, polling the URIs returned by uris.
func New(table *store.NodeStateTable, invoker nodestatus.Invoker, clock simclock.Clock, uris URIProvider, opts ...Option) *Collector {
	if clock == nil {
		clock = simclock.Real{}
	}
	c := &Collector{
		table:       table,
		invoker:     invoker,
		clock:       clock,
		period:      DefaultPeriod,
		uris:        uris,
		parallelism: defaultParallelism,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Period returns the configured collection period.
func (c *Collector) Period() time.Duration { return c.period }

// Stats reports completed sweeps and accumulated invocation errors.
func (c *Collector) Stats() (sweeps, errs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps, c.errs
}

// CollectOnce performs one sweep at the clock's current time: it invokes
// NodeStatus on every deployment URI (boundedly in parallel) and upserts a
// NodeState row per host; failed invocations record a failure on the row
// instead so stale data is distinguishable from fresh (strict policies can
// then exclude the host).
func (c *Collector) CollectOnce() {
	uris := c.uris()
	now := c.clock.Now()

	sem := make(chan struct{}, c.parallelism)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errCount := 0

	for _, uri := range uris {
		wg.Add(1)
		sem <- struct{}{}
		go func(uri string) {
			defer wg.Done()
			defer func() { <-sem }()
			host := rim.HostOfURI(uri)
			if host == "" {
				errMu.Lock()
				errCount++
				errMu.Unlock()
				return
			}
			resp, err := c.invoker.Invoke(uri)
			if err != nil {
				c.table.RecordFailure(host, now)
				errMu.Lock()
				errCount++
				errMu.Unlock()
				return
			}
			c.table.Upsert(store.NodeState{
				Host:       host,
				Load:       resp.Load,
				MemoryB:    resp.MemoryB,
				SwapB:      resp.SwapB,
				NetDelayMs: resp.NetDelayMs,
				Updated:    now,
			})
		}(uri)
	}
	wg.Wait()

	c.mu.Lock()
	c.sweeps++
	c.errs += errCount
	c.mu.Unlock()
}

// Run collects immediately and then on every period tick until ctx is
// cancelled. It uses the collector's clock, so tests drive it with a
// simclock.Manual.
func (c *Collector) Run(ctx context.Context) {
	for {
		c.CollectOnce()
		select {
		case <-ctx.Done():
			return
		case <-c.clock.After(c.period):
		}
	}
}
