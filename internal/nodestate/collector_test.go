package nodestate

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/nodestatus"
	"repro/internal/simclock"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func simCluster() (*hostsim.Cluster, *simclock.Manual) {
	clk := simclock.NewManual(t0)
	c := hostsim.NewCluster()
	c.Add(hostsim.NewHost(hostsim.Config{Name: "thermo.sdsu.edu", Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 1 << 30}, t0))
	c.Add(hostsim.NewHost(hostsim.Config{Name: "exergy.sdsu.edu", Cores: 2, TotalMemB: 8 << 30, TotalSwapB: 1 << 30}, t0))
	return c, clk
}

func urisOf(c *hostsim.Cluster) URIProvider {
	return func() []string {
		var out []string
		for _, n := range c.Names() {
			out = append(out, "http://"+n+":8080/NodeStatus/NodeStatusService")
		}
		return out
	}
}

func TestCollectOncePopulatesTable(t *testing.T) {
	cluster, clk := simCluster()
	table := store.NewNodeStateTable()
	col := New(table, nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk, urisOf(cluster))

	col.CollectOnce()
	if table.Len() != 2 {
		t.Fatalf("rows = %d", table.Len())
	}
	row, ok := table.Get("thermo.sdsu.edu")
	if !ok || row.MemoryB != 4<<30 || !row.Updated.Equal(t0) || row.Failures != 0 {
		t.Fatalf("row = %+v %v", row, ok)
	}
	if sweeps, errs := col.Stats(); sweeps != 1 || errs != 0 {
		t.Fatalf("stats = %d, %d", sweeps, errs)
	}
}

func TestCollectOnceRecordsFailures(t *testing.T) {
	cluster, clk := simCluster()
	cluster.Host("exergy.sdsu.edu").SetDown(true)
	table := store.NewNodeStateTable()
	col := New(table, nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk, urisOf(cluster))

	col.CollectOnce()
	row, ok := table.Get("exergy.sdsu.edu")
	if !ok || row.Failures != 1 {
		t.Fatalf("failure row = %+v %v", row, ok)
	}
	if _, errs := col.Stats(); errs != 1 {
		t.Fatalf("errs = %d", errs)
	}
	// Recovery resets the failure count via Upsert.
	cluster.Host("exergy.sdsu.edu").SetDown(false)
	col.CollectOnce()
	row, _ = table.Get("exergy.sdsu.edu")
	if row.Failures != 0 {
		t.Fatalf("failures after recovery = %d", row.Failures)
	}
}

func TestCollectOnceSkipsGarbageURI(t *testing.T) {
	cluster, clk := simCluster()
	table := store.NewNodeStateTable()
	col := New(table, nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
		func() []string { return []string{"::notauri::"} })
	col.CollectOnce()
	if table.Len() != 0 {
		t.Fatal("garbage uri produced a row")
	}
	if _, errs := col.Stats(); errs != 1 {
		t.Fatalf("errs = %d", errs)
	}
}

func TestRunPollsOnPeriod(t *testing.T) {
	cluster, clk := simCluster()
	table := store.NewNodeStateTable()
	col := New(table, nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk, urisOf(cluster),
		WithPeriod(25*time.Second))
	if col.Period() != 25*time.Second {
		t.Fatalf("period = %v", col.Period())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { col.Run(ctx); close(done) }()

	waitSweeps := func(n int) {
		for i := 0; i < 5000; i++ {
			if s, _ := col.Stats(); s >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		s, _ := col.Stats()
		t.Fatalf("sweeps stuck at %d, want %d", s, n)
	}
	waitSweeps(1) // immediate first sweep
	// Wait until the collector parks on the clock before advancing.
	for i := 0; i < 5000 && clk.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(25 * time.Second)
	waitSweeps(2)
	row, _ := table.Get("thermo.sdsu.edu")
	if !row.Updated.Equal(t0.Add(25 * time.Second)) {
		t.Fatalf("row not refreshed: %v", row.Updated)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestCollectorOverHTTP(t *testing.T) {
	// End-to-end: real NodeStatus HTTP servers, HTTP invoker.
	cluster, clk := simCluster()
	var uris []string
	for _, h := range cluster.Hosts() {
		srv := httptest.NewServer(nodestatus.NewHandler(h, clk))
		defer srv.Close()
		uris = append(uris, srv.URL+"/NodeStatus")
	}
	table := store.NewNodeStateTable()
	col := New(table, nodestatus.HTTPInvoker{}, clk, func() []string { return uris },
		WithParallelism(2))
	col.CollectOnce()
	// Both httptest servers bind 127.0.0.1, and NodeState is keyed by
	// hostname exactly as in Fig. 3.2, so the sweeps collapse to one row.
	if table.Len() != 1 {
		t.Fatalf("rows over http = %d", table.Len())
	}
	row, ok := table.Get("127.0.0.1")
	if !ok || row.MemoryB == 0 || row.Failures != 0 {
		t.Fatalf("row = %+v %v", row, ok)
	}
}

func TestDefaultPeriodMatchesThesis(t *testing.T) {
	if DefaultPeriod != 25*time.Second {
		t.Fatalf("DefaultPeriod = %v, thesis says 25s", DefaultPeriod)
	}
}
