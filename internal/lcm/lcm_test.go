package lcm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/events"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/xacml"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func newManager() (*Manager, *store.Store, *audit.Trail, *events.Bus) {
	s := store.New()
	trail := audit.New(s, simclock.NewManual(t0))
	bus := events.NewBus()
	m := New(s, nil, trail, bus)
	return m, s, trail, bus
}

func user(id string) Context {
	return Context{UserID: id, Roles: []string{xacml.RoleRegisteredUser}}
}

func admin() Context {
	return Context{UserID: "urn:uuid:admin", Roles: []string{xacml.RoleAdministrator}}
}

func TestSubmitSetsOwnerAndAudits(t *testing.T) {
	m, s, trail, _ := newManager()
	ctx := user("urn:uuid:gold")
	org := rim.NewOrganization("SDSU")
	if err := m.SubmitObjects(ctx, org); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(org.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base().Owner != "urn:uuid:gold" || got.Base().Status != rim.StatusSubmitted {
		t.Fatalf("stored = %+v", got.Base())
	}
	evs := trail.EventsFor(org.ID)
	if len(evs) != 1 || evs[0].EventKind != rim.EventCreated {
		t.Fatalf("audit = %+v", evs)
	}
}

func TestSubmitRejectsGuestAndInvalidAndDuplicate(t *testing.T) {
	m, _, _, _ := newManager()
	org := rim.NewOrganization("SDSU")
	if err := m.SubmitObjects(Guest, org); !errors.Is(err, ErrDenied) {
		t.Fatalf("guest submit: %v", err)
	}
	bad := rim.NewOrganization("")
	if err := m.SubmitObjects(user("urn:uuid:g"), bad); err == nil {
		t.Fatal("invalid object submitted")
	}
	ctx := user("urn:uuid:g")
	if err := m.SubmitObjects(ctx, org); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitObjects(ctx, org); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestUpdatePreservesOwnershipAndAuthorizes(t *testing.T) {
	m, s, _, _ := newManager()
	owner := user("urn:uuid:gold")
	other := user("urn:uuid:evil")
	svc := rim.NewService("Adder", "adds")
	if err := m.SubmitObjects(owner, svc); err != nil {
		t.Fatal(err)
	}
	// Non-owner cannot update.
	svc2 := svc.Clone()
	svc2.Description = rim.NewIString("hacked")
	if err := m.UpdateObjects(other, svc2); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign update: %v", err)
	}
	// Owner can; owner field survives even if the caller blanked it.
	svc3 := svc.Clone()
	svc3.Owner = ""
	svc3.Description = rim.NewIString("edited")
	if err := m.UpdateObjects(owner, svc3); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(svc.ID)
	if got.Base().Owner != "urn:uuid:gold" || got.Base().Description.String() != "edited" {
		t.Fatalf("after update: %+v", got.Base())
	}
	// Updating a missing object fails.
	ghost := rim.NewService("Ghost", "")
	if err := m.UpdateObjects(owner, ghost); err == nil {
		t.Fatal("update of missing object accepted")
	}
}

func TestVersioningBumpsOnUpdate(t *testing.T) {
	m, s, _, _ := newManager()
	m.Versioning = true
	ctx := user("urn:uuid:gold")
	svc := rim.NewService("Adder", "v1")
	if err := m.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		up := svc.Clone()
		up.Description = rim.NewIString("rev")
		if err := m.UpdateObjects(ctx, up); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Get(svc.ID)
	if got.Base().Version.VersionName != "1.4" {
		t.Fatalf("version = %q", got.Base().Version.VersionName)
	}
}

func TestBumpVersion(t *testing.T) {
	cases := map[string]string{"1.1": "1.2", "2.9": "2.10", "": "1.1", "weird": "1.1", "3.x": "1.1"}
	for in, want := range cases {
		if got := bumpVersion(in); got != want {
			t.Errorf("bumpVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLifeCycleTransitions(t *testing.T) {
	m, s, _, _ := newManager()
	ctx := user("urn:uuid:gold")
	svc := rim.NewService("Adder", "")
	if err := m.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	// Submitted -> Deprecated is allowed (skip approve), but
	// Undeprecate requires Deprecated.
	if err := m.UndeprecateObjects(ctx, svc.ID); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("undeprecate from submitted: %v", err)
	}
	if err := m.ApproveObjects(ctx, svc.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(svc.ID); got.Base().Status != rim.StatusApproved {
		t.Fatal("not approved")
	}
	if err := m.DeprecateObjects(ctx, svc.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(svc.ID); got.Base().Status != rim.StatusDeprecated {
		t.Fatal("not deprecated")
	}
	// Deprecated -> Deprecated is invalid.
	if err := m.DeprecateObjects(ctx, svc.ID); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("double deprecate: %v", err)
	}
	if err := m.UndeprecateObjects(ctx, svc.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(svc.ID); got.Base().Status != rim.StatusApproved {
		t.Fatal("not undeprecated")
	}
}

func TestRemoveCascadesOrganizationServices(t *testing.T) {
	m, s, _, _ := newManager()
	ctx := user("urn:uuid:gold")
	org := rim.NewOrganization("SDSU")
	svc := rim.NewService("NodeStatus", "")
	assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	if err := m.SubmitObjects(ctx, org, svc, assoc); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveObjects(ctx, org.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{org.ID, svc.ID, assoc.ID} {
		if s.Has(id) {
			t.Fatalf("object %s survived cascade", id)
		}
	}
}

func TestRemoveServiceKeepsOrganization(t *testing.T) {
	m, s, _, _ := newManager()
	ctx := user("urn:uuid:gold")
	org := rim.NewOrganization("SDSU")
	svc := rim.NewService("ServiceAdder", "")
	assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	if err := m.SubmitObjects(ctx, org, svc, assoc); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveObjects(ctx, svc.ID); err != nil {
		t.Fatal(err)
	}
	if s.Has(svc.ID) || s.Has(assoc.ID) {
		t.Fatal("service or dangling association survived")
	}
	if !s.Has(org.ID) {
		t.Fatal("organization removed by service delete")
	}
}

func TestRemoveDeniedForNonOwner(t *testing.T) {
	m, s, _, _ := newManager()
	if err := m.SubmitObjects(user("urn:uuid:gold"), rim.NewOrganization("SDSU")); err != nil {
		t.Fatal(err)
	}
	orgs := s.ByType(rim.TypeOrganization)
	if err := m.RemoveObjects(user("urn:uuid:evil"), orgs[0].Base().ID); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign remove: %v", err)
	}
	// Admin can remove anything.
	if err := m.RemoveObjects(admin(), orgs[0].Base().ID); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeAuthorizationCoversCascadedObjects(t *testing.T) {
	// gold owns the org, silver owns the service it offers: gold cannot
	// delete the org because the cascade would delete silver's service.
	m, _, _, _ := newManager()
	gold, silver := user("urn:uuid:gold"), user("urn:uuid:silver")
	org := rim.NewOrganization("SDSU")
	if err := m.SubmitObjects(gold, org); err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("Shared", "")
	if err := m.SubmitObjects(silver, svc); err != nil {
		t.Fatal(err)
	}
	assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	if err := m.SubmitObjects(gold, assoc); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveObjects(gold, org.ID); !errors.Is(err, ErrDenied) {
		t.Fatalf("cascade crossed ownership: %v", err)
	}
}

func TestSlots(t *testing.T) {
	m, s, _, _ := newManager()
	ctx := user("urn:uuid:gold")
	svc := rim.NewService("Adder", "")
	if err := m.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSlots(ctx, svc.ID, rim.Slot{Name: "copyright", Values: []string{"2011"}}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(svc.ID)
	if v, ok := got.Base().SlotValue("copyright"); !ok || v != "2011" {
		t.Fatalf("slot = %q, %v", v, ok)
	}
	if err := m.AddSlots(ctx, svc.ID, rim.Slot{}); err == nil {
		t.Fatal("unnamed slot accepted")
	}
	if err := m.RemoveSlots(ctx, svc.ID, "copyright"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(svc.ID)
	if _, ok := got.Base().SlotValue("copyright"); ok {
		t.Fatal("slot not removed")
	}
	if err := m.AddSlots(ctx, "urn:uuid:ghost", rim.Slot{Name: "x"}); err == nil {
		t.Fatal("slots on missing object accepted")
	}
}

func TestRelocate(t *testing.T) {
	m, s, _, _ := newManager()
	ctx := user("urn:uuid:gold")
	svc := rim.NewService("Adder", "")
	if err := m.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	if err := m.RelocateObjects(ctx, "http://other-registry.example/omar", svc.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(svc.ID)
	if got.Base().Home != "http://other-registry.example/omar" {
		t.Fatalf("home = %q", got.Base().Home)
	}
}

func TestBusNotifications(t *testing.T) {
	m, _, _, bus := newManager()
	ch := make(events.ChanDeliverer, 10)
	bus.Subscribe("urn:uuid:watcher", events.Selector{ObjectType: rim.TypeService}, ch)
	ctx := user("urn:uuid:gold")
	svc := rim.NewService("Watched", "")
	if err := m.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.EventKind != rim.EventCreated {
			t.Fatalf("notification = %+v", n)
		}
	default:
		t.Fatal("no notification on submit")
	}
}
