// Package lcm implements the registry's LifeCycleManager interface — the
// LM half of the Registry Service (thesis §1.3.2.4, Table 1.6, Fig. 1.19):
// submitObjects, updateObjects, approveObjects, deprecateObjects,
// undeprecateObjects, removeObjects, addSlots and removeSlots, plus the
// relocateObjects protocol of ebRS. Every operation is access-controlled
// through the XACML policy, appended to the audit trail, and published to
// the event bus; updates are automatically versioned.
//
// Cascade semantics follow the thesis's observed behaviour: deleting an
// Organization deletes the Services it offers ("Once an organization is
// deleted, all the services that are associated with it are also deleted
// from the registry", §3.4.4.2), and deleting any object removes the
// associations that dangle from it.
package lcm

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/events"
	"repro/internal/rim"
	"repro/internal/store"
	"repro/internal/xacml"
)

// Errors surfaced to protocol layers.
var (
	ErrDenied       = errors.New("lcm: access denied")
	ErrInvalidState = errors.New("lcm: invalid life-cycle transition")
)

// Context identifies the authenticated requestor.
type Context struct {
	UserID string
	Roles  []string
}

// Guest is the anonymous context (can never write).
var Guest = Context{Roles: []string{xacml.RoleGuest}}

// Manager is the LifeCycleManager implementation.
type Manager struct {
	Store  *store.Store
	Policy *xacml.Policy
	Trail  *audit.Trail
	Bus    *events.Bus
	// Versioning enables automatic version bumps on update. The thesis
	// runs with "Versioning off" for its experiments (§3.4.4.1) but the
	// capability is part of the registry (Table 1.1).
	Versioning bool
	// OnWrite, when non-nil, is called after every successful mutation
	// with the ids of the objects written or removed. The registry wires
	// it to the parsed-constraint cache's invalidation so a description
	// edit or removal drops the service's cached parse.
	OnWrite func(ids ...string)
	// Durability, when non-nil, write-ahead-logs every mutation before it
	// is acknowledged (see the Durability interface). A nil value keeps
	// the manager purely in-memory with zero overhead.
	Durability Durability
	// Log, when non-nil, receives a structured debug record per
	// successful mutation (kind, actor, object count).
	Log *slog.Logger
}

// New wires a manager over the given store with default policy; trail and
// bus may be nil (then auditing/notification are skipped).
func New(s *store.Store, policy *xacml.Policy, trail *audit.Trail, bus *events.Bus) *Manager {
	if policy == nil {
		policy = xacml.DefaultPolicy()
	}
	return &Manager{Store: s, Policy: policy, Trail: trail, Bus: bus}
}

func (m *Manager) authorize(ctx Context, action xacml.Action, o rim.Object) error {
	req := xacml.Request{
		SubjectID:     ctx.UserID,
		SubjectRoles:  ctx.Roles,
		Action:        action,
		ResourceType:  o.Base().ObjectType.Short(),
		ResourceOwner: o.Base().Owner,
	}
	if err := m.Policy.Authorize(req); err != nil {
		return fmt.Errorf("%w: %v", ErrDenied, err)
	}
	return nil
}

// record finishes one acknowledged mutation: audit, write-ahead log,
// cache invalidation, event publication. A durability failure is returned
// so the operation is not acknowledged to the client.
func (m *Manager) record(kind rim.EventType, ctx Context, objs ...rim.Object) error {
	ids := make([]string, len(objs))
	for i, o := range objs {
		ids[i] = o.Base().ID
	}
	var ev *rim.AuditableEvent
	if m.Trail != nil {
		ev = m.Trail.Record(kind, ctx.UserID, ids...)
	}
	if m.Durability != nil {
		mut := Mutation{Op: string(kind)}
		if kind == rim.EventDeleted {
			mut.Deletes = ids
		} else {
			mut.Puts = append(mut.Puts, objs...)
		}
		// The audit event is itself a stored object; log it with the
		// mutation so the trail survives recovery too.
		if ev != nil {
			mut.Puts = append(mut.Puts, ev)
		}
		if err := m.commit(mut); err != nil {
			return err
		}
	}
	if m.OnWrite != nil {
		m.OnWrite(ids...)
	}
	if m.Bus != nil {
		m.Bus.Publish(kind, objs...)
	}
	if m.Log != nil {
		m.Log.Debug("lifecycle event",
			"event", string(kind), "user", ctx.UserID, "objects", len(objs))
	}
	return nil
}

// validator is satisfied by every concrete rim class.
type validator interface{ Validate() error }

// SubmitObjects stores new objects, stamping the submitter as owner. All
// objects are validated first; submission is all-or-nothing against
// validation and authorization, mirroring a transactional
// SubmitObjectsRequest.
func (m *Manager) SubmitObjects(ctx Context, objs ...rim.Object) error {
	return m.submitObjects(ctx, objs...)
}

// submitObjects is the shared implementation behind SubmitObjects and
// SubmitObjectsCtx.
func (m *Manager) submitObjects(ctx Context, objs ...rim.Object) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	for _, o := range objs {
		b := o.Base()
		if b.Owner == "" {
			b.Owner = ctx.UserID
		}
		if b.Status == "" {
			b.Status = rim.StatusSubmitted
		}
		if v, ok := o.(validator); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("lcm: submit: %w", err)
			}
		}
		if err := m.authorize(ctx, xacml.ActionSubmit, o); err != nil {
			return err
		}
		if m.Store.Has(b.ID) {
			return fmt.Errorf("lcm: submit: %w", store.ErrExists)
		}
	}
	for _, o := range objs {
		if err := m.Store.Insert(o); err != nil {
			return fmt.Errorf("lcm: submit: %w", err)
		}
	}
	return m.record(rim.EventCreated, ctx, objs...)
}

// UpdateObjects replaces previously submitted objects. The stored owner
// and status are preserved; with Versioning on, the version name's minor
// component is incremented and a Versioned event recorded.
func (m *Manager) UpdateObjects(ctx Context, objs ...rim.Object) error {
	return m.updateObjects(ctx, objs...)
}

// updateObjects is the shared implementation behind UpdateObjects and
// UpdateObjectsCtx.
func (m *Manager) updateObjects(ctx Context, objs ...rim.Object) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	prepared := make([]rim.Object, 0, len(objs))
	for _, o := range objs {
		b := o.Base()
		existing, err := m.Store.Get(b.ID)
		if err != nil {
			return fmt.Errorf("lcm: update: %w", err)
		}
		if err := m.authorize(ctx, xacml.ActionUpdate, existing); err != nil {
			return err
		}
		// Preserve server-controlled metadata.
		b.Owner = existing.Base().Owner
		b.Status = existing.Base().Status
		b.Version = existing.Base().Version
		if m.Versioning {
			b.Version.VersionName = bumpVersion(b.Version.VersionName)
		}
		if v, ok := o.(validator); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("lcm: update: %w", err)
			}
		}
		prepared = append(prepared, o)
	}
	for _, o := range prepared {
		if err := m.Store.Put(o); err != nil {
			return fmt.Errorf("lcm: update: %w", err)
		}
	}
	if err := m.record(rim.EventUpdated, ctx, prepared...); err != nil {
		return err
	}
	if m.Versioning {
		return m.record(rim.EventVersioned, ctx, prepared...)
	}
	return nil
}

// bumpVersion increments the minor component of "major.minor"; unparseable
// versions restart at "1.1".
func bumpVersion(v string) string {
	parts := strings.Split(v, ".")
	if len(parts) == 2 {
		if minor, err := strconv.Atoi(parts[1]); err == nil {
			return parts[0] + "." + strconv.Itoa(minor+1)
		}
	}
	return "1.1"
}

// setStatus drives one life-cycle transition for a batch of ids.
func (m *Manager) setStatus(ctx Context, action xacml.Action, kind rim.EventType, want rim.Status, allowedFrom []rim.Status, ids ...string) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	var changed []rim.Object
	for _, id := range ids {
		o, err := m.Store.Get(id)
		if err != nil {
			return fmt.Errorf("lcm: %s: %w", kind, err)
		}
		if err := m.authorize(ctx, action, o); err != nil {
			return err
		}
		from := o.Base().Status
		ok := false
		for _, s := range allowedFrom {
			if from == s {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: %s -> %s for %s", ErrInvalidState, from, want, id)
		}
		o.Base().Status = want
		changed = append(changed, o)
	}
	for _, o := range changed {
		if err := m.Store.Put(o); err != nil {
			return fmt.Errorf("lcm: %s: %w", kind, err)
		}
	}
	return m.record(kind, ctx, changed...)
}

// ApproveObjects moves Submitted (or re-approves Deprecated via
// undeprecate) objects to Approved.
func (m *Manager) ApproveObjects(ctx Context, ids ...string) error {
	return m.setStatus(ctx, xacml.ActionApprove, rim.EventApproved, rim.StatusApproved,
		[]rim.Status{rim.StatusSubmitted, rim.StatusApproved}, ids...)
}

// DeprecateObjects moves Approved objects to Deprecated, preventing new
// references while keeping existing ones resolvable (Fig. 1.19).
func (m *Manager) DeprecateObjects(ctx Context, ids ...string) error {
	return m.setStatus(ctx, xacml.ActionDeprecate, rim.EventDeprecated, rim.StatusDeprecated,
		[]rim.Status{rim.StatusApproved, rim.StatusSubmitted}, ids...)
}

// UndeprecateObjects reverses a deprecation.
func (m *Manager) UndeprecateObjects(ctx Context, ids ...string) error {
	return m.setStatus(ctx, xacml.ActionDeprecate, rim.EventUndeprecated, rim.StatusApproved,
		[]rim.Status{rim.StatusDeprecated}, ids...)
}

// RemoveObjects deletes objects and cascades: an Organization's offered
// Services are deleted with it, and associations touching any removed
// object are removed too.
func (m *Manager) RemoveObjects(ctx Context, ids ...string) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	// Expand the target set by cascades first so authorization covers
	// every object actually removed.
	targets := make(map[string]rim.Object)
	var order []string
	add := func(id string) error {
		if _, seen := targets[id]; seen {
			return nil
		}
		o, err := m.Store.Get(id)
		if err != nil {
			return err
		}
		targets[id] = o
		order = append(order, id)
		return nil
	}
	for _, id := range ids {
		if err := add(id); err != nil {
			return fmt.Errorf("lcm: remove: %w", err)
		}
	}
	// Cascade Organization -> offered Services.
	for i := 0; i < len(order); i++ {
		o := targets[order[i]]
		if o.Base().ObjectType == rim.TypeOrganization {
			for _, a := range m.Store.AssociationsFrom(o.Base().ID) {
				if a.AssociationType != rim.AssocOffersService {
					continue
				}
				if err := add(a.TargetID); err != nil && !errors.Is(err, store.ErrNotFound) {
					return fmt.Errorf("lcm: remove cascade: %w", err)
				}
			}
		}
	}
	// Cascade: associations dangling from any removed object.
	for i := 0; i < len(order); i++ {
		id := order[i]
		for _, a := range append(m.Store.AssociationsFrom(id), m.Store.AssociationsTo(id)...) {
			if err := add(a.ID); err != nil && !errors.Is(err, store.ErrNotFound) {
				return fmt.Errorf("lcm: remove cascade: %w", err)
			}
		}
	}
	// Authorize everything before deleting anything.
	for _, id := range order {
		if err := m.authorize(ctx, xacml.ActionRemove, targets[id]); err != nil {
			return err
		}
	}
	removed := make([]rim.Object, 0, len(order))
	for _, id := range order {
		if err := m.Store.Delete(id); err != nil && !errors.Is(err, store.ErrNotFound) {
			return fmt.Errorf("lcm: remove: %w", err)
		}
		removed = append(removed, targets[id])
	}
	return m.record(rim.EventDeleted, ctx, removed...)
}

// AddSlots adds (or replaces) slots on one object.
func (m *Manager) AddSlots(ctx Context, id string, slots ...rim.Slot) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	o, err := m.Store.Get(id)
	if err != nil {
		return fmt.Errorf("lcm: addSlots: %w", err)
	}
	if err := m.authorize(ctx, xacml.ActionUpdate, o); err != nil {
		return err
	}
	for _, s := range slots {
		if s.Name == "" {
			return fmt.Errorf("lcm: addSlots: slot without name")
		}
		o.Base().SetSlot(s.Name, s.Values...)
	}
	if err := m.Store.Put(o); err != nil {
		return fmt.Errorf("lcm: addSlots: %w", err)
	}
	return m.record(rim.EventUpdated, ctx, o)
}

// RemoveSlots deletes named slots from one object.
func (m *Manager) RemoveSlots(ctx Context, id string, names ...string) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	o, err := m.Store.Get(id)
	if err != nil {
		return fmt.Errorf("lcm: removeSlots: %w", err)
	}
	if err := m.authorize(ctx, xacml.ActionUpdate, o); err != nil {
		return err
	}
	for _, n := range names {
		o.Base().RemoveSlot(n)
	}
	if err := m.Store.Put(o); err != nil {
		return fmt.Errorf("lcm: removeSlots: %w", err)
	}
	return m.record(rim.EventUpdated, ctx, o)
}

// RelocateObjects retargets the Home registry of the given objects — the
// RelocateObjectsRequestProtocol (§2.2.3).
func (m *Manager) RelocateObjects(ctx Context, homeURL string, ids ...string) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	var moved []rim.Object
	for _, id := range ids {
		o, err := m.Store.Get(id)
		if err != nil {
			return fmt.Errorf("lcm: relocate: %w", err)
		}
		if err := m.authorize(ctx, xacml.ActionRelocate, o); err != nil {
			return err
		}
		o.Base().Home = homeURL
		moved = append(moved, o)
	}
	for _, o := range moved {
		if err := m.Store.Put(o); err != nil {
			return fmt.Errorf("lcm: relocate: %w", err)
		}
	}
	return m.record(rim.EventRelocated, ctx, moved...)
}
