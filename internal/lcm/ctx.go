package lcm

import (
	"context"
	"fmt"

	"repro/internal/rim"
)

// guardCtx rejects a write whose request budget is already spent — a
// deadline that fired while the request sat in the admission queue must
// not start a mutation the client has given up on. Writes are
// all-or-nothing transactions, so the check runs once up front; an
// in-progress transaction is never torn down halfway.
func guardCtx(rctx context.Context, op string) error {
	if err := rctx.Err(); err != nil {
		return fmt.Errorf("lcm: %s: request context done before write: %w", op, err)
	}
	return nil
}

// SubmitObjectsCtx is SubmitObjects guarded by the request context: the
// SOAP surface threads its per-class deadline budget through here so an
// expired budget is refused before any state changes.
func (m *Manager) SubmitObjectsCtx(rctx context.Context, ctx Context, objs ...rim.Object) error {
	if err := guardCtx(rctx, "submit"); err != nil {
		return err
	}
	return m.submitObjects(ctx, objs...)
}

// UpdateObjectsCtx is UpdateObjects guarded by the request context; see
// SubmitObjectsCtx.
func (m *Manager) UpdateObjectsCtx(rctx context.Context, ctx Context, objs ...rim.Object) error {
	if err := guardCtx(rctx, "update"); err != nil {
		return err
	}
	return m.updateObjects(ctx, objs...)
}
