package lcm

import (
	"fmt"

	"repro/internal/rim"
)

// Mutation is one logical, acknowledged LCM write: the unit appended to
// the write-ahead log. Puts carry the full post-state of every object the
// operation wrote (including the audit trail's AuditableEvent), Deletes
// the ids it removed, and the Content fields a repository-item body put
// or delete. Carrying post-state rather than the request makes replay a
// trivial, idempotent sequence of store operations — no policy, audit, or
// versioning logic runs again during recovery.
type Mutation struct {
	// Op names the originating operation (the rim event type, or
	// "PutDirect"/"PutContent"/"DeleteContent"); diagnostic only.
	Op string
	// Puts are full post-state objects to store on replay.
	Puts []rim.Object
	// Deletes are object ids to remove on replay (missing ids are
	// ignored: replay after a covering checkpoint is idempotent).
	Deletes []string
	// ContentPutID/Content carry a repository-item body written by the
	// operation; ContentDeleteID one removed by it.
	ContentPutID    string
	Content         []byte
	ContentDeleteID string
}

// Durability is the write-ahead hook the registry wires to internal/wal.
// Every mutating Manager method brackets its work:
//
//	BeginWrite -> store mutations -> Commit(mutation) -> EndWrite
//
// BeginWrite serializes all registry writes behind one lock so the WAL's
// record order equals the store's apply order, and fails with the
// implementation's typed read-only error once durability has degraded.
// Commit must persist the mutation before returning: when it returns nil
// the write is on disk (to the configured fsync policy) and may be
// acknowledged to the client.
type Durability interface {
	BeginWrite() error
	Commit(Mutation) error
	EndWrite()
}

// beginWrite opens the durability bracket and returns the matching close
// function. With no Durability configured the bracket is free.
func (m *Manager) beginWrite() (func(), error) {
	if m.Durability == nil {
		return func() {}, nil
	}
	if err := m.Durability.BeginWrite(); err != nil {
		return nil, fmt.Errorf("lcm: %w", err)
	}
	return m.Durability.EndWrite, nil
}

// commit logs one mutation inside an open bracket; a logging failure is a
// refusal to acknowledge the write.
func (m *Manager) commit(mut Mutation) error {
	if m.Durability == nil {
		return nil
	}
	if err := m.Durability.Commit(mut); err != nil {
		return fmt.Errorf("lcm: %s not durable: %w", mut.Op, err)
	}
	return nil
}

// PutDirect durably stores objects without policy evaluation, auditing,
// or events — the path for server-managed objects (self-registered User
// records, bootstrap fixtures) that previously went straight to the store
// and so were invisible to the write-ahead log.
func (m *Manager) PutDirect(objs ...rim.Object) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	for _, o := range objs {
		if err := m.Store.Put(o); err != nil {
			return fmt.Errorf("lcm: putDirect: %w", err)
		}
	}
	if err := m.commit(Mutation{Op: "PutDirect", Puts: objs}); err != nil {
		return err
	}
	if m.OnWrite != nil {
		ids := make([]string, len(objs))
		for i, o := range objs {
			ids[i] = o.Base().ID
		}
		m.OnWrite(ids...)
	}
	return nil
}

// PutContent durably stores a repository-item body. Authorization happened
// on the owning ExtrinsicObject's LCM operation; this only makes the body
// itself crash-safe.
func (m *Manager) PutContent(contentID string, data []byte) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	m.Store.PutContent(contentID, data)
	return m.commit(Mutation{Op: "PutContent", ContentPutID: contentID, Content: data})
}

// DeleteContent durably removes a repository-item body.
func (m *Manager) DeleteContent(contentID string) error {
	end, err := m.beginWrite()
	if err != nil {
		return err
	}
	defer end()
	m.Store.DeleteContent(contentID)
	return m.commit(Mutation{Op: "DeleteContent", ContentDeleteID: contentID})
}
