// Package xacml implements the registry's role-based access control in the
// spirit of the XACML policies freebXML evaluates before processing a
// request (thesis §2.2.3): rules match Subject attributes (user id, roles,
// groups), Resource attributes (object type, owner) and Action attributes
// (submit, update, approve, deprecate, remove, read, ...), and a
// first-applicable combining algorithm yields Permit or Deny.
//
// DefaultPolicy reproduces freebXML's out-of-the-box behaviour: anyone may
// read public content, registered users may submit, owners may modify and
// remove their own objects, and the RegistryAdministrator role may do
// anything.
package xacml

import "fmt"

// Action names the operation being authorized.
type Action string

// Registry actions subject to access control.
const (
	ActionRead      Action = "read"
	ActionSubmit    Action = "submit"
	ActionUpdate    Action = "update"
	ActionApprove   Action = "approve"
	ActionDeprecate Action = "deprecate"
	ActionRemove    Action = "remove"
	ActionRelocate  Action = "relocate"
)

// Effect is the outcome of a rule or policy evaluation.
type Effect int

// Effects.
const (
	NotApplicable Effect = iota
	Permit
	Deny
)

// String names the effect.
func (e Effect) String() string {
	switch e {
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	default:
		return "NotApplicable"
	}
}

// Well-known roles.
const (
	RoleAdministrator  = "RegistryAdministrator"
	RoleRegisteredUser = "RegisteredUser"
	RoleGuest          = "RegistryGuest"
)

// SubjectOwner is the special subject match that fires when the requesting
// user owns the resource.
const SubjectOwner = "owner"

// Wildcard matches any value in a rule field.
const Wildcard = "*"

// Request carries the attributes of one authorization question.
type Request struct {
	SubjectID     string   // user id ("" for anonymous)
	SubjectRoles  []string // roles held by the subject
	Action        Action
	ResourceType  string // ebRIM class short name, e.g. "Service"
	ResourceOwner string // user id owning the object ("" when N/A)
}

// Rule is one access control rule.
type Rule struct {
	ID       string
	Effect   Effect
	Subjects []string // role names, SubjectOwner, or Wildcard
	Actions  []Action // or a single Wildcard entry via ActionAny
	Types    []string // resource type short names, or Wildcard
}

// ActionAny in a rule's Actions matches every action.
const ActionAny Action = "*"

// matches reports whether the rule applies to the request.
func (r Rule) matches(req Request) bool {
	if !r.subjectMatches(req) {
		return false
	}
	if !containsAction(r.Actions, req.Action) {
		return false
	}
	return containsString(r.Types, req.ResourceType)
}

func (r Rule) subjectMatches(req Request) bool {
	for _, s := range r.Subjects {
		switch s {
		case Wildcard:
			return true
		case SubjectOwner:
			if req.SubjectID != "" && req.SubjectID == req.ResourceOwner {
				return true
			}
		default:
			for _, role := range req.SubjectRoles {
				if role == s {
					return true
				}
			}
		}
	}
	return false
}

func containsAction(haystack []Action, needle Action) bool {
	for _, a := range haystack {
		if a == ActionAny || a == needle {
			return true
		}
	}
	return false
}

func containsString(haystack []string, needle string) bool {
	for _, s := range haystack {
		if s == Wildcard || s == needle {
			return true
		}
	}
	return false
}

// Policy is an ordered rule list with a default effect, combined
// first-applicable.
type Policy struct {
	Rules   []Rule
	Default Effect
}

// Evaluate returns the effect of the first applicable rule, or the policy
// default.
func (p *Policy) Evaluate(req Request) Effect {
	for _, r := range p.Rules {
		if r.matches(req) {
			return r.Effect
		}
	}
	if p.Default == NotApplicable {
		return Deny
	}
	return p.Default
}

// Authorize is Evaluate folded into an error: nil on Permit.
func (p *Policy) Authorize(req Request) error {
	if p.Evaluate(req) == Permit {
		return nil
	}
	subject := req.SubjectID
	if subject == "" {
		subject = "anonymous"
	}
	return fmt.Errorf("xacml: %s denied %s on %s", subject, req.Action, req.ResourceType)
}

// DefaultPolicy reproduces freebXML's stock access control.
func DefaultPolicy() *Policy {
	return &Policy{
		Rules: []Rule{
			// Administrators can do anything.
			{ID: "admin-all", Effect: Permit,
				Subjects: []string{RoleAdministrator}, Actions: []Action{ActionAny}, Types: []string{Wildcard}},
			// Anyone — including unauthenticated guests — can read
			// public content (the QueryManager is open, §2.2.3).
			{ID: "public-read", Effect: Permit,
				Subjects: []string{Wildcard}, Actions: []Action{ActionRead}, Types: []string{Wildcard}},
			// Registered users can submit new content.
			{ID: "registered-submit", Effect: Permit,
				Subjects: []string{RoleRegisteredUser}, Actions: []Action{ActionSubmit}, Types: []string{Wildcard}},
			// Owners manage the life cycle of their own objects.
			{ID: "owner-lifecycle", Effect: Permit,
				Subjects: []string{SubjectOwner},
				Actions:  []Action{ActionUpdate, ActionApprove, ActionDeprecate, ActionRemove, ActionRelocate},
				Types:    []string{Wildcard}},
		},
		Default: Deny,
	}
}
