package xacml

import "testing"

func TestDefaultPolicyMatrix(t *testing.T) {
	p := DefaultPolicy()
	admin := Request{SubjectID: "urn:uuid:root", SubjectRoles: []string{RoleAdministrator}}
	user := Request{SubjectID: "urn:uuid:gold", SubjectRoles: []string{RoleRegisteredUser}}
	guest := Request{SubjectRoles: []string{RoleGuest}}

	cases := []struct {
		name string
		req  Request
		want Effect
	}{
		{"guest reads", with(guest, ActionRead, "Service", "urn:uuid:other"), Permit},
		{"anonymous reads", with(Request{}, ActionRead, "Organization", ""), Permit},
		{"guest submits", with(guest, ActionSubmit, "Service", ""), Deny},
		{"user submits", with(user, ActionSubmit, "Organization", ""), Permit},
		{"user updates own", with(user, ActionUpdate, "Service", "urn:uuid:gold"), Permit},
		{"user updates other's", with(user, ActionUpdate, "Service", "urn:uuid:other"), Deny},
		{"user removes own", with(user, ActionRemove, "Service", "urn:uuid:gold"), Permit},
		{"user approves own", with(user, ActionApprove, "Service", "urn:uuid:gold"), Permit},
		{"user deprecates other's", with(user, ActionDeprecate, "Service", "urn:uuid:other"), Deny},
		{"admin removes other's", with(admin, ActionRemove, "Service", "urn:uuid:other"), Permit},
		{"admin relocates", with(admin, ActionRelocate, "RegistryPackage", ""), Permit},
	}
	for _, c := range cases {
		if got := p.Evaluate(c.req); got != c.want {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
	}
}

func with(base Request, a Action, typ, owner string) Request {
	base.Action = a
	base.ResourceType = typ
	base.ResourceOwner = owner
	return base
}

func TestAnonymousOwnerNeverMatches(t *testing.T) {
	// An anonymous request against an unowned resource must not match
	// the "owner" subject (both ids are empty).
	p := DefaultPolicy()
	req := Request{Action: ActionUpdate, ResourceType: "Service", ResourceOwner: ""}
	if p.Evaluate(req) != Deny {
		t.Fatal("anonymous matched owner rule")
	}
}

func TestFirstApplicableOrdering(t *testing.T) {
	p := &Policy{
		Rules: []Rule{
			{ID: "deny-services", Effect: Deny, Subjects: []string{Wildcard}, Actions: []Action{ActionRead}, Types: []string{"Service"}},
			{ID: "allow-read", Effect: Permit, Subjects: []string{Wildcard}, Actions: []Action{ActionRead}, Types: []string{Wildcard}},
		},
		Default: Deny,
	}
	if p.Evaluate(Request{Action: ActionRead, ResourceType: "Service"}) != Deny {
		t.Fatal("later rule won over first applicable")
	}
	if p.Evaluate(Request{Action: ActionRead, ResourceType: "Organization"}) != Permit {
		t.Fatal("fallthrough rule did not apply")
	}
}

func TestDefaultEffectFallback(t *testing.T) {
	empty := &Policy{}
	if empty.Evaluate(Request{Action: ActionRead}) != Deny {
		t.Fatal("zero-valued default should deny")
	}
	open := &Policy{Default: Permit}
	if open.Evaluate(Request{Action: ActionRemove}) != Permit {
		t.Fatal("explicit default ignored")
	}
}

func TestAuthorizeError(t *testing.T) {
	p := DefaultPolicy()
	if err := p.Authorize(Request{Action: ActionRead, ResourceType: "Service"}); err != nil {
		t.Fatalf("permitted request errored: %v", err)
	}
	err := p.Authorize(Request{Action: ActionRemove, ResourceType: "Service"})
	if err == nil {
		t.Fatal("denied request passed")
	}
}

func TestEffectString(t *testing.T) {
	if Permit.String() != "Permit" || Deny.String() != "Deny" || NotApplicable.String() != "NotApplicable" {
		t.Fatal("effect strings wrong")
	}
}
