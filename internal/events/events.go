// Package events implements the registry's content-based event
// subscription and notification feature (thesis §1.3.2.5, Fig. 1.20): a
// client creates a subscription holding a selector that picks events of
// interest and an action that delivers notifications — to a registered Web
// Service endpoint or to an e-mail address. When registry contents change,
// matching subscribers receive the changed objects.
package events

import (
	"fmt"
	"sync"

	"repro/internal/rim"
	"repro/internal/soap"
	"repro/internal/store"
)

// Selector decides which change events a subscription cares about.
type Selector struct {
	// ObjectType restricts matching to one class; empty matches all.
	ObjectType rim.ObjectType
	// NamePattern is a SQL-LIKE pattern over the object name; empty
	// matches all.
	NamePattern string
	// EventTypes restricts the life-cycle actions; empty matches all.
	EventTypes []rim.EventType
}

// Matches reports whether the selector admits the (event, object) pair.
func (s Selector) Matches(kind rim.EventType, obj rim.Object) bool {
	if len(s.EventTypes) > 0 {
		ok := false
		for _, k := range s.EventTypes {
			if k == kind {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if s.ObjectType != "" && obj.Base().ObjectType != s.ObjectType {
		return false
	}
	if s.NamePattern != "" && !store.MatchLike(obj.Base().Name.String(), s.NamePattern) {
		return false
	}
	return true
}

// Notification is what subscribers receive.
type Notification struct {
	SubscriptionID string
	EventKind      rim.EventType
	Objects        []rim.Object
}

// Deliverer delivers notifications to the subscriber's chosen sink.
type Deliverer interface {
	Deliver(n Notification) error
}

// Subscription pairs a selector with a delivery action.
type Subscription struct {
	ID       string
	OwnerID  string
	Selector Selector
	Action   Deliverer
}

// Bus registers subscriptions and fans out change notifications.
type Bus struct {
	mu   sync.RWMutex
	subs map[string]*Subscription
	// failures counts delivery errors per subscription for observability.
	failures map[string]int
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[string]*Subscription), failures: make(map[string]int)}
}

// Subscribe registers a subscription and returns its id.
func (b *Bus) Subscribe(ownerID string, sel Selector, action Deliverer) string {
	sub := &Subscription{ID: rim.NewUUID(), OwnerID: ownerID, Selector: sel, Action: action}
	b.mu.Lock()
	b.subs[sub.ID] = sub
	b.mu.Unlock()
	return sub.ID
}

// Unsubscribe removes a subscription, reporting whether it existed.
func (b *Bus) Unsubscribe(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.subs[id]
	delete(b.subs, id)
	return ok
}

// Len returns the number of live subscriptions.
func (b *Bus) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Failures reports accumulated delivery failures for a subscription.
func (b *Bus) Failures(id string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.failures[id]
}

// Publish notifies every matching subscription about a change to objs.
// Delivery is synchronous and failures are counted, not fatal: a broken
// subscriber cannot stall the registry's write path.
func (b *Bus) Publish(kind rim.EventType, objs ...rim.Object) {
	b.mu.RLock()
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.RUnlock()

	for _, sub := range subs {
		var matched []rim.Object
		for _, o := range objs {
			if sub.Selector.Matches(kind, o) {
				matched = append(matched, o)
			}
		}
		if len(matched) == 0 {
			continue
		}
		err := sub.Action.Deliver(Notification{SubscriptionID: sub.ID, EventKind: kind, Objects: matched})
		if err != nil {
			b.mu.Lock()
			b.failures[sub.ID]++
			b.mu.Unlock()
		}
	}
}

// EmailDeliverer appends rendered notifications to an in-memory outbox —
// the simulated analog of "delivery of notifications to registered e-mail
// address" (Table 1.1).
type EmailDeliverer struct {
	Address string

	mu     sync.Mutex
	outbox []string
}

// Deliver implements Deliverer.
func (e *EmailDeliverer) Deliver(n Notification) error {
	var names []string
	for _, o := range n.Objects {
		names = append(names, o.Base().Name.String())
	}
	e.mu.Lock()
	e.outbox = append(e.outbox, fmt.Sprintf("To: %s | %s: %v", e.Address, n.EventKind, names))
	e.mu.Unlock()
	return nil
}

// Outbox returns the messages delivered so far.
func (e *EmailDeliverer) Outbox() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.outbox...)
}

// ServiceDeliverer POSTs notifications to a registered Web Service
// endpoint as SOAP messages (Table 1.1, "Delivery of notifications to
// registered Web service").
type ServiceDeliverer struct {
	EndpointURI string
	Client      soapPoster
}

// soapPoster abstracts soap.Post for testability.
type soapPoster interface {
	Post(url string, req, resp interface{}) error
}

// SOAPPoster is the production soapPoster.
type SOAPPoster struct{}

// Post implements soapPoster over soap.Post with the default client.
func (SOAPPoster) Post(url string, req, resp interface{}) error {
	return soap.Post(nil, url, req, resp)
}

// WireNotification is the XML payload a ServiceDeliverer sends.
type WireNotification struct {
	XMLName        struct{} `xml:"RegistryNotification"`
	SubscriptionID string   `xml:"subscription"`
	EventKind      string   `xml:"eventType"`
	ObjectIDs      []string `xml:"objectId"`
}

// Deliver implements Deliverer.
func (s *ServiceDeliverer) Deliver(n Notification) error {
	poster := s.Client
	if poster == nil {
		poster = SOAPPoster{}
	}
	wire := WireNotification{SubscriptionID: n.SubscriptionID, EventKind: string(n.EventKind)}
	for _, o := range n.Objects {
		wire.ObjectIDs = append(wire.ObjectIDs, o.Base().ID)
	}
	return poster.Post(s.EndpointURI, &wire, nil)
}

// ChanDeliverer sends notifications to a channel; tests and in-process
// listeners use it.
type ChanDeliverer chan Notification

// Deliver implements Deliverer without blocking: a full channel counts as
// a delivery failure.
func (c ChanDeliverer) Deliver(n Notification) error {
	select {
	case c <- n:
		return nil
	default:
		return fmt.Errorf("events: listener queue full")
	}
}
