package events

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rim"
	"repro/internal/soap"
)

func TestSelectorMatching(t *testing.T) {
	svc := rim.NewService("NodeStatus", "")
	org := rim.NewOrganization("SDSU")

	all := Selector{}
	if !all.Matches(rim.EventCreated, svc) || !all.Matches(rim.EventDeleted, org) {
		t.Fatal("empty selector should match everything")
	}
	typed := Selector{ObjectType: rim.TypeService}
	if !typed.Matches(rim.EventCreated, svc) || typed.Matches(rim.EventCreated, org) {
		t.Fatal("type selector wrong")
	}
	named := Selector{NamePattern: "Node%"}
	if !named.Matches(rim.EventCreated, svc) || named.Matches(rim.EventCreated, org) {
		t.Fatal("name selector wrong")
	}
	kinds := Selector{EventTypes: []rim.EventType{rim.EventDeleted}}
	if kinds.Matches(rim.EventCreated, svc) || !kinds.Matches(rim.EventDeleted, svc) {
		t.Fatal("event-type selector wrong")
	}
}

func TestBusPublishToMatchingSubscribers(t *testing.T) {
	bus := NewBus()
	ch := make(ChanDeliverer, 10)
	id := bus.Subscribe("urn:uuid:gold", Selector{ObjectType: rim.TypeService}, ch)
	if bus.Len() != 1 {
		t.Fatalf("len = %d", bus.Len())
	}

	svc := rim.NewService("NodeStatus", "")
	org := rim.NewOrganization("SDSU")
	bus.Publish(rim.EventCreated, svc, org)

	select {
	case n := <-ch:
		if n.SubscriptionID != id || len(n.Objects) != 1 || n.Objects[0].Base().ID != svc.ID {
			t.Fatalf("notification = %+v", n)
		}
	default:
		t.Fatal("no notification delivered")
	}
	// Organization-only change: no notification.
	bus.Publish(rim.EventUpdated, org)
	select {
	case n := <-ch:
		t.Fatalf("unexpected notification %+v", n)
	default:
	}

	if !bus.Unsubscribe(id) || bus.Unsubscribe(id) {
		t.Fatal("unsubscribe semantics wrong")
	}
	bus.Publish(rim.EventCreated, svc)
	if len(ch) != 0 {
		t.Fatal("unsubscribed listener notified")
	}
}

func TestBusCountsDeliveryFailures(t *testing.T) {
	bus := NewBus()
	full := make(ChanDeliverer) // zero capacity: Deliver always fails
	id := bus.Subscribe("urn:uuid:gold", Selector{}, full)
	bus.Publish(rim.EventCreated, rim.NewService("S", ""))
	if bus.Failures(id) != 1 {
		t.Fatalf("failures = %d", bus.Failures(id))
	}
}

func TestEmailDeliverer(t *testing.T) {
	e := &EmailDeliverer{Address: "gold@sdsu.edu"}
	bus := NewBus()
	bus.Subscribe("urn:uuid:gold", Selector{NamePattern: "Demo%"}, e)
	bus.Publish(rim.EventDeleted, rim.NewService("DemoSrv_DeleteService", ""))
	out := e.Outbox()
	if len(out) != 1 || !strings.Contains(out[0], "gold@sdsu.edu") || !strings.Contains(out[0], "DemoSrv_DeleteService") {
		t.Fatalf("outbox = %v", out)
	}
}

func TestServiceDelivererOverHTTP(t *testing.T) {
	var got WireNotification
	srv := httptest.NewServer(soap.Endpoint(func(n *WireNotification) (interface{}, error) {
		got = *n
		return &struct {
			XMLName struct{} `xml:"Ack"`
		}{}, nil
	}))
	defer srv.Close()

	bus := NewBus()
	bus.Subscribe("urn:uuid:gold", Selector{}, &ServiceDeliverer{EndpointURI: srv.URL})
	svc := rim.NewService("NodeStatus", "")
	bus.Publish(rim.EventApproved, svc)

	if got.EventKind != "Approved" || len(got.ObjectIDs) != 1 || got.ObjectIDs[0] != svc.ID {
		t.Fatalf("wire notification = %+v", got)
	}
}

type failingPoster struct{}

func (failingPoster) Post(url string, req, resp interface{}) error {
	return fmt.Errorf("network down")
}

func TestServiceDelivererFailureCounted(t *testing.T) {
	bus := NewBus()
	id := bus.Subscribe("urn:uuid:gold", Selector{}, &ServiceDeliverer{EndpointURI: "http://x/", Client: failingPoster{}})
	bus.Publish(rim.EventCreated, rim.NewService("S", ""))
	if bus.Failures(id) != 1 {
		t.Fatalf("failures = %d", bus.Failures(id))
	}
}
