// Package cpa implements the Collaboration-Protocol Profile and Agreement
// layer of the ebXML framework (thesis §1.3, ebCPPA): a CPP describes one
// party's capabilities — the business roles it can play, the transport
// protocols and endpoints it exposes, and its messaging reliability
// characteristics — and a CPA is "a mutually agreed upon business
// arrangement" formed by intersecting two parties' CPPs (the step-3
// negotiation of thesis Fig. 1.15).
//
// Agreement formation follows the CPPA composition rules in miniature: the
// parties must offer complementary roles for a common business process,
// share at least one transport protocol, and the CPA adopts the more
// conservative of the two parties' reliability settings.
package cpa

import (
	"encoding/xml"
	"fmt"
	"sort"
	"time"

	"repro/internal/rim"
)

// Role names one side of a binary business collaboration.
type Role struct {
	// ProcessName identifies the business process specification, e.g.
	// "PurchaseOrder".
	ProcessName string `xml:"process,attr"`
	// Name is the role within it, e.g. "Buyer" or "Seller".
	Name string `xml:"name,attr"`
}

// Transport describes one way to reach the party.
type Transport struct {
	// Protocol is e.g. "HTTP", "HTTPS", or "SMTP".
	Protocol string `xml:"protocol,attr"`
	// Endpoint is the party's receiving URI for this protocol.
	Endpoint string `xml:"endpoint,attr"`
}

// Reliability carries the ebMS delivery parameters the party supports.
type Reliability struct {
	Retries       int           `xml:"retries,attr"`
	RetryInterval time.Duration `xml:"retryInterval,attr"`
	// DuplicateElimination reports whether the party's MSH eliminates
	// duplicates (required for once-and-only-once).
	DuplicateElimination bool `xml:"duplicateElimination,attr"`
}

// CPP is one party's collaboration-protocol profile.
type CPP struct {
	XMLName     struct{}    `xml:"CollaborationProtocolProfile"`
	PartyID     string      `xml:"partyId,attr"`
	PartyName   string      `xml:"partyName,attr"`
	Roles       []Role      `xml:"Role"`
	Transports  []Transport `xml:"Transport"`
	Reliability Reliability `xml:"Reliability"`
}

// Validate checks profile invariants.
func (p *CPP) Validate() error {
	if p.PartyID == "" {
		return fmt.Errorf("cpa: profile without partyId")
	}
	if len(p.Roles) == 0 {
		return fmt.Errorf("cpa: profile %s offers no roles", p.PartyID)
	}
	if len(p.Transports) == 0 {
		return fmt.Errorf("cpa: profile %s has no transports", p.PartyID)
	}
	for _, tr := range p.Transports {
		if tr.Protocol == "" || tr.Endpoint == "" {
			return fmt.Errorf("cpa: profile %s has incomplete transport", p.PartyID)
		}
	}
	return nil
}

// MarshalXMLDoc serializes the profile for registry storage.
func (p *CPP) MarshalXMLDoc() ([]byte, error) {
	return xml.MarshalIndent(p, "", " ")
}

// ParseCPP decodes a stored profile.
func ParseCPP(doc []byte) (*CPP, error) {
	var p CPP
	if err := xml.Unmarshal(doc, &p); err != nil {
		return nil, fmt.Errorf("cpa: malformed profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// CPA is the mutually agreed arrangement between two parties.
type CPA struct {
	XMLName struct{} `xml:"CollaborationProtocolAgreement"`
	ID      string   `xml:"cpaId,attr"`
	// ProcessName is the agreed business process.
	ProcessName string `xml:"process,attr"`
	// PartyA/PartyB with their agreed roles.
	PartyA string `xml:"partyA,attr"`
	PartyB string `xml:"partyB,attr"`
	RoleA  string `xml:"roleA,attr"`
	RoleB  string `xml:"roleB,attr"`
	// Transport is the agreed common channel per direction.
	TransportToA Transport `xml:"TransportToA"`
	TransportToB Transport `xml:"TransportToB"`
	// Reliability adopts the more conservative of the two parties'.
	Reliability Reliability `xml:"Reliability"`
}

// counterpart maps each role to the role it collaborates with; binary
// collaborations from the canonical BPSS catalog.
var counterpart = map[string]string{
	"Buyer":     "Seller",
	"Seller":    "Buyer",
	"Requester": "Responder",
	"Responder": "Requester",
	"Sender":    "Receiver",
	"Receiver":  "Sender",
}

// Compose forms a CPA from two profiles, or explains why no agreement is
// possible: the parties need complementary roles in a shared process and
// at least one shared transport protocol.
func Compose(a, b *CPP) (*CPA, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if a.PartyID == b.PartyID {
		return nil, fmt.Errorf("cpa: %s cannot agree with itself", a.PartyID)
	}

	roleA, roleB, process, ok := matchRoles(a.Roles, b.Roles)
	if !ok {
		return nil, fmt.Errorf("cpa: %s and %s share no complementary roles", a.PartyID, b.PartyID)
	}
	toA, toB, ok := matchTransports(a.Transports, b.Transports)
	if !ok {
		return nil, fmt.Errorf("cpa: %s and %s share no transport protocol", a.PartyID, b.PartyID)
	}

	return &CPA{
		ID:           rim.NewUUID(),
		ProcessName:  process,
		PartyA:       a.PartyID,
		PartyB:       b.PartyID,
		RoleA:        roleA,
		RoleB:        roleB,
		TransportToA: toA,
		TransportToB: toB,
		Reliability:  conservative(a.Reliability, b.Reliability),
	}, nil
}

// matchRoles finds the first (by process, then role, deterministically)
// pair of complementary roles within a common process.
func matchRoles(as, bs []Role) (roleA, roleB, process string, ok bool) {
	sortedA := append([]Role(nil), as...)
	sort.Slice(sortedA, func(i, j int) bool {
		if sortedA[i].ProcessName != sortedA[j].ProcessName {
			return sortedA[i].ProcessName < sortedA[j].ProcessName
		}
		return sortedA[i].Name < sortedA[j].Name
	})
	for _, ra := range sortedA {
		want := counterpart[ra.Name]
		if want == "" {
			continue
		}
		for _, rb := range bs {
			if rb.ProcessName == ra.ProcessName && rb.Name == want {
				return ra.Name, rb.Name, ra.ProcessName, true
			}
		}
	}
	return "", "", "", false
}

// matchTransports picks a shared protocol (preferring HTTPS over HTTP over
// anything else) and returns each party's endpoint for it.
func matchTransports(as, bs []Transport) (toA, toB Transport, ok bool) {
	pref := func(p string) int {
		switch p {
		case "HTTPS":
			return 0
		case "HTTP":
			return 1
		default:
			return 2
		}
	}
	best := -1
	for _, ta := range as {
		for _, tb := range bs {
			if ta.Protocol != tb.Protocol {
				continue
			}
			if best == -1 || pref(ta.Protocol) < best {
				best = pref(ta.Protocol)
				toA, toB, ok = ta, tb, true
			}
		}
	}
	return toA, toB, ok
}

// conservative merges reliability settings: most retries, longest
// interval, and duplicate elimination only if both sides support it.
func conservative(a, b Reliability) Reliability {
	out := Reliability{
		Retries:              a.Retries,
		RetryInterval:        a.RetryInterval,
		DuplicateElimination: a.DuplicateElimination && b.DuplicateElimination,
	}
	if b.Retries > out.Retries {
		out.Retries = b.Retries
	}
	if b.RetryInterval > out.RetryInterval {
		out.RetryInterval = b.RetryInterval
	}
	return out
}

// MarshalXMLDoc serializes the agreement for registry storage.
func (c *CPA) MarshalXMLDoc() ([]byte, error) {
	return xml.MarshalIndent(c, "", " ")
}

// ParseCPA decodes a stored agreement.
func ParseCPA(doc []byte) (*CPA, error) {
	var c CPA
	if err := xml.Unmarshal(doc, &c); err != nil {
		return nil, fmt.Errorf("cpa: malformed agreement: %w", err)
	}
	if c.ID == "" || c.PartyA == "" || c.PartyB == "" {
		return nil, fmt.Errorf("cpa: agreement missing identities")
	}
	return &c, nil
}
