package cpa

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

func companyA() *CPP {
	return &CPP{
		PartyID:   "urn:duns:123456789",
		PartyName: "Company A",
		Roles: []Role{
			{ProcessName: "PurchaseOrder", Name: "Buyer"},
			{ProcessName: "Catalog", Name: "Requester"},
		},
		Transports: []Transport{
			{Protocol: "HTTP", Endpoint: "http://a.example/msh"},
			{Protocol: "HTTPS", Endpoint: "https://a.example/msh"},
		},
		Reliability: Reliability{Retries: 3, RetryInterval: 2 * time.Second, DuplicateElimination: true},
	}
}

func companyB() *CPP {
	return &CPP{
		PartyID:   "urn:duns:987654321",
		PartyName: "Company B",
		Roles: []Role{
			{ProcessName: "PurchaseOrder", Name: "Seller"},
		},
		Transports: []Transport{
			{Protocol: "HTTPS", Endpoint: "https://b.example/msh"},
			{Protocol: "SMTP", Endpoint: "mailto:orders@b.example"},
		},
		Reliability: Reliability{Retries: 5, RetryInterval: time.Second, DuplicateElimination: true},
	}
}

func TestComposeFormsAgreement(t *testing.T) {
	agreement, err := Compose(companyA(), companyB())
	if err != nil {
		t.Fatal(err)
	}
	if agreement.ProcessName != "PurchaseOrder" || agreement.RoleA != "Buyer" || agreement.RoleB != "Seller" {
		t.Fatalf("roles = %+v", agreement)
	}
	// HTTPS preferred over HTTP, with each party's own endpoint.
	if agreement.TransportToA.Protocol != "HTTPS" || agreement.TransportToA.Endpoint != "https://a.example/msh" {
		t.Fatalf("toA = %+v", agreement.TransportToA)
	}
	if agreement.TransportToB.Endpoint != "https://b.example/msh" {
		t.Fatalf("toB = %+v", agreement.TransportToB)
	}
	// Conservative reliability: max retries, max interval, both eliminate
	// duplicates.
	r := agreement.Reliability
	if r.Retries != 5 || r.RetryInterval != 2*time.Second || !r.DuplicateElimination {
		t.Fatalf("reliability = %+v", r)
	}
	if !rim.IsUUIDURN(agreement.ID) {
		t.Fatalf("cpa id = %q", agreement.ID)
	}
}

func TestComposeFailures(t *testing.T) {
	a, b := companyA(), companyB()
	// No complementary roles.
	b2 := companyB()
	b2.Roles = []Role{{ProcessName: "PurchaseOrder", Name: "Buyer"}} // same side
	if _, err := Compose(a, b2); err == nil || !strings.Contains(err.Error(), "complementary") {
		t.Fatalf("same-side compose: %v", err)
	}
	// No shared transport.
	b3 := companyB()
	b3.Transports = []Transport{{Protocol: "SMTP", Endpoint: "mailto:x@b"}}
	if _, err := Compose(a, b3); err == nil || !strings.Contains(err.Error(), "transport") {
		t.Fatalf("no-transport compose: %v", err)
	}
	// Self agreement.
	if _, err := Compose(a, a); err == nil {
		t.Fatal("self agreement accepted")
	}
	// Invalid profiles.
	if _, err := Compose(&CPP{}, b); err == nil {
		t.Fatal("empty profile accepted")
	}
	bad := companyA()
	bad.Transports = nil
	if _, err := Compose(bad, b); err == nil {
		t.Fatal("transportless profile accepted")
	}
	bad2 := companyA()
	bad2.Roles = nil
	if _, err := Compose(bad2, b); err == nil {
		t.Fatal("roleless profile accepted")
	}
	bad3 := companyA()
	bad3.Transports = []Transport{{Protocol: "HTTP"}}
	if _, err := Compose(bad3, b); err == nil {
		t.Fatal("incomplete transport accepted")
	}
}

func TestDuplicateEliminationRequiresBoth(t *testing.T) {
	a, b := companyA(), companyB()
	b.Reliability.DuplicateElimination = false
	agreement, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if agreement.Reliability.DuplicateElimination {
		t.Fatal("one-sided duplicate elimination claimed")
	}
}

func TestXMLRoundTrips(t *testing.T) {
	doc, err := companyA().MarshalXMLDoc()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCPP(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.PartyID != companyA().PartyID || len(back.Roles) != 2 || len(back.Transports) != 2 {
		t.Fatalf("cpp round trip = %+v", back)
	}
	if _, err := ParseCPP([]byte("junk")); err == nil {
		t.Fatal("junk cpp accepted")
	}
	if _, err := ParseCPP([]byte("<CollaborationProtocolProfile/>")); err == nil {
		t.Fatal("empty cpp accepted")
	}

	agreement, err := Compose(companyA(), companyB())
	if err != nil {
		t.Fatal(err)
	}
	adoc, err := agreement.MarshalXMLDoc()
	if err != nil {
		t.Fatal(err)
	}
	aback, err := ParseCPA(adoc)
	if err != nil {
		t.Fatal(err)
	}
	if aback.ID != agreement.ID || aback.RoleA != "Buyer" {
		t.Fatalf("cpa round trip = %+v", aback)
	}
	if _, err := ParseCPA([]byte("<CollaborationProtocolAgreement/>")); err == nil {
		t.Fatal("identityless cpa accepted")
	}
}

// TestProfilesLiveInRegistry stores CPPs as repository content — the
// thesis's step 3 ("Company A submits its own business profile to the
// ebXML registry") — and rebuilds the agreement from discovered profiles
// (steps 4–5 of Fig. 1.13).
func TestProfilesLiveInRegistry(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Clock:  simclock.NewManual(time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)),
		Policy: core.PolicyStock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := reg.AdminContext()
	for _, p := range []*CPP{companyA(), companyB()} {
		doc, err := p.MarshalXMLDoc()
		if err != nil {
			t.Fatal(err)
		}
		eo := rim.NewExtrinsicObject("cpp-"+p.PartyName, "text/xml")
		if err := reg.SubmitRepositoryItem(ctx, eo, doc); err != nil {
			t.Fatal(err)
		}
	}
	// Company B discovers Company A's profile through the registry.
	found := reg.QM.FindObjects(rim.TypeExtrinsicObject, "cpp-%")
	if len(found) != 2 {
		t.Fatalf("profiles found = %d", len(found))
	}
	var profiles []*CPP
	for _, o := range found {
		_, content, err := reg.GetRepositoryItem(o.Base().ID)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseCPP(content)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	agreement, err := Compose(profiles[0], profiles[1])
	if err != nil {
		// Order may be B,A: compose is symmetric up to role swap.
		agreement, err = Compose(profiles[1], profiles[0])
	}
	if err != nil {
		t.Fatal(err)
	}
	if agreement.ProcessName != "PurchaseOrder" {
		t.Fatalf("agreement = %+v", agreement)
	}
}
