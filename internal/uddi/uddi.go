// Package uddi implements a compact UDDI v2-style registry — the
// comparator the thesis positions ebXML against in Chapter 1 (Table 1.1,
// Figs. 1.6–1.11). It carries the four core data structures
// (businessEntity, businessService, bindingTemplate, tModel) plus
// publisherAssertions and six of the nine thesis-enumerated API sets
// (§1.3.1.5): Inquiry, Publication, Security (authTokens), Custody
// Transfer, Subscription, and Validation. (Replication, Subscription
// Listener and Value Set Caching concern multi-node UBR deployments and
// are out of the comparator's scope.)
//
// Deliberately absent — because UDDI lacks them (Table 1.1) — are a
// content repository, SQL ad-hoc queries, life-cycle approval/deprecation,
// and any notion of host state: find_binding always returns
// bindingTemplates in stored order, which is exactly why the C1 comparison
// and the stock baseline in the experiments behave the way they do.
package uddi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// Errors returned by the registry.
var (
	ErrAuth     = errors.New("uddi: invalid authToken")
	ErrNotFound = errors.New("uddi: not found")
)

// BusinessEntity is the white/yellow-pages record (Fig. 1.7).
type BusinessEntity struct {
	BusinessKey string
	Name        string
	Description string
	Contacts    []Contact
	CategoryBag []KeyedReference
	Identifiers []KeyedReference
	Services    []*BusinessService
}

// Contact is a businessEntity contact entry.
type Contact struct {
	UseType    string
	PersonName string
	Phone      string
	Email      string
}

// KeyedReference is a (tModelKey, name, value) triple used by category and
// identifier bags.
type KeyedReference struct {
	TModelKey string
	Name      string
	Value     string
}

// BusinessService is one service offered by a business (Fig. 1.9).
type BusinessService struct {
	ServiceKey  string
	BusinessKey string
	Name        string
	Description string
	CategoryBag []KeyedReference
	Bindings    []*BindingTemplate
}

// BindingTemplate holds the green-pages access point (Fig. 1.10).
type BindingTemplate struct {
	BindingKey  string
	ServiceKey  string
	AccessPoint string
	Description string
	TModelKeys  []string
}

// TModel is a technical model (Fig. 1.11).
type TModel struct {
	TModelKey   string
	Name        string
	Description string
	OverviewURL string
}

// PublisherAssertion relates two businesses (Fig. 1.8); it becomes visible
// only once both sides assert it.
type PublisherAssertion struct {
	FromKey string
	ToKey   string
	KeyedReference
}

// Registry is an in-memory UDDI node. All time-dependent behaviour
// (transfer-token expiry, subscription change records and cursors) reads
// the injected clock, so a simclock.Manual drives it deterministically.
type Registry struct {
	clock simclock.Clock

	mu         sync.RWMutex
	businesses map[string]*BusinessEntity      // guarded by mu
	services   map[string]*BusinessService     // guarded by mu
	bindings   map[string]*BindingTemplate     // guarded by mu
	tmodels    map[string]*TModel              // guarded by mu
	assertions map[string][]PublisherAssertion // guarded by mu; by publisher authToken's owner
	tokens     map[string]string               // guarded by mu; authToken -> publisherID
	owners     map[string]string               // guarded by mu; entity key -> publisherID

	custodyOnce   sync.Once
	custodyTokens *custodyState
	subsOnce      sync.Once
	subsState     *subscriptionState
	validOnce     sync.Once
	validValues   map[string]map[string]bool // guarded by mu; checked tModelKey -> allowed values
}

// New creates an empty UDDI registry on the real clock.
func New() *Registry {
	return NewWithClock(simclock.Real{})
}

// NewWithClock creates an empty UDDI registry whose timestamps come from
// clk; nil means the real clock.
func NewWithClock(clk simclock.Clock) *Registry {
	if clk == nil {
		clk = simclock.Real{}
	}
	return &Registry{
		clock:      clk,
		businesses: make(map[string]*BusinessEntity),
		services:   make(map[string]*BusinessService),
		bindings:   make(map[string]*BindingTemplate),
		tmodels:    make(map[string]*TModel),
		assertions: make(map[string][]PublisherAssertion),
		tokens:     make(map[string]string),
		owners:     make(map[string]string),
	}
}

// now reads the registry's clock.
func (r *Registry) now() time.Time { return r.clock.Now() }

// --- Security API set -----------------------------------------------------

// GetAuthToken opens a publisher session (the registry trusts the caller's
// id; credential checking is out of scope for the comparator).
func (r *Registry) GetAuthToken(publisherID string) string {
	tok := rim.NewUUID()
	r.mu.Lock()
	r.tokens[tok] = publisherID
	r.mu.Unlock()
	return tok
}

// DiscardAuthToken ends a session.
func (r *Registry) DiscardAuthToken(token string) {
	r.mu.Lock()
	delete(r.tokens, token)
	r.mu.Unlock()
}

func (r *Registry) publisher(token string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.tokens[token]
	if !ok {
		return "", ErrAuth
	}
	return p, nil
}

// --- Publication API set ---------------------------------------------------

// SaveBusiness stores (or replaces) a businessEntity and its embedded
// services/bindings, assigning keys where missing.
func (r *Registry) SaveBusiness(token string, be *BusinessEntity) (string, error) {
	pub, err := r.publisher(token)
	if err != nil {
		return "", err
	}
	if be.Name == "" {
		return "", fmt.Errorf("uddi: businessEntity needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if be.BusinessKey == "" {
		be.BusinessKey = rim.NewUUID()
	} else if owner, ok := r.owners[be.BusinessKey]; ok && owner != pub {
		return "", fmt.Errorf("uddi: businessKey %s owned by another publisher", be.BusinessKey)
	}
	r.owners[be.BusinessKey] = pub
	r.businesses[be.BusinessKey] = be
	defer r.recordChange("save", be.BusinessKey, be.Name)
	for _, svc := range be.Services {
		svc.BusinessKey = be.BusinessKey
		if svc.ServiceKey == "" {
			svc.ServiceKey = rim.NewUUID()
		}
		r.owners[svc.ServiceKey] = pub
		r.services[svc.ServiceKey] = svc
		for _, bt := range svc.Bindings {
			bt.ServiceKey = svc.ServiceKey
			if bt.BindingKey == "" {
				bt.BindingKey = rim.NewUUID()
			}
			r.owners[bt.BindingKey] = pub
			r.bindings[bt.BindingKey] = bt
		}
	}
	return be.BusinessKey, nil
}

// SaveService stores a service under an existing business.
func (r *Registry) SaveService(token string, svc *BusinessService) (string, error) {
	pub, err := r.publisher(token)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	be, ok := r.businesses[svc.BusinessKey]
	if !ok {
		return "", fmt.Errorf("%w: business %s", ErrNotFound, svc.BusinessKey)
	}
	if svc.ServiceKey == "" {
		svc.ServiceKey = rim.NewUUID()
		be.Services = append(be.Services, svc)
	}
	r.owners[svc.ServiceKey] = pub
	r.services[svc.ServiceKey] = svc
	for _, bt := range svc.Bindings {
		bt.ServiceKey = svc.ServiceKey
		if bt.BindingKey == "" {
			bt.BindingKey = rim.NewUUID()
		}
		r.owners[bt.BindingKey] = pub
		r.bindings[bt.BindingKey] = bt
	}
	return svc.ServiceKey, nil
}

// SaveTModel stores a technical model.
func (r *Registry) SaveTModel(token string, tm *TModel) (string, error) {
	pub, err := r.publisher(token)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tm.TModelKey == "" {
		tm.TModelKey = rim.NewUUID()
	}
	r.owners[tm.TModelKey] = pub
	r.tmodels[tm.TModelKey] = tm
	return tm.TModelKey, nil
}

// DeleteBusiness removes a business and its services and bindings.
func (r *Registry) DeleteBusiness(token, businessKey string) error {
	pub, err := r.publisher(token)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	be, ok := r.businesses[businessKey]
	if !ok {
		return fmt.Errorf("%w: business %s", ErrNotFound, businessKey)
	}
	if r.owners[businessKey] != pub {
		return fmt.Errorf("uddi: business %s owned by another publisher", businessKey)
	}
	for _, svc := range be.Services {
		for _, bt := range svc.Bindings {
			delete(r.bindings, bt.BindingKey)
			delete(r.owners, bt.BindingKey)
		}
		delete(r.services, svc.ServiceKey)
		delete(r.owners, svc.ServiceKey)
	}
	delete(r.businesses, businessKey)
	delete(r.owners, businessKey)
	r.recordChange("delete", businessKey, be.Name)
	return nil
}

// AddPublisherAssertion records one side of a business relationship; it is
// reported by FindRelatedBusinesses only when both sides have asserted it.
func (r *Registry) AddPublisherAssertion(token string, pa PublisherAssertion) error {
	pub, err := r.publisher(token)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assertions[pub] = append(r.assertions[pub], pa)
	return nil
}

// --- Inquiry API set --------------------------------------------------------

// FindBusiness searches business names with % wildcards (UDDI's
// approximate-match behaviour maps onto LIKE).
func (r *Registry) FindBusiness(namePattern string) []*BusinessEntity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*BusinessEntity
	for _, be := range r.businesses {
		if store.MatchLike(be.Name, namePattern) {
			out = append(out, be)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindService searches service names, optionally within one business.
func (r *Registry) FindService(businessKey, namePattern string) []*BusinessService {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*BusinessService
	for _, svc := range r.services {
		if businessKey != "" && svc.BusinessKey != businessKey {
			continue
		}
		if store.MatchLike(svc.Name, namePattern) {
			out = append(out, svc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindBinding returns a service's bindingTemplates in stored order —
// there is no host-state awareness to reorder them, which is the
// structural gap the thesis's scheme fills on the ebXML side.
func (r *Registry) FindBinding(serviceKey string) []*BindingTemplate {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, ok := r.services[serviceKey]
	if !ok {
		return nil
	}
	return append([]*BindingTemplate(nil), svc.Bindings...)
}

// FindTModel searches tModel names.
func (r *Registry) FindTModel(namePattern string) []*TModel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*TModel
	for _, tm := range r.tmodels {
		if store.MatchLike(tm.Name, namePattern) {
			out = append(out, tm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindRelatedBusinesses reports businesses related to businessKey by
// mutually confirmed publisher assertions.
func (r *Registry) FindRelatedBusinesses(businessKey string) []*BusinessEntity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	confirmed := make(map[string]bool)
	for pubA, asA := range r.assertions {
		for _, a := range asA {
			if a.FromKey != businessKey && a.ToKey != businessKey {
				continue
			}
			// Find a matching assertion from a different publisher.
			for pubB, asB := range r.assertions {
				if pubA == pubB {
					continue
				}
				for _, b := range asB {
					if a.FromKey == b.FromKey && a.ToKey == b.ToKey && a.Value == b.Value {
						other := a.FromKey
						if other == businessKey {
							other = a.ToKey
						}
						confirmed[other] = true
					}
				}
			}
		}
	}
	var out []*BusinessEntity
	for key := range confirmed {
		if be, ok := r.businesses[key]; ok {
			out = append(out, be)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GetBusinessDetail retrieves one business.
func (r *Registry) GetBusinessDetail(key string) (*BusinessEntity, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	be, ok := r.businesses[key]
	if !ok {
		return nil, fmt.Errorf("%w: business %s", ErrNotFound, key)
	}
	return be, nil
}

// GetServiceDetail retrieves one service.
func (r *Registry) GetServiceDetail(key string) (*BusinessService, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	svc, ok := r.services[key]
	if !ok {
		return nil, fmt.Errorf("%w: service %s", ErrNotFound, key)
	}
	return svc, nil
}

// GetBindingDetail retrieves one bindingTemplate.
func (r *Registry) GetBindingDetail(key string) (*BindingTemplate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bt, ok := r.bindings[key]
	if !ok {
		return nil, fmt.Errorf("%w: binding %s", ErrNotFound, key)
	}
	return bt, nil
}

// GetTModelDetail retrieves one tModel.
func (r *Registry) GetTModelDetail(key string) (*TModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tm, ok := r.tmodels[key]
	if !ok {
		return nil, fmt.Errorf("%w: tModel %s", ErrNotFound, key)
	}
	return tm, nil
}

// Capabilities reports the code-checkable Table 1.1 feature rows for this
// registry; the ebXML side's counterpart lives in the comparison tests.
func Capabilities() map[string]bool {
	return map[string]bool{
		"repository":             false,
		"sql-query":              false,
		"stored-queries":         false,
		"approval-lifecycle":     false,
		"deprecation":            false,
		"automatic-versioning":   false,
		"user-defined-relations": false,
		"content-notification":   false,
		"host-state-discovery":   false,
		"publish":                true,
		"find":                   true,
		"publisher-assertions":   true,
	}
}

// Normalize lowercases a capability key (helper for comparison tables).
func Normalize(k string) string { return strings.ToLower(k) }
