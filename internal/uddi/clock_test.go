package uddi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
)

var clk0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// newSeededAt builds a seeded registry on a manual clock so the
// time-dependent API sets (custody expiry, subscription cursors) can be
// driven deterministically.
func newSeededAt(t *testing.T) (*Registry, *simclock.Manual, string, *BusinessEntity) {
	t.Helper()
	clk := simclock.NewManual(clk0)
	r := NewWithClock(clk)
	tok := r.GetAuthToken("publisher-1")
	be := &BusinessEntity{Name: "San Diego State University"}
	if _, err := r.SaveBusiness(tok, be); err != nil {
		t.Fatal(err)
	}
	return r, clk, tok, be
}

func TestTransferTokenExpiresOnInjectedClock(t *testing.T) {
	r, clk, tokA, be := newSeededAt(t)
	tokB := r.GetAuthToken("publisher-2")

	transfer, err := r.GetTransferToken(tokA, be.BusinessKey)
	if err != nil {
		t.Fatal(err)
	}
	// Just inside the hour the token is live; just past it, dead. Only a
	// manual clock can pin this boundary exactly.
	clk.Advance(time.Hour + time.Second)
	if err := r.TransferEntity(tokB, transfer); err == nil {
		t.Fatal("expired transfer token accepted")
	}

	transfer2, err := r.GetTransferToken(tokA, be.BusinessKey)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(59 * time.Minute)
	if err := r.TransferEntity(tokB, transfer2); err != nil {
		t.Fatalf("live transfer token rejected: %v", err)
	}
}

func TestSubscriptionCursorOnInjectedClock(t *testing.T) {
	r, clk, tok, _ := newSeededAt(t)

	subID, err := r.SaveSubscription(tok, "%State%")
	if err != nil {
		t.Fatal(err)
	}
	// A change strictly after the subscription's lastSeen is reported
	// once, then consumed by the advancing cursor.
	clk.Advance(time.Minute)
	if _, err := r.SaveBusiness(tok, &BusinessEntity{Name: "Ohio State University"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	got, err := r.GetSubscriptionResults(tok, subID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "Ohio State University" {
		t.Fatalf("results = %+v, want the one post-subscription change", got)
	}
	got, err = r.GetSubscriptionResults(tok, subID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("cursor did not advance: results = %+v", got)
	}

	if _, err := r.GetSubscriptionResults(tok, "no-such-sub"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
