package uddi

import (
	"errors"
	"testing"
)

func TestCustodyTransfer(t *testing.T) {
	r, tokA, be := newSeeded(t)
	tokB := r.GetAuthToken("publisher-2")

	transfer, err := r.GetTransferToken(tokA, be.BusinessKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.TransferEntity(tokB, transfer); err != nil {
		t.Fatal(err)
	}
	owner, ok := r.OwnerOf(be.BusinessKey)
	if !ok || owner != "publisher-2" {
		t.Fatalf("owner = %q, %v", owner, ok)
	}
	// The new owner can now modify; the old one cannot.
	be.Description = "updated by new owner"
	if _, err := r.SaveBusiness(tokB, be); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SaveBusiness(tokA, be); err == nil {
		t.Fatal("old owner retained custody")
	}
	// Tokens are single use.
	if err := r.TransferEntity(tokB, transfer); err == nil {
		t.Fatal("transfer token replayed")
	}
}

func TestCustodyTransferValidation(t *testing.T) {
	r, tokA, be := newSeeded(t)
	tokB := r.GetAuthToken("publisher-2")

	if _, err := r.GetTransferToken("bogus", be.BusinessKey); !errors.Is(err, ErrAuth) {
		t.Fatalf("bogus auth: %v", err)
	}
	if _, err := r.GetTransferToken(tokA); err == nil {
		t.Fatal("empty key list accepted")
	}
	if _, err := r.GetTransferToken(tokA, "uuid:ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost key: %v", err)
	}
	// Only the owner can issue a token.
	if _, err := r.GetTransferToken(tokB, be.BusinessKey); err == nil {
		t.Fatal("non-owner issued transfer token")
	}
	// Transfer to self is rejected.
	transfer, _ := r.GetTransferToken(tokA, be.BusinessKey)
	if err := r.TransferEntity(tokA, transfer); err == nil {
		t.Fatal("self transfer accepted")
	}
	// Discard invalidates.
	transfer2, _ := r.GetTransferToken(tokA, be.BusinessKey)
	r.DiscardTransferToken(transfer2)
	if err := r.TransferEntity(tokB, transfer2); err == nil {
		t.Fatal("discarded token honoured")
	}
	if err := r.TransferEntity(tokB, "uuid:never-issued"); err == nil {
		t.Fatal("unknown token honoured")
	}
}

func TestSubscriptionAPISet(t *testing.T) {
	r := New()
	tok := r.GetAuthToken("watcher")
	subID, err := r.SaveSubscription(tok, "Acme%")
	if err != nil {
		t.Fatal(err)
	}

	pubTok := r.GetAuthToken("publisher")
	acme := &BusinessEntity{Name: "Acme Corp"}
	if _, err := r.SaveBusiness(pubTok, acme); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SaveBusiness(pubTok, &BusinessEntity{Name: "Unrelated Inc"}); err != nil {
		t.Fatal(err)
	}

	results, err := r.GetSubscriptionResults(tok, subID)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "Acme Corp" || results[0].Op != "save" {
		t.Fatalf("results = %+v", results)
	}
	// The cursor advanced: an immediate re-poll is empty.
	results, err = r.GetSubscriptionResults(tok, subID)
	if err != nil || len(results) != 0 {
		t.Fatalf("re-poll = %+v, %v", results, err)
	}
	// A delete shows up as a change too.
	if err := r.DeleteBusiness(pubTok, acme.BusinessKey); err != nil {
		t.Fatal(err)
	}
	results, _ = r.GetSubscriptionResults(tok, subID)
	if len(results) != 1 || results[0].Op != "delete" {
		t.Fatalf("delete results = %+v", results)
	}

	// Foreign subscriptions are invisible; deletion works once.
	other := r.GetAuthToken("someone-else")
	if _, err := r.GetSubscriptionResults(other, subID); err == nil {
		t.Fatal("foreign poll accepted")
	}
	if ok, err := r.DeleteSubscription(tok, subID); err != nil || !ok {
		t.Fatalf("delete subscription: %v %v", ok, err)
	}
	if ok, _ := r.DeleteSubscription(tok, subID); ok {
		t.Fatal("double delete reported true")
	}
	if _, err := r.SaveSubscription("bogus", "%"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bogus save: %v", err)
	}
}

func TestValidationAPISet(t *testing.T) {
	r := New()
	tok := r.GetAuthToken("p")
	naicsKey, err := r.RegisterCheckedTModel(tok,
		&TModel{Name: "ntis-gov:naics"}, "111330", "6113")
	if err != nil {
		t.Fatal(err)
	}
	// Valid value passes.
	if err := r.ValidateValues(KeyedReference{TModelKey: naicsKey, Name: "NAICS", Value: "6113"}); err != nil {
		t.Fatal(err)
	}
	// Invalid value against a checked scheme fails.
	if err := r.ValidateValues(KeyedReference{TModelKey: naicsKey, Name: "NAICS", Value: "99999"}); err == nil {
		t.Fatal("invalid checked value accepted")
	}
	// Unchecked tModels are not validated.
	if err := r.ValidateValues(KeyedReference{TModelKey: "uuid:unchecked", Value: "anything"}); err != nil {
		t.Fatal(err)
	}
	// Mixed batch: one bad reference poisons the batch.
	err = r.ValidateValues(
		KeyedReference{TModelKey: naicsKey, Value: "111330"},
		KeyedReference{TModelKey: naicsKey, Value: "badcode"},
	)
	if err == nil {
		t.Fatal("bad batch accepted")
	}
}
