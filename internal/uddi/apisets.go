package uddi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rim"
)

// This file adds the remaining thesis-enumerated UDDI API sets
// (§1.3.1.5) beyond Inquiry/Publication/Security: Custody Transfer
// (get_transferToken / transfer_entity), Subscription (save_subscription /
// get_subscriptionResults / delete_subscription), and Validation
// (validate_values against registered checked tModels).

// --- Custody Transfer API set ----------------------------------------------

// transferToken authorizes moving entity custody between publishers.
type transferToken struct {
	keys      []string
	fromOwner string
	expires   time.Time
}

// custodyState holds the registry's outstanding transfer tokens.
type custodyState struct {
	mu     sync.Mutex
	tokens map[string]*transferToken // guarded by mu
}

func (r *Registry) custody() *custodyState {
	r.custodyOnce.Do(func() {
		r.custodyTokens = &custodyState{tokens: make(map[string]*transferToken)}
	})
	return r.custodyTokens
}

// GetTransferToken lets the current owner authorize transferring custody of
// the given entity keys; the returned token is presented by the receiving
// publisher to TransferEntity (UDDI v3 custody transfer).
func (r *Registry) GetTransferToken(authToken string, keys ...string) (string, error) {
	pub, err := r.publisher(authToken)
	if err != nil {
		return "", err
	}
	if len(keys) == 0 {
		return "", fmt.Errorf("uddi: transfer token needs at least one key")
	}
	r.mu.RLock()
	for _, k := range keys {
		owner, ok := r.owners[k]
		if !ok {
			r.mu.RUnlock()
			return "", fmt.Errorf("%w: entity %s", ErrNotFound, k)
		}
		if owner != pub {
			r.mu.RUnlock()
			return "", fmt.Errorf("uddi: %s does not own %s", pub, k)
		}
	}
	r.mu.RUnlock()

	tok := rim.NewUUID()
	c := r.custody()
	c.mu.Lock()
	c.tokens[tok] = &transferToken{keys: keys, fromOwner: pub, expires: r.now().Add(time.Hour)}
	c.mu.Unlock()
	return tok, nil
}

// DiscardTransferToken cancels an outstanding transfer.
func (r *Registry) DiscardTransferToken(transferTok string) {
	c := r.custody()
	c.mu.Lock()
	delete(c.tokens, transferTok)
	c.mu.Unlock()
}

// TransferEntity moves custody of the token's entities to the caller.
func (r *Registry) TransferEntity(authToken, transferTok string) error {
	pub, err := r.publisher(authToken)
	if err != nil {
		return err
	}
	c := r.custody()
	c.mu.Lock()
	t, ok := c.tokens[transferTok]
	if ok {
		delete(c.tokens, transferTok)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("uddi: unknown transfer token")
	}
	if r.now().After(t.expires) {
		return fmt.Errorf("uddi: transfer token expired")
	}
	if pub == t.fromOwner {
		return fmt.Errorf("uddi: cannot transfer custody to the same publisher")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range t.keys {
		// Verify custody did not move since the token was issued.
		if r.owners[k] != t.fromOwner {
			return fmt.Errorf("uddi: custody of %s changed since token issue", k)
		}
	}
	for _, k := range t.keys {
		r.owners[k] = pub
	}
	return nil
}

// OwnerOf reports the publisher owning an entity key (for tests/tools).
func (r *Registry) OwnerOf(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner, ok := r.owners[key]
	return owner, ok
}

// --- Subscription API set -----------------------------------------------------

// uddiSubscription tracks a name-pattern interest in business changes.
type uddiSubscription struct {
	id          string
	publisher   string
	namePattern string
	lastSeen    time.Time
}

type subscriptionState struct {
	mu      sync.Mutex
	subs    map[string]*uddiSubscription // guarded by mu
	changes []changeRecord               // guarded by mu
}

type changeRecord struct {
	at   time.Time
	key  string
	name string
	op   string // "save" | "delete"
}

func (r *Registry) subscriptions() *subscriptionState {
	r.subsOnce.Do(func() {
		r.subsState = &subscriptionState{subs: make(map[string]*uddiSubscription)}
	})
	return r.subsState
}

// recordChange appends to the change log consumed by subscriptions.
func (r *Registry) recordChange(op, key, name string) {
	s := r.subscriptions()
	s.mu.Lock()
	s.changes = append(s.changes, changeRecord{at: r.now(), key: key, name: name, op: op})
	s.mu.Unlock()
}

// SaveSubscription registers interest in businesses whose names match the
// pattern, returning the subscription key.
func (r *Registry) SaveSubscription(authToken, namePattern string) (string, error) {
	pub, err := r.publisher(authToken)
	if err != nil {
		return "", err
	}
	s := r.subscriptions()
	sub := &uddiSubscription{id: rim.NewUUID(), publisher: pub, namePattern: namePattern, lastSeen: r.now()}
	s.mu.Lock()
	s.subs[sub.id] = sub
	s.mu.Unlock()
	return sub.id, nil
}

// DeleteSubscription removes a subscription, reporting whether it existed.
func (r *Registry) DeleteSubscription(authToken, subID string) (bool, error) {
	if _, err := r.publisher(authToken); err != nil {
		return false, err
	}
	s := r.subscriptions()
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.subs[subID]
	delete(s.subs, subID)
	return ok, nil
}

// SubscriptionResult is one change reported by GetSubscriptionResults.
type SubscriptionResult struct {
	Key  string
	Name string
	Op   string
}

// GetSubscriptionResults returns the matching changes since the
// subscription's previous poll and advances its cursor — the thesis's
// "returns registry data that has changed for a particular subscription
// within a specified time period".
func (r *Registry) GetSubscriptionResults(authToken, subID string) ([]SubscriptionResult, error) {
	pub, err := r.publisher(authToken)
	if err != nil {
		return nil, err
	}
	s := r.subscriptions()
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.subs[subID]
	if !ok || sub.publisher != pub {
		return nil, fmt.Errorf("%w: subscription %s", ErrNotFound, subID)
	}
	var out []SubscriptionResult
	for _, c := range s.changes {
		if !c.at.After(sub.lastSeen) {
			continue
		}
		if !likeMatchFold(c.name, sub.namePattern) {
			continue
		}
		out = append(out, SubscriptionResult{Key: c.key, Name: c.name, Op: c.op})
	}
	sub.lastSeen = r.now()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func likeMatchFold(name, pattern string) bool {
	// Reuse the store's LIKE semantics without importing it twice: simple
	// case-insensitive % matching via strings.
	return matchLike(strings.ToLower(name), strings.ToLower(pattern))
}

func matchLike(s, p string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// --- Validation API set ----------------------------------------------------

// RegisterCheckedTModel marks a tModel as a checked value set with the
// given permitted values; keyedReferences citing it are then validated.
func (r *Registry) RegisterCheckedTModel(authToken string, tm *TModel, validValues ...string) (string, error) {
	key, err := r.SaveTModel(authToken, tm)
	if err != nil {
		return "", err
	}
	r.validOnce.Do(func() { r.validValues = make(map[string]map[string]bool) })
	set := make(map[string]bool, len(validValues))
	for _, v := range validValues {
		set[v] = true
	}
	r.mu.Lock()
	r.validValues[key] = set
	r.mu.Unlock()
	return key, nil
}

// ValidateValues implements validate_values: every keyedReference citing a
// checked tModel must use one of its registered values; references to
// unchecked tModels pass.
func (r *Registry) ValidateValues(refs ...KeyedReference) error {
	r.validOnce.Do(func() { r.validValues = make(map[string]map[string]bool) })
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ref := range refs {
		set, checked := r.validValues[ref.TModelKey]
		if !checked {
			continue
		}
		if !set[ref.Value] {
			return fmt.Errorf("uddi: value %q is not valid for checked tModel %s", ref.Value, ref.TModelKey)
		}
	}
	return nil
}
