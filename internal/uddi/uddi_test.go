package uddi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qm"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

func newSeeded(t *testing.T) (*Registry, string, *BusinessEntity) {
	t.Helper()
	r := New()
	tok := r.GetAuthToken("publisher-1")
	be := &BusinessEntity{
		Name:        "San Diego State University",
		Description: "university",
		Contacts:    []Contact{{UseType: "general info", PersonName: "Ops", Phone: "619-594-5200"}},
		CategoryBag: []KeyedReference{{TModelKey: "uuid:naics", Name: "NAICS", Value: "6113"}},
		Services: []*BusinessService{{
			Name: "Adder",
			Bindings: []*BindingTemplate{
				{AccessPoint: "http://thermo.sdsu.edu:8080/Adder"},
				{AccessPoint: "http://exergy.sdsu.edu:8080/Adder"},
			},
		}},
	}
	if _, err := r.SaveBusiness(tok, be); err != nil {
		t.Fatal(err)
	}
	return r, tok, be
}

func TestSaveAssignsKeysAndOwnership(t *testing.T) {
	r, tok, be := newSeeded(t)
	if be.BusinessKey == "" || be.Services[0].ServiceKey == "" || be.Services[0].Bindings[0].BindingKey == "" {
		t.Fatalf("keys not assigned: %+v", be)
	}
	// Another publisher cannot replace it.
	tok2 := r.GetAuthToken("publisher-2")
	stolen := &BusinessEntity{BusinessKey: be.BusinessKey, Name: "Evil"}
	if _, err := r.SaveBusiness(tok2, stolen); err == nil {
		t.Fatal("foreign overwrite accepted")
	}
	_ = tok
}

func TestAuthTokenLifecycle(t *testing.T) {
	r := New()
	if _, err := r.SaveBusiness("bogus", &BusinessEntity{Name: "X"}); !errors.Is(err, ErrAuth) {
		t.Fatalf("bogus token: %v", err)
	}
	tok := r.GetAuthToken("p")
	if _, err := r.SaveBusiness(tok, &BusinessEntity{Name: "X"}); err != nil {
		t.Fatal(err)
	}
	r.DiscardAuthToken(tok)
	if _, err := r.SaveBusiness(tok, &BusinessEntity{Name: "Y"}); !errors.Is(err, ErrAuth) {
		t.Fatalf("discarded token: %v", err)
	}
}

func TestInquiryAPIs(t *testing.T) {
	r, _, be := newSeeded(t)
	if got := r.FindBusiness("San Diego%"); len(got) != 1 {
		t.Fatalf("FindBusiness = %d", len(got))
	}
	if got := r.FindService("", "Adder"); len(got) != 1 {
		t.Fatalf("FindService = %d", len(got))
	}
	if got := r.FindService(be.BusinessKey, "%"); len(got) != 1 {
		t.Fatalf("FindService scoped = %d", len(got))
	}
	if got := r.FindService("uuid:other", "%"); len(got) != 0 {
		t.Fatalf("FindService wrong scope = %d", len(got))
	}
	svcKey := be.Services[0].ServiceKey
	bindings := r.FindBinding(svcKey)
	if len(bindings) != 2 || bindings[0].AccessPoint != "http://thermo.sdsu.edu:8080/Adder" {
		t.Fatalf("FindBinding = %+v", bindings)
	}
	if r.FindBinding("uuid:ghost") != nil {
		t.Fatal("ghost service bindings")
	}
	if _, err := r.GetBusinessDetail(be.BusinessKey); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetServiceDetail(svcKey); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetBindingDetail(bindings[0].BindingKey); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []func() error{
		func() error { _, err := r.GetBusinessDetail("x"); return err },
		func() error { _, err := r.GetServiceDetail("x"); return err },
		func() error { _, err := r.GetBindingDetail("x"); return err },
		func() error { _, err := r.GetTModelDetail("x"); return err },
	} {
		if err := bad(); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing detail: %v", err)
		}
	}
}

func TestTModels(t *testing.T) {
	r := New()
	tok := r.GetAuthToken("p")
	key, err := r.SaveTModel(tok, &TModel{Name: "unspsc-org:unspsc:3-1", OverviewURL: "http://www.unspsc.org"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FindTModel("unspsc%"); len(got) != 1 || got[0].TModelKey != key {
		t.Fatalf("FindTModel = %+v", got)
	}
}

func TestSaveServiceUnderBusiness(t *testing.T) {
	r, tok, be := newSeeded(t)
	svc := &BusinessService{BusinessKey: be.BusinessKey, Name: "NodeStatus",
		Bindings: []*BindingTemplate{{AccessPoint: "http://volta.sdsu.edu:8080/NS"}}}
	if _, err := r.SaveService(tok, svc); err != nil {
		t.Fatal(err)
	}
	if got := r.FindService(be.BusinessKey, "%"); len(got) != 2 {
		t.Fatalf("services = %d", len(got))
	}
	// Unknown business rejected.
	if _, err := r.SaveService(tok, &BusinessService{BusinessKey: "uuid:ghost", Name: "X"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost business: %v", err)
	}
}

func TestDeleteBusinessCascades(t *testing.T) {
	r, tok, be := newSeeded(t)
	svcKey := be.Services[0].ServiceKey
	btKey := be.Services[0].Bindings[0].BindingKey
	if err := r.DeleteBusiness(tok, be.BusinessKey); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetServiceDetail(svcKey); err == nil {
		t.Fatal("service survived")
	}
	if _, err := r.GetBindingDetail(btKey); err == nil {
		t.Fatal("binding survived")
	}
	// Foreign delete rejected.
	r2, _, be2 := newSeeded(t)
	tok2 := r2.GetAuthToken("someone-else")
	if err := r2.DeleteBusiness(tok2, be2.BusinessKey); err == nil {
		t.Fatal("foreign delete accepted")
	}
}

func TestPublisherAssertionsRequireBothSides(t *testing.T) {
	r := New()
	tokA := r.GetAuthToken("companyA")
	tokB := r.GetAuthToken("companyB")
	beA := &BusinessEntity{Name: "Company A"}
	beB := &BusinessEntity{Name: "Company B"}
	r.SaveBusiness(tokA, beA)
	r.SaveBusiness(tokB, beB)

	pa := PublisherAssertion{FromKey: beA.BusinessKey, ToKey: beB.BusinessKey,
		KeyedReference: KeyedReference{Name: "partner", Value: "peer-peer"}}
	if err := r.AddPublisherAssertion(tokA, pa); err != nil {
		t.Fatal(err)
	}
	// One-sided: invisible.
	if got := r.FindRelatedBusinesses(beA.BusinessKey); len(got) != 0 {
		t.Fatalf("one-sided assertion visible: %v", got)
	}
	if err := r.AddPublisherAssertion(tokB, pa); err != nil {
		t.Fatal(err)
	}
	got := r.FindRelatedBusinesses(beA.BusinessKey)
	if len(got) != 1 || got[0].BusinessKey != beB.BusinessKey {
		t.Fatalf("related = %+v", got)
	}
}

// TestC1FeatureComparison is experiment C1: the code-checkable rows of
// Table 1.1. The UDDI side reports its capability map; the ebXML side is
// probed against the real registry implementation.
func TestC1FeatureComparison(t *testing.T) {
	caps := Capabilities()
	for _, missing := range []string{"repository", "sql-query", "approval-lifecycle", "host-state-discovery"} {
		if caps[missing] {
			t.Errorf("uddi claims %s", missing)
		}
	}
	for _, present := range []string{"publish", "find", "publisher-assertions"} {
		if !caps[present] {
			t.Errorf("uddi misses %s", present)
		}
	}

	// ebXML side: all four "missing" features demonstrably work.
	clk := simclock.NewManual(time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC))
	reg, err := registry.New(registry.Config{Clock: clk, Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	// repository:
	reg.Store.PutContent("wsdl-1", []byte("<definitions/>"))
	if _, err := reg.Store.GetContent("wsdl-1"); err != nil {
		t.Error("ebxml repository missing")
	}
	// sql-query:
	if _, err := reg.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{Query: "SELECT host FROM NodeState"}); err != nil {
		t.Errorf("ebxml sql query: %v", err)
	}
	// approval-lifecycle:
	svc := rim.NewService("S", "")
	svc.AddBinding("http://h.example/x")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	if err := reg.LCM.ApproveObjects(reg.AdminContext(), svc.ID); err != nil {
		t.Errorf("ebxml approval: %v", err)
	}
	// host-state-discovery:
	reg.Store.NodeState().Upsert(store.NodeState{Host: "h.example", Load: 0.5, MemoryB: 1 << 30, SwapB: 1 << 30, Updated: clk.Now()})
	if _, _, err := reg.QM.GetServiceBindings(svc.ID); err != nil {
		t.Errorf("ebxml host-state discovery: %v", err)
	}
	if Normalize("SQL-Query") != "sql-query" {
		t.Error("Normalize broken")
	}
}
