// Package simclock provides a Clock abstraction so that every time-dependent
// component in the registry — the NodeStatus collector, time-of-day
// constraints, host load dynamics, audit timestamps — can run against either
// the real wall clock or a deterministic, manually advanced virtual clock.
//
// The thesis's scheme is deeply time-sensitive: NodeState rows are polled
// every 25 seconds, constraints carry military-time service windows, and
// load averages decay exponentially. Reproducing those behaviours in tests
// and benchmarks requires a clock that can be advanced by exact amounts,
// which is what Manual provides. Real wraps the system clock for the
// binaries in cmd/.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
//
// Timer-style waiting is expressed with After; components that poll (such as
// the nodestate collector) use After rather than time.Sleep so that a Manual
// clock can release them deterministically.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the operating system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a deterministic Clock that only moves when Advance or Set is
// called. It is safe for concurrent use. Waiters registered through After
// or Sleep fire exactly when the virtual time passes their deadline,
// regardless of the order in which they were registered.
type Manual struct {
	mu      sync.Mutex
	now     time.Time // guarded by mu
	waiters []*waiter // guarded by mu
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock positioned at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel has capacity 1 so Advance
// never blocks on an abandoned waiter.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// Set jumps the clock to t (which must not be earlier than the current
// time; earlier values are ignored) and fires any waiters whose deadlines
// have passed.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.Before(m.now) {
		return
	}
	m.now = t
	m.fireLocked()
}

// Advance moves the clock forward by d and fires due waiters in deadline
// order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	m.fireLocked()
}

// PendingWaiters reports how many After/Sleep callers are still waiting.
// It is useful for tests that need to know a poller has parked before
// advancing time.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

func (m *Manual) fireLocked() {
	if len(m.waiters) == 0 {
		return
	}
	sort.SliceStable(m.waiters, func(i, j int) bool {
		return m.waiters[i].deadline.Before(m.waiters[j].deadline)
	})
	var remaining []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(m.now) {
			w.ch <- m.now
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
}
