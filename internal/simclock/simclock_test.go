package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func TestManualNowAndAdvance(t *testing.T) {
	c := NewManual(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), epoch)
	}
	c.Advance(25 * time.Second)
	want := epoch.Add(25 * time.Second)
	if !c.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", c.Now(), want)
	}
}

func TestManualSetIgnoresPast(t *testing.T) {
	c := NewManual(epoch)
	c.Set(epoch.Add(-time.Hour))
	if !c.Now().Equal(epoch) {
		t.Fatalf("Set backwards moved the clock to %v", c.Now())
	}
	c.Set(epoch.Add(time.Minute))
	if !c.Now().Equal(epoch.Add(time.Minute)) {
		t.Fatalf("Set forwards did not move the clock")
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	c := NewManual(epoch)
	ch10 := c.After(10 * time.Second)
	ch5 := c.After(5 * time.Second)

	c.Advance(7 * time.Second)
	select {
	case got := <-ch5:
		if !got.Equal(epoch.Add(7 * time.Second)) {
			t.Fatalf("ch5 delivered %v", got)
		}
	default:
		t.Fatal("5s waiter did not fire after 7s advance")
	}
	select {
	case <-ch10:
		t.Fatal("10s waiter fired after only 7s")
	default:
	}

	c.Advance(3 * time.Second)
	select {
	case <-ch10:
	default:
		t.Fatal("10s waiter did not fire after 10s total")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	c := NewManual(epoch)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestManualSleepReleasedByAdvance(t *testing.T) {
	c := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(30 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to park.
	for i := 0; i < 1000 && c.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if c.PendingWaiters() != 1 {
		t.Fatal("sleeper never parked")
	}
	c.Advance(30 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep not released by Advance")
	}
}

func TestManualConcurrentWaiters(t *testing.T) {
	c := NewManual(epoch)
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i%10+1) * time.Second)
		}(i)
	}
	for i := 0; i < 5000 && c.PendingWaiters() < n; i++ {
		time.Sleep(time.Millisecond)
	}
	c.Advance(10 * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only released %d waiters", n-c.PendingWaiters())
	}
}

func TestRealClockMonotoneEnough(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
