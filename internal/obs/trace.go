package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// Span and attribute capacities are fixed so a sampled request records
// into preallocated buffers: starting a trace is one allocation, and
// recording a span or attribute is none.
const (
	// MaxSpans bounds the spans one trace can hold. The discovery path
	// records four (constraint, snapshot, evaluate, arrange) plus the
	// store view lookup; the headroom is for future instrumentation.
	MaxSpans = 8
	// MaxAttrs bounds the key/value attributes one trace can hold.
	MaxAttrs = 16
	// DefaultRingSize is the trace ring capacity when the caller does not
	// choose one.
	DefaultRingSize = 256
)

// Span is one timed step of a traced request.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
}

// Attr is one key/value annotation on a trace.
type Attr struct {
	Key   string
	Value string
}

// Trace records one sampled request: an identifier echoed to the client
// in the X-Registry-Trace header, wall-or-sim-clock span timings, and
// free-form attributes. A Trace is written by the single goroutine
// serving its request and becomes visible to readers only after Finish
// publishes it to the tracer's ring, so no internal locking is needed.
//
// All methods are safe on a nil receiver and do nothing, which is how
// the fast path stays allocation-free when sampling is disabled: callers
// thread a nil *Trace through unconditionally.
type Trace struct {
	// ID is the trace identifier ("<epoch>-<seq>", hex).
	ID string
	// Start and End delimit the whole request on the tracer's clock.
	Start time.Time
	End   time.Time

	seq    uint64
	clock  simclock.Clock
	nspans int
	spans  [MaxSpans]Span
	nattrs int
	attrs  [MaxAttrs]Attr
}

// BeginSpan starts a named span at the clock's current time and returns
// its index for EndSpan. On a nil trace or a full span buffer it returns
// -1, which EndSpan ignores.
//
//repolint:hotpath warm discovery chain: nil-receiver no-op when unsampled
func (t *Trace) BeginSpan(name string) int {
	if t == nil || t.nspans >= MaxSpans {
		return -1
	}
	i := t.nspans
	t.nspans++
	t.spans[i] = Span{Name: name, Start: t.clock.Now()}
	return i
}

// EndSpan closes the span opened by BeginSpan. Indices outside the open
// range (notably -1) are ignored.
//
//repolint:hotpath warm discovery chain: nil-receiver no-op when unsampled
func (t *Trace) EndSpan(i int) {
	if t == nil || i < 0 || i >= t.nspans {
		return
	}
	t.spans[i].End = t.clock.Now()
}

// SetAttr records a key/value annotation; extra attributes beyond
// MaxAttrs are dropped. Safe on a nil trace.
//
//repolint:hotpath warm discovery chain: nil-receiver no-op when unsampled
func (t *Trace) SetAttr(key, value string) {
	if t == nil || t.nattrs >= MaxAttrs {
		return
	}
	t.attrs[t.nattrs] = Attr{Key: key, Value: value}
	t.nattrs++
}

// Spans returns the recorded spans in order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.nspans]
}

// Attrs returns the recorded attributes in order.
func (t *Trace) Attrs() []Attr {
	if t == nil {
		return nil
	}
	return t.attrs[:t.nattrs]
}

// Duration is End-Start (zero before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil || t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// Tracer samples requests into Traces and retains the most recent ones in
// a bounded lock-free ring buffer for the /registry/traces endpoint and
// the web UI. The zero sampling rate (the default) disables tracing
// entirely: Start returns nil and nothing is ever allocated or stored.
type Tracer struct {
	clock simclock.Clock
	epoch uint32 // hash of construction time, distinguishes restarts

	sample  atomic.Int64  // record every Nth request; 0 = off
	reqs    atomic.Uint64 // requests offered to the sampler
	seq     atomic.Uint64 // traces started
	sampled atomic.Int64  // traces finished into the ring

	ring []atomic.Pointer[Trace]
}

// NewTracer creates a tracer on the given clock with a ring of ringSize
// finished traces (ringSize <= 0 means DefaultRingSize). Sampling starts
// disabled; call SetSample to enable.
func NewTracer(clock simclock.Clock, ringSize int) *Tracer {
	if clock == nil {
		clock = simclock.Real{}
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%d", clock.Now().UnixNano())
	return &Tracer{
		clock: clock,
		epoch: h.Sum32(),
		ring:  make([]atomic.Pointer[Trace], ringSize),
	}
}

// SetSample sets the sampling rate: every nth request is traced; n <= 0
// disables tracing, n == 1 traces every request.
func (tr *Tracer) SetSample(n int) {
	if tr == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	tr.sample.Store(int64(n))
}

// Sample returns the current sampling rate (0 = disabled).
func (tr *Tracer) Sample() int {
	if tr == nil {
		return 0
	}
	return int(tr.sample.Load())
}

// SampledTotal returns the number of traces finished into the ring.
func (tr *Tracer) SampledTotal() int64 {
	if tr == nil {
		return 0
	}
	return tr.sampled.Load()
}

// Start returns a new trace when the sampler admits this request, nil
// otherwise (and always nil on a nil tracer). The nil result is usable:
// every Trace method is a no-op on nil.
func (tr *Tracer) Start() *Trace {
	if tr == nil {
		return nil
	}
	n := tr.sample.Load()
	if n <= 0 {
		return nil
	}
	if req := tr.reqs.Add(1); n > 1 && (req-1)%uint64(n) != 0 {
		return nil
	}
	seq := tr.seq.Add(1)
	return &Trace{
		ID:    fmt.Sprintf("%08x-%06x", tr.epoch, seq),
		seq:   seq,
		clock: tr.clock,
		Start: tr.clock.Now(),
	}
}

// Finish stamps the trace's end time and publishes it to the ring,
// overwriting the oldest entry once full. Safe with a nil tracer or
// trace.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.End = tr.clock.Now()
	tr.ring[(t.seq-1)%uint64(len(tr.ring))].Store(t)
	tr.sampled.Add(1)
}

// Recent returns up to n finished traces, newest first. n <= 0 means the
// whole ring.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	out := make([]*Trace, 0, len(tr.ring))
	for i := range tr.ring {
		if t := tr.ring[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Get returns the finished trace with the given ID, or nil if it has
// aged out of the ring (or never existed).
func (tr *Tracer) Get(id string) *Trace {
	if tr == nil {
		return nil
	}
	for i := range tr.ring {
		if t := tr.ring[i].Load(); t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// TraceExport is the JSON shape of one trace on /registry/traces.
type TraceExport struct {
	ID         string       `json:"id"`
	Start      time.Time    `json:"start"`
	End        time.Time    `json:"end"`
	DurationUs float64      `json:"durationUs"`
	Spans      []SpanExport `json:"spans"`
	Attrs      []Attr       `json:"attrs,omitempty"`
}

// SpanExport is the JSON shape of one span.
type SpanExport struct {
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUs float64   `json:"durationUs"`
}

// Export renders the trace for JSON serving.
func (t *Trace) Export() TraceExport {
	e := TraceExport{
		ID:         t.ID,
		Start:      t.Start,
		End:        t.End,
		DurationUs: float64(t.Duration()) / float64(time.Microsecond),
		Attrs:      append([]Attr(nil), t.Attrs()...),
	}
	for _, s := range t.Spans() {
		e.Spans = append(e.Spans, SpanExport{
			Name:       s.Name,
			Start:      s.Start,
			DurationUs: float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
		})
	}
	return e
}
