// slo.go derives multi-window burn rates from the cumulative discovery
// counters, Google-SRE style: a burn rate of 1 means the error budget is
// being consumed exactly as fast as the SLO allows; sustained rates far
// above 1 on the short window mean the budget will be gone within hours.
// Samples are cut each collector sweep on the registry clock (wall or
// simulated), so the engine is deterministic under simclock tests.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SLOConfig fixes the objectives the burn rates are computed against.
type SLOConfig struct {
	// AvailabilityTarget is the success-rate objective, e.g. 0.999.
	AvailabilityTarget float64
	// LatencyObjectiveSeconds is the latency threshold, e.g. 0.25.
	LatencyObjectiveSeconds float64
	// LatencyTargetQuantile is the fraction of requests that must land
	// at or below the threshold, e.g. 0.99.
	LatencyTargetQuantile float64
	// Windows are the lookback spans burn rates are reported over.
	Windows []SLOWindow
}

// SLOWindow is one burn-rate lookback span.
type SLOWindow struct {
	Name string
	Span time.Duration
}

// DefaultSLOConfig is the registry's stock objective: 99.9% of discovery
// requests succeed and 99% finish within 250ms (the top finite bucket of
// the discovery latency histogram), judged over 5-minute and 1-hour
// windows.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		AvailabilityTarget:      0.999,
		LatencyObjectiveSeconds: 0.25,
		LatencyTargetQuantile:   0.99,
		Windows: []SLOWindow{
			{Name: "5m", Span: 5 * time.Minute},
			{Name: "1h", Span: time.Hour},
		},
	}
}

// sloSample is one cumulative-counter cut.
type sloSample struct {
	at                          time.Time
	total, errors, latCnt, slow int64
}

// sloRingSize bounds sample history. At a 10s sweep period it holds ~11
// hours; a window longer than the retained history is judged over all of
// it (the standard young-process approximation).
const sloRingSize = 4096

// SLOBurn is one window's burn-rate pair.
type SLOBurn struct {
	Availability float64 `json:"availability"`
	Latency      float64 `json:"latency"`
}

// SLO turns cumulative counter cuts into per-window burn rates. Safe on
// a nil receiver.
type SLO struct {
	cfg SLOConfig

	mu      sync.Mutex
	samples [sloRingSize]sloSample
	n       int // samples ever recorded

	burns atomic.Pointer[map[string]SLOBurn]
}

// NewSLO creates a burn-rate engine for cfg.
func NewSLO(cfg SLOConfig) *SLO {
	s := &SLO{cfg: cfg}
	zero := make(map[string]SLOBurn, len(cfg.Windows))
	for _, w := range cfg.Windows {
		zero[w.Name] = SLOBurn{}
	}
	s.burns.Store(&zero)
	return s
}

// Config returns the objectives the engine judges against.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Record cuts one sample of the cumulative discovery counters at now:
// requests served, requests failed, latency observations, and latency
// observations above the objective. It recomputes every window's burn
// rates so scrapes are pure loads.
func (s *SLO) Record(now time.Time, total, errors, latCnt, slow int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples[s.n%sloRingSize] = sloSample{at: now, total: total, errors: errors, latCnt: latCnt, slow: slow}
	s.n++
	next := make(map[string]SLOBurn, len(s.cfg.Windows))
	for _, w := range s.cfg.Windows {
		base := s.baselineLocked(now.Add(-w.Span))
		next[w.Name] = SLOBurn{
			Availability: burnRate(errors-base.errors, total-base.total, 1-s.cfg.AvailabilityTarget),
			Latency:      burnRate(slow-base.slow, latCnt-base.latCnt, 1-s.cfg.LatencyTargetQuantile),
		}
	}
	s.burns.Store(&next)
}

// baselineLocked returns the newest retained sample at or before cutoff,
// or the zero sample when history is shorter than the window.
func (s *SLO) baselineLocked(cutoff time.Time) sloSample {
	retained := s.n
	if retained > sloRingSize {
		retained = sloRingSize
	}
	// Walk newest to oldest; samples are recorded in time order.
	for i := 1; i <= retained; i++ {
		smp := s.samples[(s.n-i)%sloRingSize]
		if !smp.at.After(cutoff) {
			return smp
		}
	}
	return sloSample{}
}

// burnRate is (bad/total) / budget: the rate the error budget is being
// consumed relative to the objective. An empty window burns nothing.
func burnRate(bad, total int64, budget float64) float64 {
	if total <= 0 || budget <= 0 {
		return 0
	}
	if bad < 0 {
		bad = 0
	}
	return (float64(bad) / float64(total)) / budget
}

// BurnRates returns the most recent per-window burn rates.
func (s *SLO) BurnRates() map[string]SLOBurn {
	if s == nil {
		return map[string]SLOBurn{}
	}
	return *s.burns.Load()
}

// BurnRate returns one window's pair (zero when the window is unknown).
func (s *SLO) BurnRate(window string) SLOBurn {
	return s.BurnRates()[window]
}
