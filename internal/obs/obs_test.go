package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func manualClock(t *testing.T) *simclock.Manual {
	t.Helper()
	return simclock.NewManual(time.Date(2011, 4, 22, 9, 0, 0, 0, time.UTC))
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	i := tr.BeginSpan("x")
	if i != -1 {
		t.Fatalf("nil BeginSpan = %d, want -1", i)
	}
	tr.EndSpan(i)
	tr.SetAttr("k", "v")
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil Spans = %v, want nil", got)
	}
	if got := tr.Attrs(); got != nil {
		t.Fatalf("nil Attrs = %v, want nil", got)
	}
	if d := tr.Duration(); d != 0 {
		t.Fatalf("nil Duration = %v, want 0", d)
	}
	var tc *Tracer
	if got := tc.Start(); got != nil {
		t.Fatalf("nil tracer Start = %v, want nil", got)
	}
	tc.Finish(nil)
	tc.SetSample(1)
	if tc.Sample() != 0 || tc.SampledTotal() != 0 || tc.Recent(1) != nil || tc.Get("x") != nil {
		t.Fatal("nil tracer accessors not zero-valued")
	}
}

func TestTracerSamplingDisabledByDefault(t *testing.T) {
	tc := NewTracer(manualClock(t), 4)
	for i := 0; i < 10; i++ {
		if tr := tc.Start(); tr != nil {
			t.Fatalf("Start with sampling off returned %v", tr)
		}
	}
}

func TestTracerEveryNth(t *testing.T) {
	tc := NewTracer(manualClock(t), 16)
	tc.SetSample(3)
	var got int
	for i := 0; i < 9; i++ {
		if tr := tc.Start(); tr != nil {
			got++
			tc.Finish(tr)
		}
	}
	if got != 3 {
		t.Fatalf("sample=3 over 9 requests traced %d, want 3", got)
	}
	if tc.SampledTotal() != 3 {
		t.Fatalf("SampledTotal = %d, want 3", tc.SampledTotal())
	}
}

func TestTraceSpansAndExport(t *testing.T) {
	clk := manualClock(t)
	tc := NewTracer(clk, 4)
	tc.SetSample(1)
	tr := tc.Start()
	if tr == nil {
		t.Fatal("Start returned nil with sample=1")
	}
	i := tr.BeginSpan("constraint")
	clk.Advance(50 * time.Microsecond)
	tr.EndSpan(i)
	j := tr.BeginSpan("arrange")
	clk.Advance(100 * time.Microsecond)
	tr.EndSpan(j)
	tr.SetAttr("service", "svc-1")
	clk.Advance(25 * time.Microsecond)
	tc.Finish(tr)

	if tr.Duration() != 175*time.Microsecond {
		t.Fatalf("Duration = %v, want 175µs", tr.Duration())
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "constraint" || spans[1].Name != "arrange" {
		t.Fatalf("spans = %+v", spans)
	}
	e := tr.Export()
	if e.ID != tr.ID || len(e.Spans) != 2 || e.Spans[0].DurationUs != 50 || e.Spans[1].DurationUs != 100 {
		t.Fatalf("export = %+v", e)
	}
	if _, err := json.Marshal(e); err != nil {
		t.Fatalf("export marshal: %v", err)
	}
	if got := tc.Get(tr.ID); got != tr {
		t.Fatalf("Get(%q) = %v, want the finished trace", tr.ID, got)
	}
}

func TestTraceSpanOverflow(t *testing.T) {
	tc := NewTracer(manualClock(t), 4)
	tc.SetSample(1)
	tr := tc.Start()
	for i := 0; i < MaxSpans; i++ {
		if idx := tr.BeginSpan("s"); idx != i {
			t.Fatalf("span %d got index %d", i, idx)
		}
	}
	if idx := tr.BeginSpan("overflow"); idx != -1 {
		t.Fatalf("overflow span index = %d, want -1", idx)
	}
	tr.EndSpan(-1) // must not panic
	for i := 0; i < MaxAttrs+3; i++ {
		tr.SetAttr("k", "v")
	}
	if len(tr.Attrs()) != MaxAttrs {
		t.Fatalf("attrs = %d, want capped at %d", len(tr.Attrs()), MaxAttrs)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tc := NewTracer(manualClock(t), 4)
	tc.SetSample(1)
	var last *Trace
	for i := 0; i < 10; i++ {
		tr := tc.Start()
		tc.Finish(tr)
		last = tr
	}
	recent := tc.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	if recent[0] != last {
		t.Fatalf("newest trace = %v, want %v", recent[0].ID, last.ID)
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].seq <= recent[i].seq {
			t.Fatal("Recent not newest-first")
		}
	}
	if got := tc.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) = %d traces", len(got))
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if tr := TraceFrom(ctx); tr != nil {
		t.Fatalf("empty context trace = %v", tr)
	}
	if got := WithTrace(ctx, nil); got != ctx {
		t.Fatal("WithTrace(nil) should return ctx unchanged")
	}
	tc := NewTracer(manualClock(t), 4)
	tc.SetSample(1)
	tr := tc.Start()
	ctx = WithTrace(ctx, tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %v, want %v", got, tr)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogramMetric(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("Sum = %v, want 55.65", h.Sum())
	}
	counts, _, _ := h.snapshot()
	want := []int64{2, 1, 1, 1} // le=0.1 gets 0.05 and 0.1 (upper bounds inclusive)
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], counts)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogramMetric(DiscoveryLatencyBuckets()...)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*each)
	}
	if math.Abs(h.Sum()-goroutines*each*1e-4) > 1e-6 {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	e := NewExposition()
	e.Counter("registry_cache_hits_total", "Cache hits.", func() int64 { return 42 })
	e.LabelledCounter("registry_verdicts_total", "Verdicts.", "verdict", "eligible", func() int64 { return 7 })
	e.LabelledCounter("registry_verdicts_total", "Verdicts.", "verdict", "unknown", func() int64 { return 3 })
	e.Gauge("registry_rows", "Rows.", func() float64 { return 12.5 })
	e.GaugeVec("registry_breaker_state", "Breaker state per host.", "host", func() map[string]float64 {
		return map[string]float64{"h1:8080": 0, `h"2\x`: 2}
	})
	h := NewHistogramMetric(0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	e.RegisterHistogram("registry_latency_seconds", "Latency.", h)

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	text := buf.String()
	s, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	check := func(name string, labels map[string]string, want float64) {
		t.Helper()
		got, ok := s.Value(name, labels)
		if !ok {
			t.Fatalf("missing sample %s %v in:\n%s", name, labels, text)
		}
		if got != want {
			t.Fatalf("%s %v = %v, want %v", name, labels, got, want)
		}
	}
	check("registry_cache_hits_total", nil, 42)
	check("registry_verdicts_total", map[string]string{"verdict": "eligible"}, 7)
	check("registry_verdicts_total", map[string]string{"verdict": "unknown"}, 3)
	check("registry_rows", nil, 12.5)
	check("registry_breaker_state", map[string]string{"host": "h1:8080"}, 0)
	check("registry_breaker_state", map[string]string{"host": `h"2\x`}, 2)
	check("registry_latency_seconds_bucket", map[string]string{"le": "0.001"}, 1)
	check("registry_latency_seconds_bucket", map[string]string{"le": "0.01"}, 2)
	check("registry_latency_seconds_bucket", map[string]string{"le": "+Inf"}, 3)
	check("registry_latency_seconds_count", nil, 3)
	if f := s.Families["registry_verdicts_total"]; f.Type != "counter" || f.Help != "Verdicts." {
		t.Fatalf("family headers = %+v", f)
	}
	// One HELP/TYPE pair per family even with multiple children.
	if n := strings.Count(text, "# TYPE registry_verdicts_total"); n != 1 {
		t.Fatalf("TYPE header appears %d times", n)
	}
}

func TestExpositionPanicsOnBadRegistration(t *testing.T) {
	e := NewExposition()
	e.Counter("ok_total", "ok", func() int64 { return 0 })
	for _, fn := range []func(){
		func() { e.Counter("bad name", "x", func() int64 { return 0 }) },
		func() { e.Gauge("ok_total", "x", func() float64 { return 0 }) }, // type conflict
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"bad value":           "# TYPE m counter\nm abc\n",
		"bad type":            "# TYPE m widget\nm 1\n",
		"duplicate sample":    "# TYPE m counter\nm 1\nm 2\n",
		"dup labelled":        "# TYPE m counter\nm{a=\"x\"} 1\nm{a=\"x\"} 2\n",
		"unterminated label":  "# TYPE m counter\nm{a=\"x 1\n",
		"unquoted label":      "# TYPE m counter\nm{a=x} 1\n",
		"non-cumulative hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf mismatch":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"hist missing count":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket{x=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"type after samples":  "# HELP m x\nm 1\n# TYPE m counter\n",
		"bad header name":     "# TYPE 9bad counter\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parse accepted malformed input:\n%s", name, doc)
		}
	}
}

func TestParseAcceptsEscapesAndComments(t *testing.T) {
	doc := "# scrape generated for test\n" +
		"# HELP m A help with \\\\ backslash\n" +
		"# TYPE m gauge\n" +
		"m{path=\"a\\\\b\\\"c\\nd\"} 1 1650000000000\n" +
		"\n" +
		"# TYPE inf gauge\ninf +Inf\nneg -Inf\n"
	// neg has no TYPE of its own — move it under a declared family instead.
	doc = strings.Replace(doc, "neg -Inf\n", "", 1)
	s, err := ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v, ok := s.Value("m", map[string]string{"path": "a\\b\"c\nd"})
	if !ok || v != 1 {
		t.Fatalf("escaped label sample = %v, %v", v, ok)
	}
	if v, ok := s.Value("inf", nil); !ok || !math.IsInf(v, 1) {
		t.Fatalf("inf sample = %v, %v", v, ok)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) should fail")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "component", "test")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log output unparseable: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "shown" || rec["component"] != "test" {
		t.Fatalf("record = %v", rec)
	}
	if strings.Contains(buf.String(), "hidden") {
		t.Fatal("info record leaked past warn level")
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Fatalf("text output = %q", buf.String())
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format should fail")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level should fail")
	}
}

func TestNopLoggerAndOrNop(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims Enabled")
	}
	lg.Error("goes nowhere", "k", "v") // must not panic
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) = nil")
	}
	real := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if OrNop(real) != real {
		t.Fatal("OrNop should pass through non-nil loggers")
	}
}

func TestTracerIDsUnique(t *testing.T) {
	tc := NewTracer(manualClock(t), 8)
	tc.SetSample(1)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tr := tc.Start()
		if seen[tr.ID] {
			t.Fatalf("duplicate trace ID %s", tr.ID)
		}
		seen[tr.ID] = true
		tc.Finish(tr)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tc := NewTracer(simclock.Real{}, 32)
	tc.SetSample(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tc.Start()
				if tr != nil {
					s := tr.BeginSpan("work")
					tr.EndSpan(s)
					tc.Finish(tr)
				}
				_ = tc.Recent(4)
			}
		}()
	}
	wg.Wait()
	if tc.SampledTotal() != 800 {
		t.Fatalf("SampledTotal = %d, want 800", tc.SampledTotal())
	}
	for _, tr := range tc.Recent(0) {
		if tr.ID == "" {
			t.Fatal("ring holds unfinished trace")
		}
	}
}

var sinkTrace *Trace

func BenchmarkTracerDisabledStart(b *testing.B) {
	tc := NewTracer(simclock.Real{}, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTrace = tc.Start()
		sinkTrace.SetAttr("k", "v")
		s := sinkTrace.BeginSpan("x")
		sinkTrace.EndSpan(s)
		tc.Finish(sinkTrace)
	}
	if testing.AllocsPerRun(100, func() {
		tr := tc.Start()
		s := tr.BeginSpan("x")
		tr.EndSpan(s)
		tc.Finish(tr)
	}) != 0 {
		b.Fatal("disabled tracer allocates")
	}
}
