// Package obs is the registry's observability layer: Prometheus-style
// text exposition of the metrics the collector, constraint cache, and
// balancer already maintain (expo.go), request-scoped tracing of the
// discovery decision path (trace.go), structured logging construction
// helpers over log/slog (log.go), and a minimal exposition-format parser
// used by tests and the CI scrape smoke (parse.go).
//
// The thesis's argument rests on registry-side state the operator cannot
// otherwise see — the NodeState table, breaker verdicts, cache behaviour —
// so this package gives every piece of that state an external surface
// without adding any dependency beyond the standard library, and without
// touching the discovery fast path's allocation budget: a disabled tracer
// hands out nil traces whose span methods are no-ops, and metric values
// are read only at scrape time.
package obs

import "context"

// traceKeyType keys the request-scoped trace in a context.
type traceKeyType struct{}

var traceKey traceKeyType

// WithTrace returns ctx carrying tr. A nil tr returns ctx unchanged so
// callers can propagate unconditionally.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace carried by ctx, or nil. All Trace methods
// are nil-safe, so callers use the result without checking.
//
//repolint:hotpath warm discovery chain: one context value lookup
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}
