package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured-logging construction shared by regserver and nodestatusd:
// both expose -log-level / -log-format flags and feed them through
// NewLogger. Library packages never construct loggers; they receive an
// injected *slog.Logger (or nil, normalised via OrNop) and annotate it
// with component/trace attributes.

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a logger writing to w in the given format ("text" or
// "json") at the given level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// nopHandler discards every record. (slog.DiscardHandler needs a newer
// toolchain than the module's go directive guarantees.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything; Enabled is false
// at every level, so callers pay only the Enabled check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// OrNop normalises an optional logger: components take *slog.Logger
// fields that default to nil and call OrNop once at construction.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
