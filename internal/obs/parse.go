package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is a minimal, strict parser for the Prometheus text
// exposition format (version 0.0.4) — metric name / label / value sample
// lines and # HELP / # TYPE headers. It exists so the handler tests and
// the CI scrape smoke (cmd/scrapesmoke) can verify that /registry/metrics
// round-trips through an independent reading of the format rather than
// just string-matching the writer's own output.

// ScrapeSample is one parsed sample line.
type ScrapeSample struct {
	Labels map[string]string
	Value  float64
}

// ScrapeFamily is one metric family: its headers plus all samples.
type ScrapeFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ScrapeSample
}

// Scrape is a parsed exposition document.
type Scrape struct {
	// Families maps metric family name to its parsed samples; histogram
	// series (_bucket/_sum/_count) are folded into their base family.
	Families map[string]*ScrapeFamily
	order    []string
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses and validates r. It rejects malformed headers,
// sample lines that do not belong to a declared family, unparseable
// values, duplicate (name, labels) samples, and histograms whose buckets
// are not cumulative or whose +Inf bucket disagrees with _count.
func ParseExposition(r io.Reader) (*Scrape, error) {
	s := &Scrape{Families: make(map[string]*ScrapeFamily)}
	seen := make(map[string]bool) // name + rendered labels, for duplicate detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "# HELP "):
			err = s.parseHeader(line[len("# HELP "):], "help")
		case strings.HasPrefix(line, "# TYPE "):
			err = s.parseHeader(line[len("# TYPE "):], "type")
		case strings.HasPrefix(line, "#"):
			// Free-form comment: allowed, ignored.
		default:
			err = s.parseSample(line, seen)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	for _, name := range s.order {
		if err := s.validateFamily(s.Families[name]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Scrape) parseHeader(rest, kind string) error {
	name, text, _ := strings.Cut(rest, " ")
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("obs: bad metric name %q in %s header", name, kind)
	}
	f := s.family(name)
	if kind == "help" {
		f.Help = text
		return nil
	}
	if !validTypes[text] {
		return fmt.Errorf("obs: unknown metric type %q for %s", text, name)
	}
	if len(f.Samples) > 0 {
		return fmt.Errorf("obs: TYPE header for %s after its samples", name)
	}
	f.Type = text
	return nil
}

func (s *Scrape) family(name string) *ScrapeFamily {
	if f, ok := s.Families[name]; ok {
		return f
	}
	f := &ScrapeFamily{Name: name}
	s.Families[name] = f
	s.order = append(s.order, name)
	return f
}

// baseFamily resolves a sample name to its declared family, folding
// histogram suffixes onto the base name.
func (s *Scrape) baseFamily(name string) (*ScrapeFamily, error) {
	if f, ok := s.Families[name]; ok && f.Type != "" {
		return f, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := s.Families[base]; ok && f.Type == "histogram" {
			return f, nil
		}
	}
	return nil, fmt.Errorf("obs: sample %q has no preceding # TYPE header", name)
}

func (s *Scrape) parseSample(line string, seen map[string]bool) error {
	labelPart := ""
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return fmt.Errorf("obs: sample line %q has no value", line)
	}
	name := line[:nameEnd]
	if line[nameEnd] == '{' {
		j := strings.LastIndexByte(line, '}')
		if j < nameEnd {
			return fmt.Errorf("obs: unterminated label set in %q", line)
		}
		labelPart = line[nameEnd+1 : j]
		line = name + line[j+1:]
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("obs: bad metric name %q", name)
	}
	fields := strings.Fields(line[len(name):])
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return fmt.Errorf("obs: sample %q needs a value (and at most a timestamp)", name)
	}
	value, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("obs: sample %s: %w", name, err)
	}
	labels, canonical, err := parseLabels(labelPart)
	if err != nil {
		return fmt.Errorf("obs: sample %s: %w", name, err)
	}
	key := name + "{" + canonical + "}"
	if seen[key] {
		return fmt.Errorf("obs: duplicate sample %s{%s}", name, canonical)
	}
	seen[key] = true
	f, err := s.baseFamily(name)
	if err != nil {
		return err
	}
	labels["__name__"] = name
	f.Samples = append(f.Samples, ScrapeSample{Labels: labels, Value: value})
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad sample value %q", s)
	}
	return v, nil
}

// parseLabels parses `k1="v1",k2="v2"` (with \\, \" and \n escapes in
// values), returning the label map and a canonical sorted rendering for
// duplicate detection.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := strings.TrimSpace(s)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("obs: label clause %q missing '='", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !metricNameRe.MatchString(key) {
			return nil, "", fmt.Errorf("obs: bad label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("obs: label %s value is not quoted", key)
		}
		val, remain, err := scanQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("obs: label %s: %w", key, err)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("obs: duplicate label %q", key)
		}
		labels[key] = val
		rest = strings.TrimSpace(remain)
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// Canonical form sorts label names so logically equal label sets
	// collide in the duplicate check regardless of emission order.
	sortStrings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return labels, strings.Join(parts, ","), nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// scanQuoted consumes a leading quoted string (with escapes) from s and
// returns the unescaped value and the remainder after the closing quote.
func scanQuoted(s string) (val, rest string, err error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("obs: dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("obs: unknown escape \\%c", s[i])
			}
		case '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("obs: unterminated quoted value in %q", s)
}

// validateFamily applies per-type checks; histograms must have cumulative
// buckets ending at a +Inf bucket that equals _count.
func (s *Scrape) validateFamily(f *ScrapeFamily) error {
	if f.Type == "" && len(f.Samples) > 0 {
		return fmt.Errorf("obs: family %s has samples but no TYPE", f.Name)
	}
	if f.Type != "histogram" {
		return nil
	}
	var buckets []ScrapeSample
	var count float64
	var haveCount, haveInf bool
	var inf float64
	for _, sm := range f.Samples {
		switch sm.Labels["__name__"] {
		case f.Name + "_bucket":
			le, ok := sm.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: histogram %s bucket without le label", f.Name)
			}
			if le == "+Inf" {
				haveInf, inf = true, sm.Value
			}
			buckets = append(buckets, sm)
		case f.Name + "_count":
			haveCount, count = true, sm.Value
		}
	}
	prev := math.Inf(-1)
	for _, b := range buckets {
		if b.Value < prev {
			return fmt.Errorf("obs: histogram %s buckets are not cumulative", f.Name)
		}
		prev = b.Value
	}
	if !haveInf || !haveCount {
		return fmt.Errorf("obs: histogram %s missing +Inf bucket or _count", f.Name)
	}
	if inf != count {
		return fmt.Errorf("obs: histogram %s +Inf bucket %v != count %v", f.Name, inf, count)
	}
	return nil
}

// Value returns the value of the sample of family name whose labels
// include want (nil matches the unlabelled sample), and whether exactly
// such a sample exists.
func (s *Scrape) Value(name string, want map[string]string) (float64, bool) {
	f, ok := s.Families[name]
	if !ok || f.Type == "" {
		// Histogram series live under their base family.
		f, _ = s.baseFamily(name)
		if f == nil {
			return 0, false
		}
	}
	for _, sm := range f.Samples {
		if sm.Labels["__name__"] != name {
			continue
		}
		match := true
		for k, v := range want {
			if sm.Labels[k] != v {
				match = false
				break
			}
		}
		if match && (want != nil || len(sm.Labels) == 1) {
			return sm.Value, true
		}
	}
	return 0, false
}
