package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Exposition renders registered metrics in the Prometheus text exposition
// format (version 0.0.4) without any client library: each registration
// binds a metric family to a closure that reads the live value at scrape
// time, so the instrumented components keep their own counters (the
// internal/metrics atomics) and pay nothing between scrapes.
//
// Registration happens once at registry construction; WriteTo may then be
// called concurrently from any number of scrapes.
type Exposition struct {
	families []*family
	byName   map[string]*family
}

// family is one metric name: HELP/TYPE header plus its sample sources.
type family struct {
	name, help, typ string
	// plain samples: fixed label (possibly empty) -> value closure.
	samples []expoSample
	// vec, when non-nil, yields a dynamic label-value -> value map.
	vecLabel string
	vec      func() map[string]float64
	// hist, when non-nil, is a histogram family.
	hist *Histogram
}

type expoSample struct {
	labels string // pre-rendered {k="v"} clause, or ""
	fn     func() float64
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewExposition creates an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{byName: make(map[string]*family)}
}

func (e *Exposition) familyFor(name, help, typ string) *family {
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if f, ok := e.byName[name]; ok {
		if f.typ != typ {
			panic("obs: metric " + name + " registered as both " + f.typ + " and " + typ)
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	e.families = append(e.families, f)
	e.byName[name] = f
	return f
}

// Counter registers a monotonic counter read from fn at scrape time.
func (e *Exposition) Counter(name, help string, fn func() int64) {
	f := e.familyFor(name, help, "counter")
	f.samples = append(f.samples, expoSample{fn: func() float64 { return float64(fn()) }})
}

// LabelledCounter registers one labelled child of a counter family, e.g.
// verdicts_total{verdict="eligible"}. Children registered under the same
// name share one HELP/TYPE header.
func (e *Exposition) LabelledCounter(name, help, label, value string, fn func() int64) {
	f := e.familyFor(name, help, "counter")
	f.samples = append(f.samples, expoSample{
		labels: renderLabels(label, value),
		fn:     func() float64 { return float64(fn()) },
	})
}

// Gauge registers an instantaneous value read from fn at scrape time.
func (e *Exposition) Gauge(name, help string, fn func() float64) {
	f := e.familyFor(name, help, "gauge")
	f.samples = append(f.samples, expoSample{fn: fn})
}

// CounterVec registers a counter family whose children are the entries of
// the map fn returns at scrape time, labelled by label (e.g. per-host
// discovery assignment counts, where the host set is only known at
// runtime).
func (e *Exposition) CounterVec(name, help, label string, fn func() map[string]int64) {
	f := e.familyFor(name, help, "counter")
	if f.vec != nil {
		panic("obs: metric " + name + " already has a label set")
	}
	f.vecLabel = label
	f.vec = func() map[string]float64 {
		m := fn()
		out := make(map[string]float64, len(m))
		for k, v := range m {
			out[k] = float64(v)
		}
		return out
	}
}

// GaugeVec registers a gauge family whose children are the entries of the
// map fn returns at scrape time, labelled by label (e.g. per-host breaker
// states).
func (e *Exposition) GaugeVec(name, help, label string, fn func() map[string]float64) {
	f := e.familyFor(name, help, "gauge")
	if f.vec != nil {
		panic("obs: metric " + name + " already has a label set")
	}
	f.vecLabel, f.vec = label, fn
}

// RegisterHistogram exposes h as a Prometheus histogram family.
func (e *Exposition) RegisterHistogram(name, help string, h *Histogram) {
	f := e.familyFor(name, help, "histogram")
	f.hist = h
}

// WriteTo renders every registered family, in registration order, in the
// text exposition format.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	for _, f := range e.families {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(&sb, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
		}
		if f.vec != nil {
			m := f.vec()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, renderLabels(f.vecLabel, k), formatValue(m[k]))
			}
		}
		if f.hist != nil {
			writeHistogram(&sb, f.name, f.hist)
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

func writeHistogram(sb *strings.Builder, name string, h *Histogram) {
	// _count is taken from the bucket total, not the separate counter, so
	// the +Inf bucket always equals _count even when observations race the
	// scrape.
	counts, sum, _ := h.snapshot()
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, renderLabels("le", le), cum)
	}
	fmt.Fprintf(sb, "%s_sum %s\n", name, formatValue(sum))
	fmt.Fprintf(sb, "%s_count %d\n", name, cum)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func renderLabels(label, value string) string {
	return "{" + label + `="` + labelEscaper.Replace(value) + `"}`
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe calls
// from request goroutines: bucket counts are atomics and the sum is kept
// as CAS-updated float bits, so observation takes no lock. It mirrors
// internal/metrics.Histogram but trades its richer reporting for
// concurrency; the exposition renders it with cumulative Prometheus
// bucket semantics.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf final bucket
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogramMetric creates a concurrent histogram with the given
// ascending upper bounds.
func NewHistogramMetric(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DiscoveryLatencyBuckets are the default upper bounds (seconds) for the
// discovery latency histogram: the in-process fast path sits in the
// microsecond buckets, a cold parse or contended sweep in the millisecond
// ones, and anything beyond 250 ms lands in the overflow bucket.
func DiscoveryLatencyBuckets() []float64 {
	return []float64{
		25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3,
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CountAtOrBelow returns how many observations landed in buckets whose
// upper bound is <= bound — the cumulative count Prometheus would report
// for le="bound". The SLO engine uses it to derive the fraction of
// requests beyond the latency objective without a second histogram.
func (h *Histogram) CountAtOrBelow(bound float64) int64 {
	var cum int64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// snapshot returns per-bucket (non-cumulative) counts, the sum, and the
// total count. Concurrent observations may land between the loads; the
// scrape is a best-effort view, as with any live histogram.
func (h *Histogram) snapshot() (counts []int64, sum float64, count int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum(), h.Count()
}
