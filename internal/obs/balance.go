// balance.go measures how well the registry's discovery decisions spread
// clients across hosts — the paper's central claim. The decision path
// bumps a per-host assignment counter (lock-free after the first sweep);
// each collector sweep rolls the counts up into Jain's fairness index and
// a capacity-weighted skew, so the exported gauges describe the *recent*
// assignment mix, not the since-boot average, and recover visibly after a
// quarantine or surge ends.
package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// StalenessBuckets are the upper bounds (seconds) for the decision
// staleness histogram: how old the NodeState snapshot behind each served
// discovery answer was. Sub-second buckets cover a healthy collector;
// the upper ones show brownout ExtraStaleness at work.
func StalenessBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Balance accumulates per-host assignment counts and publishes rollup
// aggregates. NoteAssignment and NoteStaleness are safe on a nil receiver
// so callers need no guard on the hot path.
type Balance struct {
	assignments metrics.CounterSet
	staleness   *Histogram
	rollups     metrics.Counter

	mu   sync.Mutex       // serialises Rollup
	prev map[string]int64 // assignment counts at the previous rollup

	fairnessBits atomic.Uint64
	skewBits     atomic.Uint64
}

// NewBalance creates a balance tracker. Fairness starts at 1 (a registry
// that has assigned nothing is trivially fair) and skew at 1.
func NewBalance() *Balance {
	b := &Balance{staleness: NewHistogramMetric(StalenessBuckets()...)}
	b.fairnessBits.Store(math.Float64bits(1))
	b.skewBits.Store(math.Float64bits(1))
	return b
}

// NoteAssignment counts one discovery answer that directed a client to
// host.
//
//repolint:hotpath runs on every discovery response including cache hits
func (b *Balance) NoteAssignment(host string) {
	if b == nil || host == "" {
		return
	}
	b.assignments.Inc(host)
}

// NoteStaleness records how old the snapshot behind one decision was.
//
//repolint:hotpath runs on every discovery response including cache hits
func (b *Balance) NoteStaleness(seconds float64) {
	if b == nil {
		return
	}
	b.staleness.Observe(seconds)
}

// Rollup folds the assignments since the previous rollup into the
// fairness and skew gauges. weights carries each host's capacity proxy
// (missing or non-positive entries weigh 1); hosts that received no
// assignments in the interval but have weight still count, with share
// zero, so a starved host *lowers* fairness rather than vanishing. An
// interval with no assignments at all keeps the previous aggregates —
// an idle registry is not suddenly unfair.
func (b *Balance) Rollup(weights map[string]float64) {
	if b == nil {
		return
	}
	snap := b.assignments.Snapshot()
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	deltas := make(map[string]int64, len(snap))
	for host, n := range snap {
		d := n - b.prev[host]
		deltas[host] = d
		total += d
	}
	for host := range weights {
		if _, ok := deltas[host]; !ok {
			deltas[host] = 0
		}
	}
	b.prev = snap
	b.rollups.Inc()
	if total <= 0 {
		return
	}
	xs := make([]float64, 0, len(deltas))
	for _, d := range deltas {
		xs = append(xs, float64(d))
	}
	b.fairnessBits.Store(math.Float64bits(metrics.JainFairness(xs)))
	b.skewBits.Store(math.Float64bits(capacitySkew(deltas, weights, total)))
}

// capacitySkew is the worst-case ratio of a host's assignment share to
// its capacity share: 1 means every host got exactly its capacity-
// proportional cut, 2 means some host got double its due. Hosts without
// a weight entry weigh 1, so with no capacity data the skew degenerates
// to share/equal-share — raw imbalance.
func capacitySkew(deltas map[string]int64, weights map[string]float64, total int64) float64 {
	var totalW float64
	for host := range deltas {
		totalW += weightOf(weights, host)
	}
	if totalW <= 0 {
		return 1
	}
	skew := 0.0
	for host, d := range deltas {
		share := float64(d) / float64(total)
		capShare := weightOf(weights, host) / totalW
		if capShare <= 0 {
			continue
		}
		if r := share / capShare; r > skew {
			skew = r
		}
	}
	if skew == 0 {
		return 1
	}
	return skew
}

func weightOf(weights map[string]float64, host string) float64 {
	if w, ok := weights[host]; ok && w > 0 {
		return w
	}
	return 1
}

// FairnessIndex returns the Jain's fairness index of the most recent
// non-idle rollup interval (1 = perfectly even).
func (b *Balance) FairnessIndex() float64 {
	if b == nil {
		return 1
	}
	return math.Float64frombits(b.fairnessBits.Load())
}

// CapacitySkew returns the capacity-weighted skew of the most recent
// non-idle rollup interval (1 = capacity-proportional).
func (b *Balance) CapacitySkew() float64 {
	if b == nil {
		return 1
	}
	return math.Float64frombits(b.skewBits.Load())
}

// Rollups returns how many rollups have run.
func (b *Balance) Rollups() int64 {
	if b == nil {
		return 0
	}
	return b.rollups.Value()
}

// AssignmentsSnapshot returns the since-boot per-host assignment counts.
func (b *Balance) AssignmentsSnapshot() map[string]int64 {
	if b == nil {
		return map[string]int64{}
	}
	return b.assignments.Snapshot()
}

// StalenessHistogram exposes the decision-staleness histogram for
// registration.
func (b *Balance) StalenessHistogram() *Histogram { return b.staleness }
