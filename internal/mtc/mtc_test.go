package mtc

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// rig builds the full Fig. 3.7 deployment: N simulated hosts, NodeStatus
// published once, a constrained worker service on all hosts, collector
// wired through the registry.
func rig(t *testing.T, policy core.Policy, hosts int) *Driver {
	t.Helper()
	clk := simclock.NewManual(t0)
	reg, err := registry.New(registry.Config{Clock: clk, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	cluster := hostsim.NewCluster()
	names := []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu", "volta.sdsu.edu", "eon.sdsu.edu"}
	for i := 0; i < hosts; i++ {
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: names[i], Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, t0))
	}

	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("mtc", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}

	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	worker := rim.NewService("Worker", `<constraint><cpuLoad>load ls 4.0</cpuLoad></constraint>`)
	for i := 0; i < hosts; i++ {
		ns.AddBinding("http://" + names[i] + ":8080/NodeStatus/NodeStatusService")
		worker.AddBinding("http://" + names[i] + ":8080/Worker/workerService")
	}
	if _, err := conn.Submit(ns, worker); err != nil {
		t.Fatal(err)
	}

	collector := nodestate.New(reg.Store.NodeState(),
		nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
		reg.QM.CollectionTargets, nodestate.WithPeriod(25*time.Second))
	collector.CollectOnce()

	return &Driver{
		Conn: conn, Cluster: cluster, Clock: clk,
		ServiceName: "Worker", Collector: collector, MaxRetries: 2,
	}
}

func TestRunCompletesAllTasks(t *testing.T) {
	d := rig(t, core.PolicyLeastLoaded, 3)
	rep, err := d.Run(Workload{
		Tasks: 60, MeanInterarrival: 2 * time.Second, Deterministic: true,
		TaskCPU: 5, TaskMemB: 16 << 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 60 || rep.Dropped != 0 {
		t.Fatalf("completed=%d dropped=%d", rep.Completed, rep.Dropped)
	}
	total := 0
	for _, n := range rep.PerHostTasks {
		total += n
	}
	if total != 60 {
		t.Fatalf("per-host total = %d", total)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	if len(rep.Latencies) != 60 || rep.LatencySummary().Mean <= 0 {
		t.Fatalf("latencies = %d", len(rep.Latencies))
	}
	if rep.Policy != "least-loaded" {
		t.Fatalf("policy = %q", rep.Policy)
	}
}

func TestStockFirstURIConcentratesLoad(t *testing.T) {
	d := rig(t, core.PolicyStock, 3)
	d.Client = ClientFirst
	rep, err := d.Run(Workload{
		Tasks: 45, MeanInterarrival: 4 * time.Second, Deterministic: true,
		TaskCPU: 8, TaskMemB: 8 << 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All tasks land on the first stored binding's host.
	if rep.PerHostTasks["thermo.sdsu.edu"] != 45 {
		t.Fatalf("per-host = %v", rep.PerHostTasks)
	}
}

func TestLeastLoadedSpreadsLoad(t *testing.T) {
	d := rig(t, core.PolicyLeastLoaded, 3)
	d.Client = ClientFirst
	rep, err := d.Run(Workload{
		Tasks: 45, MeanInterarrival: 4 * time.Second, Deterministic: true,
		TaskCPU: 8, TaskMemB: 8 << 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every host gets a meaningful share.
	for host, n := range rep.PerHostTasks {
		if n < 5 {
			t.Fatalf("host %s starved: %v", host, rep.PerHostTasks)
		}
	}
	// And fairness beats the stock run's.
	stock := rig(t, core.PolicyStock, 3)
	stock.Client = ClientFirst
	stockRep, err := stock.Run(Workload{
		Tasks: 45, MeanInterarrival: 4 * time.Second, Deterministic: true,
		TaskCPU: 8, TaskMemB: 8 << 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanFairness() <= stockRep.MeanFairness() {
		t.Fatalf("lb fairness %v <= stock %v", rep.MeanFairness(), stockRep.MeanFairness())
	}
}

func TestRoundRobinAndRandomClients(t *testing.T) {
	for _, client := range []ClientPolicy{ClientRoundRobin, ClientRandom} {
		d := rig(t, core.PolicyStock, 3)
		d.Client = client
		rep, err := d.Run(Workload{
			Tasks: 30, MeanInterarrival: 3 * time.Second, Deterministic: true,
			TaskCPU: 5, TaskMemB: 8 << 20, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		used := 0
		for _, n := range rep.PerHostTasks {
			if n > 0 {
				used++
			}
		}
		if used < 2 {
			t.Fatalf("%v used only %d hosts: %v", client, used, rep.PerHostTasks)
		}
	}
}

func TestRetryOnDownHost(t *testing.T) {
	d := rig(t, core.PolicyStock, 3)
	d.Client = ClientFirst
	d.Cluster.Host("thermo.sdsu.edu").SetDown(true)
	rep, err := d.Run(Workload{
		Tasks: 10, MeanInterarrival: 2 * time.Second, Deterministic: true,
		TaskCPU: 3, TaskMemB: 8 << 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 10 || rep.Retries == 0 {
		t.Fatalf("completed=%d retries=%d", rep.Completed, rep.Retries)
	}
	if rep.PerHostTasks["thermo.sdsu.edu"] != 0 {
		t.Fatal("tasks landed on a down host")
	}
}

func TestDropWhenAllHostsDown(t *testing.T) {
	d := rig(t, core.PolicyStock, 2)
	d.Cluster.Host("thermo.sdsu.edu").SetDown(true)
	d.Cluster.Host("exergy.sdsu.edu").SetDown(true)
	rep, err := d.Run(Workload{
		Tasks: 5, MeanInterarrival: time.Second, Deterministic: true,
		TaskCPU: 1, TaskMemB: 1 << 20, Seed: 5, Drain: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 5 || rep.Completed != 0 {
		t.Fatalf("dropped=%d completed=%d", rep.Dropped, rep.Completed)
	}
}

func TestWorkloadValidationAndDefaults(t *testing.T) {
	d := rig(t, core.PolicyStock, 2)
	if _, err := d.Run(Workload{Tasks: 0}); err == nil {
		t.Fatal("zero tasks accepted")
	}
	rep, err := d.Run(Workload{Tasks: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("defaults run: %+v", rep)
	}
}

func TestClientPolicyStrings(t *testing.T) {
	if ClientFirst.String() != "first-uri" || ClientRandom.String() != "random" ||
		ClientRoundRobin.String() != "round-robin" || ClientPolicy(9).String() != "unknown-client" {
		t.Fatal("client policy strings wrong")
	}
}

func TestCollectorRefreshesDuringRun(t *testing.T) {
	d := rig(t, core.PolicyLeastLoaded, 2)
	rep, err := d.Run(Workload{
		Tasks: 20, MeanInterarrival: 5 * time.Second, Deterministic: true,
		TaskCPU: 20, TaskMemB: 8 << 20, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sweeps, _ := d.Collector.Stats()
	// The initial sweep plus at least (100s workload / 25s period).
	if sweeps < 4 {
		t.Fatalf("sweeps = %d", sweeps)
	}
	_ = rep
}
