package mtc

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSeedReproducibility pins the norand invariant at the workload
// level: every stochastic choice in a run (Poisson arrivals, task sizes,
// the random client policy) draws from the *rand.Rand seeded by
// Workload.Seed, so two identical rigs replay to identical reports, and
// a different seed actually changes the draw.
func TestSeedReproducibility(t *testing.T) {
	run := func(seed int64) *Report {
		d := rig(t, core.PolicyLeastLoaded, 3)
		d.Client = ClientRandom
		rep, err := d.Run(Workload{
			Tasks: 40, MeanInterarrival: 2 * time.Second,
			TaskCPU: 5, TaskMemB: 16 << 20, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	a, b := run(7), run(7)
	if !reflect.DeepEqual(a.PerHostTasks, b.PerHostTasks) {
		t.Fatalf("same seed, different placement: %v vs %v", a.PerHostTasks, b.PerHostTasks)
	}
	if !reflect.DeepEqual(a.Latencies, b.Latencies) {
		t.Fatal("same seed, different latencies")
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespan: %v vs %v", a.Makespan, b.Makespan)
	}

	c := run(8)
	if math.Abs(c.LatencySummary().Mean-a.LatencySummary().Mean) < 1e-12 && a.Makespan == c.Makespan {
		t.Fatal("different seed replayed the same run; is the seed actually wired through?")
	}
}
