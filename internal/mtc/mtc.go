// Package mtc implements the Many-Task Computing workload of thesis §3.1:
// "large numbers of computing resources over short periods of time",
// deployed as a Web Service on multiple hosts and driven through registry
// discovery. The Driver generates tasks, discovers the target service's
// access URIs through the registry on every invocation (Fig. 3.3), picks
// one according to a client policy, and executes the task on the simulated
// cluster — while the registry's NodeStatus collector polls in the
// background on its configured period.
//
// The client policies isolate what the thesis's scheme contributes:
//
//   - ClientFirst always takes the first returned URI — the calling
//     pattern the thesis assumes ("this usually restricts a calling
//     process to a Web Service invocation on one host"). Against a stock
//     registry this is the overload baseline; against the modified
//     registry it inherits the balancer's arrangement.
//   - ClientRandom and ClientRoundRobin are classic client-side baselines
//     that ignore host state.
package mtc

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/metrics"
	"repro/internal/nodestate"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// ClientPolicy selects how the client picks among returned URIs.
type ClientPolicy int

// Client policies.
const (
	ClientFirst ClientPolicy = iota
	ClientRandom
	ClientRoundRobin
)

// String names the policy.
func (p ClientPolicy) String() string {
	switch p {
	case ClientFirst:
		return "first-uri"
	case ClientRandom:
		return "random"
	case ClientRoundRobin:
		return "round-robin"
	default:
		return "unknown-client"
	}
}

// Workload parameterizes a run.
type Workload struct {
	// Tasks is the number of tasks to dispatch.
	Tasks int
	// MeanInterarrival is the average gap between task submissions;
	// arrivals are exponential (Poisson process) unless Deterministic.
	MeanInterarrival time.Duration
	// Deterministic makes arrivals evenly spaced.
	Deterministic bool
	// TaskCPU is the mean dedicated-core seconds per task; actual values
	// are uniform in [0.5, 1.5]×mean.
	TaskCPU float64
	// TaskMemB is the memory footprint per task.
	TaskMemB int64
	// Seed drives all randomness for reproducibility.
	Seed int64
	// SampleEvery is the metrics sampling interval (default 5 s).
	SampleEvery time.Duration
	// Drain caps how long to wait for in-flight tasks after the last
	// arrival (default 10 min of simulated time).
	Drain time.Duration
}

// Report aggregates a run's outcome.
type Report struct {
	Policy       string
	Client       ClientPolicy
	Tasks        int
	Completed    int
	Dropped      int
	Retries      int
	PerHostTasks map[string]int
	// Latencies collects completed tasks' wall-clock residence times in
	// seconds.
	Latencies []float64
	// LoadSeries tracks each host's load average over time, sampled
	// every SampleEvery.
	LoadSeries map[string]*metrics.Series
	// MemSeries tracks each host's used physical memory fraction.
	MemSeries map[string]*metrics.Series
	// FairnessOverTime is Jain's index across hosts at each sample.
	FairnessOverTime []float64
	// Makespan is the simulated time from first arrival to last
	// completion.
	Makespan time.Duration
}

// TaskShare returns each host's completed-task counts in host-name order
// for the given names.
func (r *Report) TaskShare(names []string) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = float64(r.PerHostTasks[n])
	}
	return out
}

// MeanFairness averages the per-sample Jain fairness of host loads.
func (r *Report) MeanFairness() float64 {
	return metrics.Summarize(r.FairnessOverTime).Mean
}

// LatencySummary summarizes task latencies.
func (r *Report) LatencySummary() metrics.Summary {
	return metrics.Summarize(r.Latencies)
}

// FinalLoadSummary summarizes the last sampled load across hosts.
func (r *Report) FinalLoadSummary() metrics.Summary {
	var loads []float64
	for _, s := range r.LoadSeries {
		loads = append(loads, s.Last())
	}
	return metrics.Summarize(loads)
}

// Driver executes workloads.
type Driver struct {
	// Conn is the registry connection used for discovery (typically
	// localCall mode for speed; the path is identical over SOAP).
	Conn *jaxr.Connection
	// Cluster executes the tasks.
	Cluster *hostsim.Cluster
	// Clock must be the same Manual clock the registry uses.
	Clock *simclock.Manual
	// ServiceName is the discovered Web Service.
	ServiceName string
	// Client selects the client-side URI pick.
	Client ClientPolicy
	// Collector, when non-nil, is swept on its own period during the
	// run (the registry's TimeHits timer).
	Collector *nodestate.Collector
	// MaxRetries bounds per-task fallback attempts across the returned
	// URI list when a submit fails (host down / OOM).
	MaxRetries int

	rr int // round-robin cursor
}

// Run drives one workload to completion and reports.
func (d *Driver) Run(w Workload) (*Report, error) {
	if w.Tasks <= 0 {
		return nil, fmt.Errorf("mtc: workload needs Tasks > 0")
	}
	if w.MeanInterarrival <= 0 {
		w.MeanInterarrival = time.Second
	}
	if w.TaskCPU <= 0 {
		w.TaskCPU = 10
	}
	if w.TaskMemB <= 0 {
		w.TaskMemB = 64 << 20
	}
	if w.SampleEvery <= 0 {
		w.SampleEvery = 5 * time.Second
	}
	if w.Drain <= 0 {
		w.Drain = 10 * time.Minute
	}
	rng := rand.New(rand.NewSource(w.Seed))

	rep := &Report{
		Client:       d.Client,
		Tasks:        w.Tasks,
		PerHostTasks: make(map[string]int),
		LoadSeries:   make(map[string]*metrics.Series),
		MemSeries:    make(map[string]*metrics.Series),
	}
	names := d.Cluster.Names()
	for _, n := range names {
		rep.LoadSeries[n] = &metrics.Series{Name: n}
		rep.MemSeries[n] = &metrics.Series{Name: n}
	}

	// Pre-compute arrival offsets.
	arrivals := make([]time.Duration, w.Tasks)
	var at time.Duration
	for i := range arrivals {
		if w.Deterministic {
			at += w.MeanInterarrival
		} else {
			at += time.Duration(rng.ExpFloat64() * float64(w.MeanInterarrival))
		}
		arrivals[i] = at
	}

	start := d.Clock.Now()
	end := start.Add(arrivals[len(arrivals)-1]).Add(w.Drain)
	nextCollect := start
	nextSample := start
	nextArrival := 0
	var firstArrival, lastCompletion time.Time

	const tick = time.Second
	for now := start; !now.After(end); now = now.Add(tick) {
		d.Clock.Set(now)

		// Background collection on the registry's period.
		if d.Collector != nil && !now.Before(nextCollect) {
			d.Collector.CollectOnce()
			nextCollect = now.Add(d.Collector.Period())
		}

		// Dispatch all tasks whose arrival time has come.
		for nextArrival < w.Tasks && !now.Before(start.Add(arrivals[nextArrival])) {
			if firstArrival.IsZero() {
				firstArrival = now
			}
			cpu := w.TaskCPU * (0.5 + rng.Float64())
			task := hostsim.Task{
				ID:         fmt.Sprintf("task-%d", nextArrival),
				CPUSeconds: cpu,
				MemB:       w.TaskMemB,
			}
			if host, retries, ok := d.dispatch(task, rng, now); ok {
				rep.PerHostTasks[host]++
				rep.Retries += retries
			} else {
				rep.Dropped++
				rep.Retries += retries
			}
			nextArrival++
		}

		// Advance hosts; gather completions in host-name order so the
		// report (and anything derived from it) replays byte-identically
		// from the same seed.
		completions := d.Cluster.AdvanceTo(now)
		for _, host := range names {
			for _, c := range completions[host] {
				rep.Completed++
				rep.Latencies = append(rep.Latencies, c.Latency().Seconds())
				if c.Finish.After(lastCompletion) {
					lastCompletion = c.Finish
				}
			}
		}

		// Metrics sampling.
		if !now.Before(nextSample) {
			loads := make([]float64, 0, len(names))
			for _, n := range names {
				h := d.Cluster.Host(n)
				l := h.LoadAvg()
				rep.LoadSeries[n].Add(now, l)
				loads = append(loads, l)
				if s, err := h.Sample(now); err == nil {
					total := h.Config().TotalMemB
					rep.MemSeries[n].Add(now, 1-float64(s.MemoryB)/float64(total))
				}
			}
			rep.FairnessOverTime = append(rep.FairnessOverTime, metrics.JainFairness(loads))
			nextSample = now.Add(w.SampleEvery)
		}

		// Early exit: everything arrived and completed.
		if nextArrival == w.Tasks && rep.Completed+rep.Dropped >= w.Tasks {
			break
		}
	}
	if !lastCompletion.IsZero() && !firstArrival.IsZero() {
		rep.Makespan = lastCompletion.Sub(firstArrival)
	}
	if p, ok := d.Conn.LocalPolicy(); ok {
		rep.Policy = p.String()
	}
	return rep, nil
}

// dispatch discovers, picks, and submits one task, retrying down the URI
// list on failure. It returns the executing host name.
func (d *Driver) dispatch(task hostsim.Task, rng *rand.Rand, now time.Time) (host string, retries int, ok bool) {
	uris, _, err := d.Conn.ServiceBindings(d.ServiceName)
	if err != nil || len(uris) == 0 {
		return "", 0, false
	}
	order := d.pickOrder(uris, rng)
	maxTries := d.MaxRetries + 1
	if maxTries > len(order) {
		maxTries = len(order)
	}
	for i := 0; i < maxTries; i++ {
		h := rim.HostOfURI(order[i])
		target := d.Cluster.Host(h)
		if target == nil {
			retries++
			continue
		}
		if err := target.Submit(task, now); err != nil {
			retries++
			continue
		}
		return h, retries, true
	}
	return "", retries, false
}

// pickOrder arranges the candidate URIs according to the client policy.
func (d *Driver) pickOrder(uris []string, rng *rand.Rand) []string {
	out := append([]string(nil), uris...)
	switch d.Client {
	case ClientRandom:
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	case ClientRoundRobin:
		k := d.rr % len(out)
		d.rr++
		out = append(out[k:], out[:k]...)
	}
	return out
}
