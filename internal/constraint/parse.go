package constraint

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// xmlConstraint mirrors the <constraint> element for decoding. Both the
// thesis's <constraint> spelling (§3.2 examples) and the <constrain>
// spelling from RegistryAccess.dtd are handled by the caller.
type xmlConstraint struct {
	CPULoad  string `xml:"cpuLoad"`
	Memory   string `xml:"memory"`
	Swap     string `xml:"swapmemory"`
	NetDelay string `xml:"netdelay"`
	Start    string `xml:"starttime"`
	End      string `xml:"endtime"`
}

// ParseClause parses one "keyword op value" clause, validating that the
// keyword agrees with the metric the enclosing tag declares.
func ParseClause(metric Metric, s string) (*Predicate, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return nil, fmt.Errorf("constraint: clause %q must be 'keyword op value'", s)
	}
	if got := strings.ToLower(fields[0]); got != metric.String() {
		return nil, fmt.Errorf("constraint: clause %q must start with keyword %q", s, metric)
	}
	op, err := parseOp(fields[1])
	if err != nil {
		return nil, err
	}
	var value float64
	switch metric {
	case MetricMemory, MetricSwap:
		b, err := ParseSize(fields[2])
		if err != nil {
			return nil, err
		}
		value = float64(b)
	default:
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("constraint: bad %s value %q", metric, fields[2])
		}
		value = v
	}
	return &Predicate{Metric: metric, Op: op, Value: value}, nil
}

// ParseXML parses a standalone <constraint>…</constraint> (or <constrain>)
// document.
func ParseXML(doc string) (*Constraint, error) {
	doc = strings.TrimSpace(doc)
	var raw xmlConstraint
	if err := xml.Unmarshal([]byte(doc), &raw); err != nil {
		return nil, fmt.Errorf("constraint: malformed xml: %w", err)
	}
	c := &Constraint{}
	var err error
	if s := strings.TrimSpace(raw.CPULoad); s != "" {
		if c.CPULoad, err = ParseClause(MetricLoad, s); err != nil {
			return nil, err
		}
	}
	if s := strings.TrimSpace(raw.Memory); s != "" {
		if c.Memory, err = ParseClause(MetricMemory, s); err != nil {
			return nil, err
		}
	}
	if s := strings.TrimSpace(raw.Swap); s != "" {
		if c.Swap, err = ParseClause(MetricSwap, s); err != nil {
			return nil, err
		}
	}
	if s := strings.TrimSpace(raw.NetDelay); s != "" {
		if c.NetDelay, err = ParseClause(MetricNetDelay, s); err != nil {
			return nil, err
		}
	}
	if s := strings.TrimSpace(raw.Start); s != "" {
		mt, err := ParseMilitary(s)
		if err != nil {
			return nil, err
		}
		c.Start = &mt
	}
	if s := strings.TrimSpace(raw.End); s != "" {
		mt, err := ParseMilitary(s)
		if err != nil {
			return nil, err
		}
		c.End = &mt
	}
	if c.Start != nil && c.End == nil || c.Start == nil && c.End != nil {
		return nil, fmt.Errorf("constraint: starttime and endtime must be specified together")
	}
	return c, nil
}

// openTags lists the accepted element spellings in search order.
var openTags = []struct{ open, close string }{
	{"<constraint>", "</constraint>"},
	{"<constrain>", "</constrain>"},
}

// FromDescription extracts and parses the constraint block embedded in a
// Service description, as ServiceConstraint does in the modified freebXML
// (Fig. 3.5). It returns:
//
//   - (nil, desc, nil) when the description carries no constraint block —
//     the stock, unconstrained discovery path;
//   - (c, rest, nil) when a well-formed block was found, where rest is the
//     description text with the block removed;
//   - (nil, desc, err) when a block is present but malformed; the thesis's
//     ServiceConstraint treats this as "no valid service constraints" and
//     callers decide whether to surface or swallow err.
//
//repolint:coldpath cache-miss parser; the hot path hits Cache.FromDescription
func FromDescription(desc string) (*Constraint, string, error) {
	for _, tag := range openTags {
		start := strings.Index(desc, tag.open)
		if start < 0 {
			continue
		}
		end := strings.Index(desc[start:], tag.close)
		if end < 0 {
			return nil, desc, fmt.Errorf("constraint: unterminated %s block", tag.open)
		}
		end += start + len(tag.close)
		block := desc[start:end]
		// Normalize the <constrain> alias so ParseXML sees one spelling.
		if tag.open == "<constrain>" {
			block = "<constraint>" + block[len("<constrain>"):len(block)-len("</constrain>")] + "</constraint>"
		}
		c, err := ParseXML(block)
		if err != nil {
			return nil, desc, err
		}
		rest := strings.TrimSpace(desc[:start] + desc[end:])
		return c, rest, nil
	}
	return nil, desc, nil
}
