package constraint

import (
	"fmt"
	"sync"
	"testing"
)

const cachedDesc = "Adder <constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>"

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(8)
	first, cached, err := c.FromDescription("svc-1", cachedDesc)
	if err != nil {
		t.Fatalf("first parse: %v", err)
	}
	if first == nil || first.CPULoad == nil || first.CPULoad.Value != 1.0 {
		t.Fatalf("first parse = %v", first)
	}
	second, cached2, err := c.FromDescription("svc-1", cachedDesc)
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if second != first || cached || !cached2 {
		t.Fatalf("warm lookup should return the cached *Constraint (cached=%v cached2=%v)", cached, cached2)
	}
	if h, m := c.Hits.Value(), c.Misses.Value(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCacheDescriptionChangeReparses(t *testing.T) {
	c := NewCache(8)
	v1, _, err := c.FromDescription("svc-1", "<constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>")
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := c.FromDescription("svc-1", "<constraint><cpuLoad>load ls 2.0</cpuLoad></constraint>")
	if err != nil {
		t.Fatal(err)
	}
	if v1.CPULoad.Value != 1.0 || v2.CPULoad.Value != 2.0 {
		t.Fatalf("versions = %v, %v", v1.CPULoad.Value, v2.CPULoad.Value)
	}
	if c.Hits.Value() != 0 || c.Misses.Value() != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", c.Hits.Value(), c.Misses.Value())
	}
}

func TestCacheCachesParseErrors(t *testing.T) {
	c := NewCache(8)
	bad := "<constraint><cpuLoad>garbage</cpuLoad></constraint>"
	if _, _, err := c.FromDescription("svc-1", bad); err == nil {
		t.Fatal("want parse error")
	}
	if _, _, err := c.FromDescription("svc-1", bad); err == nil {
		t.Fatal("want cached parse error")
	}
	if c.Hits.Value() != 1 {
		t.Fatalf("hits = %d, want 1 (errors are cached too)", c.Hits.Value())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8)
	if _, _, err := c.FromDescription("svc-1", cachedDesc); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("svc-1")
	c.Invalidate("svc-1") // second drop is a no-op
	if c.Len() != 0 {
		t.Fatalf("len = %d after invalidate", c.Len())
	}
	if c.Invalidations.Value() != 1 {
		t.Fatalf("invalidations = %d, want 1", c.Invalidations.Value())
	}
	if _, _, err := c.FromDescription("svc-1", cachedDesc); err != nil {
		t.Fatal(err)
	}
	if c.Misses.Value() != 2 {
		t.Fatalf("misses = %d, want reparse after invalidate", c.Misses.Value())
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 5; i++ {
		if _, _, err := c.FromDescription(fmt.Sprintf("svc-%d", i), cachedDesc); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("len = %d, want <= 2", c.Len())
	}
	// The newest entry must have survived.
	if _, _, err := c.FromDescription("svc-4", cachedDesc); err != nil {
		t.Fatal(err)
	}
	if c.Hits.Value() != 1 {
		t.Fatalf("hits = %d, want newest entry retained", c.Hits.Value())
	}
}

func TestCacheNilAndAnonymousFallThrough(t *testing.T) {
	var nilCache *Cache
	parsed, cached, err := nilCache.FromDescription("svc-1", cachedDesc)
	if err != nil || parsed == nil || cached {
		t.Fatalf("nil cache parse = %v, cached=%v, %v", parsed, cached, err)
	}
	nilCache.Invalidate("svc-1")
	nilCache.InvalidateIDs("a", "b")
	if nilCache.Len() != 0 {
		t.Fatal("nil cache Len")
	}

	c := NewCache(8)
	if _, _, err := c.FromDescription("", cachedDesc); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Misses.Value() != 0 {
		t.Fatal("empty service id must bypass the cache")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("svc-%d", i%16)
				desc := fmt.Sprintf("<constraint><cpuLoad>load ls %d.0</cpuLoad></constraint>", i%3+1)
				parsed, _, err := c.FromDescription(id, desc)
				if err != nil {
					t.Errorf("parse: %v", err)
					return
				}
				if want := float64(i%3 + 1); parsed.CPULoad.Value != want {
					t.Errorf("got load %v for desc %q", parsed.CPULoad.Value, desc)
					return
				}
				if i%17 == 0 {
					c.Invalidate(id)
				}
			}
		}(g)
	}
	wg.Wait()
}
