// Package constraint implements the performance-constraint language of
// thesis §3.2: an XML <constraint> block embedded in a Web Service's
// description that states the conditions a host must satisfy for its access
// URI to be returned at discovery time.
//
// The concrete grammar, reproduced from the thesis:
//
//	<constraint>
//	  <cpuLoad>load ls 1.0</cpuLoad>
//	  <memory>memory gr 3GB</memory>
//	  <swapmemory>swapmemory gr 5MB</swapmemory>
//	  <starttime>1000</starttime>
//	  <endtime>1200</endtime>
//	</constraint>
//
// Clause keywords are load, memory and swapmemory; comparison symbols are
// gt (the thesis also writes gr), geq, ls (also lt), leq and eq
// (Table 3.5); memory sizes use KB, MB and GB; start/end times are in
// military (HHMM) format. The element name <constrain> — the spelling used
// by the thesis's RegistryAccess.dtd — is accepted as an alias. As the
// §5.2 future-work extension, a <netdelay> clause (milliseconds) is also
// supported.
package constraint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Metric identifies what a predicate constrains.
type Metric int

// Metrics a clause may constrain.
const (
	MetricLoad Metric = iota
	MetricMemory
	MetricSwap
	MetricNetDelay
)

// String returns the clause keyword for the metric.
func (m Metric) String() string {
	switch m {
	case MetricLoad:
		return "load"
	case MetricMemory:
		return "memory"
	case MetricSwap:
		return "swapmemory"
	case MetricNetDelay:
		return "netdelay"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Op is a comparison operator.
type Op int

// Comparison operators (Table 3.5).
const (
	OpGt Op = iota
	OpGeq
	OpLt
	OpLeq
	OpEq
)

// String returns the canonical symbol for the operator.
func (o Op) String() string {
	switch o {
	case OpGt:
		return "gt"
	case OpGeq:
		return "geq"
	case OpLt:
		return "ls"
	case OpLeq:
		return "leq"
	case OpEq:
		return "eq"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Compare applies the operator to (actual, bound).
func (o Op) Compare(actual, bound float64) bool {
	switch o {
	case OpGt:
		return actual > bound
	case OpGeq:
		return actual >= bound
	case OpLt:
		return actual < bound
	case OpLeq:
		return actual <= bound
	case OpEq:
		return actual == bound
	default:
		return false
	}
}

// parseOp maps the thesis's symbols (and their observed variants) to Ops.
func parseOp(s string) (Op, error) {
	switch strings.ToLower(s) {
	case "gt", "gr": // the thesis uses both spellings for greater-than
		return OpGt, nil
	case "geq", "ge":
		return OpGeq, nil
	case "ls", "lt":
		return OpLt, nil
	case "leq", "le":
		return OpLeq, nil
	case "eq":
		return OpEq, nil
	default:
		return 0, fmt.Errorf("constraint: unknown comparison symbol %q", s)
	}
}

// Predicate is a single parsed clause such as "load ls 1.0". Value is in
// canonical units: a load-average ratio for MetricLoad, bytes for
// MetricMemory/MetricSwap, and milliseconds for MetricNetDelay.
type Predicate struct {
	Metric Metric
	Op     Op
	Value  float64
}

// Holds reports whether the predicate is satisfied by the actual value.
func (p Predicate) Holds(actual float64) bool { return p.Op.Compare(actual, p.Value) }

// String renders the clause in the thesis's syntax.
func (p Predicate) String() string {
	switch p.Metric {
	case MetricMemory, MetricSwap:
		return fmt.Sprintf("%s %s %s", p.Metric, p.Op, FormatSize(int64(p.Value)))
	default:
		return fmt.Sprintf("%s %s %g", p.Metric, p.Op, p.Value)
	}
}

// MilitaryTime is an HHMM time-of-day as used by <starttime>/<endtime>.
type MilitaryTime struct {
	Hour, Min int
}

// ParseMilitary parses a 3-4 digit military time such as "0700" or "900".
func ParseMilitary(s string) (MilitaryTime, error) {
	s = strings.TrimSpace(s)
	if len(s) < 3 || len(s) > 4 {
		return MilitaryTime{}, fmt.Errorf("constraint: bad military time %q", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return MilitaryTime{}, fmt.Errorf("constraint: bad military time %q", s)
	}
	mt := MilitaryTime{Hour: n / 100, Min: n % 100}
	if mt.Hour > 23 || mt.Min > 59 || n < 0 {
		return MilitaryTime{}, fmt.Errorf("constraint: military time %q out of range", s)
	}
	return mt, nil
}

// Minutes returns the minutes past midnight.
func (m MilitaryTime) Minutes() int { return m.Hour*60 + m.Min }

// String renders HHMM.
func (m MilitaryTime) String() string { return fmt.Sprintf("%02d%02d", m.Hour, m.Min) }

// ParseSize parses a memory quantity with an optional KB/MB/GB suffix
// (case-insensitive; bare numbers and a B suffix are bytes).
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(upper, "B"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("constraint: bad memory size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatSize renders bytes with the largest exact KB/MB/GB unit.
func FormatSize(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Constraint is a parsed <constraint> block: up to one predicate per metric
// plus an optional time-of-day availability window.
type Constraint struct {
	CPULoad  *Predicate
	Memory   *Predicate
	Swap     *Predicate
	NetDelay *Predicate
	Start    *MilitaryTime
	End      *MilitaryTime
}

// IsZero reports whether no clause at all was specified.
func (c *Constraint) IsZero() bool {
	return c == nil || (c.CPULoad == nil && c.Memory == nil && c.Swap == nil &&
		c.NetDelay == nil && c.Start == nil && c.End == nil)
}

// HasResourceClauses reports whether any load/memory/swap/netdelay clause
// is present (i.e. the NodeState table must be consulted).
func (c *Constraint) HasResourceClauses() bool {
	return c != nil && (c.CPULoad != nil || c.Memory != nil || c.Swap != nil || c.NetDelay != nil)
}

// Sample is the host measurement a constraint is evaluated against — the
// values a NodeStatus invocation returns (plus the netdelay extension).
type Sample struct {
	Load       float64
	MemoryB    int64
	SwapB      int64
	NetDelayMs float64
}

// SatisfiedBy reports whether every resource clause holds for the sample.
// Time-window clauses are evaluated separately with TimeSatisfied, exactly
// as the thesis's ServiceConstraint class validates the window at request
// time before LoadStatus consults the NodeState table.
//
//repolint:hotpath warm discovery chain: per-binding predicate evaluation
func (c *Constraint) SatisfiedBy(s Sample) bool {
	if c == nil {
		return true
	}
	if c.CPULoad != nil && !c.CPULoad.Holds(s.Load) {
		return false
	}
	if c.Memory != nil && !c.Memory.Holds(float64(s.MemoryB)) {
		return false
	}
	if c.Swap != nil && !c.Swap.Holds(float64(s.SwapB)) {
		return false
	}
	if c.NetDelay != nil && !c.NetDelay.Holds(s.NetDelayMs) {
		return false
	}
	return true
}

// TimeSatisfied reports whether now's time-of-day falls inside the
// [starttime, endtime] window. A missing window is always satisfied; a
// window that wraps midnight (e.g. 2200–0600) is honoured.
//
//repolint:hotpath warm discovery chain: request-time window check
func (c *Constraint) TimeSatisfied(now time.Time) bool {
	if c == nil || (c.Start == nil && c.End == nil) {
		return true
	}
	minutes := now.Hour()*60 + now.Minute()
	start, end := 0, 24*60-1
	if c.Start != nil {
		start = c.Start.Minutes()
	}
	if c.End != nil {
		end = c.End.Minutes()
	}
	if start <= end {
		return minutes >= start && minutes <= end
	}
	// Window wraps midnight.
	return minutes >= start || minutes <= end
}

// NextWindowChange returns the next instant strictly after now at which
// TimeSatisfied's answer could flip: the window's daily opening minute
// (Start) or the minute after its daily closing minute (End), whichever
// comes first. A constraint without a time window returns the zero time,
// meaning the answer never changes. TimeSatisfied truncates to whole
// minutes, so boundaries land on minute granularity; callers using the
// result as a cache expiry get a conservative (never-late) bound.
func (c *Constraint) NextWindowChange(now time.Time) time.Time {
	if c == nil || (c.Start == nil && c.End == nil) {
		return time.Time{}
	}
	start, end := 0, 24*60-1
	if c.Start != nil {
		start = c.Start.Minutes()
	}
	if c.End != nil {
		end = c.End.Minutes()
	}
	open := nextDailyMinute(now, start)
	close := nextDailyMinute(now, (end+1)%(24*60))
	if open.Before(close) {
		return open
	}
	return close
}

// nextDailyMinute returns the first instant strictly after now whose
// time-of-day equals the given minutes past midnight, in now's location.
func nextDailyMinute(now time.Time, minutes int) time.Time {
	day := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, now.Location())
	t := day.Add(time.Duration(minutes) * time.Minute)
	if !t.After(now) {
		t = t.Add(24 * time.Hour)
	}
	return t
}

// String renders the constraint in the thesis's XML syntax.
func (c *Constraint) String() string { return c.XML() }

// XML serializes the constraint back to its <constraint> block; a zero
// constraint yields "".
func (c *Constraint) XML() string {
	if c.IsZero() {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("<constraint>")
	if c.CPULoad != nil {
		fmt.Fprintf(&sb, "<cpuLoad>%s</cpuLoad>", c.CPULoad)
	}
	if c.Memory != nil {
		fmt.Fprintf(&sb, "<memory>%s</memory>", c.Memory)
	}
	if c.Swap != nil {
		fmt.Fprintf(&sb, "<swapmemory>%s</swapmemory>", c.Swap)
	}
	if c.NetDelay != nil {
		fmt.Fprintf(&sb, "<netdelay>%s</netdelay>", c.NetDelay)
	}
	if c.Start != nil {
		fmt.Fprintf(&sb, "<starttime>%s</starttime>", c.Start)
	}
	if c.End != nil {
		fmt.Fprintf(&sb, "<endtime>%s</endtime>", c.End)
	}
	sb.WriteString("</constraint>")
	return sb.String()
}
