package constraint

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// thesisExample is the exact constraint block from thesis §3.2.
const thesisExample = `<constraint>
  <cpuLoad>load ls 1.0 </cpuLoad>
  <memory>memory gr 3GB</memory>
  <swapmemory>swapmemory gr 5MB </swapmemory>
  <starttime>1000</starttime>
  <endtime>1200</endtime>
</constraint>`

func TestParseThesisExample(t *testing.T) {
	c, err := ParseXML(thesisExample)
	if err != nil {
		t.Fatal(err)
	}
	if c.CPULoad == nil || c.CPULoad.Op != OpLt || c.CPULoad.Value != 1.0 {
		t.Fatalf("cpuLoad = %+v", c.CPULoad)
	}
	if c.Memory == nil || c.Memory.Op != OpGt || c.Memory.Value != float64(3<<30) {
		t.Fatalf("memory = %+v", c.Memory)
	}
	if c.Swap == nil || c.Swap.Op != OpGt || c.Swap.Value != float64(5<<20) {
		t.Fatalf("swap = %+v", c.Swap)
	}
	if c.Start == nil || c.Start.String() != "1000" || c.End == nil || c.End.String() != "1200" {
		t.Fatalf("window = %v %v", c.Start, c.End)
	}
}

func TestParseClauseVariants(t *testing.T) {
	// §3.4.4.2 example uses gt/geq/leq with different units.
	good := map[string]Metric{
		"load gt 0.01":       MetricLoad,
		"load ls 0.05":       MetricLoad,
		"load lt 0.05":       MetricLoad, // alias
		"memory geq 5MB":     MetricMemory,
		"memory eq 5MB":      MetricMemory,
		"swapmemory leq 3KB": MetricSwap,
		"swapmemory gr 1GB":  MetricSwap,
		"netdelay ls 20":     MetricNetDelay,
		"LOAD LS 1.0":        MetricLoad, // case-insensitive keyword/op
		"memory gr 1024":     MetricMemory,
		"memory gr 10b":      MetricMemory,
	}
	for s, m := range good {
		if _, err := ParseClause(m, s); err != nil {
			t.Errorf("ParseClause(%q): %v", s, err)
		}
	}
	bad := []struct {
		m Metric
		s string
	}{
		{MetricLoad, "load ls"},           // missing value
		{MetricLoad, "load frob 1.0"},     // bad op
		{MetricLoad, "memory ls 1.0"},     // wrong keyword for tag
		{MetricLoad, "load ls -1"},        // negative
		{MetricLoad, "load ls one"},       // non-numeric
		{MetricMemory, "memory gr 3QB"},   // bad unit
		{MetricMemory, "memory gr"},       // short
		{MetricLoad, "load ls 1.0 extra"}, // trailing garbage
	}
	for _, c := range bad {
		if _, err := ParseClause(c.m, c.s); err == nil {
			t.Errorf("ParseClause(%q) accepted", c.s)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"3GB":   3 << 30,
		"5MB":   5 << 20,
		"3KB":   3 << 10,
		"10":    10,
		"10B":   10,
		"1.5KB": 1536,
		"2gb":   2 << 30,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "GB", "-1KB", "x"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestFormatSizeRoundTrip(t *testing.T) {
	f := func(kb uint16) bool {
		b := int64(kb) << 10
		got, err := ParseSize(FormatSize(b))
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if FormatSize(1000) != "1000B" {
		t.Fatalf("FormatSize(1000) = %q", FormatSize(1000))
	}
}

func TestParseMilitary(t *testing.T) {
	good := map[string]string{"0700": "0700", "700": "0700", "2359": "2359", "1000": "1000"}
	for in, want := range good {
		mt, err := ParseMilitary(in)
		if err != nil || mt.String() != want {
			t.Errorf("ParseMilitary(%q) = %v, %v", in, mt, err)
		}
	}
	for _, bad := range []string{"", "7", "12345", "2400", "1260", "ab00", "-100"} {
		if _, err := ParseMilitary(bad); err == nil {
			t.Errorf("ParseMilitary(%q) accepted", bad)
		}
	}
}

func TestSatisfiedBy(t *testing.T) {
	c, err := ParseXML(thesisExample)
	if err != nil {
		t.Fatal(err)
	}
	ok := Sample{Load: 0.5, MemoryB: 4 << 30, SwapB: 10 << 20}
	if !c.SatisfiedBy(ok) {
		t.Fatal("satisfying sample rejected")
	}
	for name, s := range map[string]Sample{
		"load too high":   {Load: 1.5, MemoryB: 4 << 30, SwapB: 10 << 20},
		"load at bound":   {Load: 1.0, MemoryB: 4 << 30, SwapB: 10 << 20}, // ls is strict
		"memory too low":  {Load: 0.5, MemoryB: 2 << 30, SwapB: 10 << 20},
		"memory at bound": {Load: 0.5, MemoryB: 3 << 30, SwapB: 10 << 20}, // gr is strict
		"swap too low":    {Load: 0.5, MemoryB: 4 << 30, SwapB: 1 << 20},
	} {
		if c.SatisfiedBy(s) {
			t.Errorf("%s: sample %+v accepted", name, s)
		}
	}
	var nilC *Constraint
	if !nilC.SatisfiedBy(Sample{Load: 99}) {
		t.Fatal("nil constraint must accept everything")
	}
}

func TestTimeSatisfied(t *testing.T) {
	c, _ := ParseXML(thesisExample) // window 1000-1200
	at := func(h, m int) time.Time {
		return time.Date(2011, 4, 22, h, m, 0, 0, time.UTC)
	}
	cases := []struct {
		h, m int
		want bool
	}{
		{9, 59, false}, {10, 0, true}, {11, 30, true}, {12, 0, true}, {12, 1, false}, {0, 0, false},
	}
	for _, tc := range cases {
		if got := c.TimeSatisfied(at(tc.h, tc.m)); got != tc.want {
			t.Errorf("TimeSatisfied(%02d:%02d) = %v, want %v", tc.h, tc.m, got, tc.want)
		}
	}
	// Wrap-around window 2200-0600.
	w, err := ParseXML("<constraint><starttime>2200</starttime><endtime>0600</endtime></constraint>")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		h    int
		want bool
	}{{23, true}, {3, true}, {6, true}, {7, false}, {12, false}, {21, false}} {
		if got := w.TimeSatisfied(at(tc.h, 0)); got != tc.want {
			t.Errorf("wrap TimeSatisfied(%02d:00) = %v, want %v", tc.h, tc.want, got)
		}
	}
	// No window — always satisfied.
	n, _ := ParseXML("<constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>")
	if !n.TimeSatisfied(at(3, 0)) {
		t.Fatal("windowless constraint rejected a time")
	}
	var nilC *Constraint
	if !nilC.TimeSatisfied(at(3, 0)) {
		t.Fatal("nil constraint rejected a time")
	}
}

func TestNextWindowChange(t *testing.T) {
	at := func(h, m int) time.Time {
		return time.Date(2011, 4, 22, h, m, 0, 0, time.UTC)
	}
	c, _ := ParseXML(thesisExample) // window 1000-1200
	cases := []struct {
		now  time.Time
		want time.Time
	}{
		{at(9, 0), at(10, 0)},  // before the window: next change is the opening
		{at(10, 0), at(12, 1)}, // inside: next change is the minute after endtime
		{at(11, 59), at(12, 1)},
		{at(13, 0), at(10, 0).Add(24 * time.Hour)}, // after: tomorrow's opening
	}
	for _, tc := range cases {
		if got := c.NextWindowChange(tc.now); !got.Equal(tc.want) {
			t.Errorf("NextWindowChange(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}
	// Wrap-around window 2200-0600: boundaries at 22:00 and 06:01.
	w, _ := ParseXML("<constraint><starttime>2200</starttime><endtime>0600</endtime></constraint>")
	if got := w.NextWindowChange(at(23, 0)); !got.Equal(at(6, 1).Add(24 * time.Hour)) {
		t.Errorf("wrap NextWindowChange(23:00) = %v", got)
	}
	if got := w.NextWindowChange(at(7, 0)); !got.Equal(at(22, 0)) {
		t.Errorf("wrap NextWindowChange(07:00) = %v", got)
	}
	// The boundary itself is strictly after now, never now.
	if got := c.NextWindowChange(at(10, 0)); !got.After(at(10, 0)) {
		t.Error("NextWindowChange returned a non-future instant")
	}
	// No window: zero time, answer never changes.
	n, _ := ParseXML("<constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>")
	if !n.NextWindowChange(at(3, 0)).IsZero() {
		t.Error("windowless constraint reported a window change")
	}
	var nilC *Constraint
	if !nilC.NextWindowChange(at(3, 0)).IsZero() {
		t.Error("nil constraint reported a window change")
	}
}

func TestStartWithoutEndRejected(t *testing.T) {
	if _, err := ParseXML("<constraint><starttime>0700</starttime></constraint>"); err == nil {
		t.Fatal("lone starttime accepted")
	}
	if _, err := ParseXML("<constraint><endtime>0700</endtime></constraint>"); err == nil {
		t.Fatal("lone endtime accepted")
	}
}

func TestFromDescription(t *testing.T) {
	desc := "Service to add numbers. " + thesisExample + " Contact admin."
	c, rest, err := FromDescription(desc)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.CPULoad == nil {
		t.Fatalf("constraint not extracted: %+v", c)
	}
	if strings.Contains(rest, "<constraint>") || !strings.Contains(rest, "add numbers") || !strings.Contains(rest, "Contact admin") {
		t.Fatalf("rest = %q", rest)
	}
}

func TestFromDescriptionNoBlock(t *testing.T) {
	c, rest, err := FromDescription("plain description")
	if err != nil || c != nil || rest != "plain description" {
		t.Fatalf("got %+v, %q, %v", c, rest, err)
	}
}

func TestFromDescriptionConstrainAlias(t *testing.T) {
	// RegistryAccess.dtd spells the element <constrain>.
	desc := `<constrain><cpuLoad>load gt 0.01</cpuLoad></constrain>`
	c, rest, err := FromDescription(desc)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.CPULoad == nil || c.CPULoad.Op != OpGt {
		t.Fatalf("alias block not parsed: %+v", c)
	}
	if rest != "" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestFromDescriptionMalformed(t *testing.T) {
	if _, _, err := FromDescription("<constraint><cpuLoad>bogus</cpuLoad></constraint>"); err == nil {
		t.Fatal("malformed clause accepted")
	}
	if _, _, err := FromDescription("<constraint> unterminated"); err == nil {
		t.Fatal("unterminated block accepted")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	c, err := ParseXML(thesisExample)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseXML(c.XML())
	if err != nil {
		t.Fatalf("reparse %q: %v", c.XML(), err)
	}
	if re.CPULoad.Value != c.CPULoad.Value || re.Memory.Value != c.Memory.Value ||
		re.Swap.Value != c.Swap.Value || re.Start.Minutes() != c.Start.Minutes() || re.End.Minutes() != c.End.Minutes() {
		t.Fatalf("round trip mismatch:\n%v\n%v", c, re)
	}
}

func TestIsZeroAndEmptyXML(t *testing.T) {
	var nilC *Constraint
	if !nilC.IsZero() {
		t.Fatal("nil not zero")
	}
	c := &Constraint{}
	if !c.IsZero() || c.XML() != "" {
		t.Fatal("empty constraint should serialize to nothing")
	}
	if c.HasResourceClauses() {
		t.Fatal("empty constraint claims resource clauses")
	}
	c2, _ := ParseXML("<constraint><starttime>0700</starttime><endtime>0800</endtime></constraint>")
	if c2.HasResourceClauses() {
		t.Fatal("time-only constraint claims resource clauses")
	}
	c3, _ := ParseXML("<constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>")
	if !c3.HasResourceClauses() {
		t.Fatal("load constraint denies resource clauses")
	}
}

// Property: any combination of parsed predicates round-trips through XML
// and preserves evaluation on random samples.
func TestConstraintEvaluationProperty(t *testing.T) {
	f := func(load8 uint8, memMB uint16, swapMB uint16, sLoad8 uint8, sMemMB uint16, sSwapMB uint16) bool {
		c := &Constraint{
			CPULoad: &Predicate{Metric: MetricLoad, Op: OpLt, Value: float64(load8) / 16},
			Memory:  &Predicate{Metric: MetricMemory, Op: OpGeq, Value: float64(int64(memMB) << 20)},
			Swap:    &Predicate{Metric: MetricSwap, Op: OpGt, Value: float64(int64(swapMB) << 20)},
		}
		s := Sample{Load: float64(sLoad8) / 16, MemoryB: int64(sMemMB) << 20, SwapB: int64(sSwapMB) << 20}
		want := s.Load < c.CPULoad.Value && float64(s.MemoryB) >= c.Memory.Value && float64(s.SwapB) > c.Swap.Value
		if c.SatisfiedBy(s) != want {
			return false
		}
		re, err := ParseXML(c.XML())
		return err == nil && re.SatisfiedBy(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpCompareTable(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want bool
	}{
		{OpGt, 2, 1, true}, {OpGt, 1, 1, false},
		{OpGeq, 1, 1, true}, {OpGeq, 0.5, 1, false},
		{OpLt, 0.5, 1, true}, {OpLt, 1, 1, false},
		{OpLeq, 1, 1, true}, {OpLeq, 2, 1, false},
		{OpEq, 1, 1, true}, {OpEq, 1.1, 1, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%v.Compare(%v,%v) = %v", c.op, c.a, c.b, got)
		}
	}
	if Op(99).Compare(1, 1) {
		t.Fatal("invalid op must compare false")
	}
}

func TestMetricAndOpStrings(t *testing.T) {
	if MetricLoad.String() != "load" || MetricSwap.String() != "swapmemory" || MetricNetDelay.String() != "netdelay" {
		t.Fatal("metric strings wrong")
	}
	if OpGt.String() != "gt" || OpLt.String() != "ls" {
		t.Fatal("op strings wrong")
	}
	if !strings.Contains(Metric(42).String(), "42") || !strings.Contains(Op(42).String(), "42") {
		t.Fatal("unknown enum strings wrong")
	}
}
