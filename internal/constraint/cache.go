package constraint

import (
	"sync"

	"repro/internal/metrics"
)

// DefaultCacheSize bounds the parsed-constraint cache when the caller
// doesn't pick a size. One entry per service is the natural working set;
// 1024 covers a large registry while keeping the worst-case footprint
// trivial (an entry is a hash plus a small parsed struct).
const DefaultCacheSize = 1024

// Cache memoizes FromDescription results per service so the discovery
// path parses each description version exactly once. Entries are keyed by
// service id and validated against an FNV-1a hash of the description
// text: when an LCM write changes the description, the hash no longer
// matches and the entry is reparsed, so a lookup can never return a
// constraint parsed from a different description than the one passed in.
// Explicit invalidation (wired to LCM's write hooks) additionally drops
// entries for deleted or rewritten services so the cache never pins
// stale parses in memory.
//
// Cached *Constraint values are shared between goroutines; they are
// immutable after parsing and must not be modified by callers.
//
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil cache simply parses every time).
type Cache struct {
	// Hits counts lookups answered from the cache; Misses counts lookups
	// that had to parse; Invalidations counts entries dropped by
	// Invalidate. All are always allocated.
	Hits          *metrics.Counter
	Misses        *metrics.Counter
	Invalidations *metrics.Counter

	max int

	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
	order   []string               // guarded by mu; insertion order for FIFO eviction
}

type cacheEntry struct {
	hash uint64
	c    *Constraint
	err  error
}

// NewCache creates a cache bounded to max entries; max <= 0 means
// DefaultCacheSize.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{
		Hits:          &metrics.Counter{},
		Misses:        &metrics.Counter{},
		Invalidations: &metrics.Counter{},
		max:           max,
		entries:       make(map[string]*cacheEntry),
	}
}

// FromDescription returns the parsed constraint block for desc, reusing
// the cached parse when serviceID's entry matches desc's hash, and
// reports whether the answer came from the cache. The rest of the
// description (FromDescription's second result) is not cached: the
// discovery path never uses it.
//
//repolint:hotpath warm discovery chain: cache hit is hash + one map read
func (c *Cache) FromDescription(serviceID, desc string) (_ *Constraint, cached bool, _ error) {
	if c == nil || serviceID == "" {
		parsed, _, err := FromDescription(desc)
		return parsed, false, err
	}
	h := hashDescription(desc)
	c.mu.Lock()
	e, ok := c.entries[serviceID]
	c.mu.Unlock()
	if ok && e.hash == h {
		c.Hits.Inc()
		return e.c, true, e.err
	}
	c.Misses.Inc()
	parsed, _, err := FromDescription(desc)
	c.store(serviceID, &cacheEntry{hash: h, c: parsed, err: err})
	return parsed, false, err
}

// store inserts or replaces serviceID's entry, evicting the oldest
// entries when a new key would exceed the bound. A key invalidated and
// re-added may appear twice in the FIFO order; the duplicate only makes
// an eviction slightly early, never incorrect.
func (c *Cache) store(id string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, present := c.entries[id]; !present {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.order = append(c.order, id)
	}
	c.entries[id] = e
}

// Invalidate drops the entry for serviceID if present. LCM write hooks
// call this on submit, update, and remove so deleted services don't pin
// parses.
func (c *Cache) Invalidate(serviceID string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	_, ok := c.entries[serviceID]
	if ok {
		delete(c.entries, serviceID)
	}
	c.mu.Unlock()
	if ok {
		c.Invalidations.Inc()
	}
}

// InvalidateIDs drops the entries for every given id — the shape LCM's
// OnWrite hook delivers.
func (c *Cache) InvalidateIDs(ids ...string) {
	for _, id := range ids {
		c.Invalidate(id)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// FNV-1a parameters (hash/fnv's 64-bit constants, inlined so the hot
// path hashes the string directly instead of converting it to []byte and
// boxing a hash.Hash64).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashDescription is FNV-1a over the description text — the version key
// that ties a cached parse to the exact text it was parsed from. The loop
// indexes the string's bytes in place: no copy, no interface, no escape.
func hashDescription(desc string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(desc); i++ {
		h ^= uint64(desc[i])
		h *= fnvPrime64
	}
	return h
}
