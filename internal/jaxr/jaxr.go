// Package jaxr is the registry client API layer of thesis Figure 2.1/2.2:
// the JAXR-provider analog that programs use to talk to the registry. A
// Connection either speaks the SOAP protocol over HTTP to a remote
// registry server, or — in localCall mode, exactly like freebXML's
// localCall=true optimization (§2.2.1) — bypasses SOAP and invokes the
// QueryManager and LifeCycleManager interfaces directly.
//
// The BusinessLifeCycleManager and BusinessQueryManager facades mirror the
// JAXR API surface the thesis's AccessRegistry API wraps; the JUnit cases
// testGetBusinessLifeCycleManager / testGetBusinessQueryManager (Table
// 3.9) map to the accessor tests here.
package jaxr

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/lcm"
	"repro/internal/qm"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/soap"
	"repro/internal/sqlq"
)

// Connection is a client connection to a registry.
type Connection struct {
	// Remote mode.
	baseURL string
	client  *http.Client

	// Local mode.
	local *registry.Registry

	token  string
	userID string
	alias  string
}

// Connect opens a remote connection to a registry server's base URL (the
// connection.xml <url> value).
func Connect(baseURL string, client *http.Client) *Connection {
	if client == nil {
		client = http.DefaultClient
	}
	return &Connection{baseURL: baseURL, client: client}
}

// ConnectLocal opens a localCall-mode connection.
func ConnectLocal(reg *registry.Registry) *Connection {
	return &Connection{local: reg}
}

// IsLocal reports whether the connection bypasses SOAP.
func (c *Connection) IsLocal() bool { return c.local != nil }

// Health probes the registry's /registry/health rollup and returns its
// status verdict ("ok" or "degraded"); a transport failure is an error
// (the registry is unreachable, which is worse than degraded). Local
// connections compute the rollup in-process.
func (c *Connection) Health() (string, error) {
	if c.local != nil {
		return c.local.HealthStatus(), nil
	}
	resp, err := c.client.Get(c.baseURL + "/registry/health")
	if err != nil {
		return "", fmt.Errorf("jaxr: health probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("jaxr: health probe: registry answered %s", resp.Status)
	}
	var doc struct {
		Status string
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", fmt.Errorf("jaxr: health probe: decode: %w", err)
	}
	return doc.Status, nil
}

// UserID returns the authenticated user id ("" before Login).
func (c *Connection) UserID() string { return c.userID }

// post sends one protocol request to the remote registry.
func (c *Connection) post(req, resp interface{}) error {
	return soap.Post(c.client, c.baseURL+"/soap/registry", req, resp)
}

// Register runs the registration wizard, returning generated credentials.
func (c *Connection) Register(alias, password string, name rim.PersonName) (*auth.Credentials, string, error) {
	if c.local != nil {
		creds, user, err := c.local.Registrar.Register(alias, password, name)
		if err != nil {
			return nil, "", err
		}
		if err := c.local.Store.Put(user); err != nil {
			return nil, "", err
		}
		return creds, user.ID, nil
	}
	var resp registry.RegisterResponse
	err := soap.Post(c.client, c.baseURL+"/soap/auth", &authReq{Register: &registry.RegisterRequest{
		Alias: alias, Password: password, FirstName: name.FirstName, LastName: name.LastName,
	}}, &resp)
	if err != nil {
		return nil, "", err
	}
	return &auth.Credentials{Alias: alias, CertPEM: []byte(resp.CertPEM), KeyPEM: []byte(resp.KeyPEM)}, resp.UserID, nil
}

// authReq is the auth endpoint union (mirrors the server's).
type authReq struct {
	XMLName   struct{}                   `xml:"AuthRequest"`
	Register  *registry.RegisterRequest  `xml:"RegisterRequest,omitempty"`
	Challenge *registry.ChallengeRequest `xml:"ChallengeRequest,omitempty"`
	Login     *registry.LoginRequest     `xml:"LoginRequest,omitempty"`
}

// Login authenticates with credentials via challenge/response and binds
// the session to this connection.
func (c *Connection) Login(creds *auth.Credentials) error {
	if c.local != nil {
		nonce, err := c.local.Registrar.Challenge(creds.Alias)
		if err != nil {
			return err
		}
		sig, err := creds.SignChallenge(nonce)
		if err != nil {
			return err
		}
		token, userID, err := c.local.Registrar.Login(creds.Alias, sig)
		if err != nil {
			return err
		}
		c.token, c.userID, c.alias = token, userID, creds.Alias
		return nil
	}
	var ch registry.ChallengeResponse
	if err := soap.Post(c.client, c.baseURL+"/soap/auth", &authReq{Challenge: &registry.ChallengeRequest{Alias: creds.Alias}}, &ch); err != nil {
		return err
	}
	nonce, err := base64.StdEncoding.DecodeString(ch.Nonce)
	if err != nil {
		return fmt.Errorf("jaxr: bad nonce: %w", err)
	}
	sig, err := creds.SignChallenge(nonce)
	if err != nil {
		return err
	}
	var login registry.LoginResponse
	err = soap.Post(c.client, c.baseURL+"/soap/auth", &authReq{Login: &registry.LoginRequest{
		Alias: creds.Alias, Signature: base64.StdEncoding.EncodeToString(sig),
	}}, &login)
	if err != nil {
		return err
	}
	c.token, c.userID, c.alias = login.Token, login.UserID, creds.Alias
	return nil
}

// requireAuth guards life-cycle calls.
func (c *Connection) requireAuth() error {
	if c.token == "" {
		return fmt.Errorf("jaxr: not logged in")
	}
	return nil
}

func (c *Connection) localCtx() lcm.Context {
	return c.local.ContextFor(c.userID)
}

// Submit publishes objects and returns their ids.
func (c *Connection) Submit(objs ...rim.Object) ([]string, error) {
	if err := c.requireAuth(); err != nil {
		return nil, err
	}
	if c.local != nil {
		if err := c.local.LCM.SubmitObjects(c.localCtx(), objs...); err != nil {
			return nil, err
		}
		ids := make([]string, len(objs))
		for i, o := range objs {
			ids[i] = o.Base().ID
		}
		return ids, nil
	}
	wires, err := toWires(objs)
	if err != nil {
		return nil, err
	}
	var resp registry.RegistryResponse
	err = c.post(&regReq{Submit: &registry.SubmitObjectsRequest{Session: c.token, Objects: wires}}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Update replaces objects and returns their ids.
func (c *Connection) Update(objs ...rim.Object) ([]string, error) {
	if err := c.requireAuth(); err != nil {
		return nil, err
	}
	if c.local != nil {
		if err := c.local.LCM.UpdateObjects(c.localCtx(), objs...); err != nil {
			return nil, err
		}
		ids := make([]string, len(objs))
		for i, o := range objs {
			ids[i] = o.Base().ID
		}
		return ids, nil
	}
	wires, err := toWires(objs)
	if err != nil {
		return nil, err
	}
	var resp registry.RegistryResponse
	err = c.post(&regReq{Update: &registry.UpdateObjectsRequest{Session: c.token, Objects: wires}}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

func toWires(objs []rim.Object) ([]registry.WireObject, error) {
	wires := make([]registry.WireObject, 0, len(objs))
	for _, o := range objs {
		w, err := registry.ToWire(o)
		if err != nil {
			return nil, err
		}
		wires = append(wires, *w)
	}
	return wires, nil
}

// regReq is the registry endpoint union (mirrors the server's).
type regReq struct {
	XMLName     struct{}                            `xml:"RegistryRequest"`
	Submit      *registry.SubmitObjectsRequest      `xml:"SubmitObjectsRequest,omitempty"`
	Update      *registry.UpdateObjectsRequest      `xml:"UpdateObjectsRequest,omitempty"`
	Approve     *registry.ApproveObjectsRequest     `xml:"ApproveObjectsRequest,omitempty"`
	Deprecate   *registry.DeprecateObjectsRequest   `xml:"DeprecateObjectsRequest,omitempty"`
	Undeprecate *registry.UndeprecateObjectsRequest `xml:"UndeprecateObjectsRequest,omitempty"`
	Remove      *registry.RemoveObjectsRequest      `xml:"RemoveObjectsRequest,omitempty"`
	GetObject   *registry.GetObjectRequest          `xml:"GetObjectRequest,omitempty"`
	Find        *registry.FindObjectsRequest        `xml:"FindObjectsRequest,omitempty"`
	Query       *registry.AdhocQueryWireRequest     `xml:"AdhocQueryRequest,omitempty"`
	Bindings    *registry.GetBindingsRequest        `xml:"GetBindingsRequest,omitempty"`
}

func (c *Connection) refOp(build func(ref registry.ObjectRefRequest) *regReq, ids []string, localOp func(lcm.Context, ...string) error) error {
	if err := c.requireAuth(); err != nil {
		return err
	}
	if c.local != nil {
		return localOp(c.localCtx(), ids...)
	}
	var resp registry.RegistryResponse
	return c.post(build(registry.ObjectRefRequest{Session: c.token, IDs: ids}), &resp)
}

// Approve approves objects.
func (c *Connection) Approve(ids ...string) error {
	return c.refOp(func(ref registry.ObjectRefRequest) *regReq {
		return &regReq{Approve: &registry.ApproveObjectsRequest{ObjectRefRequest: ref}}
	}, ids, func(ctx lcm.Context, ids ...string) error {
		return c.local.LCM.ApproveObjects(ctx, ids...)
	})
}

// Deprecate deprecates objects.
func (c *Connection) Deprecate(ids ...string) error {
	return c.refOp(func(ref registry.ObjectRefRequest) *regReq {
		return &regReq{Deprecate: &registry.DeprecateObjectsRequest{ObjectRefRequest: ref}}
	}, ids, func(ctx lcm.Context, ids ...string) error {
		return c.local.LCM.DeprecateObjects(ctx, ids...)
	})
}

// Undeprecate reverses deprecation.
func (c *Connection) Undeprecate(ids ...string) error {
	return c.refOp(func(ref registry.ObjectRefRequest) *regReq {
		return &regReq{Undeprecate: &registry.UndeprecateObjectsRequest{ObjectRefRequest: ref}}
	}, ids, func(ctx lcm.Context, ids ...string) error {
		return c.local.LCM.UndeprecateObjects(ctx, ids...)
	})
}

// Remove deletes objects (with server-side cascades).
func (c *Connection) Remove(ids ...string) error {
	return c.refOp(func(ref registry.ObjectRefRequest) *regReq {
		return &regReq{Remove: &registry.RemoveObjectsRequest{ObjectRefRequest: ref}}
	}, ids, func(ctx lcm.Context, ids ...string) error {
		return c.local.LCM.RemoveObjects(ctx, ids...)
	})
}

// Relocate retargets objects' home registry (the
// RelocateObjectsRequestProtocol).
func (c *Connection) Relocate(homeURL string, ids ...string) error {
	if err := c.requireAuth(); err != nil {
		return err
	}
	if c.local != nil {
		return c.local.LCM.RelocateObjects(c.localCtx(), homeURL, ids...)
	}
	var resp registry.RegistryResponse
	return c.post(&regReqRelocate{Relocate: &registry.RelocateObjectsRequest{
		Home:             homeURL,
		ObjectRefRequest: registry.ObjectRefRequest{Session: c.token, IDs: ids},
	}}, &resp)
}

// regReqRelocate carries the relocate protocol (kept separate from regReq
// to keep that struct's wire order stable).
type regReqRelocate struct {
	XMLName  struct{}                         `xml:"RegistryRequest"`
	Relocate *registry.RelocateObjectsRequest `xml:"RelocateObjectsRequest,omitempty"`
}

// GetObject retrieves one object by id.
func (c *Connection) GetObject(id string) (rim.Object, error) {
	if c.local != nil {
		return c.local.QM.GetRegistryObject(id)
	}
	var resp registry.GetObjectResponse
	if err := c.post(&regReq{GetObject: &registry.GetObjectRequest{ID: id}}, &resp); err != nil {
		return nil, err
	}
	return resp.Object.FromWire()
}

// Find lists objects of a kind by name LIKE pattern.
func (c *Connection) Find(kind, namePattern string) ([]rim.Object, error) {
	if c.local != nil {
		t, err := localKind(kind)
		if err != nil {
			return nil, err
		}
		return c.local.QM.FindObjects(t, namePattern), nil
	}
	var resp registry.FindObjectsResponse
	if err := c.post(&regReq{Find: &registry.FindObjectsRequest{Kind: kind, NamePattern: namePattern}}, &resp); err != nil {
		return nil, err
	}
	objs := make([]rim.Object, 0, len(resp.Objects))
	for i := range resp.Objects {
		o, err := resp.Objects[i].FromWire()
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
	return objs, nil
}

func localKind(kind string) (rim.ObjectType, error) {
	switch kind {
	case "Organization":
		return rim.TypeOrganization, nil
	case "Service":
		return rim.TypeService, nil
	case "Association":
		return rim.TypeAssociation, nil
	case "User":
		return rim.TypeUser, nil
	default:
		return "", fmt.Errorf("jaxr: unsupported kind %q", kind)
	}
}

// QueryResult is a syntax-independent ad-hoc query result.
type QueryResult struct {
	Columns []string
	Rows    [][]string // nulls rendered as ""
	Nulls   [][]bool
	Total   int
}

// AdhocQuery runs a SQL-92 query with string parameters.
func (c *Connection) AdhocQuery(query string, params map[string]string) (*QueryResult, error) {
	if c.local != nil {
		p := make(map[string]sqlq.Value, len(params))
		for k, v := range params {
			p[k] = v
		}
		resp, err := c.local.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{Query: query, Params: p})
		if err != nil {
			return nil, err
		}
		out := &QueryResult{Columns: resp.Columns, Total: resp.TotalResultsCount}
		for _, row := range resp.Rows {
			cells := make([]string, len(row))
			nulls := make([]bool, len(row))
			for i, v := range row {
				if v == nil {
					nulls[i] = true
				} else {
					cells[i] = fmt.Sprintf("%v", v)
				}
			}
			out.Rows = append(out.Rows, cells)
			out.Nulls = append(out.Nulls, nulls)
		}
		return out, nil
	}
	wp := make([]registry.WireParam, 0, len(params))
	for k, v := range params {
		wp = append(wp, registry.WireParam{Name: k, Value: v})
	}
	var resp registry.AdhocQueryWireResponse
	if err := c.post(&regReq{Query: &registry.AdhocQueryWireRequest{Query: query, Params: wp}}, &resp); err != nil {
		return nil, err
	}
	out := &QueryResult{Columns: resp.Columns, Total: resp.TotalResultsCount}
	for _, row := range resp.Rows {
		cells := make([]string, len(row.Cells))
		nulls := make([]bool, len(row.Cells))
		for i, cell := range row.Cells {
			cells[i] = cell.Value
			nulls[i] = cell.Null
		}
		out.Rows = append(out.Rows, cells)
		out.Nulls = append(out.Nulls, nulls)
	}
	return out, nil
}

// BindingsDecision summarizes the balancer's decision for a discovery.
type BindingsDecision struct {
	Filtered   bool
	Eligible   int
	Unknown    int
	Ineligible int
	WindowOK   bool
}

// ServiceBindings resolves a service name to its arranged access URIs —
// the call MTC clients make before invoking (Fig. 3.3).
func (c *Connection) ServiceBindings(serviceName string) ([]string, BindingsDecision, error) {
	if c.local != nil {
		uris, dec, err := c.local.QM.GetServiceBindingsByName(serviceName)
		return uris, BindingsDecision{
			Filtered: dec.Filtered, Eligible: dec.Eligible(), Unknown: dec.Unknown(),
			Ineligible: dec.Ineligible(), WindowOK: dec.TimeWindowOK,
		}, err
	}
	var resp registry.GetBindingsResponse
	if err := c.post(&regReq{Bindings: &registry.GetBindingsRequest{ServiceName: serviceName}}, &resp); err != nil {
		return nil, BindingsDecision{}, err
	}
	return resp.URIs, BindingsDecision{
		Filtered: resp.Filtered, Eligible: resp.Eligible, Unknown: resp.Unknown,
		Ineligible: resp.Ineligible, WindowOK: resp.WindowOK,
	}, nil
}

// BusinessLifeCycleManager is the JAXR write facade.
type BusinessLifeCycleManager struct{ c *Connection }

// BusinessQueryManager is the JAXR read facade.
type BusinessQueryManager struct{ c *Connection }

// BusinessLifeCycleManager returns the write facade (never nil — Table
// 3.9, testGetBusinessLifeCycleManager).
func (c *Connection) BusinessLifeCycleManager() *BusinessLifeCycleManager {
	return &BusinessLifeCycleManager{c: c}
}

// BusinessQueryManager returns the read facade (never nil — Table 3.9,
// testGetBusinessQueryManager).
func (c *Connection) BusinessQueryManager() *BusinessQueryManager {
	return &BusinessQueryManager{c: c}
}

// SaveOrganizations publishes organizations.
func (m *BusinessLifeCycleManager) SaveOrganizations(orgs ...*rim.Organization) ([]string, error) {
	objs := make([]rim.Object, len(orgs))
	for i, o := range orgs {
		objs[i] = o
	}
	return m.c.Submit(objs...)
}

// SaveServices publishes services.
func (m *BusinessLifeCycleManager) SaveServices(svcs ...*rim.Service) ([]string, error) {
	objs := make([]rim.Object, len(svcs))
	for i, s := range svcs {
		objs[i] = s
	}
	return m.c.Submit(objs...)
}

// DeleteObjects removes objects by id.
func (m *BusinessLifeCycleManager) DeleteObjects(ids ...string) error { return m.c.Remove(ids...) }

// FindOrganizations searches organizations by name pattern.
func (m *BusinessQueryManager) FindOrganizations(namePattern string) ([]*rim.Organization, error) {
	objs, err := m.c.Find("Organization", namePattern)
	if err != nil {
		return nil, err
	}
	out := make([]*rim.Organization, 0, len(objs))
	for _, o := range objs {
		if org, ok := o.(*rim.Organization); ok {
			out = append(out, org)
		}
	}
	return out, nil
}

// FindServices searches services by name pattern.
func (m *BusinessQueryManager) FindServices(namePattern string) ([]*rim.Service, error) {
	objs, err := m.c.Find("Service", namePattern)
	if err != nil {
		return nil, err
	}
	out := make([]*rim.Service, 0, len(objs))
	for _, o := range objs {
		if svc, ok := o.(*rim.Service); ok {
			out = append(out, svc)
		}
	}
	return out, nil
}

// Balancer policies are configured server-side; this accessor surfaces the
// effective policy in localCall mode for diagnostics.
func (c *Connection) LocalPolicy() (core.Policy, bool) {
	if c.local == nil {
		return 0, false
	}
	return c.local.Balancer.Policy, true
}
