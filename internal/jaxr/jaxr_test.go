package jaxr

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func newRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	r, err := registry.New(registry.Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// connections returns both a local and a remote connection to the same
// registry, so every test exercises both transports.
func connections(t *testing.T) (reg *registry.Registry, conns map[string]*Connection, cleanup func()) {
	t.Helper()
	reg = newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	local := ConnectLocal(reg)
	remote := Connect(srv.URL, srv.Client())
	return reg, map[string]*Connection{"local": local, "remote": remote}, srv.Close
}

func loginFresh(t *testing.T, c *Connection, alias string) {
	t.Helper()
	creds, _, err := c.Register(alias, "pw", rim.PersonName{FirstName: "T"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login(creds); err != nil {
		t.Fatal(err)
	}
}

func TestPublishFindDeleteBothTransports(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			loginFresh(t, c, "user-"+name)
			if c.UserID() == "" {
				t.Fatal("no user id after login")
			}

			org := rim.NewOrganization("DemoOrganization-" + name)
			svc := rim.NewService("DemoService-"+name, "demo")
			svc.AddBinding("http://thermo.sdsu.edu:8080/Demo/" + name)
			assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)

			ids, err := c.Submit(org, svc, assoc)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 3 || ids[0] != org.ID {
				t.Fatalf("ids = %v", ids)
			}

			got, err := c.GetObject(svc.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.Base().Name.String() != svc.Name.String() {
				t.Fatalf("got %q", got.Base().Name.String())
			}

			found, err := c.Find("Organization", "DemoOrganization-"+name)
			if err != nil || len(found) != 1 {
				t.Fatalf("find: %v, %v", found, err)
			}

			// Delete the organization: cascade removes the service too.
			if err := c.Remove(org.ID); err != nil {
				t.Fatal(err)
			}
			if _, err := c.GetObject(svc.ID); err == nil {
				t.Fatal("cascade did not remove service")
			}
		})
	}
}

func TestLifecycleBothTransports(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			loginFresh(t, c, "lcuser-"+name)
			svc := rim.NewService("LC-"+name, "")
			svc.AddBinding("http://h.example/" + name)
			if _, err := c.Submit(svc); err != nil {
				t.Fatal(err)
			}
			if err := c.Approve(svc.ID); err != nil {
				t.Fatal(err)
			}
			if err := c.Deprecate(svc.ID); err != nil {
				t.Fatal(err)
			}
			if err := c.Undeprecate(svc.ID); err != nil {
				t.Fatal(err)
			}
			got, err := c.GetObject(svc.ID)
			if err != nil || got.Base().Status != rim.StatusApproved {
				t.Fatalf("status = %v, %v", got.Base().Status, err)
			}
			// Update description.
			upd := got.(*rim.Service)
			upd.Description = rim.NewIString("edited")
			if _, err := c.Update(upd); err != nil {
				t.Fatal(err)
			}
			again, _ := c.GetObject(svc.ID)
			if again.Base().Description.String() != "edited" {
				t.Fatal("update lost")
			}
		})
	}
}

func TestAdhocQueryBothTransports(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			loginFresh(t, c, "quser-"+name)
			if _, err := c.Submit(rim.NewOrganization("QOrg-" + name)); err != nil {
				t.Fatal(err)
			}
			res, err := c.AdhocQuery("SELECT o.name, o.description FROM Organization o WHERE o.name = $n",
				map[string]string{"n": "QOrg-" + name})
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != 1 || res.Rows[0][0] != "QOrg-"+name {
				t.Fatalf("result = %+v", res)
			}
			// Description is NULL and must be flagged as such.
			if !res.Nulls[0][1] {
				t.Fatal("null not marked")
			}
		})
	}
}

func TestServiceBindingsLoadBalancedBothTransports(t *testing.T) {
	reg, conns, cleanup := connections(t)
	defer cleanup()
	reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
	reg.Store.NodeState().Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 3.0, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})

	setup := ConnectLocal(reg)
	loginFresh(t, setup, "publisher")
	svc := rim.NewService("BalancedAdder", `<constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>`)
	svc.AddBinding("http://exergy.sdsu.edu:8080/Adder/addService")
	svc.AddBinding("http://thermo.sdsu.edu:8080/Adder/addService")
	if _, err := setup.Submit(svc); err != nil {
		t.Fatal(err)
	}

	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			uris, dec, err := c.ServiceBindings("BalancedAdder")
			if err != nil {
				t.Fatal(err)
			}
			if len(uris) != 1 || !strings.Contains(uris[0], "thermo") {
				t.Fatalf("uris = %v", uris)
			}
			if !dec.Filtered || dec.Eligible != 1 || dec.Ineligible != 1 || !dec.WindowOK {
				t.Fatalf("decision = %+v", dec)
			}
		})
	}
}

func TestBusinessManagersFacades(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	c := conns["local"]
	// Table 3.9: testGetBusinessLifeCycleManager / testGetBusinessQueryManager.
	blcm := c.BusinessLifeCycleManager()
	bqm := c.BusinessQueryManager()
	if blcm == nil || bqm == nil {
		t.Fatal("facades must be non-nil")
	}
	loginFresh(t, c, "facade")
	if _, err := blcm.SaveOrganizations(rim.NewOrganization("FacadeOrg")); err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("FacadeSvc", "")
	svc.AddBinding("http://h.example/f")
	ids, err := blcm.SaveServices(svc)
	if err != nil || len(ids) != 1 {
		t.Fatalf("SaveServices: %v, %v", ids, err)
	}
	orgs, err := bqm.FindOrganizations("Facade%")
	if err != nil || len(orgs) != 1 {
		t.Fatalf("FindOrganizations: %v, %v", orgs, err)
	}
	svcs, err := bqm.FindServices("Facade%")
	if err != nil || len(svcs) != 1 {
		t.Fatalf("FindServices: %v, %v", svcs, err)
	}
	if err := blcm.DeleteObjects(ids...); err != nil {
		t.Fatal(err)
	}
}

func TestUnauthenticatedWritesRejected(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			if _, err := c.Submit(rim.NewOrganization("X")); err == nil {
				t.Fatal("submit without login accepted")
			}
			if err := c.Remove("urn:uuid:x"); err == nil {
				t.Fatal("remove without login accepted")
			}
		})
	}
}

func TestLoginRejectsWrongKey(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	c := conns["remote"]
	creds, _, err := c.Register("victim", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	_ = creds
	// A fresh, unregistered key pair under the same alias must fail.
	forged, _, err := ConnectLocal(newRegistry(t)).Register("victim", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login(forged); err == nil {
		t.Fatal("forged login accepted")
	}
}

func TestLocalPolicyAccessor(t *testing.T) {
	reg, conns, cleanup := connections(t)
	defer cleanup()
	_ = reg
	if p, ok := conns["local"].LocalPolicy(); !ok || p != core.PolicyFilter {
		t.Fatalf("local policy = %v, %v", p, ok)
	}
	if _, ok := conns["remote"].LocalPolicy(); ok {
		t.Fatal("remote connection claims local policy")
	}
	if conns["local"].IsLocal() != true || conns["remote"].IsLocal() {
		t.Fatal("IsLocal wrong")
	}
}

func TestRelocateBothTransports(t *testing.T) {
	_, conns, cleanup := connections(t)
	defer cleanup()
	for name, c := range conns {
		t.Run(name, func(t *testing.T) {
			loginFresh(t, c, "reloc-"+name)
			svc := rim.NewService("Reloc-"+name, "")
			svc.AddBinding("http://h.example/" + name)
			if _, err := c.Submit(svc); err != nil {
				t.Fatal(err)
			}
			if err := c.Relocate("http://other-registry.example/omar", svc.ID); err != nil {
				t.Fatal(err)
			}
			got, err := c.GetObject(svc.ID)
			if err != nil || got.Base().Home != "http://other-registry.example/omar" {
				t.Fatalf("home = %q, %v", got.Base().Home, err)
			}
		})
	}
	// Unauthenticated relocate is rejected.
	_, conns2, cleanup2 := connections(t)
	defer cleanup2()
	if err := conns2["local"].Relocate("http://x/", "urn:uuid:y"); err == nil {
		t.Fatal("anonymous relocate accepted")
	}
}
