// Package flight is the registry's always-on wide-event recorder: one
// fixed-size record per served (or shed) edge request, written into a
// lock-free power-of-two ring and read back through /registry/flight.
//
// Sampled traces (internal/obs) answer "what happened inside request X"
// for every Nth request; the flight ring answers "what were the last N
// requests" for *all* of them — including the preserialized cache hits
// that deliberately bypass tracing, marshalling, and every other form of
// per-request observability on the zero-allocation serving edge (PR 8).
// That path's allocation budget is the design constraint here:
//
//   - Records are written field-by-field into preallocated ring slots, so
//     appending allocates nothing.
//   - Every slot field is an atomic cell guarded by a per-slot sequence
//     number (a seqlock): writers mark the slot odd, store the fields,
//     then publish the even sequence; readers accept a slot only when the
//     sequence is even and unchanged across their copy. Torn reads are
//     skipped, never served, and — because every access is atomic — the
//     scheme is clean under the race detector.
//   - The two string fields survive slot reuse without allocation by
//     pointer, not by copy: chosen hosts come from a bounded intern table
//     (the host set is the deployment, which is small), and trace ids are
//     boxed only when a trace was sampled — a path that allocates anyway.
//
// The ring drops the oldest record on wrap by construction; a diagnostic
// buffer that sheds history under load is the point, a diagnostic buffer
// that backpressures the serving edge would be a bug.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the record capacity used when NewRing is given a
// non-positive size.
const DefaultRingSize = 4096

// maxInternedHosts bounds the host intern table; a deployment has a
// handful of hosts, so hitting the cap means garbage keys — further
// unknown hosts are recorded as empty rather than growing forever.
const maxInternedHosts = 4096

// Route classifies the edge route a record was cut on.
type Route uint8

const (
	RouteUnknown Route = iota
	RouteBindings
	RouteObject
	RouteFind
	RouteQuery
	RouteContent
	RouteSOAPRegistry
	RouteSOAPAuth
)

var routeNames = [...]string{"unknown", "bindings", "object", "find", "query", "content", "soap-registry", "soap-auth"}

func (r Route) String() string {
	if int(r) < len(routeNames) {
		return routeNames[r]
	}
	return "unknown"
}

// RouteByName resolves a /registry/flight filter value; false when the
// name matches no route.
func RouteByName(name string) (Route, bool) {
	for i, n := range routeNames {
		if n == name {
			return Route(i), true
		}
	}
	return RouteUnknown, false
}

// Outcome is the admission-plus-completion fate of one request.
type Outcome uint8

const (
	// OutcomeAdmitted was admitted immediately and served.
	OutcomeAdmitted Outcome = iota
	// OutcomeQueued waited in the admission FIFO before being served.
	OutcomeQueued
	// OutcomeShed was rejected by admission control (503 + Retry-After).
	OutcomeShed
	// OutcomeClientError was served a 4xx.
	OutcomeClientError
	// OutcomeError was served a 5xx other than an admission shed.
	OutcomeError
)

var outcomeNames = [...]string{"admitted", "queued", "shed", "client-error", "error"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// OutcomeByName resolves a filter value; false when unknown.
func OutcomeByName(name string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == name {
			return Outcome(i), true
		}
	}
	return 0, false
}

// Verdict summarizes the balancer decision behind a discovery response.
// It is the constraint-filtering outcome collapsed to one ordinal, not
// the per-binding verdict vector (the counts carry that).
type Verdict uint8

const (
	// VerdictNone: the route involved no balancer decision.
	VerdictNone Verdict = iota
	// VerdictFiltered: constraints evaluated and the list was filtered.
	VerdictFiltered
	// VerdictStock: no constraint applied; stored order served.
	VerdictStock
	// VerdictWindowClosed: the constraint's time window was closed.
	VerdictWindowClosed
	// VerdictFallback: nothing eligible; FallbackAll served load order.
	VerdictFallback
	// VerdictDegraded: degraded mode served (static or empty).
	VerdictDegraded
)

var verdictNames = [...]string{"none", "filtered", "stock", "window-closed", "fallback", "degraded"}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// Record is one wide event: everything the serving edge knew about one
// request, flattened to fixed-size fields. It is assembled on the
// caller's stack (or inside the pooled Writer) and copied into a ring
// slot by Append; the struct itself never escapes.
type Record struct {
	// Seq is the ring-assigned append sequence (1-based); assigned by
	// Append, newest records have the highest sequence.
	Seq uint64
	// Unix is the request's start instant on the registry clock, in
	// nanoseconds since the epoch.
	Unix int64
	// Latency is the request's duration on the registry clock.
	Latency time.Duration
	// Route is the edge route class.
	Route Route
	// Outcome is the admission-plus-completion fate.
	Outcome Outcome
	// Status is the HTTP status served.
	Status int32
	// CacheHit marks a response served preserialized from the response
	// cache (the FastServe path or its SOAP twin).
	CacheHit bool
	// Verdict summarizes the balancer decision; VerdictNone when the
	// route ran none.
	Verdict Verdict
	// Tier is the brownout ladder tier the request was served under.
	Tier uint8
	// SnapshotGen and SnapshotAge identify the NodeState snapshot the
	// decision read: its publish generation and its age at decision time.
	SnapshotGen uint64
	SnapshotAge time.Duration
	// Eligible..Quarantined are the decision's per-verdict binding counts,
	// saturating at 255.
	Eligible    uint8
	Unknown     uint8
	Ineligible  uint8
	Quarantined uint8
	// Host is the chosen host — the host of the first URI served. Interned
	// by Append; empty when the route serves no URI list.
	Host string
	// Trace is the sampled trace id, when one was recorded.
	Trace string
}

// meta packs the small enum and count fields into one atomic word:
// route | outcome<<8 | verdict<<16 | tier<<24 | eligible<<32 |
// unknown<<40 | ineligible<<48 | quarantined<<56.
func (r *Record) meta() uint64 {
	return uint64(r.Route) | uint64(r.Outcome)<<8 | uint64(r.Verdict)<<16 | uint64(r.Tier)<<24 |
		uint64(r.Eligible)<<32 | uint64(r.Unknown)<<40 | uint64(r.Ineligible)<<48 | uint64(r.Quarantined)<<56
}

func (r *Record) setMeta(m uint64) {
	r.Route = Route(m)
	r.Outcome = Outcome(m >> 8)
	r.Verdict = Verdict(m >> 16)
	r.Tier = uint8(m >> 24)
	r.Eligible = uint8(m >> 32)
	r.Unknown = uint8(m >> 40)
	r.Ineligible = uint8(m >> 48)
	r.Quarantined = uint8(m >> 56)
}

// Sat8 saturates a binding count into a Record's uint8 fields.
func Sat8(n int) uint8 {
	if n < 0 {
		return 0
	}
	if n > 255 {
		return 255
	}
	return uint8(n)
}

// cacheHitFlag rides in the slot's status word above the HTTP status
// bits, so the boolean needs no atomic cell of its own.
const cacheHitFlag int32 = 1 << 16

// slot is one ring cell. Every field is an individually atomic cell so
// concurrent writer/reader access is race-free; seq is the seqlock:
// 2*n-1 while append n is in progress, 2*n once published.
type slot struct {
	seq    atomic.Uint64
	unix   atomic.Int64
	lat    atomic.Int64
	gen    atomic.Uint64
	age    atomic.Int64
	meta   atomic.Uint64
	status atomic.Int32
	host   atomic.Pointer[string]
	trace  atomic.Pointer[string]
}

// Ring is the lock-free flight-record ring. The zero value is unusable;
// build one with NewRing. All methods are safe for concurrent use and
// safe on a nil receiver (appends and reads become no-ops), so a caller
// configured without a recorder needs no branches.
type Ring struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // appends issued; slot index is (pos-1)&mask

	hostMu sync.Mutex // serialises host intern insertion only
	hosts  atomic.Pointer[map[string]*string]
}

// NewRing builds a ring holding size records, rounded up to a power of
// two; size <= 0 means DefaultRingSize.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Len reports the ring's record capacity.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Written reports the total records appended since boot (wrapped records
// included).
func (r *Ring) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Append copies rec into the next ring slot. It never blocks, never
// allocates for records without a trace id, and assigns rec.Seq.
//
//repolint:hotpath one flight record is cut on every edge request, cache hits included
func (r *Ring) Append(rec *Record) {
	if r == nil {
		return
	}
	n := r.pos.Add(1)
	rec.Seq = n
	s := &r.slots[(n-1)&r.mask]
	s.seq.Store(2*n - 1) // odd: write in progress
	s.unix.Store(rec.Unix)
	s.lat.Store(int64(rec.Latency))
	s.gen.Store(rec.SnapshotGen)
	s.age.Store(int64(rec.SnapshotAge))
	s.meta.Store(rec.meta())
	status := rec.Status
	if rec.CacheHit {
		status |= cacheHitFlag
	}
	s.status.Store(status)
	s.host.Store(r.internHost(rec.Host))
	// The emptiness check must stay on this side of the call: inlined,
	// boxTrace's escaping parameter would otherwise be heap-allocated on
	// entry — one string header per record — even when there is no trace.
	if rec.Trace == "" {
		s.trace.Store(nil)
	} else {
		s.trace.Store(boxTrace(rec.Trace))
	}
	s.seq.Store(2 * n) // even: published
}

// boxTrace heap-boxes a sampled trace id. Callers must check for the
// empty id first; a sampled request already allocated a whole Trace, so
// one more string header is noise.
//
//repolint:coldpath only sampled requests carry a trace id
func boxTrace(id string) *string {
	return &id
}

// internHost returns the stable boxed string for host, inserting it on
// first sight. The fast path is one atomic map read; insertion is the
// cold path behind a mutex and a copied map, exactly the GaugeSet layout
// the collector's breaker telemetry uses.
//
//repolint:hotpath runs inside Append on every edge request
func (r *Ring) internHost(host string) *string {
	if host == "" {
		return nil
	}
	if m := r.hosts.Load(); m != nil {
		if p, ok := (*m)[host]; ok {
			return p
		}
	}
	return r.internHostSlow(host)
}

// internHostSlow publishes a copied intern map with host added.
//
//repolint:coldpath first sight of a host; the steady state always hits the map
func (r *Ring) internHostSlow(host string) *string {
	r.hostMu.Lock()
	defer r.hostMu.Unlock()
	old := r.hosts.Load()
	if old != nil {
		if p, ok := (*old)[host]; ok {
			return p
		}
		if len(*old) >= maxInternedHosts {
			return nil // garbage keys; drop rather than grow forever
		}
	}
	var size int
	if old != nil {
		size = len(*old)
	}
	next := make(map[string]*string, size+1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	p := new(string)
	*p = host
	next[host] = p
	r.hosts.Store(&next)
	return p
}

// read copies append #n's slot into rec if the slot still holds that
// append, intact. It reports false for torn, overwritten, or not-yet
// written slots.
func (r *Ring) read(n uint64, rec *Record) bool {
	s := &r.slots[(n-1)&r.mask]
	if s.seq.Load() != 2*n {
		return false
	}
	rec.Seq = n
	rec.Unix = s.unix.Load()
	rec.Latency = time.Duration(s.lat.Load())
	rec.SnapshotGen = s.gen.Load()
	rec.SnapshotAge = time.Duration(s.age.Load())
	rec.setMeta(s.meta.Load())
	status := s.status.Load()
	rec.CacheHit = status&cacheHitFlag != 0
	rec.Status = status &^ cacheHitFlag
	rec.Host = derefOr(s.host.Load())
	rec.Trace = derefOr(s.trace.Load())
	// Validate after the copy: an unchanged even sequence means no writer
	// touched the slot while we read it.
	return s.seq.Load() == 2*n
}

func derefOr(p *string) string {
	if p == nil {
		return ""
	}
	return *p
}

// Filter selects records for Snapshot. The zero value matches everything.
type Filter struct {
	// Route restricts to one route class when HasRoute is set.
	Route    Route
	HasRoute bool
	// Outcome restricts to one outcome when HasOutcome is set.
	Outcome    Outcome
	HasOutcome bool
	// Host restricts to records whose chosen host equals Host.
	Host string
	// CacheHit restricts to hits (true) or misses (false) when
	// HasCacheHit is set.
	CacheHit    bool
	HasCacheHit bool
	// Limit bounds the returned records; <= 0 means 100.
	Limit int
}

func (f *Filter) match(rec *Record) bool {
	if f.HasRoute && rec.Route != f.Route {
		return false
	}
	if f.HasOutcome && rec.Outcome != f.Outcome {
		return false
	}
	if f.Host != "" && rec.Host != f.Host {
		return false
	}
	if f.HasCacheHit && rec.CacheHit != f.CacheHit {
		return false
	}
	return true
}

// Snapshot returns the newest matching records, newest first. It walks
// at most one ring's worth of history; records overwritten or mid-write
// during the walk are skipped, not waited for.
func (r *Ring) Snapshot(f Filter) []Record {
	if r == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	newest := r.pos.Load()
	span := uint64(len(r.slots))
	if newest < span {
		span = newest
	}
	out := make([]Record, 0, min(limit, int(span)))
	var rec Record
	for i := uint64(0); i < span && len(out) < limit; i++ {
		n := newest - i
		if !r.read(n, &rec) {
			continue
		}
		if f.match(&rec) {
			out = append(out, rec)
		}
	}
	return out
}
