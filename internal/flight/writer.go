// writer.go is the pooled per-request frame: a ResponseWriter wrapper
// that carries the in-progress flight Record through the middleware
// stack. The edge wraps every service route's writer in one; the inner
// handlers annotate the record through From (a type assertion, not a
// context value, so the zero-allocation cache-hit path stays free), and
// the wrapper derives the admission outcome from the status it saw.
package flight

import (
	"context"
	"net/http"
	"sync"
)

// Writer wraps a ResponseWriter, capturing the served status and carrying
// the request's Record. Writers are pooled; a request borrows one for its
// lifetime, so annotating Rec costs field stores, never allocation.
type Writer struct {
	inner  http.ResponseWriter
	status int32
	queued bool
	// Rec accumulates the request's flight record. The outer edge wrapper
	// fills the envelope (route, timing, tier); inner handlers fill the
	// decision detail.
	Rec Record
}

var writerPool = sync.Pool{New: func() interface{} { return new(Writer) }}

// GetWriter borrows a pooled Writer wrapping w.
func GetWriter(w http.ResponseWriter) *Writer {
	fw := writerPool.Get().(*Writer)
	fw.inner = w
	fw.status = 0
	fw.queued = false
	fw.Rec = Record{}
	return fw
}

// PutWriter returns a Writer to the pool. The caller must not retain it.
func PutWriter(fw *Writer) {
	fw.inner = nil
	writerPool.Put(fw)
}

// From recovers the request's frame from its ResponseWriter; nil when
// the route is not flight-wrapped (direct handler tests, for example).
//
//repolint:hotpath annotation hook on the cache-hit serving path
func From(w http.ResponseWriter) *Writer {
	fw, _ := w.(*Writer)
	return fw
}

// Header passes through to the wrapped writer.
//
//repolint:hotpath runs on every edge response
func (fw *Writer) Header() http.Header { return fw.inner.Header() }

// Write forwards the body bytes, defaulting the status to 200 like
// net/http does.
//
//repolint:hotpath runs on every edge response
func (fw *Writer) Write(b []byte) (int, error) {
	if fw.status == 0 {
		fw.status = http.StatusOK
	}
	return fw.inner.Write(b)
}

// WriteHeader records the first explicit status and forwards it.
//
//repolint:hotpath runs on every edge response
func (fw *Writer) WriteHeader(code int) {
	if fw.status == 0 {
		fw.status = int32(code)
	}
	fw.inner.WriteHeader(code)
}

// NoteQueued marks the request as having waited in the admission queue
// before being served. The admission middleware calls it (by interface
// assertion, so admit does not import flight) on the promoted path only.
func (fw *Writer) NoteQueued() { fw.queued = true }

// Finish derives the record's status and outcome from what was served:
// a 503 is an admission shed (the edge's only source of 503s), other
// 5xx are errors, 4xx client errors, everything else admitted — or
// queued when the admission middleware said so.
//
//repolint:hotpath runs once per edge request after the handler returns
func (fw *Writer) Finish() {
	status := fw.status
	if status == 0 {
		status = http.StatusOK
	}
	fw.Rec.Status = status
	switch {
	case status == http.StatusServiceUnavailable:
		fw.Rec.Outcome = OutcomeShed
	case status >= 500:
		fw.Rec.Outcome = OutcomeError
	case status >= 400:
		fw.Rec.Outcome = OutcomeClientError
	case fw.queued:
		fw.Rec.Outcome = OutcomeQueued
	default:
		fw.Rec.Outcome = OutcomeAdmitted
	}
}

// frameKey threads a frame through a context for handlers that never see
// the ResponseWriter (the SOAP dispatch path). The SOAP surface allocates
// per request regardless, so a context value is affordable there.
type frameKey struct{}

// WithFrame returns ctx carrying fw.
func WithFrame(ctx context.Context, fw *Writer) context.Context {
	return context.WithValue(ctx, frameKey{}, fw)
}

// FrameFrom recovers the frame threaded by WithFrame; nil when absent.
func FrameFrom(ctx context.Context) *Writer {
	fw, _ := ctx.Value(frameKey{}).(*Writer)
	return fw
}
