// export.go renders flight records for /registry/flight and the debug
// bundle: enums become their names, instants become RFC3339 UTC, and
// durations become seconds, matching the trace export conventions.
package flight

import "time"

// RecordExport is the JSON shape of one flight record.
type RecordExport struct {
	Seq                uint64  `json:"seq"`
	At                 string  `json:"at"`
	Route              string  `json:"route"`
	Outcome            string  `json:"outcome"`
	Status             int32   `json:"status"`
	CacheHit           bool    `json:"cacheHit"`
	Verdict            string  `json:"verdict"`
	Tier               uint8   `json:"tier"`
	SnapshotGen        uint64  `json:"snapshotGen"`
	SnapshotAgeSeconds float64 `json:"snapshotAgeSeconds"`
	Eligible           int     `json:"eligible"`
	Unknown            int     `json:"unknown"`
	Ineligible         int     `json:"ineligible"`
	Quarantined        int     `json:"quarantined"`
	LatencySeconds     float64 `json:"latencySeconds"`
	Host               string  `json:"host,omitempty"`
	Trace              string  `json:"trace,omitempty"`
}

// Export renders the record.
func (r *Record) Export() RecordExport {
	return RecordExport{
		Seq:                r.Seq,
		At:                 time.Unix(0, r.Unix).UTC().Format(time.RFC3339Nano),
		Route:              r.Route.String(),
		Outcome:            r.Outcome.String(),
		Status:             r.Status,
		CacheHit:           r.CacheHit,
		Verdict:            r.Verdict.String(),
		Tier:               r.Tier,
		SnapshotGen:        r.SnapshotGen,
		SnapshotAgeSeconds: r.SnapshotAge.Seconds(),
		Eligible:           int(r.Eligible),
		Unknown:            int(r.Unknown),
		Ineligible:         int(r.Ineligible),
		Quarantined:        int(r.Quarantined),
		LatencySeconds:     r.Latency.Seconds(),
		Host:               r.Host,
		Trace:              r.Trace,
	}
}

// ExportAll renders a Snapshot result.
func ExportAll(recs []Record) []RecordExport {
	out := make([]RecordExport, len(recs))
	for i := range recs {
		out[i] = recs[i].Export()
	}
	return out
}
