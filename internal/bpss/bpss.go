// Package bpss implements a compact ebXML Business Process Specification
// Schema (thesis §1.3: "ebBPSS provides a framework by which business
// systems may be configured to support execution of business
// collaborations consisting of business transactions"). A
// BinaryCollaboration names two roles and an ordered list of business
// transactions; each transaction is a requesting-document / optional
// responding-document exchange initiated by one of the roles.
//
// Beyond the document model, the package provides a Conversation monitor:
// given a collaboration definition, it checks a live sequence of ebMS
// messages for conformance — correct initiating role, correct action
// order, and completion — which is how a "business service interface"
// enforces the agreed process at run time (Fig. 1.15 step 4).
package bpss

import (
	"encoding/xml"
	"fmt"
)

// Transaction is one request(/response) exchange within a collaboration.
type Transaction struct {
	// Name doubles as the ebMS Action for the requesting document.
	Name string `xml:"name,attr"`
	// InitiatingRole is the role that sends the request ("RoleA" side
	// uses the collaboration's first role name, etc.).
	InitiatingRole string `xml:"initiatingRole,attr"`
	// RequestDocument names the business document flowing forward.
	RequestDocument string `xml:"requestDocument,attr"`
	// ResponseDocument, when non-empty, requires a response from the
	// other role before the next transaction may begin.
	ResponseDocument string `xml:"responseDocument,attr,omitempty"`
}

// BinaryCollaboration is a two-party business process definition.
type BinaryCollaboration struct {
	XMLName      struct{}      `xml:"BinaryCollaboration"`
	Name         string        `xml:"name,attr"`
	RoleA        string        `xml:"roleA,attr"`
	RoleB        string        `xml:"roleB,attr"`
	Transactions []Transaction `xml:"BusinessTransaction"`
}

// Validate checks structural invariants.
func (c *BinaryCollaboration) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("bpss: collaboration without name")
	}
	if c.RoleA == "" || c.RoleB == "" || c.RoleA == c.RoleB {
		return fmt.Errorf("bpss: collaboration %s needs two distinct roles", c.Name)
	}
	if len(c.Transactions) == 0 {
		return fmt.Errorf("bpss: collaboration %s has no transactions", c.Name)
	}
	seen := make(map[string]bool)
	for _, tx := range c.Transactions {
		if tx.Name == "" || tx.RequestDocument == "" {
			return fmt.Errorf("bpss: collaboration %s has an incomplete transaction", c.Name)
		}
		if tx.InitiatingRole != c.RoleA && tx.InitiatingRole != c.RoleB {
			return fmt.Errorf("bpss: transaction %s initiated by unknown role %q", tx.Name, tx.InitiatingRole)
		}
		if seen[tx.Name] {
			return fmt.Errorf("bpss: duplicate transaction %s", tx.Name)
		}
		seen[tx.Name] = true
	}
	return nil
}

// MarshalXMLDoc serializes the definition for registry storage.
func (c *BinaryCollaboration) MarshalXMLDoc() ([]byte, error) {
	return xml.MarshalIndent(c, "", " ")
}

// Parse decodes and validates a stored definition.
func Parse(doc []byte) (*BinaryCollaboration, error) {
	var c BinaryCollaboration
	if err := xml.Unmarshal(doc, &c); err != nil {
		return nil, fmt.Errorf("bpss: malformed definition: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// PurchaseOrder is the canonical demo collaboration: the Buyer orders, the
// Seller acknowledges, the Seller ships a notice.
func PurchaseOrder() *BinaryCollaboration {
	return &BinaryCollaboration{
		Name:  "PurchaseOrder",
		RoleA: "Buyer",
		RoleB: "Seller",
		Transactions: []Transaction{
			{Name: "NewOrder", InitiatingRole: "Buyer", RequestDocument: "Order", ResponseDocument: "OrderAck"},
			{Name: "ShipNotice", InitiatingRole: "Seller", RequestDocument: "ASN"},
		},
	}
}

// Step is one observed message within a conversation.
type Step struct {
	// FromRole is the role that sent the message.
	FromRole string
	// Action is the ebMS Action — a transaction name, or a transaction
	// name suffixed ".Response" for the responding document.
	Action string
}

// Conversation tracks one execution of a collaboration and rejects
// non-conforming steps.
type Conversation struct {
	def *BinaryCollaboration
	// next indexes the transaction expected to start (or be responded
	// to) next.
	next int
	// awaitingResponse is true when the current transaction's response
	// document is still outstanding.
	awaitingResponse bool
}

// NewConversation starts a conformance monitor for def.
func NewConversation(def *BinaryCollaboration) (*Conversation, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Conversation{def: def}, nil
}

// other returns the role opposite r.
func (c *Conversation) other(r string) string {
	if r == c.def.RoleA {
		return c.def.RoleB
	}
	return c.def.RoleA
}

// Observe checks one step against the process definition, advancing the
// conversation on success.
func (c *Conversation) Observe(s Step) error {
	if c.Done() {
		return fmt.Errorf("bpss: conversation already complete, unexpected %q", s.Action)
	}
	tx := c.def.Transactions[c.next]
	if c.awaitingResponse {
		want := tx.Name + ".Response"
		if s.Action != want {
			return fmt.Errorf("bpss: expected %q, got %q", want, s.Action)
		}
		if s.FromRole != c.other(tx.InitiatingRole) {
			return fmt.Errorf("bpss: response to %s must come from %s, not %s",
				tx.Name, c.other(tx.InitiatingRole), s.FromRole)
		}
		c.awaitingResponse = false
		c.next++
		return nil
	}
	if s.Action != tx.Name {
		return fmt.Errorf("bpss: expected transaction %q, got %q", tx.Name, s.Action)
	}
	if s.FromRole != tx.InitiatingRole {
		return fmt.Errorf("bpss: %s must be initiated by %s, not %s", tx.Name, tx.InitiatingRole, s.FromRole)
	}
	if tx.ResponseDocument != "" {
		c.awaitingResponse = true
	} else {
		c.next++
	}
	return nil
}

// Done reports whether every transaction has completed.
func (c *Conversation) Done() bool {
	return c.next >= len(c.def.Transactions) && !c.awaitingResponse
}

// Progress reports (completed transactions, total).
func (c *Conversation) Progress() (completed, total int) {
	return c.next, len(c.def.Transactions)
}
