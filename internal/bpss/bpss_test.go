package bpss

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := PurchaseOrder().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*BinaryCollaboration{
		{RoleA: "A", RoleB: "B", Transactions: []Transaction{{Name: "t", InitiatingRole: "A", RequestDocument: "d"}}},            // no name
		{Name: "P", RoleA: "A", RoleB: "A", Transactions: []Transaction{{Name: "t", InitiatingRole: "A", RequestDocument: "d"}}}, // same roles
		{Name: "P", RoleA: "A", RoleB: "B"}, // no transactions
		{Name: "P", RoleA: "A", RoleB: "B", Transactions: []Transaction{{InitiatingRole: "A", RequestDocument: "d"}}},            // unnamed tx
		{Name: "P", RoleA: "A", RoleB: "B", Transactions: []Transaction{{Name: "t", InitiatingRole: "C", RequestDocument: "d"}}}, // unknown role
		{Name: "P", RoleA: "A", RoleB: "B", Transactions: []Transaction{
			{Name: "t", InitiatingRole: "A", RequestDocument: "d"},
			{Name: "t", InitiatingRole: "B", RequestDocument: "d"},
		}}, // duplicate tx
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad collaboration %d accepted", i)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	doc, err := PurchaseOrder().MarshalXMLDoc()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "PurchaseOrder" || len(back.Transactions) != 2 || back.Transactions[0].ResponseDocument != "OrderAck" {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := Parse([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := Parse([]byte("<BinaryCollaboration/>")); err == nil {
		t.Fatal("empty definition accepted")
	}
}

func TestConversationHappyPath(t *testing.T) {
	conv, err := NewConversation(PurchaseOrder())
	if err != nil {
		t.Fatal(err)
	}
	steps := []Step{
		{FromRole: "Buyer", Action: "NewOrder"},
		{FromRole: "Seller", Action: "NewOrder.Response"},
		{FromRole: "Seller", Action: "ShipNotice"},
	}
	for i, s := range steps {
		if conv.Done() {
			t.Fatalf("done early at step %d", i)
		}
		if err := conv.Observe(s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !conv.Done() {
		t.Fatal("conversation not complete")
	}
	if done, total := conv.Progress(); done != 2 || total != 2 {
		t.Fatalf("progress = %d/%d", done, total)
	}
	if err := conv.Observe(Step{FromRole: "Buyer", Action: "NewOrder"}); err == nil {
		t.Fatal("step after completion accepted")
	}
}

func TestConversationRejectsViolations(t *testing.T) {
	cases := []struct {
		name  string
		steps []Step
		want  string
	}{
		{"wrong first action", []Step{{FromRole: "Buyer", Action: "ShipNotice"}}, "expected transaction"},
		{"wrong initiator", []Step{{FromRole: "Seller", Action: "NewOrder"}}, "must be initiated by"},
		{"skipped response", []Step{
			{FromRole: "Buyer", Action: "NewOrder"},
			{FromRole: "Seller", Action: "ShipNotice"},
		}, "expected \"NewOrder.Response\""},
		{"response from wrong role", []Step{
			{FromRole: "Buyer", Action: "NewOrder"},
			{FromRole: "Buyer", Action: "NewOrder.Response"},
		}, "must come from"},
	}
	for _, c := range cases {
		conv, _ := NewConversation(PurchaseOrder())
		var err error
		for _, s := range c.steps {
			if err = conv.Observe(s); err != nil {
				break
			}
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestNewConversationValidates(t *testing.T) {
	if _, err := NewConversation(&BinaryCollaboration{}); err == nil {
		t.Fatal("invalid definition accepted")
	}
}

func TestResponselessOnlyProcess(t *testing.T) {
	def := &BinaryCollaboration{
		Name: "Ping", RoleA: "Sender", RoleB: "Receiver",
		Transactions: []Transaction{{Name: "Ping", InitiatingRole: "Sender", RequestDocument: "Ping"}},
	}
	conv, err := NewConversation(def)
	if err != nil {
		t.Fatal(err)
	}
	if err := conv.Observe(Step{FromRole: "Sender", Action: "Ping"}); err != nil {
		t.Fatal(err)
	}
	if !conv.Done() {
		t.Fatal("single-transaction process not done")
	}
}
