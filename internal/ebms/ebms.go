// Package ebms implements the ebXML Message Service of thesis §1.3 — "a
// standard for business messages ... built on SOAP Web Services message
// format" providing the "interoperable, secure and reliable exchange of
// messages between trading partners" the framework promises.
//
// The subset here is the reliability core that the specification is known
// for:
//
//   - every message carries a MessageHeader (From/To party ids,
//     CPAId/ConversationId correlation, Service/Action, a unique
//     MessageId, and a timestamp);
//   - a ReliableSender retransmits with configurable retries and backoff
//     until the receiver acknowledges the MessageId (AckRequested
//     semantics);
//   - a Receiver acknowledges and performs duplicate elimination on
//     MessageId, so application handlers observe once-and-only-once
//     delivery even when acknowledgments are lost and the sender
//     retransmits.
//
// Transport is the repository's soap package over HTTP; clocks come from
// simclock so retry schedules are testable deterministically.
package ebms

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
)

// Message is one ebMS user message.
type Message struct {
	XMLName        struct{} `xml:"Message"`
	MessageID      string   `xml:"MessageId,attr"`
	ConversationID string   `xml:"ConversationId,attr,omitempty"`
	CPAID          string   `xml:"CPAId,attr,omitempty"`
	RefToMessageID string   `xml:"RefToMessageId,attr,omitempty"`
	From           string   `xml:"From"`
	To             string   `xml:"To"`
	Service        string   `xml:"Service"`
	Action         string   `xml:"Action"`
	Timestamp      string   `xml:"Timestamp"`
	Payload        string   `xml:"Payload,omitempty"`
}

// Acknowledgment is the ebMS signal message confirming receipt.
type Acknowledgment struct {
	XMLName        struct{} `xml:"Acknowledgment"`
	RefToMessageID string   `xml:"RefToMessageId,attr"`
	Timestamp      string   `xml:"Timestamp"`
	// Duplicate reports that the receiver had already processed the
	// message (the retransmission was eliminated).
	Duplicate bool `xml:"duplicate,attr,omitempty"`
}

// NewMessage builds a user message with a fresh MessageId.
func NewMessage(from, to, service, action, payload string, now time.Time) *Message {
	return &Message{
		MessageID: rim.NewUUID(),
		From:      from,
		To:        to,
		Service:   service,
		Action:    action,
		Timestamp: now.UTC().Format(time.RFC3339Nano),
		Payload:   payload,
	}
}

// Validate checks the header fields ebMS requires.
func (m *Message) Validate() error {
	switch {
	case m.MessageID == "":
		return fmt.Errorf("ebms: message without MessageId")
	case m.From == "" || m.To == "":
		return fmt.Errorf("ebms: message %s needs From and To parties", m.MessageID)
	case m.Service == "" || m.Action == "":
		return fmt.Errorf("ebms: message %s needs Service and Action", m.MessageID)
	default:
		return nil
	}
}

// Handler processes a delivered message exactly once.
type Handler func(*Message) error

// Receiver is the receiving message service handler (MSH): it validates,
// eliminates duplicates, invokes the application handler, and
// acknowledges.
type Receiver struct {
	Clock   simclock.Clock
	Handler Handler

	mu   sync.Mutex
	seen map[string]bool
	// processed counts handler invocations; duplicates counts eliminated
	// retransmissions.
	processed, duplicates int
}

// NewReceiver creates a receiver delivering to handler.
func NewReceiver(handler Handler, clock simclock.Clock) *Receiver {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Receiver{Clock: clock, Handler: handler, seen: make(map[string]bool)}
}

// Stats reports (handler invocations, eliminated duplicates).
func (r *Receiver) Stats() (processed, duplicates int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.processed, r.duplicates
}

// Receive implements the MSH receive side; it is the function HTTPHandler
// wires to the network and tests may call directly.
func (r *Receiver) Receive(m *Message) (*Acknowledgment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ack := &Acknowledgment{
		RefToMessageID: m.MessageID,
		Timestamp:      r.Clock.Now().UTC().Format(time.RFC3339Nano),
	}
	r.mu.Lock()
	if r.seen[m.MessageID] {
		r.duplicates++
		r.mu.Unlock()
		ack.Duplicate = true
		return ack, nil
	}
	r.seen[m.MessageID] = true
	r.processed++
	r.mu.Unlock()

	if r.Handler != nil {
		if err := r.Handler(m); err != nil {
			// The application rejected the message: forget it so a
			// retransmission can retry, and report a fault.
			r.mu.Lock()
			delete(r.seen, m.MessageID)
			r.processed--
			r.mu.Unlock()
			return nil, fmt.Errorf("ebms: handler failed for %s: %w", m.MessageID, err)
		}
	}
	return ack, nil
}

// HTTPHandler exposes the receiver as an ebMS endpoint over SOAP/HTTP.
func (r *Receiver) HTTPHandler() http.Handler {
	return soap.Endpoint(func(m *Message) (interface{}, error) {
		ack, err := r.Receive(m)
		if err != nil {
			return nil, err
		}
		return ack, nil
	})
}

// Transport abstracts one send attempt, for deterministic tests and
// non-HTTP transports.
type Transport interface {
	Send(endpoint string, m *Message) (*Acknowledgment, error)
}

// HTTPTransport sends over SOAP/HTTP.
type HTTPTransport struct {
	Client *http.Client
}

// Send implements Transport.
func (t HTTPTransport) Send(endpoint string, m *Message) (*Acknowledgment, error) {
	var ack Acknowledgment
	if err := soap.Post(t.Client, endpoint, m, &ack); err != nil {
		return nil, err
	}
	if ack.RefToMessageID != m.MessageID {
		return nil, fmt.Errorf("ebms: acknowledgment for %s does not match %s", ack.RefToMessageID, m.MessageID)
	}
	return &ack, nil
}

// ReliableSender retransmits until acknowledged — the ebMS
// once-and-only-once delivery contract (paired with the receiver's
// duplicate elimination).
type ReliableSender struct {
	Transport Transport
	Clock     simclock.Clock
	// Retries is the number of retransmissions after the first attempt
	// (ebMS CPA Retries parameter); default 3.
	Retries int
	// RetryInterval is the base backoff (doubled each attempt); default
	// 2 s.
	RetryInterval time.Duration

	mu       sync.Mutex
	attempts int
}

// NewReliableSender creates a sender with ebMS-typical defaults.
func NewReliableSender(t Transport, clock simclock.Clock) *ReliableSender {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &ReliableSender{Transport: t, Clock: clock, Retries: 3, RetryInterval: 2 * time.Second}
}

// Attempts reports total send attempts across all messages.
func (s *ReliableSender) Attempts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts
}

// Send delivers m reliably to endpoint, returning the acknowledgment. It
// fails only after Retries retransmissions have gone unacknowledged
// ("DeliveryFailure" in ebMS terms).
func (s *ReliableSender) Send(endpoint string, m *Message) (*Acknowledgment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var lastErr error
	interval := s.RetryInterval
	for attempt := 0; attempt <= s.Retries; attempt++ {
		s.mu.Lock()
		s.attempts++
		s.mu.Unlock()
		ack, err := s.Transport.Send(endpoint, m)
		if err == nil {
			return ack, nil
		}
		lastErr = err
		if attempt < s.Retries {
			s.Clock.Sleep(interval)
			interval *= 2
		}
	}
	return nil, fmt.Errorf("ebms: delivery failure for %s after %d attempts: %w", m.MessageID, s.Retries+1, lastErr)
}
