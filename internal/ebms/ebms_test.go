package ebms

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func msg(payload string) *Message {
	return NewMessage("urn:party:CompanyA", "urn:party:CompanyB",
		"urn:services:PurchaseOrder", "NewOrder", payload, t0)
}

func TestMessageValidate(t *testing.T) {
	if err := msg("ok").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Message{
		{From: "a", To: "b", Service: "s", Action: "x"},        // no id
		{MessageID: "m", To: "b", Service: "s", Action: "x"},   // no from
		{MessageID: "m", From: "a", Service: "s", Action: "x"}, // no to
		{MessageID: "m", From: "a", To: "b", Action: "x"},      // no service
		{MessageID: "m", From: "a", To: "b", Service: "s"},     // no action
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad message %d accepted", i)
		}
	}
}

func TestReceiverOnceAndOnlyOnce(t *testing.T) {
	var delivered []string
	r := NewReceiver(func(m *Message) error {
		delivered = append(delivered, m.Payload)
		return nil
	}, simclock.NewManual(t0))

	m := msg("order-1")
	ack, err := r.Receive(m)
	if err != nil || ack.RefToMessageID != m.MessageID || ack.Duplicate {
		t.Fatalf("first receive: %+v, %v", ack, err)
	}
	// Retransmission: acknowledged again but not redelivered.
	ack, err = r.Receive(m)
	if err != nil || !ack.Duplicate {
		t.Fatalf("duplicate receive: %+v, %v", ack, err)
	}
	if len(delivered) != 1 {
		t.Fatalf("delivered = %v", delivered)
	}
	if p, d := r.Stats(); p != 1 || d != 1 {
		t.Fatalf("stats = %d, %d", p, d)
	}
}

func TestReceiverHandlerFailureAllowsRetry(t *testing.T) {
	calls := 0
	r := NewReceiver(func(m *Message) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("db busy")
		}
		return nil
	}, simclock.NewManual(t0))
	m := msg("x")
	if _, err := r.Receive(m); err == nil {
		t.Fatal("failed handler acknowledged")
	}
	// The retransmission succeeds — the failure did not poison the
	// duplicate set.
	if _, err := r.Receive(m); err != nil {
		t.Fatal(err)
	}
	if p, d := r.Stats(); p != 1 || d != 0 {
		t.Fatalf("stats = %d, %d", p, d)
	}
}

// flakyTransport drops the first n attempts.
type flakyTransport struct {
	mu    sync.Mutex
	drop  int
	inner Transport
}

func (f *flakyTransport) Send(endpoint string, m *Message) (*Acknowledgment, error) {
	f.mu.Lock()
	if f.drop > 0 {
		f.drop--
		f.mu.Unlock()
		return nil, fmt.Errorf("network dropped")
	}
	f.mu.Unlock()
	return f.inner.Send(endpoint, m)
}

// directTransport invokes a receiver in process.
type directTransport struct{ r *Receiver }

func (d directTransport) Send(endpoint string, m *Message) (*Acknowledgment, error) {
	return d.r.Receive(m)
}

func TestReliableSenderRetriesUntilAck(t *testing.T) {
	clk := simclock.NewManual(t0)
	r := NewReceiver(nil, clk)
	flaky := &flakyTransport{drop: 2, inner: directTransport{r: r}}
	s := NewReliableSender(flaky, clk)
	s.RetryInterval = time.Second

	done := make(chan error, 1)
	var ack *Acknowledgment
	go func() {
		var err error
		ack, err = s.Send("direct", msg("retry-me"))
		done <- err
	}()
	// Two drops → two backoff sleeps (1s, then 2s) before success.
	for i := 0; i < 5000 && clk.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)
	for i := 0; i < 5000 && clk.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ack == nil || ack.Duplicate {
		t.Fatalf("ack = %+v", ack)
	}
	if s.Attempts() != 3 {
		t.Fatalf("attempts = %d", s.Attempts())
	}
}

func TestReliableSenderDeliveryFailure(t *testing.T) {
	clk := simclock.NewManual(t0)
	dead := &flakyTransport{drop: 1 << 20, inner: nil}
	s := NewReliableSender(dead, clk)
	s.Retries = 2
	s.RetryInterval = time.Second

	done := make(chan error, 1)
	go func() {
		_, err := s.Send("nowhere", msg("doomed"))
		done <- err
	}()
	for released := 0; released < 2; released++ {
		for i := 0; i < 5000 && clk.PendingWaiters() == 0; i++ {
			time.Sleep(time.Millisecond)
		}
		clk.Advance(4 * time.Second)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "delivery failure") {
		t.Fatalf("err = %v", err)
	}
	if s.Attempts() != 3 {
		t.Fatalf("attempts = %d", s.Attempts())
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	var got []string
	r := NewReceiver(func(m *Message) error {
		got = append(got, m.Payload)
		return nil
	}, simclock.Real{})
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()

	s := NewReliableSender(HTTPTransport{Client: srv.Client()}, simclock.Real{})
	m := msg("wire-order")
	ack, err := s.Send(srv.URL, m)
	if err != nil {
		t.Fatal(err)
	}
	if ack.RefToMessageID != m.MessageID {
		t.Fatalf("ack = %+v", ack)
	}
	// Retransmit the identical message over the wire: eliminated.
	ack2, err := s.Send(srv.URL, m)
	if err != nil || !ack2.Duplicate {
		t.Fatalf("wire duplicate: %+v, %v", ack2, err)
	}
	if len(got) != 1 || got[0] != "wire-order" {
		t.Fatalf("delivered = %v", got)
	}
}

func TestSendRejectsInvalidMessage(t *testing.T) {
	s := NewReliableSender(directTransport{r: NewReceiver(nil, nil)}, simclock.NewManual(t0))
	if _, err := s.Send("x", &Message{}); err == nil {
		t.Fatal("invalid message sent")
	}
	if s.Attempts() != 0 {
		t.Fatal("attempt counted for invalid message")
	}
}
