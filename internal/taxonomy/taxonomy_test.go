package taxonomy

import (
	"testing"

	"repro/internal/rim"
	"repro/internal/store"
)

func seeded(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	schemes, err := Seed(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 5 {
		t.Fatalf("schemes = %d", len(schemes))
	}
	return s
}

func TestSeedCreatesSchemesAndNodes(t *testing.T) {
	s := seeded(t)
	for _, name := range []string{SchemeNAICS, SchemeUNSPSC, SchemeISO3166, SchemeObjectType, SchemeAssociationType} {
		if _, err := s.FindOneByName(rim.TypeClassificationScheme, name); err != nil {
			t.Errorf("scheme %q missing: %v", name, err)
		}
	}
	nodes, err := NodesOf(s, SchemeNAICS)
	if err != nil || len(nodes) != 14 {
		t.Fatalf("naics nodes = %d, %v", len(nodes), err)
	}
	// Sorted by code; paths embedded.
	if nodes[0].Code != "11" || nodes[0].Path != "/"+SchemeNAICS+"/11" {
		t.Fatalf("first node = %+v", nodes[0])
	}
}

func TestSeedTwiceRejected(t *testing.T) {
	s := seeded(t)
	if _, err := Seed(s); err == nil {
		t.Fatal("double seed accepted")
	}
}

func TestFindNodeAndClassify(t *testing.T) {
	s := seeded(t)
	n, err := FindNode(s, SchemeNAICS, "61")
	if err != nil || n.Name.String() != "Educational Services" {
		t.Fatalf("FindNode = %+v, %v", n, err)
	}
	// Case-insensitive code match (ISO country codes).
	if _, err := FindNode(s, SchemeISO3166, "us"); err != nil {
		t.Fatalf("ci FindNode: %v", err)
	}
	if _, err := FindNode(s, SchemeNAICS, "99"); err == nil {
		t.Fatal("ghost code found")
	}
	if _, err := FindNode(s, "ghost-scheme", "11"); err == nil {
		t.Fatal("ghost scheme found")
	}

	org := rim.NewOrganization("SDSU")
	if err := s.Put(org); err != nil {
		t.Fatal(err)
	}
	c, err := Classify(s, org.ID, SchemeNAICS, "61")
	if err != nil {
		t.Fatal(err)
	}
	if c.ClassifiedObjectID != org.ID || c.ClassificationNode != n.ID {
		t.Fatalf("classification = %+v", c)
	}
}

func TestAssociationTypeSchemeCoversPredefined(t *testing.T) {
	s := seeded(t)
	nodes, err := NodesOf(s, SchemeAssociationType)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(rim.PredefinedAssociationTypes) {
		t.Fatalf("assoc nodes = %d, want %d", len(nodes), len(rim.PredefinedAssociationTypes))
	}
	if _, err := FindNode(s, SchemeAssociationType, "OffersService"); err != nil {
		t.Fatalf("OffersService node: %v", err)
	}
}

func TestObjectTypeSchemeQueryable(t *testing.T) {
	s := seeded(t)
	nodes, err := NodesOf(s, SchemeObjectType)
	if err != nil || len(nodes) < 10 {
		t.Fatalf("objecttype nodes = %d, %v", len(nodes), err)
	}
	if _, err := FindNode(s, SchemeObjectType, "Service"); err != nil {
		t.Fatalf("Service node: %v", err)
	}
}
