// Package taxonomy seeds the registry with its canonical classification
// schemes: the three industry taxonomies UDDI and ebXML both ship
// (Table 1.2 — NAICS, UNSPSC, ISO 3166) plus the registry's own
// ObjectType and AssociationType schemes. Nodes carry embedded paths so
// drill-down queries can match by prefix.
//
// The code sets are representative subsets (top-level NAICS sectors,
// UNSPSC segments, a handful of ISO 3166 countries): enough to exercise
// classification, browsing and validation without shipping the full
// multi-thousand-node trees.
package taxonomy

import (
	"fmt"
	"strings"

	"repro/internal/rim"
	"repro/internal/store"
)

// Canonical scheme names.
const (
	SchemeNAICS           = "ntis-gov:naics"
	SchemeUNSPSC          = "unspsc-org:unspsc"
	SchemeISO3166         = "iso-ch:3166:1999"
	SchemeObjectType      = "urn:oasis:names:tc:ebxml-regrep:classificationScheme:ObjectType"
	SchemeAssociationType = "urn:oasis:names:tc:ebxml-regrep:classificationScheme:AssociationType"
)

// entry is one (code, name) pair of a seeded scheme.
type entry struct{ code, name string }

var naicsSectors = []entry{
	{"11", "Agriculture, Forestry, Fishing and Hunting"},
	{"21", "Mining"},
	{"22", "Utilities"},
	{"23", "Construction"},
	{"31-33", "Manufacturing"},
	{"42", "Wholesale Trade"},
	{"44-45", "Retail Trade"},
	{"48-49", "Transportation and Warehousing"},
	{"51", "Information"},
	{"52", "Finance and Insurance"},
	{"54", "Professional, Scientific, and Technical Services"},
	{"61", "Educational Services"},
	{"62", "Health Care and Social Assistance"},
	{"92", "Public Administration"},
}

var unspscSegments = []entry{
	{"43", "Information Technology Broadcasting and Telecommunications"},
	{"44", "Office Equipment and Accessories and Supplies"},
	{"72", "Building and Construction and Maintenance Services"},
	{"80", "Management and Business Professionals and Administrative Services"},
	{"81", "Engineering and Research and Technology Based Services"},
	{"86", "Education and Training Services"},
}

var iso3166Countries = []entry{
	{"US", "United States"},
	{"CA", "Canada"},
	{"MX", "Mexico"},
	{"DE", "Germany"},
	{"IN", "India"},
	{"JP", "Japan"},
	{"GB", "United Kingdom"},
}

// Seed installs the canonical schemes and their nodes into the store,
// returning the scheme objects keyed by scheme name. Seeding an
// already-seeded store is an error (schemes are registry singletons).
func Seed(s *store.Store) (map[string]*rim.ClassificationScheme, error) {
	out := make(map[string]*rim.ClassificationScheme)
	add := func(name string, internal bool, entries []entry) error {
		if _, err := s.FindOneByName(rim.TypeClassificationScheme, name); err == nil {
			return fmt.Errorf("taxonomy: scheme %q already seeded", name)
		}
		scheme := rim.NewClassificationScheme(name, internal)
		scheme.Status = rim.StatusApproved
		if err := s.Put(scheme); err != nil {
			return err
		}
		out[name] = scheme
		for _, e := range entries {
			node := rim.NewClassificationNode(scheme.ID, e.code, e.name)
			node.Path = "/" + name + "/" + e.code
			node.Status = rim.StatusApproved
			if err := node.Validate(); err != nil {
				return err
			}
			if err := s.Put(node); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(SchemeNAICS, true, naicsSectors); err != nil {
		return nil, err
	}
	if err := add(SchemeUNSPSC, true, unspscSegments); err != nil {
		return nil, err
	}
	if err := add(SchemeISO3166, true, iso3166Countries); err != nil {
		return nil, err
	}

	var assocEntries []entry
	for _, a := range rim.PredefinedAssociationTypes {
		assocEntries = append(assocEntries, entry{code: string(a), name: string(a)})
	}
	if err := add(SchemeAssociationType, true, assocEntries); err != nil {
		return nil, err
	}

	objTypes := []rim.ObjectType{
		rim.TypeOrganization, rim.TypeService, rim.TypeServiceBinding,
		rim.TypeAssociation, rim.TypeClassification, rim.TypeClassificationScheme,
		rim.TypeClassificationNode, rim.TypeRegistryPackage, rim.TypeExternalLink,
		rim.TypeExternalIdentifier, rim.TypeAuditableEvent, rim.TypeUser,
		rim.TypeAdhocQuery, rim.TypeExtrinsicObject,
	}
	var otEntries []entry
	for _, t := range objTypes {
		otEntries = append(otEntries, entry{code: t.Short(), name: t.Short()})
	}
	if err := add(SchemeObjectType, true, otEntries); err != nil {
		return nil, err
	}
	return out, nil
}

// FindNode resolves a code within a named scheme.
func FindNode(s *store.Store, schemeName, code string) (*rim.ClassificationNode, error) {
	scheme, err := s.FindOneByName(rim.TypeClassificationScheme, schemeName)
	if err != nil {
		return nil, err
	}
	for _, o := range s.ByType(rim.TypeClassificationNode) {
		n, ok := o.(*rim.ClassificationNode)
		if !ok {
			continue
		}
		if n.ParentID == scheme.Base().ID && strings.EqualFold(n.Code, code) {
			return n, nil
		}
	}
	return nil, fmt.Errorf("taxonomy: scheme %q has no node %q", schemeName, code)
}

// Classify builds a validated internal classification of object by the
// (scheme, code) node.
func Classify(s *store.Store, objectID, schemeName, code string) (*rim.Classification, error) {
	node, err := FindNode(s, schemeName, code)
	if err != nil {
		return nil, err
	}
	c := rim.NewInternalClassification(objectID, node.ID)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// NodesOf lists a scheme's nodes sorted by code.
func NodesOf(s *store.Store, schemeName string) ([]*rim.ClassificationNode, error) {
	scheme, err := s.FindOneByName(rim.TypeClassificationScheme, schemeName)
	if err != nil {
		return nil, err
	}
	var out []*rim.ClassificationNode
	for _, o := range s.ByType(rim.TypeClassificationNode) {
		if n, ok := o.(*rim.ClassificationNode); ok && n.ParentID == scheme.Base().ID {
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Code > out[j].Code; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}
