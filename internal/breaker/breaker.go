// Package breaker implements per-host circuit breakers for the registry's
// NodeStatus collection path. The thesis's collector (§3.2) polls every
// deployed host at full rate forever, which means a host that is down or
// flapping consumes a sweep slot on every period and its repeated timeouts
// dominate the collector's error budget. A breaker gives each host the
// classic three-state treatment:
//
//	Closed    → invocations flow normally; consecutive failures are counted.
//	Open      → after Threshold consecutive failures the host is quarantined
//	            and invocations are skipped until a jittered, exponentially
//	            growing backoff expires.
//	Half-open → one probe invocation is admitted; success closes the
//	            breaker, failure re-opens it with a doubled backoff.
//
// Determinism: the backoff jitter for each host is drawn from a dedicated
// *rand.Rand seeded from Config.Seed and the host name, so per-host trip
// schedules replay byte-identically from the same seed no matter how sweep
// goroutines interleave across hosts. Time never comes from the wall
// clock — every method takes the caller's `now`, which the collector reads
// from its injected simclock.Clock.
package breaker

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// State is a breaker's position in the closed/open/half-open cycle.
type State int

// Breaker states.
const (
	// Closed admits every invocation (the healthy steady state).
	Closed State = iota
	// Open rejects invocations until the backoff deadline passes.
	Open
	// HalfOpen admits exactly one probe invocation.
	HalfOpen
)

// String names the state for reports and gauges.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown-state"
	}
}

// Defaults chosen around the thesis's 25 s collection period: a host must
// miss three consecutive sweeps to trip, stays quarantined for about two
// periods, and is never benched longer than ten minutes.
const (
	DefaultThreshold   = 3
	DefaultBaseBackoff = 50 * time.Second
	DefaultMaxBackoff  = 10 * time.Minute
	DefaultJitter      = 0.2
)

// Config tunes a breaker Set. The zero value selects every default.
type Config struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 3).
	Threshold int
	// BaseBackoff is the first open interval; each subsequent trip doubles
	// it (default 50 s, two collection periods).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 10 min).
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized symmetrically
	// around its nominal value, de-synchronizing probe storms when many
	// hosts trip together (default 0.2, i.e. ±20%; negative disables
	// jitter for exact, test-friendly backoffs).
	Jitter float64
	// Seed drives the per-host jitter sequences; runs with the same seed
	// replay identically.
	Seed int64
}

// withDefaults fills zero fields with the package defaults.
func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	switch {
	case c.Jitter == 0 || c.Jitter >= 1:
		c.Jitter = DefaultJitter
	case c.Jitter < 0:
		c.Jitter = 0 // negative disables jitter entirely (exact backoffs)
	}
	return c
}

// hostState is one host's breaker, always accessed under Set.mu.
type hostState struct {
	state       State
	consecutive int        // consecutive failures since the last success
	trips       int        // opens since the last success (drives backoff)
	totalTrips  int        // lifetime opens, never reset (for reporting)
	nextProbe   time.Time  // when an Open breaker admits its probe
	probing     bool       // a half-open probe is outstanding
	rng         *rand.Rand // per-host jitter sequence
}

// Set holds one breaker per host.
type Set struct {
	cfg Config

	mu    sync.Mutex
	hosts map[string]*hostState // guarded by mu
}

// NewSet creates a breaker set with cfg (zero fields take defaults).
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg.withDefaults(), hosts: make(map[string]*hostState)}
}

// hostLocked returns (creating if needed) the breaker for host. The
// caller holds s.mu.
func (s *Set) hostLocked(host string) *hostState {
	h, ok := s.hosts[host]
	if !ok {
		h = &hostState{rng: rand.New(rand.NewSource(s.cfg.Seed ^ hostSeed(host)))}
		s.hosts[host] = h
	}
	return h
}

// hostSeed folds a host name into a seed component so each host draws an
// independent, reproducible jitter sequence.
func hostSeed(host string) int64 {
	f := fnv.New64a()
	f.Write([]byte(host))
	return int64(f.Sum64())
}

// Allow reports whether an invocation of host may proceed at time now.
// An Open breaker whose backoff has expired transitions to HalfOpen and
// admits the caller as the probe; concurrent callers are rejected until
// the probe resolves via Success or Failure.
func (s *Set) Allow(host string, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hostLocked(host)
	switch h.state {
	case Closed:
		return true
	case Open:
		if now.Before(h.nextProbe) {
			return false
		}
		h.state = HalfOpen
		h.probing = true
		return true
	default: // HalfOpen
		if h.probing {
			return false
		}
		h.probing = true
		return true
	}
}

// Success records a successful invocation of host, closing its breaker
// and resetting the failure and backoff history.
func (s *Set) Success(host string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hostLocked(host)
	h.state = Closed
	h.consecutive = 0
	h.trips = 0
	h.probing = false
}

// Failure records a failed invocation of host at time now. Reaching the
// threshold in Closed, or failing the HalfOpen probe, opens the breaker
// with the next backoff interval.
func (s *Set) Failure(host string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hostLocked(host)
	h.consecutive++
	switch h.state {
	case HalfOpen:
		s.openLocked(h, now)
	case Closed:
		if h.consecutive >= s.cfg.Threshold {
			s.openLocked(h, now)
		}
	}
}

// openLocked trips the breaker at time now with the host's next jittered
// exponential backoff. The caller holds s.mu.
func (s *Set) openLocked(h *hostState, now time.Time) {
	h.state = Open
	h.probing = false
	h.trips++
	h.totalTrips++
	backoff := s.cfg.BaseBackoff
	for i := 1; i < h.trips && backoff < s.cfg.MaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > s.cfg.MaxBackoff {
		backoff = s.cfg.MaxBackoff
	}
	if s.cfg.Jitter > 0 {
		factor := 1 + s.cfg.Jitter*(2*h.rng.Float64()-1)
		backoff = time.Duration(float64(backoff) * factor)
	}
	h.nextProbe = now.Add(backoff)
}

// State returns host's current breaker state. Hosts never seen are
// Closed.
func (s *Set) State(host string) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.hosts[host]; ok {
		return h.state
	}
	return Closed
}

// HostStatus is one host's breaker snapshot for UIs and metrics.
type HostStatus struct {
	Host        string
	State       State
	Consecutive int
	// Trips counts lifetime opens; unlike the backoff ladder it survives
	// recoveries, so a flapping host keeps accumulating.
	Trips int
	// NextProbe is when an Open breaker admits its probe (zero for
	// Closed breakers).
	NextProbe time.Time
}

// Snapshot returns every tracked host's status sorted by host name.
func (s *Set) Snapshot() []HostStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HostStatus, 0, len(s.hosts))
	for host, h := range s.hosts {
		st := HostStatus{Host: host, State: h.state, Consecutive: h.consecutive, Trips: h.totalTrips}
		if h.state != Closed {
			st.NextProbe = h.nextProbe
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
