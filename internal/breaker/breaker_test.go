package breaker

import (
	"testing"
	"time"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// noJitter makes backoff arithmetic exact for the transition tables.
func noJitter() Config {
	return Config{Threshold: 3, BaseBackoff: 50 * time.Second, MaxBackoff: 10 * time.Minute, Jitter: -1}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Threshold != DefaultThreshold || c.BaseBackoff != DefaultBaseBackoff ||
		c.MaxBackoff != DefaultMaxBackoff || c.Jitter != DefaultJitter {
		t.Fatalf("defaults = %+v", c)
	}
	// Jitter: -1 sentinel normalizes to the default; the tests below use
	// Jitter inside (0,1) untouched.
	if (Config{Jitter: 0.5}).withDefaults().Jitter != 0.5 {
		t.Fatal("explicit jitter overridden")
	}
}

// TestStateTransitions walks the closed → open → half-open → closed cycle
// as a scripted event table.
func TestStateTransitions(t *testing.T) {
	s := NewSet(noJitter())
	const host = "thermo.sdsu.edu"
	steps := []struct {
		name  string
		at    time.Duration // offset from t0
		event string        // allow | success | failure
		want  bool          // expected Allow result (allow events only)
		state State         // expected state after the event
	}{
		{"fresh host admits", 0, "allow", true, Closed},
		{"failure 1 stays closed", 0, "failure", false, Closed},
		{"failure 2 stays closed", 25 * time.Second, "failure", false, Closed},
		{"still admits below threshold", 26 * time.Second, "allow", true, Closed},
		{"failure 3 trips", 50 * time.Second, "failure", false, Open},
		{"open rejects", 51 * time.Second, "allow", false, Open},
		{"open rejects until backoff", 99 * time.Second, "allow", false, Open},
		{"backoff expiry admits probe", 100 * time.Second, "allow", true, HalfOpen},
		{"second caller blocked during probe", 100 * time.Second, "allow", false, HalfOpen},
		{"probe failure reopens", 101 * time.Second, "failure", false, Open},
		{"doubled backoff still open", 200 * time.Second, "allow", false, Open},
		{"doubled backoff expiry admits probe", 201 * time.Second, "allow", true, HalfOpen},
		{"probe success closes", 202 * time.Second, "success", false, Closed},
		{"closed admits again", 203 * time.Second, "allow", true, Closed},
	}
	for _, step := range steps {
		now := t0.Add(step.at)
		switch step.event {
		case "allow":
			if got := s.Allow(host, now); got != step.want {
				t.Fatalf("%s: Allow = %v, want %v", step.name, got, step.want)
			}
		case "success":
			s.Success(host, now)
		case "failure":
			s.Failure(host, now)
		}
		if got := s.State(host); got != step.state {
			t.Fatalf("%s: state = %v, want %v", step.name, got, step.state)
		}
	}
}

func TestSuccessResetsConsecutiveCount(t *testing.T) {
	s := NewSet(noJitter())
	const host = "exergy.sdsu.edu"
	// Two failures, a success, then two more failures: never trips.
	s.Failure(host, t0)
	s.Failure(host, t0)
	s.Success(host, t0)
	s.Failure(host, t0)
	s.Failure(host, t0)
	if got := s.State(host); got != Closed {
		t.Fatalf("state = %v after interleaved success", got)
	}
	s.Failure(host, t0)
	if got := s.State(host); got != Open {
		t.Fatalf("state = %v after three consecutive failures", got)
	}
}

func TestBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	cfg := noJitter()
	cfg.BaseBackoff = time.Minute
	cfg.MaxBackoff = 4 * time.Minute
	s := NewSet(cfg)
	const host = "romulus.sdsu.edu"

	trip := func(now time.Time) {
		for i := 0; i < cfg.Threshold; i++ {
			s.Failure(host, now)
		}
	}
	reopen := func(now time.Time) {
		if !s.Allow(host, now) {
			t.Fatalf("probe not admitted at %v", now)
		}
		s.Failure(host, now)
	}

	trip(t0)
	wantProbe := []time.Duration{
		time.Minute,     // trip 1: base
		2 * time.Minute, // trip 2: doubled
		4 * time.Minute, // trip 3: doubled again
		4 * time.Minute, // trip 4: capped
	}
	now := t0
	for i, backoff := range wantProbe {
		snap := s.Snapshot()
		if len(snap) != 1 {
			t.Fatalf("snapshot hosts = %d", len(snap))
		}
		if got := snap[0].NextProbe.Sub(now); got != backoff {
			t.Fatalf("trip %d: backoff = %v, want %v", i+1, got, backoff)
		}
		if s.Allow(host, now.Add(backoff-time.Second)) {
			t.Fatalf("trip %d: admitted before backoff expiry", i+1)
		}
		now = now.Add(backoff)
		if i < len(wantProbe)-1 {
			reopen(now)
		}
	}
}

// TestJitterDeterministicPerSeed pins the reproducibility contract: the
// same seed yields the same probe schedule, a different seed a different
// one, regardless of how other hosts interleave.
func TestJitterDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64, warmup int) []time.Time {
		s := NewSet(Config{Threshold: 1, BaseBackoff: time.Minute, Jitter: 0.5, Seed: seed})
		// Interleave unrelated host activity to prove isolation.
		for i := 0; i < warmup; i++ {
			s.Failure("noise.sdsu.edu", t0)
			s.Allow("noise.sdsu.edu", t0)
		}
		var probes []time.Time
		now := t0
		for i := 0; i < 5; i++ {
			s.Failure("volta.sdsu.edu", now)
			snap := s.Snapshot()
			for _, h := range snap {
				if h.Host == "volta.sdsu.edu" {
					probes = append(probes, h.NextProbe)
					now = h.NextProbe
				}
			}
			if !s.Allow("volta.sdsu.edu", now) {
				t.Fatal("probe not admitted at its own deadline")
			}
		}
		return probes
	}
	a := schedule(7, 0)
	b := schedule(7, 13) // same seed, different cross-host interleaving
	c := schedule(8, 0)  // different seed
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("probe %d diverged under identical seed: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

func TestUnknownHostIsClosed(t *testing.T) {
	s := NewSet(Config{})
	if s.State("never-seen") != Closed {
		t.Fatal("unknown host not closed")
	}
	if !s.Allow("never-seen", t0) {
		t.Fatal("unknown host rejected")
	}
	if len(s.Snapshot()) != 1 {
		t.Fatal("allow did not register host")
	}
}
