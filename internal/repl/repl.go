// Package repl is the registry's replication layer: WAL shipping from a
// single writable leader to any number of read-only followers, so
// discovery and query reads scale horizontally while the paper's
// load-balancing scheme keeps working unchanged on every node.
//
// The leader serves two HTTP endpoints out of its durability state:
//
//	GET /registry/repl/wal?from=<seg:off>&wait=<dur>&max=<n>
//	GET /registry/repl/checkpoint
//
// The WAL endpoint streams committed records strictly after `from` as
// length-prefixed binary frames (see frame layout below), long-polling up
// to `wait` when the log is idle. `from` below the oldest live segment
// answers 410 Gone — the records were pruned after a checkpoint — and the
// follower re-bootstraps from /registry/repl/checkpoint, which serves the
// newest checkpoint file verbatim (store snapshot + covered position).
//
// Followers apply each record through the same idempotent replay path
// boot recovery uses (wal.ApplyRecord), persist every applied record in a
// local WAL with its leader position, and checkpoint locally, so a
// follower restart resumes from its durable applied position without
// refetching history. Life-cycle writes are never applied locally; the
// registry answers them with a typed leader redirect instead.
//
// Each stream frame is a 32-byte header plus payload:
//
//	[u32 payload len][u32 crc32c(payload)][u64 seq][u64 segment][u64 offset]
//
// all little-endian; (segment, offset) is the wal.Position just past the
// record — the resume token — and seq is the leader's record sequence
// number, which makes follower lag countable in records.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/wal"
)

// frameHeaderLen is the fixed prefix of every stream frame.
const frameHeaderLen = 32

// maxFramePayload is the sanity bound on a received frame's length.
const maxFramePayload = 64 << 20

// castagnoli matches the WAL's record checksum table.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Wire constants shared by leader and follower.
const (
	// PathWAL is the leader's streaming endpoint.
	PathWAL = "/registry/repl/wal"
	// PathCheckpoint is the leader's snapshot bootstrap endpoint.
	PathCheckpoint = "/registry/repl/checkpoint"
	// HeaderLeaderPos carries the leader's committed position (seg:off)
	// on every stream and checkpoint response.
	HeaderLeaderPos = "X-Repl-Leader-Pos"
	// HeaderLeaderSeq carries the leader's committed record sequence.
	HeaderLeaderSeq = "X-Repl-Leader-Seq"
	// HeaderCheckpointPos carries the WAL position a served checkpoint
	// covers — the follower's first resume token.
	HeaderCheckpointPos = "X-Repl-Checkpoint-Pos"
	// HeaderCheckpointSeq carries the record sequence number at the
	// served checkpoint's position, seeding the follower's lag counter.
	HeaderCheckpointSeq = "X-Repl-Checkpoint-Seq"
	// ContentTypeFrames is the stream body content type.
	ContentTypeFrames = "application/x-repl-frames"
)

// writeFrame encodes one record onto the stream.
func writeFrame(w io.Writer, rec wal.StreamRecord) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec.Payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec.Payload, castagnoli))
	binary.LittleEndian.PutUint64(hdr[8:16], rec.Seq)
	binary.LittleEndian.PutUint64(hdr[16:24], rec.Pos.Segment)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(rec.Pos.Offset))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("repl: write frame header: %w", err)
	}
	if _, err := w.Write(rec.Payload); err != nil {
		return fmt.Errorf("repl: write frame payload: %w", err)
	}
	return nil
}

// readFrame decodes the next frame; io.EOF cleanly ends a stream only on
// a frame boundary.
func readFrame(r *bufio.Reader) (wal.StreamRecord, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return wal.StreamRecord{}, io.EOF
		}
		return wal.StreamRecord{}, fmt.Errorf("repl: read frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxFramePayload {
		return wal.StreamRecord{}, fmt.Errorf("repl: frame of %d bytes exceeds bound", length)
	}
	rec := wal.StreamRecord{
		Seq: binary.LittleEndian.Uint64(hdr[8:16]),
		Pos: wal.Position{
			Segment: binary.LittleEndian.Uint64(hdr[16:24]),
			Offset:  int64(binary.LittleEndian.Uint64(hdr[24:32])),
		},
		Payload: make([]byte, length),
	}
	if _, err := io.ReadFull(r, rec.Payload); err != nil {
		return wal.StreamRecord{}, fmt.Errorf("repl: read frame payload: %w", err)
	}
	if crc32.Checksum(rec.Payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return wal.StreamRecord{}, fmt.Errorf("repl: frame checksum mismatch at %s", rec.Pos)
	}
	return rec, nil
}
