package repl

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/wal"
)

// Follower defaults.
const (
	DefaultPollWait      = 10 * time.Second
	DefaultBackoffBase   = 250 * time.Millisecond
	DefaultBackoffMax    = 15 * time.Second
	DefaultClientTimeout = 45 * time.Second
)

// FollowerOptions tunes a Follower.
type FollowerOptions struct {
	// LeaderURL is the leader registry's base URL (scheme://host:port).
	LeaderURL string
	// Clock drives backoff and lag accounting; nil means the real clock.
	Clock simclock.Clock
	// Logger receives tailer-loop notices; nil discards.
	Logger *slog.Logger
	// Client performs the HTTP polls; its Timeout must exceed PollWait.
	// Nil constructs a client with DefaultClientTimeout.
	Client *http.Client
	// Seed drives the jittered reconnect backoff deterministically.
	Seed int64
	// PollWait is the long-poll budget sent as ?wait; 0 means the
	// default, negative makes polls return immediately (the
	// deterministic-test mode).
	PollWait time.Duration
	// MaxBatch caps records requested per poll; 0 means the leader's cap.
	MaxBatch int
	// BackoffBase and BackoffMax bound the jittered exponential
	// reconnect backoff; 0 means the defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CheckpointBytes / CheckpointRecords trigger a local checkpoint, as
	// in wal.DurableOptions; 0 means those defaults, negative disables.
	CheckpointBytes   int64
	CheckpointRecords int
	// Log tunes the follower's local segmented log.
	Log wal.Options
}

// localRecord wraps one applied leader record in the follower's own WAL:
// the leader payload plus the leader position and sequence it carries, so
// restart recovery resumes from a durable applied position.
type localRecord struct {
	Segment uint64          `json:"segment"`
	Offset  int64           `json:"offset"`
	Seq     uint64          `json:"seq"`
	Payload json.RawMessage `json:"payload"`
}

// followerCheckpointFormat versions the local checkpoint layout.
const followerCheckpointFormat = 1

// followerCheckpoint is the JSON layout of a replckpt-<seq>.json file: a
// store snapshot stamped with both the leader position it covers and the
// local log position, so recovery replays only newer local records.
type followerCheckpoint struct {
	Format        int             `json:"format"`
	LeaderSegment uint64          `json:"leaderSegment"`
	LeaderOffset  int64           `json:"leaderOffset"`
	Seq           uint64          `json:"seq"`
	LocalSegment  uint64          `json:"localSegment"`
	LocalOffset   int64           `json:"localOffset"`
	Snapshot      json.RawMessage `json:"snapshot"`
}

func followerCheckpointName(seq uint64) string { return fmt.Sprintf("replckpt-%010d.json", seq) }

// listFollowerCheckpoints returns ascending local checkpoint sequences.
func listFollowerCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repl: list %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "replckpt-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "replckpt-%010d.json", &seq); err != nil || seq == 0 {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Follower tails the leader's WAL stream, applies records through the
// idempotent replay path, and persists applied state durably. Run (or
// Poll) must be driven from a single goroutine; Stats is safe to call
// from any.
type Follower struct {
	dir    string
	store  *store.Store
	log    *wal.Log
	opts   FollowerOptions
	clock  simclock.Clock
	slog   *slog.Logger
	client *http.Client
	leader string // base URL, trailing slash trimmed

	// OnApply is invoked after every applied record with the touched
	// object ids, and with no ids after a snapshot bootstrap — wire it to
	// the registry's post-write cache invalidation hook before Run.
	OnApply func(ids ...string)

	mu           sync.Mutex
	hasState     bool         // guarded by mu — a checkpoint or record survived recovery
	applied      wal.Position // guarded by mu — leader position just past the last applied record
	ckptSeq      uint64       // guarded by mu — newest local checkpoint sequence
	ckptLocal    wal.Position // guarded by mu — local log position the newest checkpoint covers
	recordsSince int          // guarded by mu — local records since last checkpoint
	bytesSince   int64        // guarded by mu — local bytes since last checkpoint

	appliedSeg   atomic.Uint64
	appliedOff   atomic.Int64
	appliedSeq   atomic.Uint64
	leaderSeq    atomic.Uint64
	connected    atomic.Bool
	caughtUp     atomic.Bool
	appliedTotal atomic.Int64
	errsTotal    atomic.Int64
	rebootstraps atomic.Int64
	checkpoints  atomic.Int64
	progressNano atomic.Int64 // clock time of the last applied record or caught-up poll
}

// OpenFollower opens (creating if needed) the follower's local state
// directory, recovers the store from the newest local checkpoint plus the
// local WAL tail, and returns a follower positioned at its durable
// applied position. The store should be freshly populated by registry
// construction; recovered state replaces it.
func OpenFollower(dir string, s *store.Store, opts FollowerOptions) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("repl: follower needs a leader URL")
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real{}
	}
	if opts.PollWait == 0 {
		opts.PollWait = DefaultPollWait
	} else if opts.PollWait < 0 {
		opts.PollWait = 0 // deterministic-test mode: polls return immediately
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = DefaultBackoffMax
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = wal.DefaultCheckpointBytes
	}
	if opts.CheckpointRecords == 0 {
		opts.CheckpointRecords = wal.DefaultCheckpointRecords
	}
	if opts.Log.Clock == nil {
		opts.Log.Clock = opts.Clock
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultClientTimeout}
	}
	l, err := wal.Open(dir, opts.Log)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		dir:    dir,
		store:  s,
		log:    l,
		opts:   opts,
		clock:  opts.Clock,
		slog:   obs.OrNop(opts.Logger),
		client: client,
		leader: strings.TrimRight(opts.LeaderURL, "/"),
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	seqs, err := listFollowerCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var localStart wal.Position
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, followerCheckpointName(seqs[i])))
		if err != nil {
			f.slog.Warn("skipping unreadable follower checkpoint", "seq", seqs[i], "err", err)
			continue
		}
		var cf followerCheckpoint
		if err := json.Unmarshal(data, &cf); err != nil || cf.Format != followerCheckpointFormat {
			f.slog.Warn("skipping undecodable follower checkpoint", "seq", seqs[i], "err", err)
			continue
		}
		if err := s.Load(bytes.NewReader(cf.Snapshot)); err != nil {
			f.slog.Warn("skipping unloadable follower checkpoint", "seq", seqs[i], "err", err)
			continue
		}
		f.applied = wal.Position{Segment: cf.LeaderSegment, Offset: cf.LeaderOffset}
		f.appliedSeq.Store(cf.Seq)
		localStart = wal.Position{Segment: cf.LocalSegment, Offset: cf.LocalOffset}
		f.ckptLocal = localStart
		f.hasState = true
		break
	}
	if len(seqs) > 0 {
		f.ckptSeq = seqs[len(seqs)-1] // never reuse a sequence number
	}

	var replayed int64
	err = l.Replay(localStart, func(pos wal.Position, payload []byte) error {
		var rec localRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("repl: decode local record: %w", err)
		}
		if _, err := wal.ApplyRecord(s, rec.Payload); err != nil {
			return err
		}
		f.applied = wal.Position{Segment: rec.Segment, Offset: rec.Offset}
		f.appliedSeq.Store(rec.Seq)
		replayed++
		f.recordsSince++
		f.bytesSince += int64(len(payload))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if replayed > 0 {
		f.hasState = true
	}
	f.appliedSeg.Store(f.applied.Segment)
	f.appliedOff.Store(f.applied.Offset)
	f.leaderSeq.Store(f.appliedSeq.Load())
	f.progressNano.Store(f.clock.Now().UnixNano())
	f.slog.Info("follower recovery complete",
		"dir", dir, "applied", f.applied.String(), "replayedRecords", replayed, "objects", s.Len())
	return f, nil
}

// Cold reports whether no replicated state survived recovery — the
// follower must Bootstrap before serving.
func (f *Follower) Cold() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.hasState
}

// Bootstrap fetches the leader's newest checkpoint, loads its snapshot
// wholesale, and persists a local checkpoint at the covered position.
func (f *Follower) Bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+PathCheckpoint, nil)
	if err != nil {
		return fmt.Errorf("repl: bootstrap request: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.errsTotal.Add(1)
		return fmt.Errorf("repl: bootstrap fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.errsTotal.Add(1)
		return fmt.Errorf("repl: bootstrap fetch: leader answered %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		f.errsTotal.Add(1)
		return fmt.Errorf("repl: bootstrap read: %w", err)
	}
	pos, snapshot, err := wal.ParseCheckpoint(data)
	if err != nil {
		f.errsTotal.Add(1)
		return err
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(HeaderCheckpointSeq), 10, 64)
	if err := f.store.Load(bytes.NewReader(snapshot)); err != nil {
		f.errsTotal.Add(1)
		return fmt.Errorf("repl: bootstrap load: %w", err)
	}
	f.mu.Lock()
	f.applied = pos
	f.appliedSeq.Store(seq)
	f.hasState = true
	err = f.checkpointLocked(snapshot)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	f.appliedSeg.Store(pos.Segment)
	f.appliedOff.Store(pos.Offset)
	f.rebootstraps.Add(1)
	f.progressNano.Store(f.clock.Now().UnixNano())
	if f.OnApply != nil {
		f.OnApply()
	}
	f.slog.InfoContext(ctx, "follower bootstrapped from leader checkpoint", "pos", pos.String(), "seq", seq)
	return nil
}

// Poll performs one WAL fetch against the leader, applying every streamed
// record. A 410 answer triggers an in-place re-bootstrap. It returns the
// number of records applied.
func (f *Follower) Poll(ctx context.Context) (int, error) {
	f.mu.Lock()
	from := f.applied
	f.mu.Unlock()
	u := f.leader + PathWAL + "?from=" + from.String()
	if f.opts.PollWait > 0 {
		u += "&wait=" + f.opts.PollWait.String()
	}
	if f.opts.MaxBatch > 0 {
		u += "&max=" + strconv.Itoa(f.opts.MaxBatch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, fmt.Errorf("repl: poll request: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.disconnect(err)
		return 0, fmt.Errorf("repl: poll: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		f.slog.WarnContext(ctx, "resume position pruned by leader; re-bootstrapping", "from", from.String())
		if err := f.Bootstrap(ctx); err != nil {
			f.connected.Store(false)
			return 0, err
		}
		f.connected.Store(true)
		return 0, nil
	default:
		f.disconnect(fmt.Errorf("repl: leader answered %s", resp.Status))
		return 0, fmt.Errorf("repl: poll: leader answered %s", resp.Status)
	}
	if seq, err := strconv.ParseUint(resp.Header.Get(HeaderLeaderSeq), 10, 64); err == nil {
		f.leaderSeq.Store(seq)
	}
	br := bufio.NewReader(resp.Body)
	applied := 0
	for {
		rec, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.disconnect(err)
			return applied, err
		}
		if err := f.apply(rec); err != nil {
			f.disconnect(err)
			return applied, err
		}
		applied++
	}
	f.connected.Store(true)
	now := f.clock.Now().UnixNano()
	if applied > 0 {
		f.progressNano.Store(now)
	}
	if f.appliedSeq.Load() >= f.leaderSeq.Load() {
		f.caughtUp.Store(true)
		f.progressNano.Store(now)
	} else {
		f.caughtUp.Store(false)
	}
	return applied, nil
}

// apply replays one streamed record into the store, persists it locally,
// and fires the cache-invalidation hook.
func (f *Follower) apply(rec wal.StreamRecord) error {
	ids, err := wal.ApplyRecord(f.store, rec.Payload)
	if err != nil {
		return err
	}
	wrapper, err := json.Marshal(&localRecord{
		Segment: rec.Pos.Segment, Offset: rec.Pos.Offset, Seq: rec.Seq, Payload: rec.Payload,
	})
	if err != nil {
		return fmt.Errorf("repl: encode local record: %w", err)
	}
	f.mu.Lock()
	if _, err := f.log.Append(wrapper); err != nil {
		f.mu.Unlock()
		return err
	}
	f.applied = rec.Pos
	f.appliedSeq.Store(rec.Seq)
	f.recordsSince++
	f.bytesSince += int64(len(wrapper))
	var ckptErr error
	if (f.opts.CheckpointRecords > 0 && f.recordsSince >= f.opts.CheckpointRecords) ||
		(f.opts.CheckpointBytes > 0 && f.bytesSince >= f.opts.CheckpointBytes) {
		ckptErr = f.checkpointLocked(nil)
	}
	f.mu.Unlock()
	if ckptErr != nil {
		f.slog.Error("follower checkpoint failed", "err", ckptErr)
	}
	f.appliedSeg.Store(rec.Pos.Segment)
	f.appliedOff.Store(rec.Pos.Offset)
	f.appliedTotal.Add(1)
	if f.OnApply != nil {
		f.OnApply(ids...)
	}
	return nil
}

// checkpointLocked writes a local checkpoint. A nil snapshot snapshots
// the store; a non-nil one (the bootstrap path) is used verbatim.
func (f *Follower) checkpointLocked(snapshot json.RawMessage) error {
	if snapshot == nil {
		var buf bytes.Buffer
		if err := f.store.Save(&buf); err != nil {
			return fmt.Errorf("repl: checkpoint snapshot: %w", err)
		}
		snapshot = buf.Bytes()
	}
	local := f.log.Pos()
	data, err := json.Marshal(&followerCheckpoint{
		Format:        followerCheckpointFormat,
		LeaderSegment: f.applied.Segment,
		LeaderOffset:  f.applied.Offset,
		Seq:           f.appliedSeq.Load(),
		LocalSegment:  local.Segment,
		LocalOffset:   local.Offset,
		Snapshot:      snapshot,
	})
	if err != nil {
		return fmt.Errorf("repl: encode checkpoint: %w", err)
	}
	seq := f.ckptSeq + 1
	if err := wal.WriteFileAtomic(filepath.Join(f.dir, followerCheckpointName(seq)), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	prevSeq, pruneLocal := f.ckptSeq, f.ckptLocal
	f.ckptSeq, f.ckptLocal = seq, local
	f.recordsSince, f.bytesSince = 0, 0
	f.checkpoints.Add(1)
	// Retention mirrors the leader: keep the previous checkpoint as the
	// recovery fallback and prune local segments it covers; best-effort.
	seqs, err := listFollowerCheckpoints(f.dir)
	if err == nil {
		for _, old := range seqs {
			if old >= prevSeq {
				break
			}
			if err := os.Remove(filepath.Join(f.dir, followerCheckpointName(old))); err != nil {
				f.slog.Warn("stale follower checkpoint removal failed", "err", err)
			}
		}
	}
	if _, err := f.log.Prune(pruneLocal); err != nil {
		f.slog.Warn("follower local prune failed", "err", err)
	}
	return nil
}

// Run drives the tailer loop until ctx is cancelled: bootstrap if cold,
// then poll forever with seeded jittered exponential backoff on failure
// and an idle pause when a poll returns no records.
func (f *Follower) Run(ctx context.Context) {
	rng := rand.New(rand.NewSource(f.opts.Seed))
	fails := 0
	for ctx.Err() == nil {
		if f.Cold() {
			if err := f.Bootstrap(ctx); err != nil {
				f.slog.WarnContext(ctx, "follower bootstrap failed; backing off", "err", err)
				fails++
				if !f.pause(ctx, f.backoff(rng, fails)) {
					return
				}
				continue
			}
		}
		applied, err := f.Poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			f.slog.WarnContext(ctx, "follower poll failed; backing off", "err", err, "fails", fails)
			if !f.pause(ctx, f.backoff(rng, fails)) {
				return
			}
			continue
		}
		fails = 0
		if applied == 0 && f.opts.PollWait <= 0 {
			// Without a long-poll budget an idle leader would make this a
			// busy loop; pace with the base backoff.
			if !f.pause(ctx, f.backoff(rng, 1)) {
				return
			}
		}
	}
}

// backoff computes the jittered exponential delay for the n-th
// consecutive failure (n >= 1).
func (f *Follower) backoff(rng *rand.Rand, n int) time.Duration {
	d := f.opts.BackoffBase << uint(n-1)
	if d > f.opts.BackoffMax || d <= 0 {
		d = f.opts.BackoffMax
	}
	// Full jitter in [d/2, d): thundering-herd protection that still
	// guarantees forward progress.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// pause sleeps on the injected clock, returning false when ctx ends.
func (f *Follower) pause(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-f.clock.After(d):
		return true
	}
}

// disconnect records a stream failure.
func (f *Follower) disconnect(err error) {
	f.connected.Store(false)
	f.caughtUp.Store(false)
	f.errsTotal.Add(1)
}

// Close writes a final local checkpoint and closes the local log. Stop
// Run (cancel its context) before calling Close.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hasState {
		if err := f.checkpointLocked(nil); err != nil {
			return err
		}
	}
	return f.log.Close()
}

// FollowerStats is the scrape snapshot for metrics, health, and regctl.
type FollowerStats struct {
	Leader       string
	Applied      wal.Position
	AppliedSeq   uint64
	LeaderSeq    uint64
	Connected    bool
	CaughtUp     bool
	AppliedTotal int64
	ErrorsTotal  int64
	Rebootstraps int64
	Checkpoints  int64
	LagRecords   int64
	LagSeconds   float64
}

// Stats snapshots the follower's replication state.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Leader:       f.leader,
		Applied:      wal.Position{Segment: f.appliedSeg.Load(), Offset: f.appliedOff.Load()},
		AppliedSeq:   f.appliedSeq.Load(),
		LeaderSeq:    f.leaderSeq.Load(),
		Connected:    f.connected.Load(),
		CaughtUp:     f.caughtUp.Load(),
		AppliedTotal: f.appliedTotal.Load(),
		ErrorsTotal:  f.errsTotal.Load(),
		Rebootstraps: f.rebootstraps.Load(),
		Checkpoints:  f.checkpoints.Load(),
	}
	if st.LeaderSeq > st.AppliedSeq {
		st.LagRecords = int64(st.LeaderSeq - st.AppliedSeq)
	}
	if !(st.Connected && st.CaughtUp) {
		st.LagSeconds = time.Duration(f.clock.Now().UnixNano() - f.progressNano.Load()).Seconds()
		if st.LagSeconds < 0 {
			st.LagSeconds = 0
		}
	}
	return st
}
