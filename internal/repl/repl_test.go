package repl

// The leader/follower convergence suite: the acceptance tests for the
// replication subsystem. A leader is a real lcm.Manager wired to a real
// wal.Durable behind the Leader HTTP endpoints; followers bootstrap and
// tail over real HTTP. Convergence is judged the same way the crash
// harness judges recovery: store.Save output must match the leader
// byte-for-byte.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/lcm"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/xacml"
)

var t0 = time.Unix(1_700_000_000, 0)

// leaderNode is one leader under test: store, durability, LCM write path,
// and the replication endpoints.
type leaderNode struct {
	t     *testing.T
	dir   string
	clk   *simclock.Manual
	store *store.Store
	d     *wal.Durable
	mgr   *lcm.Manager
	lctx  lcm.Context
	ld    *Leader
}

func newLeaderNode(t *testing.T, dir string, opts wal.DurableOptions) *leaderNode {
	t.Helper()
	clk := simclock.NewManual(t0)
	if opts.Log.Clock == nil {
		opts.Log.Clock = clk
	}
	s := store.New()
	d, err := wal.OpenDurable(dir, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	mgr := lcm.New(s, nil, audit.New(s, clk), nil)
	mgr.Durability = d
	return &leaderNode{
		t: t, dir: dir, clk: clk, store: s, d: d, mgr: mgr,
		lctx: lcm.Context{UserID: "repl-tester", Roles: []string{xacml.RoleAdministrator}},
		ld:   NewLeader(d, clk, nil),
	}
}

func (n *leaderNode) submit(name string) string {
	n.t.Helper()
	svc := rim.NewService(name, "replicated service")
	if err := n.mgr.SubmitObjects(n.lctx, svc); err != nil {
		n.t.Fatal(err)
	}
	return svc.ID
}

func (n *leaderNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathWAL, n.ld.ServeWAL)
	mux.HandleFunc(PathCheckpoint, n.ld.ServeCheckpoint)
	return mux
}

func saveBytes(t *testing.T, s *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newFollower(t *testing.T, dir, leaderURL string, client *http.Client, tweak func(*FollowerOptions)) *Follower {
	t.Helper()
	opts := FollowerOptions{
		LeaderURL: leaderURL,
		Clock:     simclock.NewManual(t0),
		Client:    client,
		Seed:      7,
		PollWait:  -1, // deterministic mode: polls return immediately
	}
	if tweak != nil {
		tweak(&opts)
	}
	f, err := OpenFollower(dir, store.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// catchUp polls until the follower's applied position reaches the
// leader's committed position.
func catchUp(t *testing.T, f *Follower, n *leaderNode) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		want, _ := n.d.WAL().Committed()
		if f.Stats().Applied == want {
			return
		}
		if _, err := f.Poll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("follower stuck at %s, leader at %s", f.Stats().Applied, n.d.CheckpointPos())
}

func assertConverged(t *testing.T, n *leaderNode, f *Follower) {
	t.Helper()
	leaderBytes := saveBytes(t, n.store)
	followerBytes := saveBytes(t, f.store)
	if !bytes.Equal(leaderBytes, followerBytes) {
		t.Fatalf("follower store diverged:\nleader   %d bytes\nfollower %d bytes", len(leaderBytes), len(followerBytes))
	}
}

func TestReplColdFollowerConvergesByteIdentical(t *testing.T) {
	n := newLeaderNode(t, t.TempDir(), wal.DurableOptions{})
	defer n.d.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, n.submit(fmt.Sprintf("pre-ckpt-%d", i)))
	}
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Writes after the checkpoint arrive via the stream, not the snapshot.
	for i := 0; i < 8; i++ {
		n.submit(fmt.Sprintf("streamed-%d", i))
	}
	if err := n.mgr.DeprecateObjects(n.lctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := n.mgr.RemoveObjects(n.lctx, ids[1]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.handler())
	defer srv.Close()

	f := newFollower(t, t.TempDir(), srv.URL, srv.Client(), nil)
	defer f.Close()
	var applies atomic.Int64
	f.OnApply = func(ids ...string) { applies.Add(1) }
	if !f.Cold() {
		t.Fatal("fresh follower should be cold")
	}
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, n)
	assertConverged(t, n, f)

	st := f.Stats()
	if st.AppliedTotal == 0 || applies.Load() == 0 {
		t.Fatalf("no streamed records applied: stats %+v, hook fired %d times", st, applies.Load())
	}
	if st.LagRecords != 0 || !st.CaughtUp {
		t.Fatalf("caught-up follower reports lag: %+v", st)
	}
	if _, err := f.store.Get(ids[1]); err == nil {
		t.Fatal("removed object still present on follower")
	}
}

func TestReplFollowerRestartResumesFromDurablePosition(t *testing.T) {
	n := newLeaderNode(t, t.TempDir(), wal.DurableOptions{})
	defer n.d.Close()
	n.submit("gen-1")
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n.submit("gen-2")
	srv := httptest.NewServer(n.handler())
	defer srv.Close()

	fdir := t.TempDir()
	f := newFollower(t, fdir, srv.URL, srv.Client(), nil)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, n)
	resumeAt := f.Stats().Applied
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The leader keeps writing while the follower is down.
	for i := 0; i < 6; i++ {
		n.submit(fmt.Sprintf("while-down-%d", i))
	}

	f2 := newFollower(t, fdir, srv.URL, srv.Client(), nil)
	defer f2.Close()
	if f2.Cold() {
		t.Fatal("restarted follower lost its durable state")
	}
	if got := f2.Stats().Applied; got != resumeAt {
		t.Fatalf("restarted follower resumes at %s, want %s", got, resumeAt)
	}
	catchUp(t, f2, n)
	assertConverged(t, n, f2)
	if st := f2.Stats(); st.Rebootstraps != 0 {
		t.Fatalf("restart should resume by position, not re-bootstrap: %+v", st)
	}
}

// handlerProxy lets a test "restart" the leader behind one stable URL.
type handlerProxy struct {
	h atomic.Pointer[http.Handler]
}

func (p *handlerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*p.h.Load()).ServeHTTP(w, r)
}

func (p *handlerProxy) set(h http.Handler) { p.h.Store(&h) }

func TestReplLeaderRestartMidStream(t *testing.T) {
	ldir := t.TempDir()
	n := newLeaderNode(t, ldir, wal.DurableOptions{})
	n.submit("before-restart")
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	proxy := &handlerProxy{}
	proxy.set(n.handler())
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	f := newFollower(t, t.TempDir(), srv.URL, srv.Client(), nil)
	defer f.Close()
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, n)

	// Leader "restarts": graceful close, then a fresh Durable over the
	// same directory behind the same URL.
	if err := n.d.Close(); err != nil {
		t.Fatal(err)
	}
	n2 := newLeaderNode(t, ldir, wal.DurableOptions{})
	defer n2.d.Close()
	proxy.set(n2.handler())
	for i := 0; i < 5; i++ {
		n2.submit(fmt.Sprintf("after-restart-%d", i))
	}
	catchUp(t, f, n2)
	assertConverged(t, n2, f)
}

func TestReplPrunedPositionRebootstraps(t *testing.T) {
	// Tiny segments and aggressive checkpointing make the leader prune
	// history out from under an idle follower.
	n := newLeaderNode(t, t.TempDir(), wal.DurableOptions{
		Log:               wal.Options{SegmentBytes: 256},
		CheckpointRecords: 3,
	})
	defer n.d.Close()
	n.submit("early")
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.handler())
	defer srv.Close()

	f := newFollower(t, t.TempDir(), srv.URL, srv.Client(), nil)
	defer f.Close()
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, n)
	before := f.Stats().Rebootstraps

	for i := 0; i < 30; i++ {
		n.submit(fmt.Sprintf("pruner-%02d", i))
	}
	oldest := f.Stats().Applied
	if _, err := n.d.WAL().OpenReaderAt(oldest); err == nil {
		t.Fatalf("precondition: follower position %s should be pruned on the leader", oldest)
	}

	catchUp(t, f, n)
	assertConverged(t, n, f)
	if got := f.Stats().Rebootstraps; got <= before {
		t.Fatalf("rebootstraps = %d, want > %d after pruned resume", got, before)
	}
}

// droppingTransport injects seeded connection failures in front of a real
// transport — the partition half of the partition/lag harness.
type droppingTransport struct {
	base     http.RoundTripper
	rng      *rand.Rand // guarded by the follower's single-goroutine use
	dropPct  int
	injected atomic.Int64
}

func (d *droppingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if d.rng.Intn(100) < d.dropPct {
		d.injected.Add(1)
		return nil, fmt.Errorf("injected partition: %s", req.URL.Path)
	}
	return d.base.RoundTrip(req)
}

func TestReplPartitionLagHarnessEverySeed(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			n := newLeaderNode(t, t.TempDir(), wal.DurableOptions{})
			defer n.d.Close()
			for i := 0; i < 20; i++ {
				n.submit(fmt.Sprintf("seed%d-%02d", seed, i))
			}
			if err := n.d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				n.submit(fmt.Sprintf("seed%d-tail-%02d", seed, i))
			}
			srv := httptest.NewServer(n.handler())
			defer srv.Close()

			dt := &droppingTransport{
				base:    srv.Client().Transport,
				rng:     rand.New(rand.NewSource(seed)),
				dropPct: 40,
			}
			f := newFollower(t, t.TempDir(), srv.URL,
				&http.Client{Timeout: 5 * time.Second, Transport: dt},
				func(o *FollowerOptions) {
					o.Clock = simclock.Real{}
					o.Seed = seed
					o.BackoffBase = time.Millisecond
					o.BackoffMax = 4 * time.Millisecond
				})

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				f.Run(ctx)
				close(done)
			}()
			want, _ := n.d.WAL().Committed()
			deadline := time.Now().Add(30 * time.Second)
			for f.Stats().Applied != want {
				if time.Now().After(deadline) {
					cancel()
					<-done
					t.Fatalf("follower never converged through the partition: %+v (injected %d)",
						f.Stats(), dt.injected.Load())
				}
				time.Sleep(2 * time.Millisecond)
			}
			cancel()
			<-done
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			assertConverged(t, n, f)
			st := f.Stats()
			if dt.injected.Load() > 0 && st.ErrorsTotal == 0 {
				t.Fatalf("injected %d failures but follower counted none", dt.injected.Load())
			}
			if st.LagRecords != 0 {
				t.Fatalf("converged follower reports lag: %+v", st)
			}
		})
	}
}

func newBufReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

func TestReplFrameRoundtripAndCorruption(t *testing.T) {
	rec := wal.StreamRecord{
		Pos:     wal.Position{Segment: 3, Offset: 1234},
		Seq:     42,
		Payload: []byte(`{"op":"Submit"}`),
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(newBufReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != rec.Pos || got.Seq != rec.Seq || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("frame roundtrip mismatch: %+v", got)
	}

	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := readFrame(newBufReader(corrupt)); err == nil {
		t.Fatal("corrupted frame passed CRC")
	}
	truncated := buf.Bytes()[:buf.Len()-3]
	if _, err := readFrame(newBufReader(truncated)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReplLeaderHTTPContract(t *testing.T) {
	n := newLeaderNode(t, t.TempDir(), wal.DurableOptions{Log: wal.Options{SegmentBytes: 128}})
	defer n.d.Close()
	for i := 0; i < 10; i++ {
		n.submit(fmt.Sprintf("contract-%d", i))
	}
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint prunes the segments the first one covered, so
	// position 1:0 is genuinely gone.
	n.submit("contract-tail")
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.handler())
	defer srv.Close()

	// Bad from parameter → 400.
	resp, err := srv.Client().Get(srv.URL + PathWAL + "?from=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from → %d, want 400", resp.StatusCode)
	}

	// Pruned from → 410 with a checkpoint pointer in the JSON body.
	resp, err = srv.Client().Get(srv.URL + PathWAL + "?from=1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pruned from → %d, want 410", resp.StatusCode)
	}
	var pa prunedAnswer
	if err := json.NewDecoder(resp.Body).Decode(&pa); err != nil {
		t.Fatal(err)
	}
	if pa.Checkpoint == "" {
		t.Fatalf("410 body carries no checkpoint pointer: %+v", pa)
	}

	// Checkpoint endpoint carries position and sequence headers.
	cresp, err := srv.Client().Get(srv.URL + PathCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint → %d", cresp.StatusCode)
	}
	for _, h := range []string{HeaderCheckpointPos, HeaderCheckpointSeq, HeaderLeaderPos, HeaderLeaderSeq} {
		if cresp.Header.Get(h) == "" {
			t.Fatalf("checkpoint response missing %s header", h)
		}
	}
}
