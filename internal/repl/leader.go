package repl

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/wal"
)

// Leader serves the WAL stream and checkpoint bootstrap out of the
// registry's durability manager. It holds no state of its own beyond
// counters, so it is safe for concurrent use by many follower streams.
type Leader struct {
	durable *wal.Durable
	clock   simclock.Clock
	slog    *slog.Logger

	// MaxWait caps the wait query parameter so a stream cannot pin a
	// connection forever; MaxBatch caps records per response.
	MaxWait  time.Duration
	MaxBatch int

	active   atomic.Int64
	streams  atomic.Int64
	records  atomic.Int64
	pruned   atomic.Int64
	errs     atomic.Int64
	ckptsrvd atomic.Int64
}

// Leader defaults.
const (
	DefaultMaxWait  = 30 * time.Second
	DefaultMaxBatch = 4096
)

// NewLeader wires a Leader over the registry's durability manager.
func NewLeader(d *wal.Durable, clock simclock.Clock, logger *slog.Logger) *Leader {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Leader{
		durable:  d,
		clock:    clock,
		slog:     obs.OrNop(logger),
		MaxWait:  DefaultMaxWait,
		MaxBatch: DefaultMaxBatch,
	}
}

// prunedAnswer is the 410 body: where to re-bootstrap from.
type prunedAnswer struct {
	Error      string `json:"error"`
	Checkpoint string `json:"checkpoint"`
}

// ServeWAL streams committed records strictly after ?from as binary
// frames, long-polling up to ?wait when caught up.
func (ld *Leader) ServeWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "repl: GET only", http.StatusMethodNotAllowed)
		return
	}
	from, err := wal.ParsePosition(r.URL.Query().Get("from"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wait, err := parseWait(r.URL.Query().Get("wait"), ld.MaxWait)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	max := ld.MaxBatch
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, "repl: bad max", http.StatusBadRequest)
			return
		}
		if n < max {
			max = n
		}
	}
	log := ld.durable.WAL()
	rd, err := log.OpenReaderAt(from)
	if err != nil {
		if errors.Is(err, wal.ErrPositionPruned) {
			ld.answerPruned(w, from)
			return
		}
		ld.errs.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer rd.Close()

	ld.active.Add(1)
	ld.streams.Add(1)
	defer ld.active.Add(-1)

	pos, seq := log.Committed()
	w.Header().Set(HeaderLeaderPos, pos.String())
	w.Header().Set(HeaderLeaderSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Type", ContentTypeFrames)
	flusher, _ := w.(http.Flusher)
	deadline := ld.clock.Now().Add(wait)
	sent := 0
	for sent < max {
		rec, err := rd.Next()
		if errors.Is(err, wal.ErrEndOfLog) {
			if sent > 0 {
				break
			}
			remaining := deadline.Sub(ld.clock.Now())
			if remaining <= 0 {
				break
			}
			// Arm the append signal, then re-check: a record committed
			// between Next and AppendSignal must not be slept past.
			sig := log.AppendSignal()
			if p, _ := log.Committed(); rd.Pos().Less(p) {
				continue
			}
			select {
			case <-sig:
			case <-ld.clock.After(remaining):
			case <-r.Context().Done():
				return
			}
			continue
		}
		if err != nil {
			// Mid-stream prune or corruption: end the batch; the
			// follower's next poll gets the full-status answer.
			if !errors.Is(err, wal.ErrPositionPruned) {
				ld.errs.Add(1)
				ld.slog.WarnContext(r.Context(), "repl stream read failed", "err", err)
			}
			if sent == 0 && errors.Is(err, wal.ErrPositionPruned) {
				ld.answerPruned(w, from)
				return
			}
			break
		}
		if err := writeFrame(w, rec); err != nil {
			ld.errs.Add(1)
			return // client went away mid-frame
		}
		sent++
	}
	ld.records.Add(int64(sent))
	if flusher != nil {
		flusher.Flush()
	}
}

// answerPruned tells the follower its resume position predates the oldest
// live segment and where the newest checkpoint stands.
func (ld *Leader) answerPruned(w http.ResponseWriter, from wal.Position) {
	ld.pruned.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGone)
	json.NewEncoder(w).Encode(prunedAnswer{
		Error:      "repl: position " + from.String() + " pruned; re-bootstrap from checkpoint",
		Checkpoint: ld.durable.CheckpointPos().String(),
	})
}

// ServeCheckpoint serves the newest checkpoint file verbatim, stamped
// with the WAL position it covers and the leader's committed sequence.
func (ld *Leader) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "repl: GET only", http.StatusMethodNotAllowed)
		return
	}
	pos, data, err := ld.durable.NewestCheckpoint()
	if err != nil {
		ld.errs.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	seq, err := ld.seqAt(pos)
	if err != nil {
		ld.errs.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	leaderPos, leaderSeq := ld.durable.WAL().Committed()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCheckpointPos, pos.String())
	w.Header().Set(HeaderLeaderPos, leaderPos.String())
	w.Header().Set(HeaderLeaderSeq, strconv.FormatUint(leaderSeq, 10))
	w.Header().Set(HeaderCheckpointSeq, strconv.FormatUint(seq, 10))
	w.Write(data)
	ld.ckptsrvd.Add(1)
}

// seqAt resolves the record sequence number at a committed position by
// opening (and immediately closing) a reader there.
func (ld *Leader) seqAt(pos wal.Position) (uint64, error) {
	rd, err := ld.durable.WAL().OpenReaderAt(pos)
	if err != nil {
		return 0, err
	}
	defer rd.Close()
	return rd.Seq(), nil
}

// parseWait parses the wait query parameter, clamping to limit.
func parseWait(s string, limit time.Duration) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, errors.New("repl: bad wait duration")
	}
	if d > limit {
		d = limit
	}
	return d, nil
}

// Stats snapshots the leader's counters for metrics and health.
type LeaderStats struct {
	ActiveStreams     int64
	StreamsTotal      int64
	RecordsStreamed   int64
	PrunedTotal       int64
	ErrorsTotal       int64
	CheckpointsServed int64
	Position          wal.Position
	Seq               uint64
}

// Stats returns a consistent-enough snapshot for scraping.
func (ld *Leader) Stats() LeaderStats {
	pos, seq := ld.durable.WAL().Committed()
	return LeaderStats{
		ActiveStreams:     ld.active.Load(),
		StreamsTotal:      ld.streams.Load(),
		RecordsStreamed:   ld.records.Load(),
		PrunedTotal:       ld.pruned.Load(),
		ErrorsTotal:       ld.errs.Load(),
		CheckpointsServed: ld.ckptsrvd.Load(),
		Position:          pos,
		Seq:               seq,
	}
}
