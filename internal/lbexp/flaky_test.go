package lbexp

import (
	"testing"
	"time"

	"repro/internal/mtc"
)

// flakyWorkload spans several flap periods so the breakers get to trip,
// back off, and recover within one run.
func flakyWorkload() mtc.Workload {
	return mtc.Workload{
		Tasks: 80, MeanInterarrival: 3 * time.Second, Deterministic: true,
		TaskCPU: 8, TaskMemB: 16 << 20, Seed: 42,
	}
}

func TestFlakyQuarantinesAndRebalances(t *testing.T) {
	base := Config{Workload: flakyWorkload()}
	tbl, results, err := Flaky(base, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	clean, faulty := results[0], results[1]
	if clean.Trips != 0 || clean.Stats.Errs != 0 {
		t.Fatalf("clean baseline saw faults: %+v", clean)
	}
	if faulty.Trips == 0 {
		t.Fatalf("no breaker trips at 30%% drop: %+v", faulty)
	}
	if faulty.Stats.Skipped == 0 {
		t.Fatalf("quarantined hosts were never skipped: %+v", faulty.Stats)
	}
	if faulty.Stats.Errs == 0 || faulty.Stats.Retries == 0 {
		t.Fatalf("injector left no trace in collector stats: %+v", faulty.Stats)
	}
	// The workload still completes, and placement shifts away from the
	// flaky hosts while the healthy majority keeps a balanced share.
	if faulty.Completed == 0 {
		t.Fatalf("flaky run completed nothing: %+v", faulty)
	}
	if faulty.FaultyTasks >= faulty.HealthyTasks {
		t.Fatalf("faulty hosts kept their share: faulty=%v healthy=%v",
			faulty.FaultyTasks, faulty.HealthyTasks)
	}
}

func TestFlakyReplayIsByteIdentical(t *testing.T) {
	base := Config{Workload: flakyWorkload()}
	same, err := FlakyReplayIdentical(base, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("identical seeds produced different fingerprints")
	}
}
