package lbexp

import (
	"testing"

	"repro/internal/admit"
)

// fcTestConfig is the H8 default at a fixed seed; the assertions below
// are the experiment's acceptance contract, so the test runs the real
// configuration rather than a toy one.
func fcTestConfig() FlashCrowdConfig { return DefaultFlashCrowd(42) }

// TestFlashCrowdGoodputAndLatency is the headline overload claim: at a
// 10x offered-load surge the edge sheds instead of collapsing — admitted
// goodput stays within 10% of (in practice, above) the uncontended
// baseline, and admitted p99 stays inside the discovery class deadline
// because excess arrivals bounce early instead of queuing.
func TestFlashCrowdGoodputAndLatency(t *testing.T) {
	baseline, surge, err := FlashCrowd(fcTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Completed == 0 || baseline.Shed != 0 {
		t.Fatalf("baseline should serve everything: %+v", baseline)
	}
	if surge.Shed == 0 {
		t.Fatalf("10x surge shed nothing: %+v", surge)
	}
	if surge.GoodputPerSec < 0.9*baseline.GoodputPerSec {
		t.Errorf("goodput collapsed under surge: baseline %.1f/s, surge %.1f/s",
			baseline.GoodputPerSec, surge.GoodputPerSec)
	}
	for _, r := range []FlashCrowdResult{baseline, surge} {
		if r.LatP99 > r.Deadline.Seconds() {
			t.Errorf("%s: p99 %.1fms exceeds the %.0fms class deadline",
				r.Name, r.LatP99*1000, r.Deadline.Seconds()*1000)
		}
	}
	// Shed clients must have been told when to come back: every shed in
	// the HTTP path carries Retry-After, and the simulator's backoff is
	// driven by the same advisory value.
	if surge.Stats.Shed == 0 {
		t.Errorf("controller counters saw no sheds: %+v", surge.Stats)
	}
}

// TestFlashCrowdBrownoutLadder checks the degradation story: sustained
// surge pressure climbs the ladder at least to stale-snapshot serving,
// and the cooldown walks it all the way back to nominal.
func TestFlashCrowdBrownoutLadder(t *testing.T) {
	_, surge, err := FlashCrowd(fcTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if surge.MaxTier < admit.TierStale {
		t.Errorf("surge never escalated past %v (want >= %v)", surge.MaxTier, admit.TierStale)
	}
	if surge.FinalTier != admit.TierNominal {
		t.Errorf("ladder did not recover after the crowd left: final tier %v", surge.FinalTier)
	}
	if surge.TierChanges < 2 {
		t.Errorf("expected at least one climb and one descent, got %d transitions", surge.TierChanges)
	}
}

// TestFlashCrowdBalance is the P3 fairness story: with sweeps and load
// feedback live, every phase of both runs spreads assignments across all
// hosts, the surge window is the surge run's worst phase (between-sweeps
// herding at 10x arrival rate), and the cooldown recovers from it.
func TestFlashCrowdBalance(t *testing.T) {
	cfg := fcTestConfig()
	baseline, surge, err := FlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []FlashCrowdResult{baseline, surge} {
		for p, counts := range r.PhaseAssignments {
			if len(counts) != cfg.Hosts {
				t.Errorf("%s/%s: assignments reached %d of %d hosts: %v",
					r.Name, PhaseNames[p], len(counts), cfg.Hosts, counts)
			}
			if f := r.PhaseFairness[p]; f < 0.8 {
				t.Errorf("%s/%s: fairness %.4f below 0.8", r.Name, PhaseNames[p], f)
			}
		}
	}
	if surge.PhaseFairness[PhaseSurge] >= baseline.PhaseFairness[PhaseSurge] {
		t.Errorf("crowd did not dent surge-window fairness: surge run %.4f, baseline %.4f",
			surge.PhaseFairness[PhaseSurge], baseline.PhaseFairness[PhaseSurge])
	}
	if surge.PhaseFairness[PhaseCooldown] <= surge.PhaseFairness[PhaseSurge] {
		t.Errorf("fairness did not recover in cooldown: surge %.4f, cooldown %.4f",
			surge.PhaseFairness[PhaseSurge], surge.PhaseFairness[PhaseCooldown])
	}
}

// TestFlashCrowdReplayIdentical proves the determinism contract: two
// same-seed surge runs produce byte-identical fingerprints (event-stream
// hash, every counter, the tier history).
func TestFlashCrowdReplayIdentical(t *testing.T) {
	same, err := FlashCrowdReplayIdentical(fcTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("same-seed flash-crowd replays diverged")
	}
}

// TestFlashCrowdSeedSensitivity guards against the fingerprint being a
// constant: different seeds must produce different event streams.
func TestFlashCrowdSeedSensitivity(t *testing.T) {
	a, err := flashRun(DefaultFlashCrowd(1), DefaultFlashCrowd(1).SurgeClients)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flashRun(DefaultFlashCrowd(2), DefaultFlashCrowd(2).SurgeClients)
	if err != nil {
		t.Fatal(err)
	}
	if a.fingerprint() == b.fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}
