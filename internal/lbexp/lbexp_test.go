package lbexp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mtc"
)

// smallWorkload keeps unit-test runs fast; the benches scale it up.
func smallWorkload() mtc.Workload {
	return mtc.Workload{
		Tasks: 40, MeanInterarrival: 3 * time.Second, Deterministic: true,
		TaskCPU: 8, TaskMemB: 16 << 20, Seed: 42,
	}
}

func TestNewSetupPublishesDeployment(t *testing.T) {
	s, err := NewSetup(Config{Hosts: 3, RegistryPolicy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	// NodeStatus published and collectable (Fig. 3.7).
	targets := s.Registry.QM.CollectionTargets()
	if len(targets) != 3 {
		t.Fatalf("collection targets = %v", targets)
	}
	if s.Registry.Store.NodeState().Len() != 3 {
		t.Fatalf("nodestate rows = %d", s.Registry.Store.NodeState().Len())
	}
	uris, _, err := s.Conn.ServiceBindings("Worker")
	if err != nil || len(uris) == 0 {
		t.Fatalf("worker uris = %v, %v", uris, err)
	}
}

func TestHostCapIsApplied(t *testing.T) {
	s, err := NewSetup(Config{Hosts: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Cluster.Names()); got != len(HostNames) {
		t.Fatalf("hosts = %d", got)
	}
}

// TestH1Shape verifies the headline claim's shape: the load-balanced
// registry beats the stock/first-uri baseline on load fairness, and the
// baseline concentrates everything on one host.
func TestH1Shape(t *testing.T) {
	base := Config{Hosts: 4, Heterogeneous: true, Workload: smallWorkload()}
	tbl, reports, err := ComparePolicies(base, H1Combos)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(H1Combos) {
		t.Fatalf("reports = %d", len(reports))
	}
	out := tbl.String()
	if !strings.Contains(out, "stock/first-uri") || !strings.Contains(out, "lb-least-loaded/first-uri") {
		t.Fatalf("table:\n%s", out)
	}

	byName := map[string]int{}
	for i, c := range H1Combos {
		byName[c.Name] = i
	}
	stock := reports[byName["stock/first-uri"]]
	lb := reports[byName["lb-least-loaded/first-uri"]]

	// Stock concentrates: exactly one host receives tasks.
	used := 0
	for _, n := range stock.PerHostTasks {
		if n > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("stock used %d hosts: %v", used, stock.PerHostTasks)
	}
	// LB spreads to several hosts and wins on fairness.
	usedLB := 0
	for _, n := range lb.PerHostTasks {
		if n > 0 {
			usedLB++
		}
	}
	if usedLB < 2 {
		t.Fatalf("lb used %d hosts: %v", usedLB, lb.PerHostTasks)
	}
	if lb.MeanFairness() <= stock.MeanFairness() {
		t.Fatalf("lb fairness %.3f <= stock %.3f", lb.MeanFairness(), stock.MeanFairness())
	}
}

func TestH2PeriodSweepRuns(t *testing.T) {
	base := Config{
		Hosts: 3, RegistryPolicy: core.PolicyLeastLoaded,
		Workload: smallWorkload(),
	}
	tbl, err := PeriodSweep(base, []time.Duration{5 * time.Second, 25 * time.Second, 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || !strings.Contains(tbl.String(), "25s") {
		t.Fatalf("table:\n%s", tbl.String())
	}
}

func TestH3TimeOfDay(t *testing.T) {
	results, tbl, err := TimeOfDay(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		inWindow := r.RequestHour >= 10 && r.RequestHour < 12
		if inWindow {
			if !r.WindowOK || r.URIs == 0 {
				t.Fatalf("in-window row broken: %+v", r)
			}
			continue
		}
		switch r.Mode {
		case core.TimeWindowSkipFiltering:
			// Outside window the thesis-literal mode serves stock order.
			if r.URIs == 0 || r.Filtered {
				t.Fatalf("skip mode row broken: %+v", r)
			}
		case core.TimeWindowExclude:
			if r.URIs != 0 {
				t.Fatalf("exclude mode leaked URIs: %+v", r)
			}
		}
	}
	_ = tbl.String()
}

func TestH4NetDelay(t *testing.T) {
	tbl, err := NetDelay(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// Delays 5, 20, 35, 50 -> two hosts under 30 ms.
	if !strings.Contains(out, "returned URIs") {
		t.Fatalf("table:\n%s", out)
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "returned URIs" && row[1] == "2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected 2 eligible URIs:\n%s", out)
	}
}

func TestH5FailureShape(t *testing.T) {
	base := Config{
		Hosts: 4, Heterogeneous: true,
		Constraint: `<constraint><cpuLoad>load ls 1000.0</cpuLoad></constraint>`,
		Workload: mtc.Workload{
			Tasks: 60, MeanInterarrival: 3 * time.Second, Deterministic: true,
			TaskCPU: 8, TaskMemB: 8 << 20, Seed: 42,
		},
	}
	tbl, results, err := Failure(base, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	stock, lb := results[0], results[1]
	// Both complete everything (clients retry past the dead host).
	if stock.Completed != 60 || lb.Completed != 60 {
		t.Fatalf("completed: stock=%d lb=%d", stock.Completed, lb.Completed)
	}
	// Stock keeps offering the dead host first: many retries; the LB
	// registry stops serving it after its failed sweep: strictly fewer.
	if stock.Retries <= lb.Retries {
		t.Fatalf("retries: stock=%d lb=%d", stock.Retries, lb.Retries)
	}
	// Stock concentrated pre-failure traffic on the doomed host.
	if stock.TasksOnFailedHost <= lb.TasksOnFailedHost {
		t.Fatalf("tasksOnFailedHost: stock=%d lb=%d", stock.TasksOnFailedHost, lb.TasksOnFailedHost)
	}
	if !strings.Contains(tbl.String(), "stock") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestFallbackAblation(t *testing.T) {
	// An impossible constraint: nothing eligible. Without fallback the
	// workload is fully dropped; with fallback it completes.
	base := Config{
		Hosts:          3,
		RegistryPolicy: core.PolicyFilter,
		Constraint:     `<constraint><cpuLoad>load ls 0.000001</cpuLoad></constraint>`,
		Workload: mtc.Workload{
			Tasks: 10, MeanInterarrival: 2 * time.Second, Deterministic: true,
			TaskCPU: 2, TaskMemB: 1 << 20, Seed: 7, Drain: time.Minute,
		},
	}
	noFallback, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// The first collection happens at load 0 (eligible!), so tasks do run
	// until load rises; assert only that drops occur eventually... To be
	// deterministic, make the bound impossible via memory instead.
	base.Constraint = `<constraint><memory>memory gr 1024GB</memory></constraint>`
	noFallback, err = Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if noFallback.Dropped != 10 {
		t.Fatalf("no-fallback dropped = %d", noFallback.Dropped)
	}
	base.FallbackAll = true
	withFallback, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if withFallback.Completed != 10 {
		t.Fatalf("fallback completed = %d", withFallback.Completed)
	}
}

func TestFreshnessAblation(t *testing.T) {
	// With a freshness cutoff shorter than the collection period, rows go
	// stale between sweeps and strict filtering returns nothing; the
	// RankFirst policy still serves unknown hosts.
	cfg := Config{
		Hosts:            3,
		RegistryPolicy:   core.PolicyRankFirst,
		Freshness:        10 * time.Second,
		CollectionPeriod: 2 * time.Minute,
		Workload: mtc.Workload{
			Tasks: 10, MeanInterarrival: 5 * time.Second, Deterministic: true,
			TaskCPU: 2, TaskMemB: 1 << 20, Seed: 8, Drain: time.Minute,
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 10 {
		t.Fatalf("rank-first with stale rows completed = %d", rep.Completed)
	}
}
