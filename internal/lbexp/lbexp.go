// Package lbexp is the experiment harness behind cmd/lbsim and
// bench_test.go: it assembles the full thesis deployment (registry +
// simulated hosts + published NodeStatus + constrained worker service +
// collector), runs MTC workloads under configurable registry/client
// policies, and renders the tables recorded in EXPERIMENTS.md (experiments
// H1–H4 and the ablations in DESIGN.md).
package lbexp

import (
	"fmt"
	"time"

	"repro/internal/admit"
	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/metrics"
	"repro/internal/mtc"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// Epoch is the canonical simulation start: 11:00 on the thesis's approval
// date, safely inside typical business-hours constraints.
var Epoch = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// HostNames are the SDSU machines named throughout the thesis.
var HostNames = []string{
	"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu",
	"volta.sdsu.edu", "eon.sdsu.edu", "aztec.sdsu.edu",
	"mission.sdsu.edu", "balboa.sdsu.edu",
}

// Config describes one experiment run.
type Config struct {
	// Hosts is the deployment size (capped at len(HostNames)).
	Hosts int
	// Heterogeneous gives hosts differing cores, memory, and ambient
	// background load, which is where state-aware balancing pays off.
	Heterogeneous bool
	// RegistryPolicy is the server-side arrangement policy.
	RegistryPolicy core.Policy
	// TimeMode, Freshness, FallbackAll forward to core.Balancer.
	TimeMode    core.TimeWindowMode
	Freshness   time.Duration
	FallbackAll bool
	// ClientPolicy is the client-side URI pick.
	ClientPolicy mtc.ClientPolicy
	// CollectionPeriod for the NodeStatus collector (default 25 s).
	CollectionPeriod time.Duration
	// Constraint is the worker service's constraint block; empty means
	// the thesis default `load ls <cores+1>`-ish cap below.
	Constraint string
	// NetDelays, when non-empty, assigns per-host network delays (H4).
	NetDelays []float64
	// Workload drives the MTC run.
	Workload mtc.Workload
	// Start overrides the simulation start time (zero = Epoch).
	Start time.Time
	// FaultPlan, when set, wraps the collector's invoker in a
	// deterministic fault injector (H7). Only non-blocking faults (drop,
	// corrupt, flap) are safe here: the MTC driver runs sweeps
	// synchronously off the manual clock, so nothing advances time inside
	// a sweep.
	FaultPlan *faults.Plan
	// Breaker, when set, attaches per-host circuit breakers to the
	// collector.
	Breaker *breaker.Config
	// InvokeTimeout, InvokeRetries, RetryBackoff forward to the collector
	// (see nodestate.WithTimeout / WithRetries).
	InvokeTimeout time.Duration
	InvokeRetries int
	RetryBackoff  time.Duration
	// Degraded forwards to core.Balancer: what discovery serves when every
	// candidate is quarantined or stale.
	Degraded core.DegradedMode
	// Admission, when set, enables the overload-resilient serving edge on
	// the assembled registry (admission control, shedding, deadlines, and
	// the brownout ladder — see internal/admit). The flash-crowd
	// experiment (H8) drives it.
	Admission *admit.Config
}

// DefaultConstraint is the worker constraint used when none is given.
const DefaultConstraint = `<constraint><cpuLoad>load ls 3.0</cpuLoad><memory>memory gr 64MB</memory></constraint>`

// Setup is an assembled experiment environment.
type Setup struct {
	Registry  *registry.Registry
	Cluster   *hostsim.Cluster
	Clock     *simclock.Manual
	Conn      *jaxr.Connection
	Collector *nodestate.Collector
	Driver    *mtc.Driver
	Worker    *rim.Service
	// Injector is the fault injector wrapping the collector's invoker
	// (nil unless Config.FaultPlan was set).
	Injector *faults.Injector
	// Breakers is the collector's breaker set (nil unless Config.Breaker
	// was set).
	Breakers *breaker.Set
}

// NewSetup builds the Fig. 3.7 deployment for cfg.
func NewSetup(cfg Config) (*Setup, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 4
	}
	if cfg.Hosts > len(HostNames) {
		cfg.Hosts = len(HostNames)
	}
	start := cfg.Start
	if start.IsZero() {
		start = Epoch
	}
	clk := simclock.NewManual(start)
	reg, err := registry.New(registry.Config{
		Clock:       clk,
		Policy:      cfg.RegistryPolicy,
		TimeMode:    cfg.TimeMode,
		Freshness:   cfg.Freshness,
		FallbackAll: cfg.FallbackAll,
		Degraded:    cfg.Degraded,
		Admission:   cfg.Admission,
	})
	if err != nil {
		return nil, err
	}

	cluster := hostsim.NewCluster()
	for i := 0; i < cfg.Hosts; i++ {
		hc := hostsim.Config{Name: HostNames[i], Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30}
		if cfg.Heterogeneous {
			// Capability spread: 1, 2, 4 cores; 2-8 GB; rising ambient
			// load on later hosts.
			hc.Cores = 1 << uint(i%3)
			hc.TotalMemB = int64(2+2*(i%4)) << 30
			hc.AmbientLoad = 0.4 * float64(i%3)
		}
		if i < len(cfg.NetDelays) {
			hc.NetDelayMs = cfg.NetDelays[i]
		}
		cluster.Add(hostsim.NewHost(hc, start))
	}

	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("experimenter", "pw", rim.PersonName{FirstName: "E"})
	if err != nil {
		return nil, err
	}
	if err := conn.Login(creds); err != nil {
		return nil, err
	}

	constraintBlock := cfg.Constraint
	if constraintBlock == "" {
		constraintBlock = DefaultConstraint
	}
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	worker := rim.NewService("Worker", "MTC worker "+constraintBlock)
	for i := 0; i < cfg.Hosts; i++ {
		ns.AddBinding("http://" + HostNames[i] + ":8080/NodeStatus/NodeStatusService")
		worker.AddBinding("http://" + HostNames[i] + ":8080/Worker/workerService")
	}
	org := rim.NewOrganization("San Diego State University (SDSU)")
	assoc1 := rim.NewAssociation(rim.AssocOffersService, org.ID, ns.ID)
	assoc2 := rim.NewAssociation(rim.AssocOffersService, org.ID, worker.ID)
	if _, err := conn.Submit(org, ns, worker, assoc1, assoc2); err != nil {
		return nil, err
	}

	period := cfg.CollectionPeriod
	var opts []nodestate.Option
	if period > 0 {
		opts = append(opts, nodestate.WithPeriod(period))
	}
	if cfg.InvokeTimeout > 0 {
		opts = append(opts, nodestate.WithTimeout(cfg.InvokeTimeout))
	}
	if cfg.InvokeRetries > 0 {
		opts = append(opts, nodestate.WithRetries(cfg.InvokeRetries, cfg.RetryBackoff))
	}
	var breakers *breaker.Set
	if cfg.Breaker != nil {
		breakers = breaker.NewSet(*cfg.Breaker)
		opts = append(opts, nodestate.WithBreakers(breakers))
	}
	invoker := nodestatus.Invoker(nodestatus.LocalInvoker{Cluster: cluster, Clock: clk})
	var injector *faults.Injector
	if cfg.FaultPlan != nil {
		injector = faults.New(invoker, clk, *cfg.FaultPlan)
		invoker = injector
	}
	collector := nodestate.New(reg.Store.NodeState(), invoker, clk,
		reg.QM.CollectionTargets, opts...)
	collector.CollectOnce()

	return &Setup{
		Injector:  injector,
		Breakers:  breakers,
		Registry:  reg,
		Cluster:   cluster,
		Clock:     clk,
		Conn:      conn,
		Collector: collector,
		Worker:    worker,
		Driver: &mtc.Driver{
			Conn: conn, Cluster: cluster, Clock: clk,
			ServiceName: "Worker", Client: cfg.ClientPolicy,
			Collector: collector, MaxRetries: 2,
		},
	}, nil
}

// Run assembles and executes one experiment.
func Run(cfg Config) (*mtc.Report, error) {
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	return s.Driver.Run(cfg.Workload)
}

// Combo names one (registry policy, client policy) pairing for H1.
type Combo struct {
	Name     string
	Registry core.Policy
	Client   mtc.ClientPolicy
	// Fallback serves load-ordered URIs when no host satisfies the
	// constraints (instead of dropping the request).
	Fallback bool
}

// H1Combos are the policy pairings of experiment H1: the stock baseline
// with first-URI clients (the overload case the thesis motivates),
// client-side random and round-robin baselines, and the thesis's scheme in
// its filter and least-loaded variants — each with and without the
// empty-result fallback, since strict filtering can drop requests when the
// whole cluster violates the constraint (DESIGN.md ablation 3).
var H1Combos = []Combo{
	{Name: "stock/first-uri", Registry: core.PolicyStock, Client: mtc.ClientFirst},
	{Name: "stock/random", Registry: core.PolicyStock, Client: mtc.ClientRandom},
	{Name: "stock/round-robin", Registry: core.PolicyStock, Client: mtc.ClientRoundRobin},
	{Name: "lb-filter/first-uri", Registry: core.PolicyFilter, Client: mtc.ClientFirst},
	{Name: "lb-filter+fb/first-uri", Registry: core.PolicyFilter, Client: mtc.ClientFirst, Fallback: true},
	{Name: "lb-rank/first-uri", Registry: core.PolicyRankFirst, Client: mtc.ClientFirst},
	{Name: "lb-least-loaded/first-uri", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst},
	{Name: "lb-least-loaded+fb/first-uri", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst, Fallback: true},
}

// ComparePolicies runs the same workload under each combo and tabulates
// imbalance and latency (tables H1-load / H1-mem of EXPERIMENTS.md).
func ComparePolicies(base Config, combos []Combo) (*metrics.Table, []*mtc.Report, error) {
	tbl := metrics.NewTable("policy", "completed", "dropped",
		"loadFairness", "loadStddev", "loadSpread", "memFairness",
		"latMean(s)", "latP95(s)", "makespan(s)")
	var reports []*mtc.Report
	for _, combo := range combos {
		cfg := base
		cfg.RegistryPolicy = combo.Registry
		cfg.ClientPolicy = combo.Client
		cfg.FallbackAll = combo.Fallback
		rep, err := Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("lbexp: combo %s: %w", combo.Name, err)
		}
		reports = append(reports, rep)

		load := rep.FinalLoadSummary()
		lat := rep.LatencySummary()
		memFair := meanMemFairness(rep)
		tbl.AddRow(combo.Name, rep.Completed, rep.Dropped,
			round4(rep.MeanFairness()), round4(load.Stddev), round4(load.Spread()), round4(memFair),
			round4(lat.Mean), round4(metrics.Percentile(rep.Latencies, 95)),
			round4(rep.Makespan.Seconds()))
	}
	return tbl, reports, nil
}

func meanMemFairness(rep *mtc.Report) float64 {
	// Jain fairness of used-memory fractions at each sample, averaged.
	var hosts []string
	for h := range rep.MemSeries {
		hosts = append(hosts, h)
	}
	if len(hosts) == 0 {
		return 1
	}
	n := len(rep.MemSeries[hosts[0]].Values)
	var acc float64
	var samples int
	for i := 0; i < n; i++ {
		var vals []float64
		for _, h := range hosts {
			s := rep.MemSeries[h]
			if i < len(s.Values) {
				vals = append(vals, s.Values[i])
			}
		}
		acc += metrics.JainFairness(vals)
		samples++
	}
	if samples == 0 {
		return 1
	}
	return acc / float64(samples)
}

func round4(v float64) float64 {
	return float64(int64(v*10000+0.5)) / 10000
}

// PeriodSweep runs experiment H2: the same load-balanced workload under
// different collection periods, tabulating imbalance and collector cost.
func PeriodSweep(base Config, periods []time.Duration) (*metrics.Table, error) {
	tbl := metrics.NewTable("period", "sweeps", "loadFairness", "loadStddev", "latMean(s)", "dropped")
	for _, p := range periods {
		cfg := base
		cfg.CollectionPeriod = p
		s, err := NewSetup(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := s.Driver.Run(cfg.Workload)
		if err != nil {
			return nil, err
		}
		sweeps, _ := s.Collector.Stats()
		tbl.AddRow(p.String(), sweeps, round4(rep.MeanFairness()),
			round4(rep.FinalLoadSummary().Stddev),
			round4(rep.LatencySummary().Mean), rep.Dropped)
	}
	return tbl, nil
}

// TimeOfDayResult is one row of experiment H3.
type TimeOfDayResult struct {
	RequestHour int
	Mode        core.TimeWindowMode
	URIs        int
	Filtered    bool
	WindowOK    bool
}

// TimeOfDay runs experiment H3: a service windowed 1000–1200 queried at
// different hours under both window modes.
func TimeOfDay(hosts int) ([]TimeOfDayResult, *metrics.Table, error) {
	tbl := metrics.NewTable("hour", "mode", "urisReturned", "windowOk")
	var results []TimeOfDayResult
	for _, mode := range []core.TimeWindowMode{core.TimeWindowSkipFiltering, core.TimeWindowExclude} {
		for _, hour := range []int{9, 10, 11, 12, 13, 23} {
			cfg := Config{
				Hosts:          hosts,
				RegistryPolicy: core.PolicyFilter,
				TimeMode:       mode,
				Constraint: `<constraint><cpuLoad>load ls 5.0</cpuLoad>` +
					`<starttime>1000</starttime><endtime>1200</endtime></constraint>`,
				Start: time.Date(2011, 4, 22, hour, 30, 0, 0, time.UTC),
			}
			s, err := NewSetup(cfg)
			if err != nil {
				return nil, nil, err
			}
			uris, dec, err := s.Conn.ServiceBindings("Worker")
			if err != nil {
				return nil, nil, err
			}
			modeName := "skip-filtering"
			if mode == core.TimeWindowExclude {
				modeName = "exclude"
			}
			results = append(results, TimeOfDayResult{
				RequestHour: hour, Mode: mode, URIs: len(uris),
				Filtered: dec.Filtered, WindowOK: dec.WindowOK,
			})
			tbl.AddRow(fmt.Sprintf("%02d:30", hour), modeName, len(uris), dec.WindowOK)
		}
	}
	return results, tbl, nil
}

// FailureResult is one row of experiment H5.
type FailureResult struct {
	Name              string
	Completed         int
	Dropped           int
	Unfinished        int
	Retries           int
	TasksOnFailedHost int
}

// Failure runs experiment H5: the host behind the service's *first* stored
// binding — the one every stock first-URI client lands on — dies partway
// through the workload. A stock registry keeps returning the dead host's
// URI first, so dispatches burn client retries; the load-balanced registry
// stops serving the host after its next failed NodeStatus sweep (the
// collector's failure tracking). The retry totals and the dead host's task
// count expose the difference; Unfinished counts tasks still in flight at
// the drain deadline.
func Failure(base Config, failAfter time.Duration) (*metrics.Table, []FailureResult, error) {
	tbl := metrics.NewTable("registry", "completed", "dropped", "unfinished", "retries", "tasksOnFailedHost")
	var results []FailureResult
	for _, combo := range []Combo{
		{Name: "stock", Registry: core.PolicyStock, Client: mtc.ClientFirst},
		{Name: "lb-least-loaded+fb", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst, Fallback: true},
	} {
		cfg := base
		cfg.RegistryPolicy = combo.Registry
		cfg.ClientPolicy = combo.Client
		cfg.FallbackAll = combo.Fallback
		s, err := NewSetup(cfg)
		if err != nil {
			return nil, nil, err
		}
		// Kill the first-binding host (the stock client's target) once
		// the clock passes failAfter.
		failed := s.Cluster.Host(rim.HostOfURI(s.Worker.AccessURIs()[0]))
		deadline := s.Clock.Now().Add(failAfter)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for s.Clock.Now().Before(deadline) {
				s.Clock.Sleep(time.Second)
			}
			failed.SetDown(true)
		}()
		rep, err := s.Driver.Run(cfg.Workload)
		if err != nil {
			return nil, nil, err
		}
		// Release the killer goroutine even if the run ended before the
		// failure deadline.
		s.Clock.Set(deadline.Add(time.Hour))
		<-done
		res := FailureResult{
			Name:              combo.Name,
			Completed:         rep.Completed,
			Dropped:           rep.Dropped,
			Unfinished:        rep.Tasks - rep.Completed - rep.Dropped,
			Retries:           rep.Retries,
			TasksOnFailedHost: rep.PerHostTasks[failed.Name()],
		}
		results = append(results, res)
		tbl.AddRow(res.Name, res.Completed, res.Dropped, res.Unfinished, res.Retries, res.TasksOnFailedHost)
	}
	return tbl, results, nil
}

// FlakyHosts is how many of the eight hosts the H7 fault injector
// targets (the first FlakyHosts entries of HostNames).
const FlakyHosts = 2

// flakyConfig builds the H7 deployment: the full eight-host homogeneous
// cluster under least-loaded arrangement with fallback and static
// degradation, per-host circuit breakers on the collector, and a fault
// plan dropping the given fraction of NodeStatus invocations on the first
// two hosts. A flap window (100 s down out of every 250 s) is layered on
// top so the faulty hosts reliably accumulate the consecutive sweep
// failures that trip a breaker even at modest drop rates. Only
// non-blocking faults appear here — the MTC driver runs sweeps
// synchronously off the manual clock — and the retry backoff stays zero
// for the same reason.
func flakyConfig(base Config, dropRate float64) Config {
	cfg := base
	cfg.Hosts = len(HostNames)
	cfg.Heterogeneous = false
	cfg.RegistryPolicy = core.PolicyLeastLoaded
	cfg.ClientPolicy = mtc.ClientFirst
	cfg.FallbackAll = true
	cfg.Degraded = core.DegradedStatic
	cfg.InvokeTimeout = 5 * time.Second
	cfg.InvokeRetries = 1
	cfg.RetryBackoff = 0
	// Freshness evicts rows the injector has silenced (staleness), while
	// the breaker quarantines hosts that fail sweeps outright — the two
	// mechanisms H7 is designed to exercise together. The 100 s backoff
	// keeps a tripped host benched for most of a flap's down window.
	cfg.Freshness = 60 * time.Second
	cfg.Breaker = &breaker.Config{
		Seed:        cfg.Workload.Seed,
		BaseBackoff: 100 * time.Second,
		MaxBackoff:  200 * time.Second,
	}
	if dropRate > 0 {
		cfg.FaultPlan = &faults.Plan{
			Hosts:      HostNames[:FlakyHosts],
			DropRate:   dropRate,
			FlapPeriod: 250 * time.Second,
			FlapDuty:   0.4,
			Seed:       cfg.Workload.Seed,
		}
	}
	return cfg
}

// FlakyResult is one row of experiment H7.
type FlakyResult struct {
	DropRate  float64
	Completed int
	Dropped   int
	Fairness  float64
	Stats     nodestate.Stats
	// Trips totals breaker open transitions across all hosts.
	Trips int
	// FaultyTasks and HealthyTasks are the mean per-host task counts on
	// the fault-injected and clean hosts respectively.
	FaultyTasks  float64
	HealthyTasks float64
	// Shares is each host's completed-task count in HostNames order, and
	// TaskFairness is Jain's index over those counts — the assignment-side
	// view of balance, as opposed to Fairness's load-sample view.
	Shares       []float64
	TaskFairness float64
}

// Flaky runs experiment H7: the same workload under increasing NodeStatus
// drop rates on two of eight hosts, tabulating throughput, collector
// fault counters, breaker trips, and how task placement shifts away from
// the flaky hosts while the healthy majority keeps a balanced share.
func Flaky(base Config, dropRates []float64) (*metrics.Table, []FlakyResult, error) {
	tbl := metrics.NewTable("dropRate", "completed", "dropped", "loadFairness",
		"taskFairness", "sweepErrs", "timeouts", "retries", "skips", "trips",
		"faultyTasks", "healthyTasks")
	var results []FlakyResult
	for _, rate := range dropRates {
		res, _, err := flakyRun(base, rate)
		if err != nil {
			return nil, nil, fmt.Errorf("lbexp: flaky rate %g: %w", rate, err)
		}
		results = append(results, res)
		tbl.AddRow(rate, res.Completed, res.Dropped, round4(res.Fairness),
			round4(res.TaskFairness),
			res.Stats.Errs, res.Stats.Timeouts, res.Stats.Retries,
			res.Stats.Skipped, res.Trips,
			round4(res.FaultyTasks), round4(res.HealthyTasks))
	}
	return tbl, results, nil
}

// FlakySharesTable tabulates each H7 run's per-host completed-task
// shares in HostNames order — the raw assignment distribution behind the
// taskFairness column, showing load draining off the quarantined hosts
// and staying even across the healthy majority.
func FlakySharesTable(results []FlakyResult) *metrics.Table {
	tbl := metrics.NewTable(append([]string{"dropRate"}, HostNames...)...)
	for _, res := range results {
		cells := []interface{}{res.DropRate}
		for _, n := range res.Shares {
			cells = append(cells, n)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// flakyRun executes one H7 configuration. The returned fingerprint is a
// complete deterministic rendering of the run's observable state —
// placement, collector counters, fault log counts, breaker snapshot —
// used by FlakyReplayIdentical to prove seeded replays are byte-identical.
func flakyRun(base Config, dropRate float64) (FlakyResult, string, error) {
	cfg := flakyConfig(base, dropRate)
	s, err := NewSetup(cfg)
	if err != nil {
		return FlakyResult{}, "", err
	}
	rep, err := s.Driver.Run(cfg.Workload)
	if err != nil {
		return FlakyResult{}, "", err
	}
	res := FlakyResult{
		DropRate:  dropRate,
		Completed: rep.Completed,
		Dropped:   rep.Dropped,
		Fairness:  rep.MeanFairness(),
		Stats:     s.Collector.FaultStats(),
	}
	shares := rep.TaskShare(HostNames)
	res.Shares = shares
	res.TaskFairness = metrics.JainFairness(shares)
	for i, n := range shares {
		if i < FlakyHosts {
			res.FaultyTasks += n / FlakyHosts
		} else {
			res.HealthyTasks += n / float64(len(HostNames)-FlakyHosts)
		}
	}
	var snap []breaker.HostStatus
	if s.Breakers != nil {
		snap = s.Breakers.Snapshot()
		for _, hs := range snap {
			res.Trips += hs.Trips
		}
	}
	var counts map[faults.Kind]int
	if s.Injector != nil {
		counts = s.Injector.Counts()
	}
	fingerprint := fmt.Sprintf("tasks=%v lat=%v stats=%+v faults=%v breakers=%+v",
		rep.PerHostTasks, rep.Latencies, res.Stats, counts, snap)
	return res, fingerprint, nil
}

// FlakyReplayIdentical runs one H7 configuration twice with the same seed
// and reports whether the two runs' full fingerprints match byte for
// byte — the determinism guarantee the fault injector and breakers are
// built around.
func FlakyReplayIdentical(base Config, dropRate float64) (bool, error) {
	_, a, err := flakyRun(base, dropRate)
	if err != nil {
		return false, err
	}
	_, b, err := flakyRun(base, dropRate)
	if err != nil {
		return false, err
	}
	return a == b, nil
}

// NetDelay runs experiment H4 (the §5.2 future-work extension): hosts with
// different network delays, a netdelay constraint, and the count of URIs
// surviving the filter.
func NetDelay(hosts int, limitMs float64) (*metrics.Table, error) {
	delays := make([]float64, hosts)
	for i := range delays {
		delays[i] = float64(5 + 15*i) // 5, 20, 35, 50, ... ms
	}
	cfg := Config{
		Hosts:          hosts,
		RegistryPolicy: core.PolicyFilter,
		NetDelays:      delays,
		Constraint:     fmt.Sprintf(`<constraint><netdelay>netdelay ls %g</netdelay></constraint>`, limitMs),
	}
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	uris, dec, err := s.Conn.ServiceBindings("Worker")
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("host", "netdelay(ms)", "eligible")
	for i := 0; i < hosts; i++ {
		eligible := delays[i] < limitMs
		tbl.AddRow(HostNames[i], delays[i], fmt.Sprintf("%v", eligible))
	}
	tbl.AddRow("returned URIs", float64(len(uris)), fmt.Sprintf("filtered=%v", dec.Filtered))
	return tbl, nil
}
