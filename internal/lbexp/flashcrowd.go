// flashcrowd.go is experiment H8: the overload-resilience layer under a
// flash crowd. A population of closed-loop discovery clients runs against
// the assembled registry with admission control enabled; partway through,
// a crowd roughly ten times the baseline population piles on and later
// leaves. The experiment demonstrates the serving edge's contract under
// that surge: admitted goodput stays pinned at capacity instead of
// collapsing, per-request latency stays inside the class deadline because
// excess load is shed early with 503 + Retry-After instead of queuing,
// the brownout ladder climbs while pressure persists and steps back down
// to nominal once the crowd leaves — and, because every admission
// decision is a deterministic function of arrival order and virtual
// time, a same-seed replay is byte-identical.
//
// The simulation is a single-threaded event loop over the manual clock:
// a binary heap of (time, sequence)-ordered events drives the
// controller's non-blocking core (TryAdmit / Release / CancelQueued)
// directly, and every admitted request performs a real discovery call
// through the JAXR connection so the full registry read path — balancer,
// brownout overrides, snapshot staleness — sits under the load.
package lbexp

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/metrics"
	"repro/internal/rim"
)

// Phases of an H8 run, indexing the per-phase assignment counts.
const (
	PhaseWarmup = iota
	PhaseSurge
	PhaseCooldown
	phaseCount
)

// PhaseNames labels the H8 phases in index order.
var PhaseNames = [phaseCount]string{"warmup", "surge", "cooldown"}

// FlashCrowdConfig sizes experiment H8.
type FlashCrowdConfig struct {
	// Hosts is the simulated deployment size.
	Hosts int
	// BaselineClients run closed-loop for the whole experiment;
	// SurgeClients additionally run during the surge window only. The
	// defaults put the surge population at 10x baseline.
	BaselineClients int
	SurgeClients    int
	// Warmup precedes the surge, Surge is the crowd's stay, Cooldown is
	// the recovery tail (long enough for the brownout ladder to walk all
	// the way back to nominal). Goodput and latency are measured over
	// the surge window in both the baseline and the surge run.
	Warmup   time.Duration
	Surge    time.Duration
	Cooldown time.Duration
	// Think is a client's mean pause between a completed request and its
	// next one; Service is the mean in-registry service time. Both get
	// deterministic seeded jitter in [0.5, 1.5) of the mean.
	Think   time.Duration
	Service time.Duration
	// Seed drives every stochastic draw (stagger, think, service,
	// backoff); a fixed seed makes the whole run replayable.
	Seed int64
	// Admission tunes the controller under test.
	Admission admit.Config
}

// DefaultFlashCrowd is the H8 configuration recorded in EXPERIMENTS.md:
// discovery capacity MaxInFlight/Service = 400 req/s, a baseline offering
// ~75% of that, and a surge population 10x the baseline. QueueTimeout +
// worst-case service fits inside the class deadline, so admitted p99 is
// structurally bounded by construction — the experiment verifies it.
func DefaultFlashCrowd(seed int64) FlashCrowdConfig {
	return FlashCrowdConfig{
		Hosts:           4,
		BaselineClients: 24,
		SurgeClients:    216,
		Warmup:          5 * time.Second,
		Surge:           20 * time.Second,
		Cooldown:        30 * time.Second,
		Think:           60 * time.Millisecond,
		Service:         20 * time.Millisecond,
		Seed:            seed,
		Admission: admit.Config{
			Discovery: admit.ClassLimits{
				MaxInFlight:  8,
				MaxQueue:     16,
				QueueTimeout: 100 * time.Millisecond,
				Deadline:     250 * time.Millisecond,
			},
			Tick:             100 * time.Millisecond,
			RetryAfter:       100 * time.Millisecond,
			BrownoutEscalate: 2 * time.Second,
			BrownoutCalm:     4 * time.Second,
		},
	}
}

// FlashCrowdResult is one run's measurement. Offered through LatMax are
// taken over the surge window; Stats and the tier fields cover the whole
// run.
type FlashCrowdResult struct {
	Name string
	// Offered counts admission attempts in the window; Completed counts
	// requests served; Shed counts early rejections (including queue
	// timeouts, broken out in QueueTimeouts).
	Offered       int
	Completed     int
	Shed          int
	QueueTimeouts int
	// GoodputPerSec is Completed over the surge window.
	GoodputPerSec float64
	// LatP50/LatP99/LatMax are admitted-request latencies in seconds,
	// measured from the admission attempt (queue wait included).
	LatP50 float64
	LatP99 float64
	LatMax float64
	// Deadline is the discovery class's budget the latencies are judged
	// against.
	Deadline time.Duration
	// MaxTier is the highest brownout rung reached; FinalTier the rung
	// at the end of the cooldown; TierChanges the total transitions.
	MaxTier     admit.Tier
	FinalTier   admit.Tier
	TierChanges int64
	// Stats is the discovery class's final counter snapshot.
	Stats admit.ClassStats
	// PhaseAssignments counts which host each admitted discovery chose,
	// split by run phase; PhaseFairness is Jain's index over each phase's
	// per-host counts — how well the balancer held the paper's uniformity
	// claim while the surge (and the brownout ladder) distorted the view.
	PhaseAssignments [phaseCount]map[string]int
	PhaseFairness    [phaseCount]float64
}

// Event kinds of the flash-crowd loop.
const (
	fcArrive uint8 = iota
	fcComplete
	fcTimeout
	fcSweep
)

// fcCollectionPeriod is H8's NodeStatus sweep cadence. The run's phases
// are seconds long, so the thesis-default 25 s period would leave the
// balancer deciding on a single stale snapshot for a whole phase; one
// sweep per second keeps the load view fresh enough that placement
// responds to the surge within a phase.
const fcCollectionPeriod = time.Second

// fcEvent is one scheduled simulation step.
type fcEvent struct {
	at  time.Time
	seq uint64
	// heapIndex is maintained by container/heap.
	heapIndex int
	kind      uint8
	cl        *fcClient
	// arrived (fcComplete) is when the finishing request first asked for
	// admission; latency is measured from here.
	arrived time.Time
	// ticket (fcTimeout) is the queued admission awaiting a slot.
	ticket *admit.Ticket
}

// fcClient is one closed-loop discovery client.
type fcClient struct {
	id    int
	surge bool
}

// fcHeap orders events by time, ties broken by scheduling sequence so
// the run is deterministic.
type fcHeap []*fcEvent

func (h fcHeap) Len() int { return len(h) }
func (h fcHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h fcHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *fcHeap) Push(x interface{}) {
	e := x.(*fcEvent)
	e.heapIndex = len(*h)
	*h = append(*h, e)
}
func (h *fcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// fcSim is one flash-crowd run in progress.
type fcSim struct {
	cfg   FlashCrowdConfig
	setup *Setup
	ctrl  *admit.Controller
	rng   *rand.Rand

	events fcHeap
	seq    uint64
	// tickets maps a queued admission back to its waiting client so a
	// promotion inside Release can start that client's service.
	tickets map[*admit.Ticket]*fcClient

	surgeStart time.Time
	surgeEnd   time.Time
	runEnd     time.Time

	// Surge-window measurements.
	wOffered   int
	wCompleted int
	wShed      int
	wTimeouts  int
	latencies  []float64

	// trace fingerprints the processed event stream for the replay
	// check: kind, client, virtual time, and decision of every event.
	trace    hash.Hash64
	maxTier  admit.Tier
	tierHist []admit.Tier

	// hostCounts tallies each admitted discovery's chosen host, split by
	// run phase (warmup / surge / cooldown).
	hostCounts [phaseCount]map[string]int
}

// flashRun executes one flash-crowd configuration with the given surge
// population (0 = the baseline run).
func flashRun(cfg FlashCrowdConfig, surgeClients int) (*fcSim, error) {
	adm := cfg.Admission
	setup, err := NewSetup(Config{
		Hosts:            cfg.Hosts,
		RegistryPolicy:   core.PolicyLeastLoaded,
		FallbackAll:      true,
		CollectionPeriod: fcCollectionPeriod,
		Admission:        &adm,
	})
	if err != nil {
		return nil, err
	}
	if setup.Registry.Admission == nil {
		return nil, fmt.Errorf("lbexp: flash-crowd setup built no admission controller")
	}
	start := setup.Clock.Now()
	f := &fcSim{
		cfg:        cfg,
		setup:      setup,
		ctrl:       setup.Registry.Admission,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		tickets:    make(map[*admit.Ticket]*fcClient),
		surgeStart: start.Add(cfg.Warmup),
		runEnd:     start.Add(cfg.Warmup + cfg.Surge + cfg.Cooldown),
		trace:      fnv.New64a(),
	}
	f.surgeEnd = f.surgeStart.Add(cfg.Surge)
	for i := range f.hostCounts {
		f.hostCounts[i] = make(map[string]int)
	}
	f.ctrl.OnTierChange(func(t admit.Tier) {
		f.tierHist = append(f.tierHist, t)
		if t > f.maxTier {
			f.maxTier = t
		}
	})

	// Stagger the baseline population over the first second and the
	// crowd over the surge's first two seconds; the draws happen in
	// client order, so the schedule is a pure function of the seed.
	for i := 0; i < cfg.BaselineClients; i++ {
		cl := &fcClient{id: i}
		f.push(start.Add(time.Duration(f.rng.Float64()*float64(time.Second))), fcArrive, cl, time.Time{}, nil)
	}
	ramp := 2 * time.Second
	if ramp > cfg.Surge/2 {
		ramp = cfg.Surge / 2
	}
	for i := 0; i < surgeClients; i++ {
		cl := &fcClient{id: cfg.BaselineClients + i, surge: true}
		f.push(f.surgeStart.Add(time.Duration(f.rng.Float64()*float64(ramp))), fcArrive, cl, time.Time{}, nil)
	}
	// NodeStatus sweeps ride the same event heap, so the balancer's view
	// refreshes on the virtual clock exactly as the collector would.
	f.push(start.Add(fcCollectionPeriod), fcSweep, nil, time.Time{}, nil)
	if err := f.run(); err != nil {
		return nil, err
	}
	return f, nil
}

// push schedules one event.
func (f *fcSim) push(at time.Time, kind uint8, cl *fcClient, arrived time.Time, t *admit.Ticket) {
	f.seq++
	heap.Push(&f.events, &fcEvent{at: at, seq: f.seq, kind: kind, cl: cl, arrived: arrived, ticket: t})
}

// run drains the event heap, advancing the manual clock to each event.
// Arrivals stop scheduling at runEnd, so the heap empties shortly after.
func (f *fcSim) run() error {
	for f.events.Len() > 0 {
		e := heap.Pop(&f.events).(*fcEvent)
		f.setup.Clock.Set(e.at)
		var err error
		switch e.kind {
		case fcArrive:
			err = f.arrive(e.cl, e.at)
		case fcComplete:
			err = f.complete(e.cl, e.arrived, e.at)
		case fcTimeout:
			err = f.timeout(e.cl, e.ticket, e.at)
		case fcSweep:
			f.sweep(e.at)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// inWindow reports whether t falls in the measured surge window.
func (f *fcSim) inWindow(t time.Time) bool {
	return !t.Before(f.surgeStart) && t.Before(f.surgeEnd)
}

// sweep advances the simulated hosts (progressing the service work
// startService submitted, so load averages track the traffic) and runs
// one synchronous NodeStatus collection, then books the next sweep.
func (f *fcSim) sweep(now time.Time) {
	f.setup.Cluster.AdvanceTo(now)
	f.setup.Collector.CollectOnce()
	if next := now.Add(fcCollectionPeriod); !next.After(f.runEnd) {
		f.push(next, fcSweep, nil, time.Time{}, nil)
	}
}

// phase maps a virtual time to its run phase.
func (f *fcSim) phase(t time.Time) int {
	switch {
	case t.Before(f.surgeStart):
		return PhaseWarmup
	case t.Before(f.surgeEnd):
		return PhaseSurge
	default:
		return PhaseCooldown
	}
}

// note folds one processed event into the replay fingerprint.
func (f *fcSim) note(kind uint8, cl *fcClient, now time.Time, tag byte, extra uint64) {
	var buf [22]byte
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(cl.id))
	binary.LittleEndian.PutUint64(buf[5:13], uint64(now.UnixNano()))
	buf[13] = tag
	binary.LittleEndian.PutUint64(buf[14:22], extra)
	f.trace.Write(buf[:])
}

// jitter draws a duration in [0.5, 1.5) of the mean.
func (f *fcSim) jitter(mean time.Duration) time.Duration {
	return mean/2 + time.Duration(f.rng.Float64()*float64(mean))
}

// backoff is a shed client's pause before retrying: the server's
// advisory Retry-After plus one think's worth of jitter. A flash crowd
// is impatient — it retries on the order of its think time rather than
// politely waiting out the incident, which is exactly the load shape the
// shedder and brownout ladder exist for.
func (f *fcSim) backoff() time.Duration {
	return f.ctrl.RetryAfter() + f.jitter(f.cfg.Think)
}

// scheduleNext books a client's next arrival; surge clients leave with
// the crowd, and nobody arrives past the end of the run.
func (f *fcSim) scheduleNext(cl *fcClient, at time.Time) {
	if cl.surge && at.After(f.surgeEnd) {
		return
	}
	if at.After(f.runEnd) {
		return
	}
	f.push(at, fcArrive, cl, time.Time{}, nil)
}

// arrive runs one admission attempt.
func (f *fcSim) arrive(cl *fcClient, now time.Time) error {
	if f.inWindow(now) {
		f.wOffered++
	}
	outcome, ticket := f.ctrl.TryAdmit(admit.ClassDiscovery, now)
	f.note(fcArrive, cl, now, byte(outcome), 0)
	switch outcome {
	case admit.Admitted:
		return f.startService(cl, now, now)
	case admit.Queued:
		f.tickets[ticket] = cl
		f.push(now.Add(f.ctrl.Limits(admit.ClassDiscovery).QueueTimeout), fcTimeout, cl, time.Time{}, ticket)
	case admit.Shed:
		if f.inWindow(now) {
			f.wShed++
		}
		f.scheduleNext(cl, now.Add(f.backoff()))
	}
	return nil
}

// startService performs the admitted request's actual discovery call and
// schedules its completion. arrived is the admission-attempt time (for a
// promoted ticket, its original TryAdmit time), so the eventual latency
// sample includes the queue wait.
func (f *fcSim) startService(cl *fcClient, arrived, now time.Time) error {
	uris, _, err := f.setup.Conn.ServiceBindings("Worker")
	if err != nil {
		return fmt.Errorf("lbexp: flash-crowd discovery: %w", err)
	}
	if len(uris) == 0 {
		return fmt.Errorf("lbexp: flash-crowd discovery returned no URIs")
	}
	host := rim.HostOfURI(uris[0])
	f.hostCounts[f.phase(now)][host]++
	svc := f.jitter(f.cfg.Service)
	// The request's service time is real work on the chosen host: submit
	// it to the simulated machine so its load average — what the next
	// sweep reports and the balancer ranks by — tracks the traffic.
	if h := f.setup.Cluster.Host(host); h != nil {
		f.seq++
		_ = h.Submit(hostsim.Task{
			ID:         fmt.Sprintf("fc-%d", f.seq),
			CPUSeconds: svc.Seconds(),
			MemB:       1 << 20,
		}, now)
	}
	f.push(now.Add(svc), fcComplete, cl, arrived, nil)
	return nil
}

// complete finishes an admitted request: records its latency, releases
// the slot (possibly promoting a queued client, whose service then
// starts immediately), and books the client's next think-time arrival.
func (f *fcSim) complete(cl *fcClient, arrived, now time.Time) error {
	lat := now.Sub(arrived)
	if f.inWindow(now) {
		f.wCompleted++
		f.latencies = append(f.latencies, lat.Seconds())
	}
	f.note(fcComplete, cl, now, 0, uint64(lat))
	promoted := f.ctrl.Release(admit.ClassDiscovery, arrived, now)
	if promoted != nil {
		pcl := f.tickets[promoted]
		delete(f.tickets, promoted)
		if pcl != nil {
			if err := f.startService(pcl, promoted.Arrived(), now); err != nil {
				return err
			}
		}
	}
	f.scheduleNext(cl, now.Add(f.jitter(f.cfg.Think)))
	return nil
}

// timeout fires when a queued admission has waited out its QueueTimeout.
// Losing the cancel race means the ticket was promoted first and the
// client is already being served; winning it sheds the request.
func (f *fcSim) timeout(cl *fcClient, t *admit.Ticket, now time.Time) error {
	if !f.ctrl.CancelQueued(t, now, true) {
		return nil
	}
	delete(f.tickets, t)
	if f.inWindow(now) {
		f.wTimeouts++
		f.wShed++
	}
	f.note(fcTimeout, cl, now, 1, 0)
	f.scheduleNext(cl, now.Add(f.backoff()))
	return nil
}

// result snapshots the finished run.
func (f *fcSim) result(name string) FlashCrowdResult {
	res := FlashCrowdResult{
		Name:          name,
		Offered:       f.wOffered,
		Completed:     f.wCompleted,
		Shed:          f.wShed,
		QueueTimeouts: f.wTimeouts,
		GoodputPerSec: float64(f.wCompleted) / f.cfg.Surge.Seconds(),
		Deadline:      f.ctrl.Limits(admit.ClassDiscovery).Deadline,
		MaxTier:       f.maxTier,
		FinalTier:     f.ctrl.Tier(),
		TierChanges:   f.ctrl.TierChanges(),
		Stats:         f.ctrl.ClassStats(admit.ClassDiscovery),
	}
	if len(f.latencies) > 0 {
		res.LatP50 = metrics.Percentile(f.latencies, 50)
		res.LatP99 = metrics.Percentile(f.latencies, 99)
		for _, l := range f.latencies {
			if l > res.LatMax {
				res.LatMax = l
			}
		}
	}
	hosts := HostNames[:f.cfg.Hosts]
	for p := range f.hostCounts {
		res.PhaseAssignments[p] = f.hostCounts[p]
		counts := make([]float64, len(hosts))
		for i, h := range hosts {
			counts[i] = float64(f.hostCounts[p][h])
		}
		res.PhaseFairness[p] = metrics.JainFairness(counts)
	}
	return res
}

// fingerprint renders the run's complete observable state — the rolling
// event-stream hash plus every counter and the tier history — for the
// byte-identical replay check.
func (f *fcSim) fingerprint() string {
	return fmt.Sprintf("events=%016x offered=%d completed=%d shed=%d timeouts=%d lat=%d stats=%+v tiers=%v final=%v changes=%d",
		f.trace.Sum64(), f.wOffered, f.wCompleted, f.wShed, f.wTimeouts,
		len(f.latencies), f.ctrl.ClassStats(admit.ClassDiscovery),
		f.tierHist, f.ctrl.Tier(), f.ctrl.TierChanges())
}

// FlashCrowd runs experiment H8: the same configuration once without and
// once with the crowd, measuring both over the surge window.
func FlashCrowd(cfg FlashCrowdConfig) (baseline, surge FlashCrowdResult, err error) {
	b, err := flashRun(cfg, 0)
	if err != nil {
		return FlashCrowdResult{}, FlashCrowdResult{}, err
	}
	s, err := flashRun(cfg, cfg.SurgeClients)
	if err != nil {
		return FlashCrowdResult{}, FlashCrowdResult{}, err
	}
	return b.result("baseline"), s.result("flash-crowd"), nil
}

// FlashCrowdTable tabulates the H8 rows for EXPERIMENTS.md and lbsim.
func FlashCrowdTable(rows ...FlashCrowdResult) *metrics.Table {
	tbl := metrics.NewTable("run", "offered", "completed", "goodput/s",
		"shed", "queueTO", "latP50(ms)", "latP99(ms)", "deadline(ms)",
		"maxTier", "finalTier", "tierChanges")
	for _, r := range rows {
		tbl.AddRow(r.Name, r.Offered, r.Completed, round4(r.GoodputPerSec),
			r.Shed, r.QueueTimeouts,
			round4(r.LatP50*1000), round4(r.LatP99*1000),
			round4(r.Deadline.Seconds()*1000),
			r.MaxTier.String(), r.FinalTier.String(), r.TierChanges)
	}
	return tbl
}

// FlashCrowdBalanceTable tabulates a run's per-phase assignment balance:
// Jain's fairness index over the per-host discovery assignments in each
// of the warmup / surge / cooldown windows, with the raw counts alongside
// in HostNames order. It is the H8 view of the paper's uniformity claim —
// balance should dip while the crowd (and the brownout ladder's coarser
// decisions) distort placement, then recover in the cooldown.
func FlashCrowdBalanceTable(hosts int, rows ...FlashCrowdResult) *metrics.Table {
	names := HostNames[:hosts]
	tbl := metrics.NewTable(append([]string{"run", "phase", "fairness"}, names...)...)
	for _, r := range rows {
		for p := range r.PhaseAssignments {
			cells := []interface{}{r.Name, PhaseNames[p], round4(r.PhaseFairness[p])}
			for _, h := range names {
				cells = append(cells, r.PhaseAssignments[p][h])
			}
			tbl.AddRow(cells...)
		}
	}
	return tbl
}

// FlashCrowdReplayIdentical runs the surge configuration twice with the
// same seed and reports whether the two runs' full fingerprints match
// byte for byte — the determinism guarantee the admission controller's
// RNG-free design exists to provide.
func FlashCrowdReplayIdentical(cfg FlashCrowdConfig) (bool, error) {
	a, err := flashRun(cfg, cfg.SurgeClients)
	if err != nil {
		return false, err
	}
	b, err := flashRun(cfg, cfg.SurgeClients)
	if err != nil {
		return false, err
	}
	return a.fingerprint() == b.fingerprint(), nil
}
