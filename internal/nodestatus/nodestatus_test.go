package nodestatus

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/simclock"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func TestHandlerServesHostSample(t *testing.T) {
	clk := simclock.NewManual(t0)
	h := hostsim.NewHost(hostsim.Config{
		Name: "thermo.sdsu.edu", Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30, NetDelayMs: 3,
	}, t0)
	srv := httptest.NewServer(NewHandler(h, clk))
	defer srv.Close()

	inv := HTTPInvoker{Client: srv.Client()}
	resp, err := inv.Invoke(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Host != "thermo.sdsu.edu" || resp.MemoryB != 4<<30 || resp.SwapB != 2<<30 || resp.NetDelayMs != 3 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Timestamp == "" {
		t.Fatal("missing timestamp")
	}
	if _, err := time.Parse(time.RFC3339Nano, resp.Timestamp); err != nil {
		t.Fatalf("bad timestamp %q: %v", resp.Timestamp, err)
	}
	s := resp.Sample()
	if s.MemoryB != resp.MemoryB || s.Load != resp.Load {
		t.Fatal("Sample conversion mismatch")
	}
}

func TestHandlerReflectsLoadChanges(t *testing.T) {
	clk := simclock.NewManual(t0)
	h := hostsim.NewHost(hostsim.Config{Name: "x", Cores: 1, TotalMemB: 1 << 30}, t0)
	srv := httptest.NewServer(NewHandler(h, clk))
	defer srv.Close()
	inv := HTTPInvoker{Client: srv.Client()}

	before, err := inv.Invoke(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(hostsim.Task{ID: "t", CPUSeconds: 600, MemB: 512 << 20}, t0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	after, err := inv.Invoke(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if after.Load <= before.Load {
		t.Fatalf("load did not rise: %v -> %v", before.Load, after.Load)
	}
	if after.MemoryB != (1<<30)-(512<<20) {
		t.Fatalf("memory = %d", after.MemoryB)
	}
}

func TestHandlerDownHostFaults(t *testing.T) {
	clk := simclock.NewManual(t0)
	h := hostsim.NewHost(hostsim.Config{Name: "x", Cores: 1, TotalMemB: 1 << 30}, t0)
	h.SetDown(true)
	srv := httptest.NewServer(NewHandler(h, clk))
	defer srv.Close()
	if _, err := (HTTPInvoker{Client: srv.Client()}).Invoke(srv.URL); err == nil {
		t.Fatal("down host served a sample")
	}
}

func TestLocalInvoker(t *testing.T) {
	clk := simclock.NewManual(t0)
	cluster := hostsim.NewCluster()
	cluster.Add(hostsim.NewHost(hostsim.Config{Name: "exergy.sdsu.edu", Cores: 1, TotalMemB: 2 << 30}, t0))
	inv := LocalInvoker{Cluster: cluster, Clock: clk}

	resp, err := inv.Invoke("http://exergy.sdsu.edu:8080/NodeStatus/NodeStatusService")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Host != "exergy.sdsu.edu" || resp.MemoryB != 2<<30 {
		t.Fatalf("resp = %+v", resp)
	}
	if _, err := inv.Invoke("http://unknown.sdsu.edu/x"); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := inv.Invoke("::garbage::"); err == nil || !strings.Contains(err.Error(), "unparseable") {
		t.Fatalf("garbage uri: %v", err)
	}
}

func TestDeploymentClose(t *testing.T) {
	var d Deployment
	clk := simclock.NewManual(t0)
	h := hostsim.NewHost(hostsim.Config{Name: "x", Cores: 1, TotalMemB: 1 << 30}, t0)
	ts := httptest.NewServer(NewHandler(h, clk))
	defer ts.Close()
	d.AddServer(ts.Config, ts.URL)
	if len(d.URIs()) != 1 {
		t.Fatalf("uris = %v", d.URIs())
	}
	d.Close()
	if len(d.URIs()) != 1 {
		t.Fatal("Close should not clear recorded URIs")
	}
}
