// Package nodestatus implements the NodeStatus Web Service of thesis §3.3:
// "dormant software that is invoked periodically" on every host that is to
// be load balanced, returning the host's CPU load and the physical and
// swap memory available. The administrator deploys it once per host and
// publishes its access URIs to the registry (Fig. 3.7); the registry's
// collector then invokes it on a fixed period to populate the NodeState
// table.
//
// The package provides both sides of the wire: a SOAP/HTTP handler that
// exposes a host's measurements, and Invoker implementations the collector
// uses to call it — HTTPInvoker for real sockets and LocalInvoker, which
// bypasses the network exactly like freebXML's localCall mode (§2.2.1),
// for large simulations.
package nodestatus

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/hostsim"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
)

// ServiceName is the well-known registry name of the NodeStatus service;
// the registry discovers collection targets by looking up this service's
// bindings, so deploying and publishing NodeStatus once load-balances all
// services on those hosts (§3.3).
const ServiceName = "NodeStatus"

// Request is the (empty) NodeStatus invocation payload.
type Request struct {
	XMLName struct{} `xml:"NodeStatusRequest"`
}

// Response carries one host measurement.
type Response struct {
	XMLName    struct{} `xml:"NodeStatusResponse"`
	Host       string   `xml:"host"`
	Load       float64  `xml:"load"`
	MemoryB    int64    `xml:"memory"`
	SwapB      int64    `xml:"swapmemory"`
	NetDelayMs float64  `xml:"netdelay"`
	Timestamp  string   `xml:"timestamp"` // RFC 3339
}

// Sample converts the response to a constraint.Sample.
func (r Response) Sample() constraint.Sample {
	return constraint.Sample{Load: r.Load, MemoryB: r.MemoryB, SwapB: r.SwapB, NetDelayMs: r.NetDelayMs}
}

// Sampler is the measurement source a NodeStatus server exposes;
// *hostsim.Host implements it.
type Sampler interface {
	Name() string
	Sample(now time.Time) (constraint.Sample, error)
}

// NewHandler serves NodeStatus for one sampler over SOAP/HTTP.
func NewHandler(s Sampler, clk simclock.Clock) http.Handler {
	if clk == nil {
		clk = simclock.Real{}
	}
	return soap.Endpoint(func(*Request) (interface{}, error) {
		now := clk.Now()
		sample, err := s.Sample(now)
		if err != nil {
			return nil, soap.ServerFault("node status unavailable: %v", err)
		}
		return &Response{
			Host:       s.Name(),
			Load:       sample.Load,
			MemoryB:    sample.MemoryB,
			SwapB:      sample.SwapB,
			NetDelayMs: sample.NetDelayMs,
			Timestamp:  now.UTC().Format(time.RFC3339Nano),
		}, nil
	})
}

// Invoker invokes the NodeStatus service behind an access URI.
type Invoker interface {
	Invoke(accessURI string) (Response, error)
}

// ContextInvoker is an Invoker whose invocations can be cancelled. The
// collector prefers it when enforcing per-invocation deadlines, so a timed
// out HTTP call releases its socket instead of leaking a goroutine for the
// life of the connection.
type ContextInvoker interface {
	Invoker
	InvokeContext(ctx context.Context, accessURI string) (Response, error)
}

// DefaultTimeout bounds NodeStatus HTTP invocations when the caller does
// not supply a client. A status probe answers in milliseconds; anything
// slower than this is indistinguishable from a hung host.
const DefaultTimeout = 10 * time.Second

// defaultClient backs HTTPInvoker when Client is nil. http.DefaultClient
// would mean no timeout at all — a single unresponsive host could pin a
// collector sweep slot forever.
var defaultClient = &http.Client{Timeout: DefaultTimeout}

// HTTPInvoker calls NodeStatus endpoints over real HTTP. A nil Client uses
// a shared client with DefaultTimeout (never the timeout-less
// http.DefaultClient).
type HTTPInvoker struct {
	Client *http.Client
}

// Invoke implements Invoker.
//
//repolint:ctxprop-allow context-free compatibility wrapper for callers without a request context
func (h HTTPInvoker) Invoke(accessURI string) (Response, error) {
	return h.InvokeContext(context.Background(), accessURI)
}

// InvokeContext implements ContextInvoker, threading the caller's deadline
// through the SOAP transport.
func (h HTTPInvoker) InvokeContext(ctx context.Context, accessURI string) (Response, error) {
	client := h.Client
	if client == nil {
		client = defaultClient
	}
	var resp Response
	if err := soap.PostContext(ctx, client, accessURI, &Request{}, &resp); err != nil {
		return Response{}, fmt.Errorf("nodestatus: invoke %s: %w", accessURI, err)
	}
	return resp, nil
}

// LocalInvoker resolves the hostname of an access URI directly against a
// simulated cluster, skipping HTTP — the localCall optimization. It lets
// experiments poll hundreds of hosts per simulated second.
type LocalInvoker struct {
	Cluster *hostsim.Cluster
	Clock   simclock.Clock
}

// Invoke implements Invoker.
func (l LocalInvoker) Invoke(accessURI string) (Response, error) {
	host := rim.HostOfURI(accessURI)
	if host == "" {
		return Response{}, fmt.Errorf("nodestatus: unparseable access uri %q", accessURI)
	}
	h := l.Cluster.Host(host)
	if h == nil {
		return Response{}, fmt.Errorf("nodestatus: unknown host %q", host)
	}
	now := l.Clock.Now()
	sample, err := h.Sample(now)
	if err != nil {
		return Response{}, err
	}
	return Response{
		Host:       host,
		Load:       sample.Load,
		MemoryB:    sample.MemoryB,
		SwapB:      sample.SwapB,
		NetDelayMs: sample.NetDelayMs,
		Timestamp:  now.UTC().Format(time.RFC3339Nano),
	}, nil
}

// Deployment runs real NodeStatus HTTP servers for a set of simulated
// hosts, for the cmd binaries and end-to-end tests. Use Serve to start and
// Close to stop.
type Deployment struct {
	mu      sync.Mutex
	servers []*http.Server
	uris    []string
}

// URIs returns the access URIs of all served endpoints.
func (d *Deployment) URIs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.uris...)
}

// AddServer registers a started server and its public URI.
func (d *Deployment) AddServer(srv *http.Server, uri string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.servers = append(d.servers, srv)
	d.uris = append(d.uris, uri)
}

// Close shuts every server down.
func (d *Deployment) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.servers {
		s.Close()
	}
	d.servers = nil
}
