package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/store"
)

// randomized fixtures for the arrangement-invariant properties.
type arrangement struct {
	uris  []string
	table *store.NodeStateTable
}

func buildArrangement(loads []uint8, missing []bool) arrangement {
	tab := store.NewNodeStateTable()
	var uris []string
	for i, l := range loads {
		host := fmt.Sprintf("h%02d.sdsu.edu", i)
		uris = append(uris, "http://"+host+":8080/svc")
		if i < len(missing) && missing[i] {
			continue // no NodeState row: unknown host
		}
		tab.Upsert(store.NodeState{
			Host: host, Load: float64(l) / 16, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
		})
	}
	return arrangement{uris: uris, table: tab}
}

const propConstraint = `<constraint><cpuLoad>load ls 8.0</cpuLoad></constraint>`

func isSubset(sub, super []string) bool {
	set := make(map[string]bool, len(super))
	for _, s := range super {
		set[s] = true
	}
	for _, s := range sub {
		if !set[s] {
			return false
		}
	}
	return true
}

func isPermutation(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, s := range a {
		count[s]++
	}
	for _, s := range b {
		count[s]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// Property: every policy returns a subset of the input URIs with no
// duplicates; stock returns the identity; rank-first returns a
// permutation.
func TestArrangementInvariants(t *testing.T) {
	f := func(loads []uint8, missing []bool) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 24 {
			loads = loads[:24]
		}
		a := buildArrangement(loads, missing)
		for _, p := range []Policy{PolicyStock, PolicyFilter, PolicyRankFirst, PolicyLeastLoaded} {
			b := &Balancer{Table: a.table, Policy: p}
			out, _ := b.ArrangeURIs(propConstraint, a.uris, t0)
			if !isSubset(out, a.uris) {
				return false
			}
			seen := map[string]bool{}
			for _, u := range out {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
			switch p {
			case PolicyStock:
				if len(out) != len(a.uris) || (len(out) > 0 && out[0] != a.uris[0]) {
					return false
				}
			case PolicyRankFirst:
				if !isPermutation(out, a.uris) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: PolicyFilter returns exactly the hosts whose rows satisfy the
// constraint; PolicyLeastLoaded returns them sorted by non-decreasing
// load (before any unknowns).
func TestFilterExactnessAndLeastLoadedOrder(t *testing.T) {
	f := func(loads []uint8) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 24 {
			loads = loads[:24]
		}
		a := buildArrangement(loads, nil)
		want := map[string]bool{}
		loadOf := map[string]float64{}
		for i, l := range loads {
			uri := a.uris[i]
			loadOf[uri] = float64(l) / 16
			if float64(l)/16 < 8.0 {
				want[uri] = true
			}
		}
		filter := &Balancer{Table: a.table, Policy: PolicyFilter}
		out, dec := filter.ArrangeURIs(propConstraint, a.uris, t0)
		if len(out) != len(want) || dec.Eligible() != len(want) {
			return false
		}
		for _, u := range out {
			if !want[u] {
				return false
			}
		}
		ll := &Balancer{Table: a.table, Policy: PolicyLeastLoaded}
		out, _ = ll.ArrangeURIs(propConstraint, a.uris, t0)
		for i := 1; i < len(out); i++ {
			if loadOf[out[i-1]] > loadOf[out[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: arrangement is deterministic — identical inputs yield
// identical outputs.
func TestArrangementDeterminism(t *testing.T) {
	f := func(loads []uint8, policyPick uint8) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 16 {
			loads = loads[:16]
		}
		a := buildArrangement(loads, nil)
		p := []Policy{PolicyStock, PolicyFilter, PolicyRankFirst, PolicyLeastLoaded}[int(policyPick)%4]
		b := &Balancer{Table: a.table, Policy: p}
		out1, _ := b.ArrangeURIs(propConstraint, a.uris, t0)
		out2, _ := b.ArrangeURIs(propConstraint, a.uris, t0)
		if len(out1) != len(out2) {
			return false
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decision's verdict counts always sum to the number of
// URI-bearing bindings considered.
func TestDecisionCountsSum(t *testing.T) {
	f := func(loads []uint8, missing []bool) bool {
		if len(loads) == 0 || len(loads) > 24 {
			return true
		}
		a := buildArrangement(loads, missing)
		b := &Balancer{Table: a.table, Policy: PolicyFilter}
		_, dec := b.ArrangeURIs(propConstraint, a.uris, t0)
		return dec.Eligible()+dec.Unknown()+dec.Ineligible() == len(a.uris)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: FallbackAll guarantees a non-empty result whenever input is
// non-empty.
func TestFallbackNeverEmpty(t *testing.T) {
	f := func(loads []uint8) bool {
		if len(loads) == 0 || len(loads) > 16 {
			return true
		}
		a := buildArrangement(loads, nil)
		b := &Balancer{Table: a.table, Policy: PolicyFilter, FallbackAll: true}
		// An unsatisfiable constraint forces the fallback path.
		out, _ := b.ArrangeURIs(`<constraint><memory>memory gr 1024GB</memory></constraint>`, a.uris, t0)
		return len(out) == len(a.uris)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
