package core

import (
	"reflect"
	"testing"

	"repro/internal/store"
)

func TestQuarantinedHostExcludedFromAllPolicies(t *testing.T) {
	tab := table()
	tab.SetHealth("thermo.sdsu.edu", store.HealthQuarantined)
	for _, policy := range []Policy{PolicyFilter, PolicyRankFirst, PolicyLeastLoaded} {
		b := &Balancer{Table: tab, Policy: policy}
		out, dec := b.ArrangeURIs(constrained, uris(), t0)
		for _, u := range out {
			if u == uriThermo {
				t.Fatalf("%v served quarantined host: %v", policy, out)
			}
		}
		if dec.Quarantined() != 1 {
			t.Fatalf("%v quarantined count = %d", policy, dec.Quarantined())
		}
	}
}

func TestFallbackSkipsQuarantinedHosts(t *testing.T) {
	tab := table()
	// Make every host ineligible-or-worse: thermo quarantined, exergy
	// overloaded (already 3.5 load), romulus unknown but quarantined too.
	tab.SetHealth("thermo.sdsu.edu", store.HealthQuarantined)
	tab.SetHealth("romulus.sdsu.edu", store.HealthQuarantined)
	b := &Balancer{Table: tab, Policy: PolicyFilter, FallbackAll: true}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if !dec.FellBack {
		t.Fatal("expected fallback")
	}
	if !reflect.DeepEqual(out, []string{uriExergy}) {
		t.Fatalf("fallback served quarantined hosts: %v", out)
	}
}

func TestDegradedStaticServesStockWhenAllQuarantined(t *testing.T) {
	tab := table()
	for _, h := range []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu"} {
		tab.SetHealth(h, store.HealthQuarantined)
	}

	// Strict mode: nothing survives, nothing served.
	strict := &Balancer{Table: tab, Policy: PolicyFilter, FallbackAll: true}
	out, dec := strict.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 0 || dec.Degraded {
		t.Fatalf("strict mode served %v (degraded=%v)", out, dec.Degraded)
	}

	// DegradedStatic: the stored order comes back, flagged.
	degraded := &Balancer{Table: tab, Policy: PolicyFilter, FallbackAll: true, Degraded: DegradedStatic}
	out, dec = degraded.ArrangeURIs(constrained, uris(), t0)
	if !dec.Degraded {
		t.Fatal("decision not flagged degraded")
	}
	if !reflect.DeepEqual(out, uris()) {
		t.Fatalf("degraded output = %v, want stored order %v", out, uris())
	}
}

func TestDegradedStaticDoesNotFireWhenHostsSurvive(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyFilter, Degraded: DegradedStatic}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if dec.Degraded {
		t.Fatal("degraded fired with an eligible host available")
	}
	if !reflect.DeepEqual(out, []string{uriThermo}) {
		t.Fatalf("out = %v", out)
	}
}

func TestTimeWindowExcludeIsNotDegradation(t *testing.T) {
	// Outside the service's time window the service is closed by policy;
	// DegradedStatic must not resurrect it.
	desc := `svc <constraint><cpuLoad>load ls 1.0</cpuLoad><starttime>1000</starttime><endtime>1200</endtime></constraint>`
	b := &Balancer{Table: table(), Policy: PolicyFilter, TimeMode: TimeWindowExclude, Degraded: DegradedStatic}
	night := t0.Add(12 * 60 * 60 * 1e9) // 23:00, outside the window
	out, dec := b.ArrangeURIs(desc, uris(), night)
	if len(out) != 0 || dec.Degraded {
		t.Fatalf("closed window served %v (degraded=%v)", out, dec.Degraded)
	}
}
