package core

import (
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/store"
)

func TestArrangeViewUsesCacheAndSnapshot(t *testing.T) {
	cache := constraint.NewCache(8)
	b := &Balancer{Table: table(), Policy: PolicyFilter, Cache: cache}
	view := store.DiscoveryView{ID: "urn:uuid:adder", Description: constrained, URIs: uris()}

	out, dec := b.ArrangeView(view, t0)
	if len(out) != 1 || out[0] != uriThermo {
		t.Fatalf("arranged = %v", out)
	}
	if dec.ConstraintCached {
		t.Fatal("first arrange should parse, not hit the cache")
	}
	if dec.SnapshotGen == 0 {
		t.Fatal("filtered decision should record the snapshot generation")
	}

	out2, dec2 := b.ArrangeView(view, t0)
	if len(out2) != 1 || out2[0] != uriThermo {
		t.Fatalf("second arrange = %v", out2)
	}
	if !dec2.ConstraintCached {
		t.Fatal("second arrange should hit the constraint cache")
	}
	if dec2.SnapshotGen != dec.SnapshotGen {
		t.Fatalf("unchanged table should reuse the snapshot: gen %d vs %d", dec2.SnapshotGen, dec.SnapshotGen)
	}
	if got := cache.Hits.Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

func TestArrangeViewDescriptionEditReparses(t *testing.T) {
	cache := constraint.NewCache(8)
	b := &Balancer{Table: table(), Policy: PolicyFilter, Cache: cache}
	view := store.DiscoveryView{ID: "urn:uuid:adder", Description: constrained, URIs: uris()}
	if out, _ := b.ArrangeView(view, t0); len(out) != 1 {
		t.Fatalf("arranged = %v", out)
	}
	// Edit the description without any invalidation: the hash key alone
	// must force a reparse, so a stale constraint is never applied.
	view.Description = `Adder <constraint><cpuLoad>load ls 0.1</cpuLoad></constraint>`
	out, dec := b.ArrangeView(view, t0)
	if dec.ConstraintCached {
		t.Fatal("edited description must not be served from cache")
	}
	if len(out) != 0 {
		t.Fatalf("tightened constraint should exclude every host, got %v", out)
	}
}

func TestArrangeSnapshotStalenessGuard(t *testing.T) {
	tab := table()
	b := &Balancer{Table: tab, Policy: PolicyFilter, SnapshotMaxAge: 25 * time.Second}
	view := store.DiscoveryView{ID: "urn:uuid:adder", Description: constrained, URIs: uris()}

	_, dec := b.ArrangeView(view, t0)
	gen := dec.SnapshotGen

	// A collector write inside the staleness window is deliberately not
	// observed: the published snapshot keeps serving lock-free.
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 9.9, Updated: t0})
	out, dec2 := b.ArrangeView(view, t0.Add(10*time.Second))
	if dec2.SnapshotGen != gen {
		t.Fatalf("gen = %d, want stale %d", dec2.SnapshotGen, gen)
	}
	if len(out) != 1 || out[0] != uriThermo {
		t.Fatalf("stale arrange = %v", out)
	}

	// Past the window the write must be observed.
	out3, dec3 := b.ArrangeView(view, t0.Add(30*time.Second))
	if dec3.SnapshotGen == gen {
		t.Fatal("expired guard should republish")
	}
	if len(out3) != 0 {
		t.Fatalf("overloaded thermo should now be excluded, got %v", out3)
	}
}

func TestArrangeStockSkipsTableAndCache(t *testing.T) {
	cache := constraint.NewCache(8)
	b := &Balancer{Table: table(), Policy: PolicyStock, Cache: cache}
	view := store.DiscoveryView{ID: "urn:uuid:adder", Description: constrained, URIs: uris()}
	out, dec := b.ArrangeView(view, t0)
	if len(out) != 3 {
		t.Fatalf("stock arrange = %v", out)
	}
	if dec.SnapshotGen != 0 || dec.ConstraintCached {
		t.Fatalf("stock decision touched fast-path state: %+v", dec)
	}
	if cache.Len() != 0 {
		t.Fatal("stock policy must not populate the cache")
	}
}
