// Package core implements the thesis's primary contribution: the modified
// discovery path of freebXML's ServiceDAO / ServiceBindingDAO / LoadStatus
// classes (Figs. 3.5–3.6). When a Web Service is looked up, the registry
//
//  1. asks ServiceConstraint whether the service's description carries a
//     valid <constraint> block and whether its time-of-day window admits
//     the current time, and if so
//  2. asks LoadStatus which deployment hosts currently satisfy the
//     resource constraints, by consulting the NodeState table the
//     collector maintains, and
//  3. arranges the service's bindings so that "hosts that currently
//     provide optimal service conditions are given preference over the
//     ones that don't" (§3.2) — or are excluded outright.
//
// The thesis describes both a strict filter ("access URIs of only those
// hosts that satisfy these performance constraints are returned") and a
// reordering ("we rearrange the access URI ... given preference"); the
// Policy type exposes both behaviours plus a least-loaded refinement so
// the experiment harness can ablate the choice (DESIGN.md, ablation 1).
package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/rim"
	"repro/internal/store"
)

// Policy selects how constrained bindings are arranged at discovery time.
type Policy int

// Arrangement policies.
const (
	// PolicyStock is the unmodified freebXML behaviour: bindings in
	// stored order, constraints ignored. This is the baseline the thesis
	// motivates against (§3.2: "increased load on one particular host").
	PolicyStock Policy = iota
	// PolicyFilter returns only the bindings whose hosts satisfy the
	// constraints, in stored order — the thesis's primary description.
	PolicyFilter
	// PolicyRankFirst returns satisfying bindings first (stored order),
	// then hosts with unknown state, then unsatisfying hosts — the
	// thesis's "rearrange ... given preference" reading.
	PolicyRankFirst
	// PolicyLeastLoaded returns satisfying bindings ordered by ascending
	// observed CPU load, then unknown-state hosts; unsatisfying hosts are
	// dropped. This is the refinement ablated in EXPERIMENTS.md.
	PolicyLeastLoaded
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case PolicyStock:
		return "stock"
	case PolicyFilter:
		return "filter"
	case PolicyRankFirst:
		return "rank-first"
	case PolicyLeastLoaded:
		return "least-loaded"
	default:
		return "unknown-policy"
	}
}

// TimeWindowMode selects what happens when the request time falls outside
// a service's <starttime>/<endtime> window. The thesis's ServiceConstraint
// "returns false ... if the time constraint is not satisfied", which makes
// the discovery path fall through to stock behaviour; a stricter reading
// makes the service unavailable. Both are implemented (ablation 4).
type TimeWindowMode int

// Time-window handling modes.
const (
	// TimeWindowSkipFiltering reproduces the thesis literally: outside
	// the window, resource filtering is skipped and all bindings are
	// returned in stored order.
	TimeWindowSkipFiltering TimeWindowMode = iota
	// TimeWindowExclude treats the service as unavailable outside its
	// window: no bindings are returned.
	TimeWindowExclude
)

// DegradedMode selects what discovery serves when filtering leaves nothing
// at all — every candidate host quarantined, stale, or ineligible and no
// fallback produced output. This is the graceful-degradation policy for a
// cluster that is entirely unhealthy from the collector's point of view.
type DegradedMode int

// Degradation modes.
const (
	// DegradedEmpty preserves the strict behaviour: an empty binding list.
	DegradedEmpty DegradedMode = iota
	// DegradedStatic serves the stored binding order — what vanilla
	// freebXML would return — on the theory that a registry with no
	// health information should behave like one that never collected any.
	DegradedStatic
)

// String names the mode for flags and reports.
func (m DegradedMode) String() string {
	switch m {
	case DegradedEmpty:
		return "empty"
	case DegradedStatic:
		return "static"
	default:
		return "unknown-degraded-mode"
	}
}

// Balancer is the constraint-enforcement engine attached to the registry's
// query path.
type Balancer struct {
	// Table is the NodeState table populated by the nodestate collector.
	Table *store.NodeStateTable
	// Policy selects the arrangement behaviour; the zero value is
	// PolicyStock (no load balancing).
	Policy Policy
	// TimeMode selects out-of-window handling.
	TimeMode TimeWindowMode
	// Freshness, when positive, treats NodeState rows older than this as
	// unknown (ablation 2). Zero disables the staleness cutoff.
	Freshness time.Duration
	// FallbackAll, when true, returns all bindings in ascending-load
	// order if no host satisfies the constraints, instead of an empty
	// list (ablation 3). Quarantined hosts stay excluded from the
	// fallback; only Degraded can resurrect them.
	FallbackAll bool
	// Degraded selects what to serve when filtering and fallback leave
	// nothing (e.g. every host quarantined). The zero value keeps the
	// strict empty answer.
	Degraded DegradedMode
	// Cache, when non-nil, memoizes parsed constraint blocks per service
	// so FromDescription runs once per description version. Lookups made
	// without a service id (plain ArrangeURIs) bypass the cache.
	Cache *constraint.Cache
	// SnapshotMaxAge is the staleness guard on the NodeState RCU
	// snapshot: while the published snapshot is no older than this,
	// discovery reads it lock-free even if the collector has written
	// rows since it was taken. Zero keeps reads fully coherent — the
	// snapshot is republished whenever the table has changed.
	SnapshotMaxAge time.Duration
	// Brownout, when non-nil, carries the runtime degradation overrides
	// the admission controller's brownout ladder flips under sustained
	// overload (see internal/admit). Nil means no overrides.
	Brownout *BrownoutState
}

// BrownoutState holds the degradation overrides of the brownout ladder:
// extra tolerated NodeState snapshot staleness at TierStale and a forced
// static fallback at TierStatic. The fields are atomics — arrange reads
// them lock-free on the discovery hot path — and a nil *BrownoutState
// reads as "no overrides" so the wiring costs nothing when admission
// control is off.
type BrownoutState struct {
	extraStaleness atomic.Int64 // extra snapshot age tolerated, in nanoseconds
	forceStatic    atomic.Bool
}

// SetExtraStaleness grants d of additional snapshot staleness (0 revokes).
func (s *BrownoutState) SetExtraStaleness(d time.Duration) { s.extraStaleness.Store(int64(d)) }

// ExtraStaleness returns the current staleness grant.
func (s *BrownoutState) ExtraStaleness() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.extraStaleness.Load())
}

// SetForceStatic toggles the forced static fallback.
func (s *BrownoutState) SetForceStatic(v bool) { s.forceStatic.Store(v) }

// ForceStatic reports whether empty arrangements must degrade to the
// stored order regardless of the configured DegradedMode.
func (s *BrownoutState) ForceStatic() bool {
	if s == nil {
		return false
	}
	return s.forceStatic.Load()
}

// Verdict classifies one binding's host against the constraints.
type Verdict int

// Binding verdicts.
const (
	VerdictEligible Verdict = iota
	VerdictIneligible
	VerdictUnknown
	// VerdictQuarantined marks a host whose collector breaker is open; it
	// is excluded from every arrangement, including FallbackAll.
	VerdictQuarantined
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictEligible:
		return "eligible"
	case VerdictIneligible:
		return "ineligible"
	case VerdictQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// BindingDecision records how one binding was classified.
type BindingDecision struct {
	AccessURI string
	Host      string
	Verdict   Verdict
	Load      float64
	HasRow    bool
	// Updated is the NodeState row's collection instant when HasRow; the
	// response cache derives a freshness-horizon expiry from it.
	Updated time.Time
}

// Decision reports what the balancer did for one discovery, for audit and
// experiments.
type Decision struct {
	// Constraint is the parsed block, nil when the description has none.
	Constraint *constraint.Constraint
	// ConstraintErr is non-nil when a block was present but malformed;
	// the thesis treats this as "no valid constraints" and serves stock
	// order, but the error is surfaced for logging.
	ConstraintErr error
	// TimeWindowOK reports whether the window admitted the request time.
	TimeWindowOK bool
	// Filtered is true when resource filtering actually ran.
	Filtered bool
	// FellBack is true when no host was eligible and FallbackAll served
	// the full load-ordered list.
	FellBack bool
	// Degraded is true when even the fallback produced nothing and the
	// DegradedStatic policy served the stored binding order.
	Degraded bool
	// SnapshotGen is the publish generation of the NodeState snapshot
	// the decision read, for audit: two decisions with the same gen saw
	// the identical host-state world. Zero when resource filtering never
	// consulted the table.
	SnapshotGen uint64
	// ConstraintCached is true when the constraint came from the parsed-
	// constraint cache rather than a fresh parse.
	ConstraintCached bool
	// Bindings classifies every binding considered.
	Bindings []BindingDecision
}

// Eligible returns the number of eligible bindings in the decision.
func (d Decision) Eligible() int { return d.count(VerdictEligible) }

// Unknown returns the number of unknown-state bindings.
func (d Decision) Unknown() int { return d.count(VerdictUnknown) }

// Ineligible returns the number of constraint-failing bindings.
func (d Decision) Ineligible() int { return d.count(VerdictIneligible) }

// Quarantined returns the number of breaker-quarantined bindings.
func (d Decision) Quarantined() int { return d.count(VerdictQuarantined) }

func (d Decision) count(v Verdict) int {
	n := 0
	for _, b := range d.Bindings {
		if b.Verdict == v {
			n++
		}
	}
	return n
}

// ArrangeService applies the balancer to a service's bindings at time now,
// returning the bindings in the order the registry should present them.
// The input service is not modified.
func (b *Balancer) ArrangeService(svc *rim.Service, now time.Time) ([]*rim.ServiceBinding, Decision) {
	uris := make([]string, 0, len(svc.Bindings))
	byURI := make(map[string]*rim.ServiceBinding, len(svc.Bindings))
	for _, bind := range svc.Bindings {
		if bind.AccessURI == "" {
			continue
		}
		uris = append(uris, bind.AccessURI)
		byURI[bind.AccessURI] = bind
	}
	ordered, dec := b.arrange(svc.ID, svc.Description.String(), uris, now, nil)
	out := make([]*rim.ServiceBinding, 0, len(ordered))
	for _, u := range ordered {
		out = append(out, byURI[u])
	}
	return out, dec
}

// ArrangeURIs is the URI-level core of the scheme: given a service
// description (which may embed a constraint block) and the stored-order
// access URIs, it returns the URIs to present, plus the full decision.
// With no service id the constraint cache is bypassed; callers that have
// one should prefer ArrangeView.
func (b *Balancer) ArrangeURIs(description string, uris []string, now time.Time) ([]string, Decision) {
	return b.arrange("", description, uris, now, nil)
}

// ArrangeView is the allocation-lean discovery entry point: it arranges a
// store.DiscoveryView (id, description, and access URIs — no cloned object
// graph), keying the constraint cache by the view's service id.
//
//repolint:hotpath warm discovery chain: the balancer's serving edge
func (b *Balancer) ArrangeView(view store.DiscoveryView, now time.Time) ([]string, Decision) {
	return b.arrange(view.ID, view.Description, view.URIs, now, nil)
}

// ArrangeViewTraced is ArrangeView recording span timings onto tr. A nil
// tr is the common case (sampling off) and costs only nil-receiver calls,
// keeping the fast path's allocation budget intact.
//
//repolint:hotpath warm discovery chain: traced serving edge
func (b *Balancer) ArrangeViewTraced(view store.DiscoveryView, now time.Time, tr *obs.Trace) ([]string, Decision) {
	return b.arrange(view.ID, view.Description, view.URIs, now, tr)
}

// SnapshotGen returns the generation the NodeState snapshot would have if
// a discovery ran at now, republishing a dirty or stale table exactly as
// arrange would. The response cache keys entries by this value so a hit
// can be served without consulting the table at all.
//
//repolint:hotpath runs on every discovery request before the cache lookup
func (b *Balancer) SnapshotGen(now time.Time) uint64 {
	if b.Table == nil {
		return 0
	}
	return b.Table.Snapshot(now, b.SnapshotMaxAge+b.Brownout.ExtraStaleness()).Gen()
}

// SnapshotMeta is SnapshotGen plus the instant the snapshot was taken, in
// one table read, so the edge can stamp flight records with both the
// generation it keyed the cache on and how stale that view was.
//
//repolint:hotpath runs on every discovery request before the cache lookup
func (b *Balancer) SnapshotMeta(now time.Time) (gen uint64, taken time.Time) {
	if b.Table == nil {
		return 0, time.Time{}
	}
	snap := b.Table.Snapshot(now, b.SnapshotMaxAge+b.Brownout.ExtraStaleness())
	return snap.Gen(), snap.Taken()
}

func (b *Balancer) arrange(serviceID, description string, uris []string, now time.Time, tr *obs.Trace) ([]string, Decision) {
	dec := Decision{TimeWindowOK: true}
	// The stored-order copy (stockOrder) is built only on the paths that
	// serve it; the filtered steady state never pays for it.

	if b.Policy == PolicyStock {
		return stockOrder(uris), dec
	}

	// Step 1: ServiceConstraint — extract and validate the block. The
	// cache call degrades to a plain parse on a nil cache or empty id.
	span := tr.BeginSpan("constraint")
	c, cached, err := b.Cache.FromDescription(serviceID, description)
	tr.EndSpan(span)
	dec.ConstraintCached = cached
	if cached {
		tr.SetAttr("constraint", "cache-hit")
	} else {
		tr.SetAttr("constraint", "parsed")
	}
	if err != nil {
		// Invalid constraints behave like no constraints (§3.2:
		// "ServiceConstraint returns false if no valid service
		// constraints are specified").
		dec.ConstraintErr = err
		return stockOrder(uris), dec
	}
	if c.IsZero() {
		return stockOrder(uris), dec
	}
	dec.Constraint = c

	// Step 2: the time-of-day window is validated at request time.
	if !c.TimeSatisfied(now) {
		dec.TimeWindowOK = false
		switch b.TimeMode {
		case TimeWindowExclude:
			return nil, dec
		default:
			return stockOrder(uris), dec
		}
	}
	if !c.HasResourceClauses() {
		// Window-only constraint and the window is open.
		return stockOrder(uris), dec
	}

	// Step 3: LoadStatus — classify each host against NodeState. Hosts are
	// read from an immutable RCU snapshot (one atomic load in the steady
	// state) so discovery never contends with a collector sweep.
	// Quarantined hosts (open collector breaker) are set aside first: they
	// take no part in any arrangement, fallback included.
	dec.Filtered = true
	span = tr.BeginSpan("snapshot")
	snap := b.Table.Snapshot(now, b.SnapshotMaxAge+b.Brownout.ExtraStaleness())
	tr.EndSpan(span)
	dec.SnapshotGen = snap.Gen()
	if tr != nil {
		tr.SetAttr("snapshotGen", strconv.FormatUint(snap.Gen(), 10))
	}
	span = tr.BeginSpan("evaluate")
	var unknown, ineligible, candidates []string
	eligible := make([]string, 0, len(uris))
	dec.Bindings = make([]BindingDecision, 0, len(uris))
	// Loads keyed by URI are only consulted by the sorting policies; the
	// plain filter path skips the map entirely.
	var loadOf map[string]float64
	if b.Policy == PolicyLeastLoaded || b.FallbackAll {
		loadOf = make(map[string]float64, len(uris))
	}
	for _, uri := range uris {
		host := rim.HostOfURI(uri)
		bd := BindingDecision{AccessURI: uri, Host: host}
		row, ok := snap.Get(host)
		if ok {
			bd.Updated = row.Updated
		}
		if ok && row.Health == store.HealthQuarantined {
			bd.Verdict = VerdictQuarantined
			bd.HasRow = true
			dec.Bindings = append(dec.Bindings, bd)
			continue
		}
		candidates = append(candidates, uri)
		fresh := ok && row.Failures == 0 &&
			(b.Freshness <= 0 || now.Sub(row.Updated) <= b.Freshness)
		if !fresh {
			bd.Verdict = VerdictUnknown
			bd.HasRow = ok
			unknown = append(unknown, uri)
		} else {
			bd.HasRow = true
			bd.Load = row.Load
			if loadOf != nil {
				loadOf[uri] = row.Load
			}
			sample := constraint.Sample{Load: row.Load, MemoryB: row.MemoryB, SwapB: row.SwapB, NetDelayMs: row.NetDelayMs}
			if c.SatisfiedBy(sample) {
				bd.Verdict = VerdictEligible
				eligible = append(eligible, uri)
			} else {
				bd.Verdict = VerdictIneligible
				ineligible = append(ineligible, uri)
			}
		}
		dec.Bindings = append(dec.Bindings, bd)
	}
	tr.EndSpan(span)

	// Step 4: arrange per policy.
	span = tr.BeginSpan("arrange")
	var out []string
	switch b.Policy {
	case PolicyFilter:
		out = eligible
	case PolicyRankFirst:
		out = make([]string, 0, len(eligible)+len(unknown)+len(ineligible))
		out = append(append(append(out, eligible...), unknown...), ineligible...)
	case PolicyLeastLoaded:
		byLoad := append([]string(nil), eligible...)
		sortByLoad(byLoad, loadOf)
		out = append(byLoad, unknown...)
	default:
		out = stockOrder(uris)
	}

	if len(out) == 0 && b.FallbackAll && len(candidates) > 0 {
		dec.FellBack = true
		out = append([]string(nil), candidates...)
		sortByLoad(out, loadOf)
	}

	// Step 5: graceful degradation — when nothing at all survived (e.g.
	// every host quarantined), DegradedStatic serves the stored order as
	// vanilla freebXML would, rather than an empty answer. The brownout
	// ladder's TierStatic forces the same behaviour under sustained
	// overload; the two compose idempotently (one degradation, not two).
	if len(out) == 0 && (b.Degraded == DegradedStatic || b.Brownout.ForceStatic()) {
		dec.Degraded = true
		out = stockOrder(uris)
	}
	tr.EndSpan(span)
	if tr != nil {
		tr.SetAttr("policy", b.Policy.String())
		tr.SetAttr("eligible", strconv.Itoa(dec.Eligible()))
		tr.SetAttr("unknown", strconv.Itoa(dec.Unknown()))
		tr.SetAttr("ineligible", strconv.Itoa(dec.Ineligible()))
		tr.SetAttr("quarantined", strconv.Itoa(dec.Quarantined()))
		if dec.FellBack {
			tr.SetAttr("fellBack", "true")
		}
		if dec.Degraded {
			tr.SetAttr("degraded", "true")
		}
	}
	return out, dec
}

func loadOrInf(m map[string]float64, uri string) (float64, bool) {
	l, ok := m[uri]
	return l, ok
}

// stockOrder copies uris so callers can serve the stored order without
// aliasing the (shared, immutable) view slice.
func stockOrder(uris []string) []string {
	return append([]string(nil), uris...)
}

// sortByLoad stable-sorts uris in place: URIs with a known load first, in
// ascending load order; URIs without a NodeState row keep their stored
// relative order after them. An insertion sort keeps the hot path free of
// sort.SliceStable's interface boxing and less-func closure — candidate
// sets are a service's bindings (a handful), where it also beats the
// general algorithm outright.
func sortByLoad(uris []string, load map[string]float64) {
	for i := 1; i < len(uris); i++ {
		cur := uris[i]
		li, iOK := loadOrInf(load, cur)
		j := i
		for j > 0 {
			lj, jOK := loadOrInf(load, uris[j-1])
			if !lessLoad(li, iOK, lj, jOK) {
				break
			}
			uris[j] = uris[j-1]
			j--
		}
		uris[j] = cur
	}
}

// lessLoad orders (a known-ness aOK, load a) strictly before (bOK, b):
// known loads precede unknown, known loads ascend, unknowns tie (so the
// insertion sort leaves their stored order untouched — stability).
func lessLoad(a float64, aOK bool, b float64, bOK bool) bool {
	if aOK != bOK {
		return aOK
	}
	if !aOK {
		return false
	}
	return a < b
}
