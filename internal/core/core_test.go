package core

import (
	"testing"
	"time"

	"repro/internal/rim"
	"repro/internal/store"
)

var (
	t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC) // 11:00, inside 1000-1200
	// Three deployment hosts with distinct states.
	uriThermo  = "http://thermo.sdsu.edu:8080/Adder/addService"  // low load, lots of memory
	uriExergy  = "http://exergy.sdsu.edu:8080/Adder/addService"  // overloaded
	uriRomulus = "http://romulus.sdsu.edu:8080/Adder/addService" // no NodeState row
)

const constrained = `Adder service <constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`

func table() *store.NodeStateTable {
	tab := store.NewNodeStateTable()
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
	tab.Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 3.5, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
	return tab
}

func uris() []string { return []string{uriExergy, uriThermo, uriRomulus} }

func TestPolicyStockIgnoresConstraints(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyStock}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 3 || out[0] != uriExergy {
		t.Fatalf("stock order changed: %v", out)
	}
	if dec.Filtered {
		t.Fatal("stock policy filtered")
	}
}

func TestPolicyFilterKeepsOnlyEligible(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 1 || out[0] != uriThermo {
		t.Fatalf("filter = %v", out)
	}
	if !dec.Filtered || dec.Eligible() != 1 || dec.Ineligible() != 1 || dec.Unknown() != 1 {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestPolicyRankFirstOrdersEligibleUnknownIneligible(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyRankFirst}
	out, _ := b.ArrangeURIs(constrained, uris(), t0)
	want := []string{uriThermo, uriRomulus, uriExergy}
	if len(out) != 3 || out[0] != want[0] || out[1] != want[1] || out[2] != want[2] {
		t.Fatalf("rank-first = %v, want %v", out, want)
	}
}

func TestPolicyLeastLoadedSortsByLoad(t *testing.T) {
	tab := table()
	tab.Upsert(store.NodeState{Host: "romulus.sdsu.edu", Load: 0.05, MemoryB: 8 << 30, SwapB: 1 << 30, Updated: t0})
	b := &Balancer{Table: tab, Policy: PolicyLeastLoaded}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	// romulus (0.05) then thermo (0.2); exergy ineligible and dropped.
	if len(out) != 2 || out[0] != uriRomulus || out[1] != uriThermo {
		t.Fatalf("least-loaded = %v", out)
	}
	if dec.Eligible() != 2 {
		t.Fatalf("eligible = %d", dec.Eligible())
	}
}

func TestNoConstraintMeansStockOrder(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeURIs("plain description, no constraints", uris(), t0)
	if len(out) != 3 || out[0] != uriExergy {
		t.Fatalf("unconstrained = %v", out)
	}
	if dec.Constraint != nil || dec.Filtered {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestMalformedConstraintFallsBackToStock(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeURIs("<constraint><cpuLoad>garbage</cpuLoad></constraint>", uris(), t0)
	if len(out) != 3 {
		t.Fatalf("malformed = %v", out)
	}
	if dec.ConstraintErr == nil {
		t.Fatal("constraint error not surfaced")
	}
}

func TestTimeWindowSkipFiltering(t *testing.T) {
	// 13:00 is outside the 1000-1200 window.
	at := time.Date(2011, 4, 22, 13, 0, 0, 0, time.UTC)
	desc := `<constraint><cpuLoad>load ls 1.0</cpuLoad><starttime>1000</starttime><endtime>1200</endtime></constraint>`
	b := &Balancer{Table: table(), Policy: PolicyFilter, TimeMode: TimeWindowSkipFiltering}
	out, dec := b.ArrangeURIs(desc, uris(), at)
	if len(out) != 3 {
		t.Fatalf("outside-window skip = %v", out)
	}
	if dec.TimeWindowOK || dec.Filtered {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestTimeWindowExclude(t *testing.T) {
	at := time.Date(2011, 4, 22, 13, 0, 0, 0, time.UTC)
	desc := `<constraint><cpuLoad>load ls 1.0</cpuLoad><starttime>1000</starttime><endtime>1200</endtime></constraint>`
	b := &Balancer{Table: table(), Policy: PolicyFilter, TimeMode: TimeWindowExclude}
	out, dec := b.ArrangeURIs(desc, uris(), at)
	if len(out) != 0 {
		t.Fatalf("outside-window exclude = %v", out)
	}
	if dec.TimeWindowOK {
		t.Fatal("window reported ok")
	}
	// Inside the window, filtering runs normally.
	out, _ = b.ArrangeURIs(desc, uris(), t0)
	if len(out) != 1 || out[0] != uriThermo {
		t.Fatalf("inside-window = %v", out)
	}
}

func TestWindowOnlyConstraintServesStockInsideWindow(t *testing.T) {
	desc := `<constraint><starttime>1000</starttime><endtime>1200</endtime></constraint>`
	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeURIs(desc, uris(), t0)
	if len(out) != 3 || dec.Filtered {
		t.Fatalf("window-only = %v, %+v", out, dec)
	}
}

func TestFreshnessCutoff(t *testing.T) {
	tab := table()
	// thermo's row is 2 minutes old.
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0.Add(-2 * time.Minute)})
	b := &Balancer{Table: tab, Policy: PolicyFilter, Freshness: time.Minute}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 0 {
		t.Fatalf("stale row used: %v", out)
	}
	if dec.Unknown() != 2 { // thermo stale + romulus missing
		t.Fatalf("unknown = %d", dec.Unknown())
	}
	// Without the cutoff the stale row is trusted.
	b.Freshness = 0
	out, _ = b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 1 || out[0] != uriThermo {
		t.Fatalf("no-cutoff = %v", out)
	}
}

func TestFailedRowTreatedAsUnknown(t *testing.T) {
	tab := table()
	tab.RecordFailure("thermo.sdsu.edu", t0)
	b := &Balancer{Table: tab, Policy: PolicyFilter}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 0 {
		t.Fatalf("failed host served: %v", out)
	}
	if dec.Unknown() != 2 {
		t.Fatalf("unknown = %d", dec.Unknown())
	}
}

func TestFallbackAllServesLoadOrdered(t *testing.T) {
	tab := store.NewNodeStateTable()
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 5, MemoryB: 1, SwapB: 1, Updated: t0})
	tab.Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 2, MemoryB: 1, SwapB: 1, Updated: t0})
	b := &Balancer{Table: tab, Policy: PolicyFilter, FallbackAll: true}
	out, dec := b.ArrangeURIs(constrained, uris(), t0)
	if !dec.FellBack {
		t.Fatal("no fallback recorded")
	}
	// exergy (2) before thermo (5), unknown romulus last.
	if len(out) != 3 || out[0] != uriExergy || out[1] != uriThermo || out[2] != uriRomulus {
		t.Fatalf("fallback order = %v", out)
	}
	// Without fallback: empty.
	b.FallbackAll = false
	out, _ = b.ArrangeURIs(constrained, uris(), t0)
	if len(out) != 0 {
		t.Fatalf("no-fallback = %v", out)
	}
}

func TestArrangeService(t *testing.T) {
	svc := rim.NewService("Adder", constrained)
	svc.AddBinding(uriExergy)
	svc.AddBinding(uriThermo)
	tb := rim.NewServiceBinding(svc.ID, "")
	tb.TargetBindingID = "urn:uuid:elsewhere" // URI-less binding is skipped
	svc.Bindings = append(svc.Bindings, tb)

	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeService(svc, t0)
	if len(out) != 1 || out[0].AccessURI != uriThermo {
		t.Fatalf("ArrangeService = %v", out)
	}
	if dec.Eligible() != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	// Original service order untouched.
	if svc.Bindings[0].AccessURI != uriExergy {
		t.Fatal("ArrangeService mutated the service")
	}
}

func TestDecisionVerdictStringAndPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyStock: "stock", PolicyFilter: "filter", PolicyRankFirst: "rank-first",
		PolicyLeastLoaded: "least-loaded", Policy(9): "unknown-policy",
	} {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q", int(p), p.String())
		}
	}
	for v, want := range map[Verdict]string{
		VerdictEligible: "eligible", VerdictIneligible: "ineligible", VerdictUnknown: "unknown",
	} {
		if v.String() != want {
			t.Errorf("verdict string %q", v.String())
		}
	}
}

func TestSwapConstraintEnforced(t *testing.T) {
	tab := store.NewNodeStateTable()
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.1, MemoryB: 4 << 30, SwapB: 1 << 20, Updated: t0})
	desc := `<constraint><swapmemory>swapmemory gr 5MB</swapmemory></constraint>`
	b := &Balancer{Table: tab, Policy: PolicyFilter}
	out, _ := b.ArrangeURIs(desc, []string{uriThermo}, t0)
	if len(out) != 0 {
		t.Fatalf("swap-starved host served: %v", out)
	}
	tab.Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.1, MemoryB: 4 << 30, SwapB: 10 << 20, Updated: t0})
	out, _ = b.ArrangeURIs(desc, []string{uriThermo}, t0)
	if len(out) != 1 {
		t.Fatalf("swap-rich host excluded: %v", out)
	}
}

func TestEmptyURIList(t *testing.T) {
	b := &Balancer{Table: table(), Policy: PolicyFilter}
	out, dec := b.ArrangeURIs(constrained, nil, t0)
	if len(out) != 0 || dec.Eligible() != 0 {
		t.Fatalf("empty input: %v %+v", out, dec)
	}
}
