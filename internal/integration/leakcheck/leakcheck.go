// Package leakcheck is a stdlib-only runtime goroutine-leak detector for
// integration tests: snapshot the live goroutines when the test starts,
// and at the end (via the returned closer) verify that every goroutine
// created since has exited. It is the dynamic complement to the gorolife
// static analyzer — gorolife proves each spawn site has a shutdown path;
// leakcheck proves the path was actually taken.
//
// Goroutines are identified by the id in their runtime.Stack header, so a
// pre-existing goroutine can never be misattributed to the test. Known
// system goroutines (the testing framework, runtime background workers,
// net/http's keep-alive connection pool, httptest's accept loop) are
// filtered: they live across tests by design. The closer retries with a
// short backoff before failing, since a goroutine observed mid-teardown
// may need a scheduler beat to finish unwinding.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

// maxAttempts x backoff bounds how long the closer waits for goroutines
// to unwind before declaring a leak (~1s worst case).
const (
	maxAttempts = 20
	backoff     = 50 * time.Millisecond
)

// Check snapshots the current goroutines and returns a closer to defer:
// it fails t with the offending stacks if goroutines spawned during the
// test are still running when called.
func Check(t testing.TB) func() {
	t.Helper()
	before := make(map[string]bool)
	for _, g := range stacks() {
		before[g.id] = true
	}
	return func() {
		t.Helper()
		var leaked []goroutine
		for attempt := 0; attempt < maxAttempts; attempt++ {
			leaked = leaked[:0]
			for _, g := range stacks() {
				if before[g.id] || g.system() {
					continue
				}
				leaked = append(leaked, g)
			}
			if len(leaked) == 0 {
				return
			}
			simclock.Real{}.Sleep(backoff)
		}
		for _, g := range leaked {
			t.Errorf("leakcheck: goroutine leaked:\n%s", g.text)
		}
	}
}

// goroutine is one parsed stanza of a runtime.Stack(all=true) dump.
type goroutine struct {
	id   string // numeric id from the "goroutine N [state]:" header
	text string // full stanza including the header
}

// systemMarkers identify goroutines owned by the runtime, the testing
// framework, or shared process-lifetime pools — never by the code under
// test.
var systemMarkers = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"created by runtime.",
	"runtime.ReadTrace",
	"signal.signal_recv",
	"os/signal.loop",
	// net/http's keep-alive pool: connections outlive a single test by
	// design and are reaped by the transport, not the test.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"created by net/http.(*Transport).dialConn",
}

func (g goroutine) system() bool {
	for _, m := range systemMarkers {
		if strings.Contains(g.text, m) {
			return true
		}
	}
	return false
}

// stacks dumps and parses all goroutine stacks. The buffer doubles until
// the dump fits, like pprof's writeGoroutineStacks.
func stacks() []goroutine {
	buf := make([]byte, 64<<10)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		stanza = strings.TrimSpace(stanza)
		if !strings.HasPrefix(stanza, "goroutine ") {
			continue
		}
		header := stanza[len("goroutine "):]
		sp := strings.IndexByte(header, ' ')
		if sp < 0 {
			continue
		}
		out = append(out, goroutine{id: header[:sp], text: stanza})
	}
	return out
}
