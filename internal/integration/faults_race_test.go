package integration

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// TestBreakerTripsUnderConcurrentDiscovery mixes the fault-tolerance
// machinery's writers and readers: a fault-injected collector tripping and
// resetting per-host breakers, discovery queries classifying (and
// degrading over) the same NodeState rows, health/telemetry snapshots for
// the web UI, and the manual clock advancing under all of them. Like the
// other race tests it asserts only error-freedom and final invariants —
// its job is to make `go test -race` fail if the breaker set, fault
// injector, telemetry gauges, or health columns ever drop their locking
// discipline.
func TestBreakerTripsUnderConcurrentDiscovery(t *testing.T) {
	clk := simclock.NewManual(t0)
	cluster := hostsim.NewCluster()
	hosts := []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu", "volta.sdsu.edu"}
	for _, name := range hosts {
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, t0))
	}

	// Half the cluster drops NodeStatus invocations and flaps hard enough
	// that breakers trip and recover repeatedly during the run. Only
	// non-blocking faults appear: CollectOnce runs on callers' goroutines
	// here, and nothing coordinates clock advances with sweeps.
	invoker := faults.New(
		nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
		faults.Plan{
			Hosts:      hosts[:2],
			DropRate:   0.5,
			FlapPeriod: 10 * time.Second,
			FlapDuty:   0.5,
			Seed:       42,
		})
	reg, err := registry.New(registry.Config{
		Clock:         clk,
		Policy:        core.PolicyLeastLoaded,
		FallbackAll:   true,
		Degraded:      core.DegradedStatic,
		Invoker:       invoker,
		InvokeRetries: 1,
		Breaker:       &breaker.Config{Threshold: 2, BaseBackoff: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("race", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	worker := rim.NewService("Worker", `<constraint><cpuLoad>load ls 4.0</cpuLoad></constraint>`)
	for _, name := range hosts {
		ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
		worker.AddBinding("http://" + name + ":8080/Worker/workerService")
	}
	if _, err := conn.Submit(ns, worker); err != nil {
		t.Fatal(err)
	}

	const iters = 40
	var wg sync.WaitGroup
	errCh := make(chan error, 4)

	// Collector writer: sweeps trip breakers, record failures, and set
	// health columns while everyone else reads them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Collector.CollectOnce()
		}
	}()

	// Clock writer: flap windows and breaker probes move under the sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			clk.Advance(time.Second)
		}
	}()

	// Discovery readers: classification sees rows flip between healthy
	// and quarantined mid-run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := conn.ServiceBindings("Worker"); err != nil {
					errCh <- fmt.Errorf("discovery: %w", err)
					return
				}
			}
		}()
	}

	// Health readers: the web UI's status page, compressed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = reg.Collector.HealthSnapshot()
			_ = reg.Collector.FaultStats()
			_ = reg.Breakers.Snapshot()
			_ = reg.Telemetry.BreakerState.Snapshot()
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	stats := reg.Collector.FaultStats()
	if stats.Sweeps != iters {
		t.Fatalf("sweeps = %d, want %d", stats.Sweeps, iters)
	}
	if stats.Errs == 0 {
		t.Fatal("fault injector left no sweep errors")
	}
	if n := reg.Store.NodeState().Len(); n != len(hosts) {
		t.Fatalf("NodeState rows = %d, want %d", n, len(hosts))
	}
	// The injector only ever targeted the first two hosts; the healthy
	// half must have stayed untouched by faults and breakers.
	for _, hs := range reg.Breakers.Snapshot() {
		if hs.Host != hosts[0] && hs.Host != hosts[1] && hs.Trips != 0 {
			t.Fatalf("healthy host %s tripped its breaker: %+v", hs.Host, hs)
		}
	}
}
