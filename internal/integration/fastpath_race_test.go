package integration

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// TestConstraintCacheInvalidationUnderRace interleaves LCM description
// edits — each tightening the constraint's load bound to a new value —
// with concurrent GetServiceBindings calls, and asserts discovery never
// serves a constraint parsed from a stale description: each reader's
// observed bound is monotonically non-decreasing, never ahead of the last
// edit started, and the final read sees the final edit. The hash-keyed
// cache makes serving an old parse for a new description structurally
// impossible; this test is the dynamic check on that claim (run it under
// `go test -race`).
func TestConstraintCacheInvalidationUnderRace(t *testing.T) {
	clk := simclock.NewManual(t0)
	reg, err := registry.New(registry.Config{Clock: clk, Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	ctx := reg.AdminContext()
	descFor := func(k int) string {
		return fmt.Sprintf("Worker rev %d <constraint><cpuLoad>load ls %d.0</cpuLoad></constraint>", k, k)
	}
	svc := rim.NewService("Worker", descFor(1))
	svc.AddBinding("http://thermo.sdsu.edu:8080/Worker/workerService")
	if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.5, Updated: t0})

	const kMax = 60
	var lastStarted atomic.Int64
	lastStarted.Store(1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 2; k <= kMax; k++ {
			lastStarted.Store(int64(k))
			up := rim.NewService("Worker", descFor(k))
			up.ID = svc.ID
			up.AddBinding("http://thermo.sdsu.edu:8080/Worker/workerService")
			if err := reg.LCM.UpdateObjects(ctx, up); err != nil {
				t.Errorf("update %d: %v", k, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := 0
			for i := 0; i < 200; i++ {
				uris, dec, err := reg.QM.GetServiceBindings(svc.ID)
				if err != nil {
					t.Errorf("bindings: %v", err)
					return
				}
				if dec.Constraint == nil || dec.Constraint.CPULoad == nil {
					t.Error("constraint missing from decision")
					return
				}
				k := int(dec.Constraint.CPULoad.Value)
				if k < prev {
					t.Errorf("observed bound went backwards: %d after %d", k, prev)
					return
				}
				if started := int(lastStarted.Load()); k > started {
					t.Errorf("observed bound %d ahead of last started edit %d", k, started)
					return
				}
				prev = k
				if len(uris) != 1 {
					t.Errorf("uris = %v (bound %d, load 0.5)", uris, k)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Settled state: the final description is served, and a repeat read
	// comes from the cache.
	_, dec, err := reg.QM.GetServiceBindings(svc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(dec.Constraint.CPULoad.Value); got != kMax {
		t.Fatalf("final bound = %d, want %d", got, kMax)
	}
	_, dec2, err := reg.QM.GetServiceBindings(svc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !dec2.ConstraintCached {
		t.Fatal("settled repeat read should hit the constraint cache")
	}
	if reg.ConstraintCache.Hits.Value() == 0 {
		t.Fatal("cache never hit during the run")
	}
}

// TestDiscoveryVsCollectorStress runs discovery reads against a live
// collector sweeping a simulated cluster, with a positive SnapshotMaxAge
// so reads stay on the lock-free RCU snapshot while sweeps rewrite the
// table. Run under `go test -race`; the assertions are error-freedom plus
// every filtered decision carrying a snapshot generation.
func TestDiscoveryVsCollectorStress(t *testing.T) {
	clk := simclock.NewManual(t0)
	cluster := hostsim.NewCluster()
	hosts := []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu"}
	for _, name := range hosts {
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, t0))
	}
	reg, err := registry.New(registry.Config{
		Clock:          clk,
		Policy:         core.PolicyFilter,
		SnapshotMaxAge: 25 * time.Second,
		Invoker:        nodestatus.LocalInvoker{Cluster: cluster, Clock: clk},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := reg.AdminContext()
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	worker := rim.NewService("Worker", `<constraint><cpuLoad>load ls 4.0</cpuLoad></constraint>`)
	for _, name := range hosts {
		ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
		worker.AddBinding("http://" + name + ":8080/Worker/workerService")
	}
	if err := reg.LCM.SubmitObjects(ctx, ns, worker); err != nil {
		t.Fatal(err)
	}

	const iters = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Collector.CollectOnce()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			clk.Advance(time.Second)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, dec, err := reg.QM.GetServiceBindings(worker.ID)
				if err != nil {
					t.Errorf("bindings: %v", err)
					return
				}
				if dec.Filtered && dec.SnapshotGen == 0 {
					t.Error("filtered decision without a snapshot generation")
					return
				}
			}
		}()
	}
	wg.Wait()

	if sweeps, _ := reg.Collector.Stats(); sweeps != iters {
		t.Fatalf("sweeps = %d, want %d", sweeps, iters)
	}
	if _, err := reg.Store.ServiceView(worker.ID); errors.Is(err, store.ErrNotFound) {
		t.Fatal("worker vanished")
	}
}
