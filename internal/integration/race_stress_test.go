package integration

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/uddi"
)

// TestGuardedStateUnderRace drives the three concurrent mutators of the
// scheme's shared state at once — the NodeState collector sweeping hosts,
// discovery queries reading the balancer's view, and LCM publishes
// rewriting the service graph — while the manual clock advances under
// them. It asserts nothing beyond error-freedom: its job is to make
// `go test -race` fail if the `// guarded by mu` discipline that
// lockcheck enforces statically ever regresses dynamically.
func TestGuardedStateUnderRace(t *testing.T) {
	clk := simclock.NewManual(t0)
	reg, err := registry.New(registry.Config{Clock: clk, Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	cluster := hostsim.NewCluster()
	hosts := []string{"thermo.sdsu.edu", "exergy.sdsu.edu", "romulus.sdsu.edu"}
	for _, name := range hosts {
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, t0))
	}

	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("race", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	worker := rim.NewService("Worker", `<constraint><cpuLoad>load ls 4.0</cpuLoad></constraint>`)
	for _, name := range hosts {
		ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
		worker.AddBinding("http://" + name + ":8080/Worker/workerService")
	}
	if _, err := conn.Submit(ns, worker); err != nil {
		t.Fatal(err)
	}
	collector := nodestate.New(reg.Store.NodeState(),
		nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
		reg.QM.CollectionTargets)

	const iters = 40
	var wg sync.WaitGroup
	errCh := make(chan error, 4)

	// NodeState writer: the registry's 25 s poller, compressed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			collector.CollectOnce()
		}
	}()

	// Clock writer: time marches while everyone reads it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			clk.Advance(time.Second)
		}
	}()

	// Discovery readers: the balancer consults NodeState on every query.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := conn.ServiceBindings("Worker"); err != nil {
					errCh <- fmt.Errorf("discovery: %w", err)
					return
				}
			}
		}()
	}

	// LCM publishers: the service graph churns underneath discovery.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				org := rim.NewOrganization(fmt.Sprintf("RaceOrg-%d-%d", p, i))
				if _, err := conn.Submit(org); err != nil {
					errCh <- fmt.Errorf("publish: %w", err)
					return
				}
				if i%2 == 0 {
					if err := conn.Remove(org.ID); err != nil {
						errCh <- fmt.Errorf("remove: %w", err)
						return
					}
				}
			}
		}(p)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := reg.Store.NodeState().Len(); n != len(hosts) {
		t.Fatalf("NodeState rows = %d, want %d", n, len(hosts))
	}
}

// TestUDDIStateUnderRace hammers the UDDI comparator's three lazily
// created shared tables — custody tokens, subscriptions, and the change
// log — from concurrent publishers and pollers on a manual clock.
func TestUDDIStateUnderRace(t *testing.T) {
	clk := simclock.NewManual(t0)
	r := uddi.NewWithClock(clk)

	const workers = 4
	const iters = 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tok := r.GetAuthToken(fmt.Sprintf("pub-%d", w))
			subID, err := r.SaveSubscription(tok, "%Race%")
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < iters; i++ {
				be := &uddi.BusinessEntity{Name: fmt.Sprintf("Race-%d-%d", w, i)}
				if _, err := r.SaveBusiness(tok, be); err != nil {
					errCh <- err
					return
				}
				if transfer, err := r.GetTransferToken(tok, be.BusinessKey); err != nil {
					errCh <- err
					return
				} else if i%3 == 0 {
					r.DiscardTransferToken(transfer)
				}
				if _, err := r.GetSubscriptionResults(tok, subID); err != nil {
					errCh <- err
					return
				}
				_ = r.FindBusiness("Race%")
			}
		}(w)
	}

	// The clock moves while publishers stamp change records against it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			clk.Advance(time.Second)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
