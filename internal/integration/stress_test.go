// Package integration holds cross-package end-to-end tests that would
// create import cycles if they lived next to the packages they exercise.
package integration

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// TestConcurrentClientsOverSOAP hammers the registry's full HTTP surface
// from many goroutines at once: publishers submitting and removing
// organizations+services, readers running ad-hoc queries and discoveries,
// and the collector path writing NodeState — the concurrency profile of a
// production registry under an MTC application.
func TestConcurrentClientsOverSOAP(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	reg, err := registry.New(registry.Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	const publishers = 4
	const readers = 4
	const rounds = 25

	var wg sync.WaitGroup
	errCh := make(chan error, publishers+readers+1)

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn := jaxr.Connect(srv.URL, srv.Client())
			creds, _, err := conn.Register(fmt.Sprintf("pub-%d", p), "pw", rim.PersonName{})
			if err != nil {
				errCh <- err
				return
			}
			if err := conn.Login(creds); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < rounds; i++ {
				org := rim.NewOrganization(fmt.Sprintf("StressOrg-%d-%d", p, i))
				svc := rim.NewService(fmt.Sprintf("StressSvc-%d-%d", p, i),
					`<constraint><cpuLoad>load ls 5.0</cpuLoad></constraint>`)
				svc.AddBinding(fmt.Sprintf("http://h%d.sdsu.edu:8080/s%d", p, i))
				assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
				if _, err := conn.Submit(org, svc, assoc); err != nil {
					errCh <- fmt.Errorf("publisher %d round %d submit: %w", p, i, err)
					return
				}
				if i%3 == 0 {
					if err := conn.Remove(org.ID); err != nil {
						errCh <- fmt.Errorf("publisher %d round %d remove: %w", p, i, err)
						return
					}
				}
			}
		}(p)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conn := jaxr.Connect(srv.URL, srv.Client())
			for i := 0; i < rounds*2; i++ {
				if _, err := conn.Find("Service", "StressSvc-%"); err != nil {
					errCh <- fmt.Errorf("reader %d find: %w", r, err)
					return
				}
				if _, err := conn.AdhocQuery("SELECT s.name FROM Service s WHERE s.name LIKE 'StressSvc-%' LIMIT 5", nil); err != nil {
					errCh <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				// Discovery may miss (service deleted concurrently) —
				// only transport errors matter.
				conn.ServiceBindings(fmt.Sprintf("StressSvc-%d-%d", i%publishers, i%rounds))
			}
		}(r)
	}

	// Concurrent NodeState writes, as the collector would produce.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*4; i++ {
			reg.Store.NodeState().Upsert(store.NodeState{
				Host: fmt.Sprintf("h%d.sdsu.edu", i%publishers), Load: float64(i % 7),
				MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
			})
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The survivors are consistent: every remaining service's offering
	// association resolves, and no association dangles.
	for _, o := range reg.Store.ByType(rim.TypeAssociation) {
		a := o.(*rim.Association)
		if !reg.Store.Has(a.SourceID) || !reg.Store.Has(a.TargetID) {
			t.Errorf("dangling association %s: %s -> %s", a.ID, a.SourceID, a.TargetID)
		}
	}
}
