package integration

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/hostsim"
	"repro/internal/integration/leakcheck"
	"repro/internal/jaxr"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// newLeakRegistry builds a registry with one logged-in local connection
// and a published service, the minimal state the three lifecycle tests
// below need.
func newLeakRegistry(t *testing.T, clk simclock.Clock, service string) (*registry.Registry, *jaxr.Connection) {
	t.Helper()
	reg, err := registry.New(registry.Config{Clock: clk, Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("leak", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService(service, "leakcheck fixture service")
	svc.AddBinding("http://thermo.sdsu.edu:8080/" + service + "/service")
	if _, err := conn.Submit(svc); err != nil {
		t.Fatal(err)
	}
	return reg, conn
}

// TestCollectorRunStopsCleanly starts the NodeState collector's Run loop
// in its own goroutine — the registry's long-lived 25 s poller — cancels
// its context, and verifies via leakcheck that the goroutine actually
// exited. This is the dynamic proof of the shutdown path gorolife only
// checks statically.
func TestCollectorRunStopsCleanly(t *testing.T) {
	defer leakcheck.Check(t)()

	clk := simclock.NewManual(t0)
	reg, _ := newLeakRegistry(t, clk, nodestatus.ServiceName)
	cluster := hostsim.NewCluster()
	cluster.Add(hostsim.NewHost(hostsim.Config{
		Name: "thermo.sdsu.edu", Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
	}, t0))

	collector := nodestate.New(reg.Store.NodeState(),
		nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
		reg.QM.CollectionTargets)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		collector.Run(ctx)
	}()
	cancel()
	<-done
}

// TestFederationFindJoinsWorkers fans a federated Find out across two
// member registries and relies on leakcheck to prove the per-member
// worker goroutines are joined before Find returns.
func TestFederationFindJoinsWorkers(t *testing.T) {
	defer leakcheck.Check(t)()

	clk := simclock.NewManual(t0)
	_, connA := newLeakRegistry(t, clk, "CampusWorker")
	_, connB := newLeakRegistry(t, clk, "HospitalWorker")

	fed, err := federation.New(
		federation.Member{Name: "campus", Conn: connA},
		federation.Member{Name: "hospital", Conn: connB},
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := fed.Find("Service", "%")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("federated find returned no services")
	}
}

// TestRegistryServeShutdown serves a registry over HTTP, runs a discovery
// query through it, and shuts the server down; leakcheck verifies the
// handler and transport goroutines are gone afterwards.
func TestRegistryServeShutdown(t *testing.T) {
	defer leakcheck.Check(t)()

	clk := simclock.NewManual(t0)
	reg, _ := newLeakRegistry(t, clk, "Worker")
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	conn := jaxr.Connect(srv.URL, srv.Client())
	creds, _, err := conn.Register("remote", "pw", rim.PersonName{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ServiceBindings("Worker"); err != nil {
		t.Fatal(err)
	}
	srv.Client().CloseIdleConnections()
}
