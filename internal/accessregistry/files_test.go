package accessregistry

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// TestNewFromFilesEndToEnd exercises the thesis's actual invocation shape:
// a connection.xml pointing at a live registry URL and a keystore file on
// disk, plus an action.xml — the "java SampleProject action.xml
// connection.xml" flow of §3.4.5, over real HTTP.
func TestNewFromFilesEndToEnd(t *testing.T) {
	reg, err := registry.New(registry.Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Registration wizard: obtain credentials from the live registry and
	// import them into a keystore file (§3.4.2–3.4.3).
	wizard := jaxr.Connect(srv.URL, srv.Client())
	creds, _, err := wizard.Register("gold", "gold123", rim.PersonName{FirstName: "S"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ksPath := filepath.Join(dir, "keystore.jks")
	ks := auth.NewKeystore()
	ks.Import(creds)
	f, err := os.Create(ksPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ks.Save(f, "gold123"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	connPath := filepath.Join(dir, "connection.xml")
	connXML := fmt.Sprintf(`<?xml version="1.0" encoding="UTF-8"?>
<connection>
 <user><alias>gold</alias><password>gold123</password></user>
 <url>%s</url>
 <keystore>%s</keystore>
</connection>`, srv.URL, ksPath)
	if err := os.WriteFile(connPath, []byte(connXML), 0o600); err != nil {
		t.Fatal(err)
	}

	actionPath := filepath.Join(dir, "PublishToRegistry.xml")
	if err := os.WriteFile(actionPath, []byte(publishXML), 0o600); err != nil {
		t.Fatal(err)
	}

	r, err := NewFromFiles(connPath, actionPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PublishedOrgIDs) != 1 {
		t.Fatalf("published = %v", res.PublishedOrgIDs)
	}
	// The organization really landed in the remote registry.
	if _, err := reg.QM.GetOrganizationByName("San Diego State University (SDSU)"); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromFilesErrors(t *testing.T) {
	dir := t.TempDir()
	conn := filepath.Join(dir, "connection.xml")
	action := filepath.Join(dir, "action.xml")
	os.WriteFile(action, []byte(publishXML), 0o600)

	// Missing connection file.
	if _, err := NewFromFiles(conn, action); err == nil {
		t.Fatal("missing connection accepted")
	}
	// Connection without keystore cannot dial.
	os.WriteFile(conn, []byte(`<connection><user><alias>a</alias></user><url>http://127.0.0.1:1</url></connection>`), 0o600)
	if _, err := NewFromFiles(conn, action); err == nil {
		t.Fatal("keystore-less dial accepted")
	}
	// Keystore path that does not exist.
	os.WriteFile(conn, []byte(`<connection><user><alias>a</alias></user><url>http://127.0.0.1:1</url><keystore>/nope/ks</keystore></connection>`), 0o600)
	if _, err := NewFromFiles(conn, action); err == nil {
		t.Fatal("ghost keystore accepted")
	}
	// Keystore exists but password (from connection.xml) is wrong.
	ksPath := filepath.Join(dir, "ks")
	ks := auth.NewKeystore()
	c, _ := auth.GenerateCredentials("a", t0)
	ks.Import(c)
	f, _ := os.Create(ksPath)
	ks.Save(f, "correct")
	f.Close()
	os.WriteFile(conn, []byte(fmt.Sprintf(
		`<connection><user><alias>a</alias><password>wrong</password></user><url>http://127.0.0.1:1</url><keystore>%s</keystore></connection>`, ksPath)), 0o600)
	if _, err := NewFromFiles(conn, action); err == nil {
		t.Fatal("wrong keystore password accepted")
	}
	// Missing action file.
	os.Remove(action)
	goodConn := filepath.Join(dir, "good.xml")
	os.WriteFile(goodConn, []byte(`<connection><user><alias>a</alias></user><url>http://x/</url></connection>`), 0o600)
	if _, err := NewFromFiles(goodConn, action); err == nil {
		t.Fatal("missing action file accepted")
	}
}
