// Package accessregistry reproduces the thesis's AccessRegistry API
// (§3.4.4.2): an XML-driven client that publishes, modifies, and accesses
// registry contents without exposing the JAXR layer. The caller supplies
// two XML documents — connection.xml (alias/password, registry URL,
// keystore path) and an action document governed by RegistryAccess.dtd —
// and calls Execute, which returns the thesis's nested result lists
// (Fig. 3.51): organization ids for published objects, organization ids
// for modified objects, and access URIs for accessed Web Services.
package accessregistry

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// Action type attribute values (Table 3.4).
const (
	ActionPublish = "publish"
	ActionAccess  = "access"
	ActionModify  = "modify"
)

// Element-level type attribute values.
const (
	OpAdd    = "add"
	OpEdit   = "edit"
	OpDelete = "delete"
)

// ConnectionConfig is the parsed connection.xml.
type ConnectionConfig struct {
	Alias    string
	Password string
	URL      string
	Keystore string
}

type xmlConnection struct {
	XMLName  struct{} `xml:"connection"`
	User     xmlUser  `xml:"user"`
	URL      string   `xml:"url"`
	Keystore string   `xml:"keystore"`
}

type xmlUser struct {
	Alias    string `xml:"alias"`
	Password string `xml:"password"`
}

// ParseConnection reads a connection.xml document.
func ParseConnection(r io.Reader) (*ConnectionConfig, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("accessregistry: read connection: %w", err)
	}
	var x xmlConnection
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("accessregistry: parse connection.xml: %w", err)
	}
	cfg := &ConnectionConfig{
		Alias:    strings.TrimSpace(x.User.Alias),
		Password: strings.TrimSpace(x.User.Password),
		URL:      strings.TrimSpace(x.URL),
		Keystore: strings.TrimSpace(x.Keystore),
	}
	if cfg.Alias == "" {
		return nil, fmt.Errorf("accessregistry: connection.xml missing user alias")
	}
	if cfg.URL == "" {
		return nil, fmt.Errorf("accessregistry: connection.xml missing registry url")
	}
	return cfg, nil
}

// ParseConnectionFile reads connection.xml from a path.
func ParseConnectionFile(path string) (*ConnectionConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConnection(f)
}

// Document is a parsed action document (the root element of
// RegistryAccess.dtd).
type Document struct {
	Actions []Action
}

// Action is one <action> element.
type Action struct {
	Type          string
	Organizations []Organization
}

// Organization is one <organization> element.
type Organization struct {
	Type        string // "" or "delete" (Table 3.6: delete is the only org-level op)
	Name        string
	Description *Description
	Address     *PostalAddress
	Telephone   *Telephone
	Services    []Service
}

// Description carries the description text — which may embed a
// <constraint> block — and its modification op.
type Description struct {
	Type string // "", add, edit, delete
	Text string // raw inner XML, preserving constraint markup
}

// PostalAddress mirrors the <postaladdress> children.
type PostalAddress struct {
	StreetNumber string `xml:"streetnumber"`
	Street       string `xml:"street"`
	City         string `xml:"city"`
	State        string `xml:"state"`
	Country      string `xml:"country"`
	PostalCode   string `xml:"postalcode"`
	Type         string `xml:"type"`
}

// Telephone mirrors the <telephone> children.
type Telephone struct {
	CountryCode string `xml:"countrycode"`
	AreaCode    string `xml:"areacode"`
	Number      string `xml:"number"`
	Type        string `xml:"type"`
}

// Service is one <service> element.
type Service struct {
	Type        string // "", add, edit, delete
	Name        string
	Description *Description
	AccessURIs  []AccessURI
}

// AccessURI is one <accessuri> element; its text may list several
// whitespace-separated URLs, as the thesis's examples do.
type AccessURI struct {
	Type string
	URIs []string
}

// --- XML decoding layer ---------------------------------------------------

type xmlRoot struct {
	XMLName struct{}    `xml:"root"`
	Actions []xmlAction `xml:"action"`
}

type xmlAction struct {
	Type string   `xml:"type,attr"`
	Orgs []xmlOrg `xml:"organization"`
}

type xmlOrg struct {
	Type        string         `xml:"type,attr"`
	Name        string         `xml:"name"`
	Description *xmlDesc       `xml:"description"`
	Address     *PostalAddress `xml:"postaladdress"`
	Telephone   *Telephone     `xml:"telephone"`
	Services    []xmlService   `xml:"service"`
}

type xmlDesc struct {
	Type  string `xml:"type,attr"`
	Inner string `xml:",innerxml"`
}

type xmlService struct {
	Type        string   `xml:"type,attr"`
	Name        string   `xml:"name"`
	Description *xmlDesc `xml:"description"`
	AccessURIs  []xmlURI `xml:"accessuri"`
}

type xmlURI struct {
	Type string `xml:"type,attr"`
	Text string `xml:",chardata"`
}

// ParseActions reads an action document (PublishToRegistry.xml,
// ModifyRegistry.xml, AccessRegistry.xml, ...), enforcing the
// RegistryAccess.dtd structural rules (Table 3.3): at least one action, at
// least one organization per action, mandatory organization and service
// names, and known type attributes.
func ParseActions(r io.Reader) (*Document, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("accessregistry: read actions: %w", err)
	}
	var x xmlRoot
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("accessregistry: parse action xml: %w", err)
	}
	if len(x.Actions) == 0 {
		return nil, fmt.Errorf("accessregistry: document has no <action> elements")
	}
	doc := &Document{}
	for ai, xa := range x.Actions {
		a := Action{Type: strings.TrimSpace(xa.Type)}
		if a.Type == "" {
			a.Type = ActionAccess // DTD default
		}
		switch a.Type {
		case ActionPublish, ActionAccess, ActionModify:
		default:
			return nil, fmt.Errorf("accessregistry: action %d has unknown type %q", ai, xa.Type)
		}
		if len(xa.Orgs) == 0 {
			return nil, fmt.Errorf("accessregistry: action %d has no <organization>", ai)
		}
		for _, xo := range xa.Orgs {
			org, err := convertOrg(xo)
			if err != nil {
				return nil, err
			}
			a.Organizations = append(a.Organizations, org)
		}
		doc.Actions = append(doc.Actions, a)
	}
	return doc, nil
}

// ParseActionsFile reads an action document from a path.
func ParseActionsFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseActions(f)
}

func convertOrg(xo xmlOrg) (Organization, error) {
	org := Organization{
		Type:      strings.TrimSpace(xo.Type),
		Name:      strings.TrimSpace(xo.Name),
		Address:   xo.Address,
		Telephone: xo.Telephone,
	}
	if org.Name == "" {
		return org, fmt.Errorf("accessregistry: organization without <name>")
	}
	if org.Type != "" && org.Type != OpDelete {
		return org, fmt.Errorf("accessregistry: organization %q: type %q not supported (only delete)", org.Name, org.Type)
	}
	if xo.Description != nil {
		org.Description = convertDesc(xo.Description)
	}
	for _, xs := range xo.Services {
		s := Service{Type: strings.TrimSpace(xs.Type), Name: strings.TrimSpace(xs.Name)}
		if s.Name == "" {
			return org, fmt.Errorf("accessregistry: service without <name> in organization %q", org.Name)
		}
		switch s.Type {
		case "", OpAdd, OpEdit, OpDelete:
		default:
			return org, fmt.Errorf("accessregistry: service %q: unknown type %q", s.Name, xs.Type)
		}
		if xs.Description != nil {
			s.Description = convertDesc(xs.Description)
		}
		for _, xu := range xs.AccessURIs {
			u := AccessURI{Type: strings.TrimSpace(xu.Type), URIs: strings.Fields(xu.Text)}
			switch u.Type {
			case "", OpAdd, OpDelete:
			default:
				return org, fmt.Errorf("accessregistry: accessuri in %q: unknown type %q", s.Name, xu.Type)
			}
			s.AccessURIs = append(s.AccessURIs, u)
		}
		org.Services = append(org.Services, s)
	}
	return org, nil
}

func convertDesc(xd *xmlDesc) *Description {
	d := &Description{Type: strings.TrimSpace(xd.Type), Text: strings.TrimSpace(xd.Inner)}
	return d
}
