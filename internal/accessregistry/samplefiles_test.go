package accessregistry

// TestSampleFilesWalkthrough replays the thesis's full §3.4.5 session from
// the shipped SampleFiles: publish Table 3.7's organizations and services
// from PublishToRegistry.xml, apply every Table 3.8 modification from
// ModifyRegistry.xml, and fetch URIs with AccessRegistry.xml — asserting
// the exact program output the thesis prints ("Service is Deleted",
// "Organization is deleted", the final URI list).

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample(name string) string {
	return filepath.Join("testdata", "SampleFiles", name)
}

func TestSampleConnectionFilesParse(t *testing.T) {
	for _, f := range []string{"ConnectLocal.xml", "ConnectVolta.xml"} {
		cfg, err := ParseConnectionFile(sample(f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if cfg.Alias != "gold" || cfg.Password != "gold123" || cfg.URL == "" || cfg.Keystore == "" {
			t.Fatalf("%s: cfg = %+v", f, cfg)
		}
	}
}

func TestSampleFilesWalkthrough(t *testing.T) {
	reg, boot := harness(t, `<root><action type="publish"><organization><name>Bootstrap</name></organization></action></root>`)
	conn := boot
	run := func(t *testing.T, file string) *Results {
		t.Helper()
		doc, err := ParseActionsFile(sample(file))
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(nil, doc, WithConnection(conn.conn))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// 1. Publish (Table 3.7): three organization ids come back, like the
	// thesis's three "Organization id :- urn:uuid:..." lines.
	pub := run(t, "PublishToRegistry.xml")
	if len(pub.PublishedOrgIDs) != 3 {
		t.Fatalf("published = %v", pub.PublishedOrgIDs)
	}

	// 2. Modify (Table 3.8).
	mod := run(t, "ModifyRegistry.xml")
	for _, wantLog := range []string{
		"Organization is deleted", // DemoOrg_DeleteOrganization
		"Organization Modified",   // DemoOrg_AddDescription
		"ServiceDescription Added",
		"ServiceBinding is added",
		"ServiceBinding is deleted",
		"Service is Deleted",
	} {
		if !hasLog(mod, wantLog) {
			t.Errorf("missing log line %q in %v", wantLog, mod.Log)
		}
	}
	// Expected results column of Table 3.8:
	if _, err := reg.QM.GetOrganizationByName("DemoOrg_DeleteOrganization"); err == nil {
		t.Error("row 1: organization survived")
	}
	if _, err := reg.QM.GetServiceByName("DemoService_Delete"); err == nil {
		t.Error("row 1: offered service survived the cascade")
	}
	org, err := reg.QM.GetOrganizationByName("DemoOrg_AddDescription")
	if err != nil || org.Description.String() == "" {
		t.Errorf("row 2: description missing: %v", err)
	}
	addDesc, _ := reg.QM.GetServiceByName("DemoSrv_AddDescription")
	if addDesc == nil || !strings.Contains(addDesc.Description.String(), "load gt 0.01") {
		t.Error("row 3: service description missing")
	}
	editDesc, _ := reg.QM.GetServiceByName("DemoSrv_EditDescription2")
	if editDesc == nil || strings.Contains(editDesc.Description.String(), "original") ||
		!strings.Contains(editDesc.Description.String(), "load ls 1.0") {
		t.Error("row 4: description not replaced")
	}
	addURI, _ := reg.QM.GetServiceByName("DemoSrv_AddAccessUri")
	if addURI == nil || len(addURI.Bindings) != 2 {
		t.Error("row 5: access uri not added")
	}
	delURI, _ := reg.QM.GetServiceByName("DemoSrv_DeleteAccessUri")
	if delURI == nil || len(delURI.Bindings) != 1 || !strings.Contains(delURI.Bindings[0].AccessURI, "romulus") {
		t.Error("row 6: access uri not deleted")
	}
	if _, err := reg.QM.GetServiceByName("DemoSrv_DeleteService"); err == nil {
		t.Error("row 7: service survived")
	}

	// 3. Access: the §3.4.5 output — romulus for AddAccessUri (added)
	// plus exergy for it, and romulus for DeleteAccessUri (exergy was
	// deleted from it).
	acc := run(t, "AccessRegistry.xml")
	if len(acc.AccessURIs) != 3 {
		t.Fatalf("uris = %v", acc.AccessURIs)
	}
	joined := strings.Join(acc.AccessURIs, " ")
	if !strings.Contains(joined, "romulus") || !strings.Contains(joined, "exergy") {
		t.Fatalf("uris = %v", acc.AccessURIs)
	}
}
