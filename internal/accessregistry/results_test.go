package accessregistry

// TestResultsChapter reproduces thesis Chapter 4 ("RESULTS") scenario by
// scenario, using the exact action.xml documents printed in §4.1–§4.6 and
// asserting the registry state the thesis's screenshots show
// (Figs. 4.1–4.5). This is experiment E4.x of EXPERIMENTS.md.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// section41 is the §4.1 document: publish SDSU with the NodeStatus service.
const section41 = `<root>
 <action type="publish">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <description>
     San Diego State University (SDSU), founded in 1897 as San Diego Normal
     School, is the largest and oldest higher education facility in the
     greater San Diego area, and is part of the California State University
     system.
   </description>
   <postaladdress>
    <streetnumber>5500</streetnumber>
    <street>Campanile Drive</street>
    <city>San Diego</city>
    <postalcode>92182</postalcode>
    <state>CA</state>
    <country>US</country>
   </postaladdress>
   <telephone>
    <countrycode>1</countrycode>
    <areacode>619</areacode>
    <number>5945200</number>
    <type>OfficePhone</type>
   </telephone>
   <service>
    <name>NodeStatus</name>
    <description>Service to monitor node status</description>
    <accessuri>
      http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService
      http://exergy.sdsu.edu:8080/NodeStatus/NodeStatusService
    </accessuri>
   </service>
  </organization>
 </action>
</root>`

// section42 adds ServiceAdder to the published organization (§4.2).
const section42 = `<root>
 <action type="modify">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <service type="add">
    <name>ServiceAdder</name>
    <description>Adds two numbers</description>
    <accessuri>
      http://thermo.sdsu.edu:8080/Adder/addService
      http://exergy.sdsu.edu:8080/Adder/addService
    </accessuri>
   </service>
  </organization>
 </action>
</root>`

// section43 edits ServiceAdder's description to the constraint of Fig. 4.3.
const section43 = `<root>
 <action type="modify">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <service type="edit">
    <name>ServiceAdder</name>
    <description type="edit"><constraint><cpuLoad>load ls 1.0</cpuLoad></constraint></description>
   </service>
  </organization>
 </action>
</root>`

// section44 deletes ServiceAdder (§4.4).
const section44 = `<root>
 <action type="modify">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <service type="delete">
    <name>ServiceAdder</name>
   </service>
  </organization>
 </action>
</root>`

// section45 deletes the organization (§4.5).
const section45 = `<root>
 <action type="modify">
  <organization type="delete">
   <name>San Diego State University (SDSU)</name>
  </organization>
 </action>
</root>`

// section46 accesses ServiceAdder's URIs (§4.6).
const section46 = `<root>
 <action type="access">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <service>
    <name>ServiceAdder</name>
   </service>
  </organization>
 </action>
</root>`

func TestResultsChapter(t *testing.T) {
	reg, err := registry.New(registry.Config{
		Clock:  simclock.NewManual(t0),
		Policy: core.PolicyFilter,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("gold", "gold123", rim.PersonName{FirstName: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	exec := func(t *testing.T, doc string) *Results {
		t.Helper()
		r, err := NewFromReaders(nil, strings.NewReader(doc), WithConnection(conn))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("PublishOrganizationAndWebService", func(t *testing.T) {
		res := exec(t, section41)
		if len(res.PublishedOrgIDs) != 1 {
			t.Fatalf("published = %v", res.PublishedOrgIDs)
		}
		// Fig. 4.1: both the organization and the NodeStatus service
		// appear in search results.
		org, err := reg.QM.GetOrganizationByName("San Diego State University (SDSU)")
		if err != nil {
			t.Fatal(err)
		}
		if org.Addresses[0].Street != "Campanile Drive" || org.Telephones[0].AreaCode != "619" {
			t.Fatalf("org = %+v", org)
		}
		svcs := reg.QM.OfferedServices(org.ID)
		if len(svcs) != 1 || svcs[0].Name.String() != "NodeStatus" {
			t.Fatalf("offered = %+v", svcs)
		}
		if got := svcs[0].AccessURIs(); len(got) != 2 {
			t.Fatalf("uris = %v", got)
		}
	})

	t.Run("AddWebService", func(t *testing.T) {
		exec(t, section42)
		// Fig. 4.2: ServiceAdder now offered by SDSU.
		org, _ := reg.QM.GetOrganizationByName("San Diego State University (SDSU)")
		svcs := reg.QM.OfferedServices(org.ID)
		if len(svcs) != 2 {
			t.Fatalf("offered = %d", len(svcs))
		}
		adder, err := reg.QM.GetServiceByName("ServiceAdder")
		if err != nil || len(adder.Bindings) != 2 {
			t.Fatalf("adder = %+v, %v", adder, err)
		}
	})

	t.Run("EditWebServiceDescription", func(t *testing.T) {
		exec(t, section43)
		// Fig. 4.3: description now shows "load ls 1.0".
		adder, _ := reg.QM.GetServiceByName("ServiceAdder")
		if !strings.Contains(adder.Description.String(), "load ls 1.0") {
			t.Fatalf("description = %q", adder.Description.String())
		}
	})

	t.Run("AccessWebService", func(t *testing.T) {
		// §4.6 runs before the deletes in our ordering so the service
		// still exists. With both hosts satisfying the constraint the
		// two URIs of §4.6's output come back.
		reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.3, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
		reg.Store.NodeState().Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 0.4, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
		res := exec(t, section46)
		if len(res.AccessURIs) != 2 {
			t.Fatalf("uris = %v", res.AccessURIs)
		}
		// Under load, the constrained discovery narrows to one URI —
		// the behaviour Chapter 4 demonstrates implicitly via the
		// constraint added in §4.3.
		reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 2.5, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
		res = exec(t, section46)
		if len(res.AccessURIs) != 1 || !strings.Contains(res.AccessURIs[0], "exergy") {
			t.Fatalf("balanced uris = %v", res.AccessURIs)
		}
	})

	t.Run("DeleteWebService", func(t *testing.T) {
		exec(t, section44)
		// Fig. 4.4: ServiceAdder gone, organization and NodeStatus remain.
		if _, err := reg.QM.GetServiceByName("ServiceAdder"); err == nil {
			t.Fatal("ServiceAdder survived")
		}
		org, err := reg.QM.GetOrganizationByName("San Diego State University (SDSU)")
		if err != nil {
			t.Fatal(err)
		}
		if len(reg.QM.OfferedServices(org.ID)) != 1 {
			t.Fatal("NodeStatus lost")
		}
	})

	t.Run("DeleteOrganization", func(t *testing.T) {
		exec(t, section45)
		// Fig. 4.5: organization and every offered service gone.
		if _, err := reg.QM.GetOrganizationByName("San Diego State University (SDSU)"); err == nil {
			t.Fatal("organization survived")
		}
		if _, err := reg.QM.GetServiceByName("NodeStatus"); err == nil {
			t.Fatal("NodeStatus survived the cascade")
		}
		if got := reg.QM.FindObjects(rim.TypeAssociation, "%"); len(got) != 0 {
			t.Fatalf("dangling associations: %d", len(got))
		}
	})
}
