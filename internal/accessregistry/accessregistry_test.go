package accessregistry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

// harness builds a local registry plus a logged-in AccessRegistry ready to
// run a given action document.
func harness(t *testing.T, actionXML string) (*registry.Registry, *Registry) {
	t.Helper()
	reg, err := registry.New(registry.Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	return reg, withRegistry(t, reg, actionXML)
}

func withRegistry(t *testing.T, reg *registry.Registry, actionXML string) *Registry {
	t.Helper()
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("gold-"+t.Name(), "gold123", rim.PersonName{FirstName: "G"})
	if err != nil {
		// Alias may already exist when a test builds several registries.
		t.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		t.Fatal(err)
	}
	r, err := NewFromReaders(nil, strings.NewReader(actionXML), WithConnection(conn))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// publishXML is the thesis's §4.1 action.xml, verbatim in structure.
const publishXML = `<root>
 <action type="publish">
  <organization>
   <name>San Diego State University (SDSU)</name>
   <description>
    San Diego State University (SDSU), founded in 1897 as San Diego Normal School.
   </description>
   <postaladdress>
    <streetnumber>5500</streetnumber>
    <street>Campanile Drive</street>
    <city>San Diego</city>
    <postalcode>92182</postalcode>
    <state>CA</state>
    <country>US</country>
   </postaladdress>
   <telephone>
    <countrycode>1</countrycode>
    <areacode>619</areacode>
    <number>5945200</number>
    <type>OfficePhone</type>
   </telephone>
   <service>
    <name>NodeStatus</name>
    <description>Service to monitor node status</description>
    <accessuri>
     http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService
     http://exergy.sdsu.edu:8080/NodeStatus/NodeStatusService
    </accessuri>
   </service>
  </organization>
 </action>
</root>`

func TestParseConnectionXML(t *testing.T) {
	// The thesis's ConnectVolta.xml shape.
	doc := `<?xml version="1.0" encoding="UTF-8"?>
<connection>
 <user><alias>gold</alias><password>gold123</password></user>
 <url>https://volta.sdsu.edu:8443/omar/registry/soap</url>
 <keystore>/home/sadhana/omar/3.1/jaxr-ebxml/security/keystore.jks</keystore>
</connection>`
	cfg, err := ParseConnection(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alias != "gold" || cfg.Password != "gold123" || !strings.Contains(cfg.URL, "volta") || !strings.HasSuffix(cfg.Keystore, "keystore.jks") {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Missing pieces are rejected.
	if _, err := ParseConnection(strings.NewReader(`<connection><url>http://x/</url></connection>`)); err == nil {
		t.Fatal("aliasless connection accepted")
	}
	if _, err := ParseConnection(strings.NewReader(`<connection><user><alias>a</alias></user></connection>`)); err == nil {
		t.Fatal("urlless connection accepted")
	}
	if _, err := ParseConnection(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseActionsStructureRules(t *testing.T) {
	bad := []string{
		`<root/>`,                               // no actions
		`<root><action type="publish"/></root>`, // no organization
		`<root><action type="frobnicate"><organization><name>x</name></organization></action></root>`,                                                                  // bad action type
		`<root><action type="publish"><organization></organization></action></root>`,                                                                                   // nameless org
		`<root><action type="publish"><organization type="edit"><name>x</name></organization></action></root>`,                                                         // bad org type
		`<root><action type="modify"><organization><name>x</name><service type="rename"><name>s</name></service></organization></action></root>`,                       // bad service type
		`<root><action type="modify"><organization><name>x</name><service><name>s</name><accessuri type="edit">u</accessuri></service></organization></action></root>`, // bad uri type
		`<root><action type="publish"><organization><name>x</name><service></service></organization></action></root>`,                                                  // nameless service
	}
	for _, doc := range bad {
		if _, err := ParseActions(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseActions accepted %s", doc)
		}
	}
	// Default action type is "access" per the DTD.
	doc, err := ParseActions(strings.NewReader(`<root><action><organization><name>x</name></organization></action></root>`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Actions[0].Type != ActionAccess {
		t.Fatalf("default type = %q", doc.Actions[0].Type)
	}
}

func TestAccessURISplitsWhitespace(t *testing.T) {
	doc, err := ParseActions(strings.NewReader(publishXML))
	if err != nil {
		t.Fatal(err)
	}
	uris := doc.Actions[0].Organizations[0].Services[0].AccessURIs[0].URIs
	if len(uris) != 2 || !strings.Contains(uris[0], "thermo") || !strings.Contains(uris[1], "exergy") {
		t.Fatalf("uris = %v", uris)
	}
}

// TestExecute reproduces Table 3.9 testExecute (PublishTest.java): publish
// an organization with a service and verify through search.
func TestExecute(t *testing.T) {
	reg, r := harness(t, publishXML)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PublishedOrgIDs) != 1 || !rim.IsUUIDURN(res.PublishedOrgIDs[0]) {
		t.Fatalf("published = %v", res.PublishedOrgIDs)
	}
	// Fig. 4.1: the search result shows both organization and service.
	orgs := reg.QM.FindObjects(rim.TypeOrganization, "San Diego State%")
	if len(orgs) != 1 {
		t.Fatalf("orgs = %d", len(orgs))
	}
	org := orgs[0].(*rim.Organization)
	if org.Telephones[0].Number != "5945200" || org.Addresses[0].PostalCode != "92182" {
		t.Fatalf("org details = %+v", org)
	}
	svcs := reg.QM.OfferedServices(org.ID)
	if len(svcs) != 1 || svcs[0].Name.String() != "NodeStatus" || len(svcs[0].Bindings) != 2 {
		t.Fatalf("services = %+v", svcs)
	}
	// The outer result list shape of Fig. 3.51.
	lists := res.Lists()
	if len(lists) != 3 || len(lists[0]) != 1 || len(lists[1]) != 0 || len(lists[2]) != 0 {
		t.Fatalf("lists = %v", lists)
	}
}

// modifyHarness publishes the Table 3.7 fixture and returns the registry.
func modifyHarness(t *testing.T) (*registry.Registry, *jaxr.Connection) {
	t.Helper()
	reg, r := harness(t, `<root>
 <action type="publish">
  <organization>
   <name>DemoOrg_ModifyService</name>
   <service><name>DemoSrv_AddDescription</name>
    <accessuri>http://exergy.sdsu.edu:8080/Adder/addService</accessuri></service>
   <service><name>DemoSrv_EditDescription2</name>
    <description>old description</description>
    <accessuri>http://exergy.sdsu.edu:8080/Adder/addService</accessuri></service>
   <service><name>DemoSrv_AddAccessUri</name>
    <accessuri>http://exergy.sdsu.edu:8080/Adder/addService</accessuri></service>
   <service><name>DemoSrv_DeleteAccessUri</name>
    <accessuri>
      http://exergy.sdsu.edu:8080/Adder/addService
      http://romulus.sdsu.edu:8080/Adder/addService
    </accessuri></service>
   <service><name>DemoSrv_DeleteService</name></service>
  </organization>
 </action>
</root>`)
	if _, err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	return reg, r.conn
}

func runModify(t *testing.T, reg *registry.Registry, conn *jaxr.Connection, actionXML string) *Results {
	t.Helper()
	r, err := NewFromReaders(nil, strings.NewReader(actionXML), WithConnection(conn))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExecute_AddAccessURI reproduces Table 3.9 testExecute_AddAccessURI.
func TestExecute_AddAccessURI(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_AddAccessUri</name>
	    <accessuri type="add">http://romulus.sdsu.edu:8080/Adder/addService</accessuri>
	  </service></organization></action></root>`)
	if !hasLog(res, "ServiceBinding is added") {
		t.Fatalf("log = %v", res.Log)
	}
	svc, err := reg.QM.GetServiceByName("DemoSrv_AddAccessUri")
	if err != nil || len(svc.Bindings) != 2 {
		t.Fatalf("bindings = %d, %v", len(svc.Bindings), err)
	}
}

// TestExecute_DeleteAccessURI reproduces Table 3.9 testExecute_DeleteAccessURI.
func TestExecute_DeleteAccessURI(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_DeleteAccessUri</name>
	    <accessuri type="delete">http://exergy.sdsu.edu:8080/Adder/addService</accessuri>
	  </service></organization></action></root>`)
	if !hasLog(res, "ServiceBinding is deleted") {
		t.Fatalf("log = %v", res.Log)
	}
	svc, _ := reg.QM.GetServiceByName("DemoSrv_DeleteAccessUri")
	if len(svc.Bindings) != 1 || !strings.Contains(svc.Bindings[0].AccessURI, "romulus") {
		t.Fatalf("bindings = %+v", svc.Bindings)
	}
}

// TestExecute_DuplicateAccessURI reproduces Table 3.9
// testExecute_DuplicateAccessURI: adding an existing URI is a no-op.
func TestExecute_DuplicateAccessURI(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_AddAccessUri</name>
	    <accessuri type="add">http://exergy.sdsu.edu:8080/Adder/addService</accessuri>
	  </service></organization></action></root>`)
	if hasLog(res, "ServiceBinding is added") {
		t.Fatalf("duplicate binding added: %v", res.Log)
	}
	svc, _ := reg.QM.GetServiceByName("DemoSrv_AddAccessUri")
	if len(svc.Bindings) != 1 {
		t.Fatalf("bindings = %d", len(svc.Bindings))
	}
}

// TestExecute_AddService reproduces Table 3.9 testExecute_AddService.
func TestExecute_AddService(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service type="add"><name>Adder_AddNew</name>
	    <accessuri>http://thermo.sdsu.edu:8080/Adder/addService</accessuri>
	  </service></organization></action></root>`)
	if !hasLog(res, "Service is Added") {
		t.Fatalf("log = %v", res.Log)
	}
	org, _ := reg.QM.GetOrganizationByName("DemoOrg_ModifyService")
	if len(reg.QM.OfferedServices(org.ID)) != 6 {
		t.Fatalf("offered = %d", len(reg.QM.OfferedServices(org.ID)))
	}
}

// TestExecute_AddServiceDescription reproduces Table 3.9
// testExecute_AddServiceDescription, including a constraint block.
func TestExecute_AddServiceDescription(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_AddDescription</name>
	    <description type="add"><constraint>
	      <cpuLoad>load ls 1.0</cpuLoad>
	      <memory>memory geq 5MB</memory>
	      <swapmemory>swapmemory geq 1GB</swapmemory>
	      <starttime>0700</starttime>
	      <endtime>2200</endtime>
	    </constraint></description>
	  </service></organization></action></root>`)
	if !hasLog(res, "ServiceDescription Added") {
		t.Fatalf("log = %v", res.Log)
	}
	svc, _ := reg.QM.GetServiceByName("DemoSrv_AddDescription")
	if !strings.Contains(svc.Description.String(), "load ls 1.0") {
		t.Fatalf("description = %q", svc.Description.String())
	}
}

// TestExecute_EditServiceDescription covers §4.3's edit flow (Fig. 4.3:
// description replaced by "load ls 1.0" constraint).
func TestExecute_EditServiceDescription(t *testing.T) {
	reg, conn := modifyHarness(t)
	runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service type="edit"><name>DemoSrv_EditDescription2</name>
	    <description type="edit"><constraint><cpuLoad>load ls 1.0</cpuLoad></constraint></description>
	  </service></organization></action></root>`)
	svc, _ := reg.QM.GetServiceByName("DemoSrv_EditDescription2")
	d := svc.Description.String()
	if strings.Contains(d, "old description") || !strings.Contains(d, "load ls 1.0") {
		t.Fatalf("description = %q", d)
	}
}

// TestExecute_DeleteService reproduces Table 3.9 testExecute_DeleteService.
func TestExecute_DeleteService(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service type="delete"><name>DemoSrv_DeleteService</name></service>
	</organization></action></root>`)
	if !hasLog(res, "Service is Deleted") {
		t.Fatalf("log = %v", res.Log)
	}
	if _, err := reg.QM.GetServiceByName("DemoSrv_DeleteService"); err == nil {
		t.Fatal("service survived")
	}
	// The organization survives (Fig. 4.4).
	if _, err := reg.QM.GetOrganizationByName("DemoOrg_ModifyService"); err != nil {
		t.Fatal("organization vanished")
	}
}

// TestExecute_DeleteOrg reproduces Table 3.9 testExecute_DeleteOrg: the
// organization and all its services disappear (Fig. 4.5).
func TestExecute_DeleteOrg(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="modify">
	  <organization type="delete"><name>DemoOrg_ModifyService</name></organization>
	</action></root>`)
	if !hasLog(res, "Organization is deleted") {
		t.Fatalf("log = %v", res.Log)
	}
	if _, err := reg.QM.GetOrganizationByName("DemoOrg_ModifyService"); err == nil {
		t.Fatal("organization survived")
	}
	if _, err := reg.QM.GetServiceByName("DemoSrv_AddDescription"); err == nil {
		t.Fatal("offered service survived the cascade")
	}
}

// TestExecute_Access reproduces Table 3.9 AccessTest.testExecute: fetch
// the access URIs of a service through the API.
func TestExecute_Access(t *testing.T) {
	reg, conn := modifyHarness(t)
	res := runModify(t, reg, conn, `<root><action type="access"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_DeleteAccessUri</name></service>
	</organization></action></root>`)
	if len(res.AccessURIs) != 2 {
		t.Fatalf("uris = %v", res.AccessURIs)
	}
	_ = reg
}

// TestAccessAppliesLoadBalancing: the URIs returned by an access action
// are the balancer-arranged ones (the end-to-end path of Fig. 3.3).
func TestAccessAppliesLoadBalancing(t *testing.T) {
	reg, conn := modifyHarness(t)
	// Constrain DemoSrv_DeleteAccessUri and give the two hosts opposite
	// load states.
	runModify(t, reg, conn, `<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_DeleteAccessUri</name>
	    <description type="edit"><constraint><cpuLoad>load ls 1.0</cpuLoad></constraint></description>
	  </service></organization></action></root>`)
	reg.Store.NodeState().Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 4.0, MemoryB: 1 << 30, SwapB: 1 << 30, Updated: t0})
	reg.Store.NodeState().Upsert(store.NodeState{Host: "romulus.sdsu.edu", Load: 0.1, MemoryB: 1 << 30, SwapB: 1 << 30, Updated: t0})

	res := runModify(t, reg, conn, `<root><action type="access"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>DemoSrv_DeleteAccessUri</name></service>
	</organization></action></root>`)
	if len(res.AccessURIs) != 1 || !strings.Contains(res.AccessURIs[0], "romulus") {
		t.Fatalf("balanced uris = %v", res.AccessURIs)
	}
}

func TestAccessRequiresParentOrganization(t *testing.T) {
	reg, conn := modifyHarness(t)
	// Service exists but belongs to a different organization.
	other, err := NewFromReaders(nil, strings.NewReader(`<root>
	  <action type="publish"><organization><name>OtherOrg</name></organization></action>
	  <action type="access"><organization><name>OtherOrg</name>
	    <service><name>DemoSrv_AddAccessUri</name></service>
	  </organization></action></root>`), WithConnection(conn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Execute(); err == nil || !strings.Contains(err.Error(), "does not belong") {
		t.Fatalf("cross-org access: %v", err)
	}
	// Access without any service element is an error.
	r3, _ := NewFromReaders(nil, strings.NewReader(`<root><action type="access">
	  <organization><name>DemoOrg_ModifyService</name></organization></action></root>`), WithConnection(conn))
	if _, err := r3.Execute(); err == nil {
		t.Fatal("serviceless access accepted")
	}
	_ = reg
}

func TestModifyUnpublishedOrganizationFails(t *testing.T) {
	_, r := harness(t, `<root><action type="modify">
	  <organization><name>NeverPublished</name>
	    <description type="add">text</description>
	  </organization></action></root>`)
	if _, err := r.Execute(); err == nil || !strings.Contains(err.Error(), "must be published first") {
		t.Fatalf("modify unpublished: %v", err)
	}
}

func TestModifyUnpublishedServiceFails(t *testing.T) {
	reg, conn := modifyHarness(t)
	r, _ := NewFromReaders(nil, strings.NewReader(`<root><action type="modify"><organization>
	  <name>DemoOrg_ModifyService</name>
	  <service><name>GhostService</name>
	    <accessuri type="add">http://x.example/</accessuri>
	  </service></organization></action></root>`), WithConnection(conn))
	if _, err := r.Execute(); err == nil || !strings.Contains(err.Error(), "not published") {
		t.Fatalf("modify ghost service: %v", err)
	}
	_ = reg
}

// TestMixedActionsSingleDocument reproduces §3.4.5: publish, modify and
// access combined in one document, with results sorted into the three
// lists.
func TestMixedActionsSingleDocument(t *testing.T) {
	_, r := harness(t, `<root>
	  <action type="publish"><organization><name>MixedOrg</name>
	    <service><name>MixedSvc</name>
	      <accessuri>http://thermo.sdsu.edu:8080/Mixed/svc</accessuri></service>
	  </organization></action>
	  <action type="modify"><organization><name>MixedOrg</name>
	    <description type="add">added later</description>
	  </organization></action>
	  <action type="access"><organization><name>MixedOrg</name>
	    <service><name>MixedSvc</name></service>
	  </organization></action>
	</root>`)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	lists := res.Lists()
	if len(lists[0]) != 1 || len(lists[1]) != 1 || len(lists[2]) != 1 {
		t.Fatalf("lists = %v", lists)
	}
	if lists[0][0] != lists[1][0] {
		t.Fatal("published and modified ids should refer to the same organization")
	}
	if !strings.Contains(lists[2][0], "thermo") {
		t.Fatalf("access uri = %q", lists[2][0])
	}
}

func hasLog(res *Results, substr string) bool {
	for _, l := range res.Log {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}
