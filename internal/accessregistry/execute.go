package accessregistry

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/auth"
	"repro/internal/jaxr"
	"repro/internal/rim"
)

// Results is the structured form of the thesis's nested ArrayList return
// value (Fig. 3.51): per-operation result lists.
type Results struct {
	// PublishedOrgIDs holds the organization id of each published
	// organization ("Organization id :- urn:uuid:...").
	PublishedOrgIDs []string
	// ModifiedOrgIDs holds the organization id owning each modified
	// object.
	ModifiedOrgIDs []string
	// AccessURIs holds the (load-balanced) access URIs for accessed
	// services.
	AccessURIs []string
	// Log carries the human-readable progress lines the thesis's API
	// prints ("Service is Deleted", "key was urn:uuid:...").
	Log []string
}

// Lists renders the outer-list-of-inner-lists shape of Fig. 3.51:
// index 0 = published ids, 1 = modified ids, 2 = access URIs.
func (r *Results) Lists() [][]string {
	return [][]string{r.PublishedOrgIDs, r.ModifiedOrgIDs, r.AccessURIs}
}

// Registry is the thesis's Registry wrapper class: it parses the two XML
// inputs, connects, and executes the requested operations.
type Registry struct {
	conn    *jaxr.Connection
	cfg     *ConnectionConfig
	doc     *Document
	verbose io.Writer
}

// Option customizes construction.
type Option func(*Registry)

// WithConnection supplies a ready (possibly localCall-mode) jaxr
// connection, bypassing the keystore login that NewFromFiles performs.
func WithConnection(c *jaxr.Connection) Option {
	return func(r *Registry) { r.conn = c }
}

// WithLogWriter mirrors the thesis API's stdout progress messages to w.
func WithLogWriter(w io.Writer) Option {
	return func(r *Registry) { r.verbose = w }
}

// New builds a Registry from already-parsed inputs.
func New(cfg *ConnectionConfig, doc *Document, opts ...Option) (*Registry, error) {
	r := &Registry{cfg: cfg, doc: doc}
	for _, o := range opts {
		o(r)
	}
	if r.conn == nil {
		if cfg == nil {
			return nil, fmt.Errorf("accessregistry: no connection configuration")
		}
		conn, err := dial(cfg)
		if err != nil {
			return nil, err
		}
		r.conn = conn
	}
	return r, nil
}

// NewFromReaders parses connection and action documents and builds a
// Registry. Pass a nil connection reader when using WithConnection.
func NewFromReaders(connection, actions io.Reader, opts ...Option) (*Registry, error) {
	var cfg *ConnectionConfig
	if connection != nil {
		var err error
		cfg, err = ParseConnection(connection)
		if err != nil {
			return nil, err
		}
	}
	doc, err := ParseActions(actions)
	if err != nil {
		return nil, err
	}
	return New(cfg, doc, opts...)
}

// NewFromFiles is the thesis's two-filename constructor:
// Registry("connection.xml", "PublishToRegistry.xml").
func NewFromFiles(connectionPath, actionsPath string, opts ...Option) (*Registry, error) {
	cfg, err := ParseConnectionFile(connectionPath)
	if err != nil {
		return nil, err
	}
	doc, err := ParseActionsFile(actionsPath)
	if err != nil {
		return nil, err
	}
	return New(cfg, doc, opts...)
}

// dial connects and logs in using the keystore named by connection.xml.
func dial(cfg *ConnectionConfig) (*jaxr.Connection, error) {
	conn := jaxr.Connect(cfg.URL, http.DefaultClient)
	if cfg.Keystore == "" {
		return nil, fmt.Errorf("accessregistry: connection.xml has no <keystore> and no prebuilt connection was supplied")
	}
	ks := auth.NewKeystore()
	f, err := openKeystore(cfg.Keystore)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := ks.Load(f, keystorePassword(cfg)); err != nil {
		return nil, err
	}
	creds, err := ks.Get(cfg.Alias)
	if err != nil {
		return nil, err
	}
	if err := conn.Login(creds); err != nil {
		return nil, err
	}
	return conn, nil
}

func openKeystore(path string) (io.ReadCloser, error) {
	return os.Open(path)
}

func keystorePassword(cfg *ConnectionConfig) string {
	if cfg.Password != "" {
		return cfg.Password
	}
	return auth.DefaultKeystorePassword
}

func (r *Registry) logf(res *Results, format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	res.Log = append(res.Log, line)
	if r.verbose != nil {
		fmt.Fprintln(r.verbose, line)
	}
}

// Execute runs every action in document order and returns the aggregated
// results — the thesis's execute() method.
func (r *Registry) Execute() (*Results, error) {
	res := &Results{}
	for _, a := range r.doc.Actions {
		for _, org := range a.Organizations {
			var err error
			switch a.Type {
			case ActionPublish:
				err = r.publish(res, org)
			case ActionModify:
				err = r.modify(res, org)
			case ActionAccess:
				err = r.access(res, org)
			}
			if err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// publish creates the organization, its services, bindings and
// OffersService associations.
func (r *Registry) publish(res *Results, spec Organization) error {
	org := rim.NewOrganization(spec.Name)
	if spec.Description != nil {
		org.Description = rim.NewIString(spec.Description.Text)
	}
	if spec.Address != nil {
		org.Addresses = append(org.Addresses, rim.PostalAddress{
			StreetNumber: spec.Address.StreetNumber,
			Street:       spec.Address.Street,
			City:         spec.Address.City,
			State:        spec.Address.State,
			Country:      spec.Address.Country,
			PostalCode:   spec.Address.PostalCode,
			Type:         spec.Address.Type,
		})
	}
	if spec.Telephone != nil {
		org.Telephones = append(org.Telephones, rim.TelephoneNumber{
			CountryCode: spec.Telephone.CountryCode,
			AreaCode:    spec.Telephone.AreaCode,
			Number:      spec.Telephone.Number,
			Type:        spec.Telephone.Type,
		})
	}
	objs := []rim.Object{org}
	for _, s := range spec.Services {
		svc := rim.NewService(s.Name, descriptionText(s.Description))
		for _, u := range s.AccessURIs {
			for _, uri := range u.URIs {
				svc.AddBinding(uri)
			}
		}
		objs = append(objs, svc, rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID))
	}
	if _, err := r.conn.Submit(objs...); err != nil {
		return fmt.Errorf("accessregistry: publish %q: %w", spec.Name, err)
	}
	r.logf(res, "Organization saved")
	r.logf(res, " key was %s", org.ID)
	res.PublishedOrgIDs = append(res.PublishedOrgIDs, org.ID)
	return nil
}

func descriptionText(d *Description) string {
	if d == nil {
		return ""
	}
	return d.Text
}

// modify applies Table 3.6's modification matrix.
func (r *Registry) modify(res *Results, spec Organization) error {
	org, err := r.findOrganization(spec.Name)
	if err != nil {
		return fmt.Errorf("accessregistry: modify: organization %q must be published first: %w", spec.Name, err)
	}

	// Organization-level delete (cascades services server-side).
	if spec.Type == OpDelete {
		if err := r.conn.Remove(org.ID); err != nil {
			return fmt.Errorf("accessregistry: delete organization %q: %w", spec.Name, err)
		}
		r.logf(res, "Organization is deleted")
		r.logf(res, " key was %s", org.ID)
		res.ModifiedOrgIDs = append(res.ModifiedOrgIDs, org.ID)
		return nil
	}

	changed := false
	if spec.Description != nil {
		switch spec.Description.Type {
		case OpAdd, OpEdit, "":
			org.Description = rim.NewIString(spec.Description.Text)
		case OpDelete:
			org.Description = rim.InternationalString{}
		}
		changed = true
	}

	for _, s := range spec.Services {
		if err := r.modifyService(res, org, s); err != nil {
			return err
		}
	}

	if changed {
		if _, err := r.conn.Update(org); err != nil {
			return fmt.Errorf("accessregistry: update organization %q: %w", spec.Name, err)
		}
		r.logf(res, "Organization Modified")
		r.logf(res, " key was %s", org.ID)
	}
	res.ModifiedOrgIDs = append(res.ModifiedOrgIDs, org.ID)
	return nil
}

func (r *Registry) modifyService(res *Results, org *rim.Organization, s Service) error {
	switch s.Type {
	case OpAdd:
		// "A Web Service can be added to an organization that has been
		// published before" (Table 3.6).
		svc := rim.NewService(s.Name, descriptionText(s.Description))
		for _, u := range s.AccessURIs {
			for _, uri := range u.URIs {
				svc.AddBinding(uri)
			}
		}
		assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
		if _, err := r.conn.Submit(svc, assoc); err != nil {
			return fmt.Errorf("accessregistry: add service %q: %w", s.Name, err)
		}
		r.logf(res, "Service is Added")
		r.logf(res, " key was %s", svc.ID)
		return nil

	case OpDelete:
		svc, err := r.findOfferedService(org, s.Name)
		if err != nil {
			return err
		}
		if err := r.conn.Remove(svc.ID); err != nil {
			return fmt.Errorf("accessregistry: delete service %q: %w", s.Name, err)
		}
		r.logf(res, "Service is Deleted")
		r.logf(res, " key was %s", svc.ID)
		return nil

	default: // "" or edit: element-level modifications
		svc, err := r.findOfferedService(org, s.Name)
		if err != nil {
			return err
		}
		changed := false
		if s.Description != nil {
			switch s.Description.Type {
			case OpAdd, OpEdit, "":
				svc.Description = rim.NewIString(s.Description.Text)
				r.logf(res, "ServiceDescription Added")
				r.logf(res, " key was %s", svc.ID)
			case OpDelete:
				svc.Description = rim.InternationalString{}
				r.logf(res, "ServiceDescription Deleted")
				r.logf(res, " key was %s", svc.ID)
			}
			changed = true
		}
		for _, u := range s.AccessURIs {
			switch u.Type {
			case OpAdd, "":
				for _, uri := range u.URIs {
					// AddBinding is duplicate-safe, reproducing
					// testExecute_DuplicateAccessURI.
					before := len(svc.Bindings)
					svc.AddBinding(uri)
					if len(svc.Bindings) > before {
						r.logf(res, "ServiceBinding is added")
						r.logf(res, " key was %s", svc.BindingByURI(uri).ID)
					}
				}
				changed = true
			case OpDelete:
				for _, uri := range u.URIs {
					if b := svc.BindingByURI(uri); b != nil {
						svc.RemoveBinding(uri)
						r.logf(res, "ServiceBinding is deleted")
						r.logf(res, " key was %s", b.ID)
					}
				}
				changed = true
			}
		}
		if changed {
			if _, err := r.conn.Update(svc); err != nil {
				return fmt.Errorf("accessregistry: update service %q: %w", s.Name, err)
			}
		}
		return nil
	}
}

// access resolves services to their (load-balanced) access URIs. The
// thesis requires the service to be enclosed by its parent organization:
// "Just providing a service name without an organization name ... would
// lead to an error."
func (r *Registry) access(res *Results, spec Organization) error {
	org, err := r.findOrganization(spec.Name)
	if err != nil {
		return fmt.Errorf("accessregistry: access: organization %q: %w", spec.Name, err)
	}
	if len(spec.Services) == 0 {
		return fmt.Errorf("accessregistry: access: no <service> specified under organization %q", spec.Name)
	}
	for _, s := range spec.Services {
		if _, err := r.findOfferedService(org, s.Name); err != nil {
			return err
		}
		uris, _, err := r.conn.ServiceBindings(s.Name)
		if err != nil {
			return fmt.Errorf("accessregistry: access service %q: %w", s.Name, err)
		}
		res.AccessURIs = append(res.AccessURIs, uris...)
		for _, u := range uris {
			r.logf(res, "%s", u)
		}
	}
	return nil
}

func (r *Registry) findOrganization(name string) (*rim.Organization, error) {
	objs, err := r.conn.Find("Organization", name)
	if err != nil {
		return nil, err
	}
	for _, o := range objs {
		if org, ok := o.(*rim.Organization); ok && strings.EqualFold(org.Name.String(), name) {
			return org, nil
		}
	}
	return nil, fmt.Errorf("accessregistry: organization %q not found", name)
}

// findOfferedService checks that the named service exists and is offered
// by the given organization.
func (r *Registry) findOfferedService(org *rim.Organization, name string) (*rim.Service, error) {
	objs, err := r.conn.Find("Service", name)
	if err != nil {
		return nil, err
	}
	var svc *rim.Service
	for _, o := range objs {
		if s, ok := o.(*rim.Service); ok && strings.EqualFold(s.Name.String(), name) {
			svc = s
			break
		}
	}
	if svc == nil {
		return nil, fmt.Errorf("accessregistry: service %q is not published", name)
	}
	// Verify the OffersService relationship via the association table.
	rows, err := r.conn.AdhocQuery(
		"SELECT a.id FROM Association a WHERE a.associationtype = 'OffersService' AND a.sourceid = $src AND a.targetid = $dst",
		map[string]string{"src": org.ID, "dst": svc.ID})
	if err != nil {
		return nil, err
	}
	if rows.Total == 0 {
		return nil, fmt.Errorf("accessregistry: service %q does not belong to organization %q", name, org.Name.String())
	}
	return svc, nil
}
