package rim

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// uuidSource allows tests to install a deterministic generator.
var (
	uuidMu     sync.Mutex
	uuidSource func() string
)

// NewUUID returns a fresh registry id in the urn:uuid: scheme, e.g.
// "urn:uuid:59bd7041-781f-4c57-b985-f0293588642b" — the exact format the
// thesis's AccessRegistry API prints for published organizations. IDs are
// RFC 4122 version-4 (random) UUIDs from crypto/rand.
func NewUUID() string {
	uuidMu.Lock()
	src := uuidSource
	uuidMu.Unlock()
	if src != nil {
		return src()
	}
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for id generation.
		panic(fmt.Sprintf("rim: crypto/rand failed: %v", err))
	}
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant 10
	return "urn:uuid:" + formatUUID(b)
}

func formatUUID(b [16]byte) string {
	dst := make([]byte, 36)
	hex.Encode(dst[0:8], b[0:4])
	dst[8] = '-'
	hex.Encode(dst[9:13], b[4:6])
	dst[13] = '-'
	hex.Encode(dst[14:18], b[6:8])
	dst[18] = '-'
	hex.Encode(dst[19:23], b[8:10])
	dst[23] = '-'
	hex.Encode(dst[24:36], b[10:16])
	return string(dst)
}

// SetUUIDSourceForTest installs gen as the id generator and returns a
// restore function. Passing nil restores the crypto/rand generator
// directly.
func SetUUIDSourceForTest(gen func() string) (restore func()) {
	uuidMu.Lock()
	prev := uuidSource
	uuidSource = gen
	uuidMu.Unlock()
	return func() {
		uuidMu.Lock()
		uuidSource = prev
		uuidMu.Unlock()
	}
}

// IsURN reports whether s looks like a URN (the ebRIM id requirement).
func IsURN(s string) bool {
	if !strings.HasPrefix(s, "urn:") || len(s) < len("urn:x:y") {
		return false
	}
	rest := s[4:]
	i := strings.IndexByte(rest, ':')
	return i > 0 && i < len(rest)-1
}

// IsUUIDURN reports whether s is specifically a urn:uuid: id with a
// well-formed 36-character UUID body.
func IsUUIDURN(s string) bool {
	const p = "urn:uuid:"
	if !strings.HasPrefix(s, p) {
		return false
	}
	u := s[len(p):]
	if len(u) != 36 {
		return false
	}
	for i, c := range u {
		switch i {
		case 8, 13, 18, 23:
			if c != '-' {
				return false
			}
		default:
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				return false
			}
		}
	}
	return true
}
