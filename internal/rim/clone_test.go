package rim

import (
	"testing"
	"time"
)

func TestCloneServiceIsolation(t *testing.T) {
	s := NewService("NodeStatus", "monitor")
	s.SetSlot("k", "v1")
	b := s.AddBinding("http://thermo.sdsu.edu:8080/svc")
	b.SpecificationLinks = append(b.SpecificationLinks, NewSpecificationLink(b.ID, "urn:uuid:spec"))

	c := s.Clone()
	if c == s || c.Bindings[0] == s.Bindings[0] {
		t.Fatal("clone shares pointers with original")
	}
	c.Name = NewIString("changed")
	c.SetSlot("k", "v2")
	c.Bindings[0].AccessURI = "http://other/x"
	c.Bindings[0].SpecificationLinks[0].SpecificationObject = "urn:uuid:other"

	if s.Name.String() != "NodeStatus" {
		t.Error("clone name mutation leaked")
	}
	if v, _ := s.SlotValue("k"); v != "v1" {
		t.Error("clone slot mutation leaked")
	}
	if s.Bindings[0].AccessURI != "http://thermo.sdsu.edu:8080/svc" {
		t.Error("clone binding mutation leaked")
	}
	if s.Bindings[0].SpecificationLinks[0].SpecificationObject != "urn:uuid:spec" {
		t.Error("clone spec link mutation leaked")
	}
}

func TestCloneOrganizationIsolation(t *testing.T) {
	o := NewOrganization("SDSU")
	o.Addresses = append(o.Addresses, PostalAddress{City: "San Diego"})
	o.Emails = append(o.Emails, EmailAddress{Address: "info@sdsu.edu"})
	o.Telephones = append(o.Telephones, TelephoneNumber{Number: "594-5200"})
	o.Classifications = append(o.Classifications, NewExternalClassification(o.ID, "urn:uuid:naics", "6113"))

	c := o.Clone()
	c.Addresses[0].City = "LA"
	c.Emails[0].Address = "x@y"
	c.Telephones[0].Number = "000"
	c.Classifications[0].NodeRepresentation = "999"

	if o.Addresses[0].City != "San Diego" || o.Emails[0].Address != "info@sdsu.edu" ||
		o.Telephones[0].Number != "594-5200" || o.Classifications[0].NodeRepresentation != "6113" {
		t.Fatal("organization clone mutation leaked")
	}
}

func TestCloneObjectCoversAllTypes(t *testing.T) {
	objs := []Object{
		NewOrganization("o"),
		NewUser("u", PersonName{}),
		NewService("s", ""),
		NewServiceBinding("urn:uuid:s", "http://h/x"),
		NewSpecificationLink("urn:uuid:b", "urn:uuid:spec"),
		NewAssociation(AssocHasMember, "urn:uuid:a", "urn:uuid:b"),
		NewInternalClassification("urn:uuid:o", "urn:uuid:n"),
		NewClassificationScheme("NAICS", true),
		NewClassificationNode("urn:uuid:p", "c", "n"),
		NewRegistryPackage("pkg"),
		NewExternalLink("l", "http://x/"),
		NewExternalIdentifier("urn:uuid:o", "DUNS", "1"),
		NewAuditableEvent(EventCreated, "urn:uuid:u", time.Time{}, "urn:uuid:a"),
		NewAdhocQuery("q", "SQL-92", "SELECT 1"),
		NewExtrinsicObject("wsdl", "text/xml"),
	}
	for _, o := range objs {
		c := CloneObject(o)
		if c == o {
			t.Fatalf("CloneObject returned the same pointer for %T", o)
		}
		if c.Base().ID != o.Base().ID {
			t.Fatalf("CloneObject changed id for %T", o)
		}
		// Mutating the clone base must not touch the original.
		c.Base().Status = StatusDeprecated
		if o.Base().Status == StatusDeprecated && o.Base().Status != StatusApproved {
			// AuditableEvents are born Approved; others Submitted.
			t.Fatalf("CloneObject aliased base for %T", o)
		}
	}
}

func TestCloneObjectPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	type weird struct{ RegistryObject }
	CloneObject(&weird{NewRegistryObject(TypeRegistryObject, "")})
}
