package rim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewUUIDFormat(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewUUID()
		if !IsUUIDURN(id) {
			t.Fatalf("NewUUID produced malformed id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate uuid %q", id)
		}
		seen[id] = true
		// Version and variant nibbles.
		u := strings.TrimPrefix(id, "urn:uuid:")
		if u[14] != '4' {
			t.Fatalf("uuid %q is not version 4", id)
		}
		switch u[19] {
		case '8', '9', 'a', 'b':
		default:
			t.Fatalf("uuid %q has wrong variant", id)
		}
	}
}

func TestIsURN(t *testing.T) {
	cases := map[string]bool{
		"urn:uuid:59bd7041-781f-4c57-b985-f0293588642b": true,
		"urn:oasis:names:tc:ebxml-regrep:ObjectType":    true,
		"http://example.com":                            false,
		"urn:":                                          false,
		"urn:x":                                         false,
		"urn:x:":                                        false,
		"urn:x:y":                                       true,
		"":                                              false,
	}
	for in, want := range cases {
		if got := IsURN(in); got != want {
			t.Errorf("IsURN(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestIsUUIDURN(t *testing.T) {
	good := "urn:uuid:59bd7041-781f-4c57-b985-f0293588642b"
	if !IsUUIDURN(good) {
		t.Fatalf("IsUUIDURN(%q) = false", good)
	}
	for _, bad := range []string{
		"urn:uuid:59bd7041",
		"urn:uuid:59bd7041-781f-4c57-b985-f0293588642g", // bad hex
		"urn:uuid:59bd7041x781f-4c57-b985-f0293588642b", // bad dash
		"uuid:59bd7041-781f-4c57-b985-f0293588642b",
	} {
		if IsUUIDURN(bad) {
			t.Errorf("IsUUIDURN(%q) = true", bad)
		}
	}
}

func TestSetUUIDSourceForTest(t *testing.T) {
	n := 0
	restore := SetUUIDSourceForTest(func() string {
		n++
		return "urn:test:" + strings.Repeat("a", n)
	})
	if got := NewUUID(); got != "urn:test:a" {
		t.Fatalf("stubbed uuid = %q", got)
	}
	restore()
	if !IsUUIDURN(NewUUID()) {
		t.Fatal("restore did not reinstate crypto generator")
	}
}

func TestSlots(t *testing.T) {
	ro := NewRegistryObject(TypeService, "svc")
	if _, ok := ro.SlotValue("copyright"); ok {
		t.Fatal("slot should be absent")
	}
	ro.SetSlot("copyright", "© 2011 SDSU")
	v, ok := ro.SlotValue("copyright")
	if !ok || v != "© 2011 SDSU" {
		t.Fatalf("slot value = %q, %v", v, ok)
	}
	ro.SetSlot("copyright", "v2")
	if v, _ := ro.SlotValue("copyright"); v != "v2" {
		t.Fatalf("slot not replaced: %q", v)
	}
	if len(ro.Slots) != 1 {
		t.Fatalf("SetSlot duplicated the slot: %d", len(ro.Slots))
	}
	if !ro.RemoveSlot("copyright") {
		t.Fatal("RemoveSlot failed")
	}
	if ro.RemoveSlot("copyright") {
		t.Fatal("RemoveSlot on absent slot returned true")
	}
}

func TestRegistryObjectValidate(t *testing.T) {
	ro := NewRegistryObject(TypeOrganization, "SDSU")
	if err := ro.Validate(); err != nil {
		t.Fatalf("valid object rejected: %v", err)
	}
	bad := ro
	bad.ID = ""
	if bad.Validate() == nil {
		t.Error("empty id accepted")
	}
	bad = ro
	bad.ID = "not-a-urn"
	if bad.Validate() == nil {
		t.Error("non-urn id accepted")
	}
	bad = ro
	bad.Status = "Frobnicated"
	if bad.Validate() == nil {
		t.Error("bad status accepted")
	}
	bad = ro
	bad.ObjectType = ""
	if bad.Validate() == nil {
		t.Error("empty objectType accepted")
	}
}

func TestInternationalString(t *testing.T) {
	s := NewIString("hello")
	if s.String() != "hello" || s.IsEmpty() {
		t.Fatalf("bad istring: %+v", s)
	}
	var empty InternationalString
	if empty.String() != "" || !empty.IsEmpty() {
		t.Fatal("empty istring misbehaves")
	}
	if !NewIString("").IsEmpty() {
		t.Fatal("NewIString(\"\") should be empty")
	}
}

func TestOrganizationValidate(t *testing.T) {
	o := NewOrganization("San Diego State University (SDSU)")
	if err := o.Validate(); err != nil {
		t.Fatalf("valid org rejected: %v", err)
	}
	o.ParentID = o.ID
	if o.Validate() == nil {
		t.Error("self-parent accepted")
	}
	o.ParentID = ""
	o.Name = InternationalString{}
	if o.Validate() == nil {
		t.Error("nameless org accepted")
	}
}

func TestOrganizationEntityStrings(t *testing.T) {
	a := PostalAddress{StreetNumber: "5500", Street: "Campanile Drive", City: "San Diego", State: "CA", Country: "US", PostalCode: "92182"}
	if got := a.String(); got != "5500 Campanile Drive, San Diego, CA, 92182, US" {
		t.Fatalf("address = %q", got)
	}
	if (PostalAddress{}).IsZero() != true || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
	p := TelephoneNumber{CountryCode: "1", AreaCode: "619", Number: "594-5200"}
	if got := p.String(); got != "+1 (619) 594-5200" {
		t.Fatalf("phone = %q", got)
	}
	n := PersonName{FirstName: "Sadhana", LastName: "Sahasrabudhe"}
	if n.String() != "Sadhana Sahasrabudhe" {
		t.Fatalf("name = %q", n.String())
	}
}

func TestServiceBindings(t *testing.T) {
	s := NewService("NodeStatus", "Service to monitor node status")
	b1 := s.AddBinding("http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService")
	b2 := s.AddBinding("http://exergy.sdsu.edu:8080/NodeStatus/NodeStatusService")
	if len(s.Bindings) != 2 {
		t.Fatalf("bindings = %d", len(s.Bindings))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid service rejected: %v", err)
	}
	if b1.Host() != "thermo.sdsu.edu" || b2.Host() != "exergy.sdsu.edu" {
		t.Fatalf("hosts = %q, %q", b1.Host(), b2.Host())
	}
	// Duplicate add returns the existing binding.
	if dup := s.AddBinding(b1.AccessURI); dup != b1 || len(s.Bindings) != 2 {
		t.Fatal("duplicate AddBinding created a new binding")
	}
	uris := s.AccessURIs()
	if len(uris) != 2 || uris[0] != b1.AccessURI {
		t.Fatalf("AccessURIs = %v", uris)
	}
	if s.BindingByURI("http://nowhere/") != nil {
		t.Fatal("BindingByURI found a ghost")
	}
	if !s.RemoveBinding(b2.AccessURI) || s.RemoveBinding(b2.AccessURI) {
		t.Fatal("RemoveBinding semantics wrong")
	}
}

func TestServiceValidateRejectsForeignBinding(t *testing.T) {
	s := NewService("S", "")
	b := NewServiceBinding("urn:uuid:00000000-0000-4000-8000-000000000000", "http://h/x")
	s.Bindings = append(s.Bindings, b)
	if s.Validate() == nil {
		t.Fatal("foreign binding accepted")
	}
}

func TestServiceBindingValidate(t *testing.T) {
	b := NewServiceBinding("svc", "http://eon.sdsu.edu:8080/TestWebService/TestWebServiceService")
	if err := b.Validate(); err != nil {
		t.Fatalf("valid binding rejected: %v", err)
	}
	b2 := NewServiceBinding("svc", "")
	if b2.Validate() == nil {
		t.Error("binding with neither uri nor target accepted")
	}
	b2.TargetBindingID = "urn:uuid:x"
	if err := b2.Validate(); err != nil {
		t.Errorf("target-only binding rejected: %v", err)
	}
	b3 := NewServiceBinding("svc", "not a uri")
	if b3.Validate() == nil {
		t.Error("relative/invalid uri accepted")
	}
}

func TestHostOfURI(t *testing.T) {
	cases := map[string]string{
		"http://volta.sdsu.edu:8080/omar/registry": "volta.sdsu.edu",
		"https://exergy.sdsu.edu/svc":              "exergy.sdsu.edu",
		"http://127.0.0.1:9999/x":                  "127.0.0.1",
		"::bad::":                                  "",
	}
	for in, want := range cases {
		if got := HostOfURI(in); got != want {
			t.Errorf("HostOfURI(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAssociationValidate(t *testing.T) {
	a := NewAssociation(AssocOffersService, "urn:uuid:a", "urn:uuid:b")
	if err := a.Validate(); err != nil {
		t.Fatalf("valid association rejected: %v", err)
	}
	self := NewAssociation(AssocOffersService, "urn:uuid:a", "urn:uuid:a")
	if self.Validate() == nil {
		t.Error("self association accepted")
	}
	empty := NewAssociation("", "urn:uuid:a", "urn:uuid:b")
	if empty.Validate() == nil {
		t.Error("typeless association accepted")
	}
	missing := NewAssociation(AssocHasMember, "", "urn:uuid:b")
	if missing.Validate() == nil {
		t.Error("sourceless association accepted")
	}
}

func TestClassificationValidate(t *testing.T) {
	in := NewInternalClassification("urn:uuid:o", "urn:uuid:node")
	if err := in.Validate(); err != nil {
		t.Fatalf("internal classification rejected: %v", err)
	}
	ex := NewExternalClassification("urn:uuid:o", "urn:uuid:naics", "111330")
	if err := ex.Validate(); err != nil {
		t.Fatalf("external classification rejected: %v", err)
	}
	both := NewExternalClassification("urn:uuid:o", "urn:uuid:naics", "111330")
	both.ClassificationNode = "urn:uuid:node"
	if both.Validate() == nil {
		t.Error("both internal and external accepted")
	}
	neither := &Classification{RegistryObject: NewRegistryObject(TypeClassification, "")}
	if neither.Validate() == nil {
		t.Error("neither internal nor external accepted")
	}
	half := &Classification{RegistryObject: NewRegistryObject(TypeClassification, "")}
	half.ClassificationScheme = "urn:uuid:s"
	if half.Validate() == nil {
		t.Error("external without value accepted")
	}
}

func TestClassificationNodeValidate(t *testing.T) {
	n := NewClassificationNode("urn:uuid:scheme", "111330", "Strawberry Farming")
	if err := n.Validate(); err != nil {
		t.Fatalf("valid node rejected: %v", err)
	}
	n.Code = ""
	if n.Validate() == nil {
		t.Error("codeless node accepted")
	}
	n.Code = "x"
	n.ParentID = ""
	if n.Validate() == nil {
		t.Error("orphan node accepted")
	}
}

func TestExternalLinkAndIdentifier(t *testing.T) {
	l := NewExternalLink("spec", "http://www.unspsc.org")
	if err := l.Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	l.ExternalURI = ""
	if l.Validate() == nil {
		t.Error("uri-less link accepted")
	}
	e := NewExternalIdentifier("urn:uuid:o", "D-U-N-S", "123456789")
	if err := e.Validate(); err != nil {
		t.Fatalf("valid identifier rejected: %v", err)
	}
	e.Value = ""
	if e.Validate() == nil {
		t.Error("valueless identifier accepted")
	}
}

func TestAdhocQueryValidate(t *testing.T) {
	q := NewAdhocQuery("FindServicesByName", "SQL-92", "SELECT s.id FROM Service s WHERE s.name LIKE $name")
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	q.QuerySyntax = "XQuery"
	if q.Validate() == nil {
		t.Error("unknown syntax accepted")
	}
	q.QuerySyntax = "SQL-92"
	q.Query = ""
	if q.Validate() == nil {
		t.Error("empty query accepted")
	}
}

func TestAuditableEvent(t *testing.T) {
	at := time.Date(2011, 4, 22, 12, 0, 0, 0, time.UTC)
	e := NewAuditableEvent(EventCreated, "urn:uuid:user", at, "urn:uuid:a", "urn:uuid:b")
	if e.EventKind != EventCreated || len(e.AffectedIDs) != 2 || !e.Timestamp.Equal(at) {
		t.Fatalf("event = %+v", e)
	}
	if e.Status != StatusApproved {
		t.Fatal("events should be born approved")
	}
}

func TestUserValidate(t *testing.T) {
	u := NewUser("gold", PersonName{FirstName: "Test", LastName: "User"})
	if err := u.Validate(); err != nil {
		t.Fatalf("valid user rejected: %v", err)
	}
	u.Alias = ""
	if u.Validate() == nil {
		t.Error("aliasless user accepted")
	}
}

func TestObjectTypeShort(t *testing.T) {
	if TypeService.Short() != "Service" {
		t.Fatalf("Short = %q", TypeService.Short())
	}
	if ObjectType("Custom").Short() != "Custom" {
		t.Fatal("Short on unqualified type")
	}
}

// Property: every constructor yields an object that passes Validate and has
// a unique well-formed id.
func TestConstructorsValidProperty(t *testing.T) {
	f := func(name string) bool {
		if name == "" {
			name = "x"
		}
		objs := []interface{ Validate() error }{
			NewOrganization(name),
			NewService(name, "d"),
			NewServiceBinding("urn:uuid:s", "http://h.example/"+"p"),
			NewAssociation(AssocOffersService, "urn:uuid:a", "urn:uuid:b"),
			NewUser(name, PersonName{}),
			NewClassificationNode("urn:uuid:p", "c", name),
			NewExternalLink(name, "http://x/"),
			NewExternalIdentifier("urn:uuid:o", "DUNS", "1"),
			NewAdhocQuery(name, "SQL-92", "SELECT 1"),
		}
		for _, o := range objs {
			if o.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
