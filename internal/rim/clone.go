package rim

// Deep-copy support. The store never hands out pointers into its own object
// graph: objects are cloned on Put and on Get so that concurrent readers
// and writers cannot alias each other's state. Clone methods are written by
// hand (rather than via reflection or gob round-trips) because discovery is
// the registry's hot path and binding lists are cloned per query.

// CloneBase deep-copies the embedded RegistryObject fields.
func (r *RegistryObject) CloneBase() RegistryObject {
	c := *r
	c.Name = r.Name.clone()
	c.Description = r.Description.clone()
	if r.Slots != nil {
		c.Slots = make([]Slot, len(r.Slots))
		for i, s := range r.Slots {
			c.Slots[i] = Slot{Name: s.Name, SlotType: s.SlotType, Values: append([]string(nil), s.Values...)}
		}
	}
	if r.Classifications != nil {
		c.Classifications = make([]*Classification, len(r.Classifications))
		for i, cl := range r.Classifications {
			c.Classifications[i] = cl.Clone()
		}
	}
	if r.ExternalIdentifiers != nil {
		c.ExternalIdentifiers = make([]*ExternalIdentifier, len(r.ExternalIdentifiers))
		for i, e := range r.ExternalIdentifiers {
			c.ExternalIdentifiers[i] = e.Clone()
		}
	}
	return c
}

func (s InternationalString) clone() InternationalString {
	if s.Localized == nil {
		return s
	}
	return InternationalString{Localized: append([]LocalizedString(nil), s.Localized...)}
}

// Clone deep-copies an Organization.
func (o *Organization) Clone() *Organization {
	c := *o
	c.RegistryObject = o.CloneBase()
	c.Addresses = append([]PostalAddress(nil), o.Addresses...)
	c.Emails = append([]EmailAddress(nil), o.Emails...)
	c.Telephones = append([]TelephoneNumber(nil), o.Telephones...)
	return &c
}

// Clone deep-copies a User.
func (u *User) Clone() *User {
	c := *u
	c.RegistryObject = u.CloneBase()
	c.Addresses = append([]PostalAddress(nil), u.Addresses...)
	c.Emails = append([]EmailAddress(nil), u.Emails...)
	c.Telephones = append([]TelephoneNumber(nil), u.Telephones...)
	return &c
}

// Clone deep-copies a Service including its bindings.
func (s *Service) Clone() *Service {
	c := *s
	c.RegistryObject = s.CloneBase()
	if s.Bindings != nil {
		c.Bindings = make([]*ServiceBinding, len(s.Bindings))
		for i, b := range s.Bindings {
			c.Bindings[i] = b.Clone()
		}
	}
	return &c
}

// Clone deep-copies a ServiceBinding including its specification links.
func (b *ServiceBinding) Clone() *ServiceBinding {
	c := *b
	c.RegistryObject = b.CloneBase()
	if b.SpecificationLinks != nil {
		c.SpecificationLinks = make([]*SpecificationLink, len(b.SpecificationLinks))
		for i, l := range b.SpecificationLinks {
			c.SpecificationLinks[i] = l.Clone()
		}
	}
	return &c
}

// Clone deep-copies a SpecificationLink.
func (l *SpecificationLink) Clone() *SpecificationLink {
	c := *l
	c.RegistryObject = l.CloneBase()
	c.UsageParameters = append([]string(nil), l.UsageParameters...)
	return &c
}

// Clone deep-copies an Association.
func (a *Association) Clone() *Association {
	c := *a
	c.RegistryObject = a.CloneBase()
	return &c
}

// Clone deep-copies a Classification.
func (cl *Classification) Clone() *Classification {
	c := *cl
	c.RegistryObject = RegistryObject{
		ID: cl.ID, LID: cl.LID, Name: cl.Name.clone(), Description: cl.Description.clone(),
		ObjectType: cl.ObjectType, Status: cl.Status, Home: cl.Home, Owner: cl.Owner,
		Version: cl.Version,
	}
	// Classifications do not themselves carry nested classifications.
	return &c
}

// Clone deep-copies a ClassificationScheme.
func (s *ClassificationScheme) Clone() *ClassificationScheme {
	c := *s
	c.RegistryObject = s.CloneBase()
	return &c
}

// Clone deep-copies a ClassificationNode.
func (n *ClassificationNode) Clone() *ClassificationNode {
	c := *n
	c.RegistryObject = n.CloneBase()
	return &c
}

// Clone deep-copies a RegistryPackage.
func (p *RegistryPackage) Clone() *RegistryPackage {
	c := *p
	c.RegistryObject = p.CloneBase()
	return &c
}

// Clone deep-copies an ExternalLink.
func (l *ExternalLink) Clone() *ExternalLink {
	c := *l
	c.RegistryObject = l.CloneBase()
	return &c
}

// Clone deep-copies an ExternalIdentifier.
func (e *ExternalIdentifier) Clone() *ExternalIdentifier {
	c := *e
	c.RegistryObject = RegistryObject{
		ID: e.ID, LID: e.LID, Name: e.Name.clone(), Description: e.Description.clone(),
		ObjectType: e.ObjectType, Status: e.Status, Home: e.Home, Owner: e.Owner,
		Version: e.Version,
	}
	return &c
}

// Clone deep-copies an AuditableEvent.
func (e *AuditableEvent) Clone() *AuditableEvent {
	c := *e
	c.RegistryObject = e.CloneBase()
	c.AffectedIDs = append([]string(nil), e.AffectedIDs...)
	return &c
}

// Clone deep-copies an AdhocQuery.
func (q *AdhocQuery) Clone() *AdhocQuery {
	c := *q
	c.RegistryObject = q.CloneBase()
	return &c
}

// Clone deep-copies an ExtrinsicObject.
func (e *ExtrinsicObject) Clone() *ExtrinsicObject {
	c := *e
	c.RegistryObject = e.CloneBase()
	return &c
}

// CloneObject deep-copies any known concrete Object. Unknown types cause a
// panic, which indicates a missing case, a programming error.
func CloneObject(o Object) Object {
	switch v := o.(type) {
	case *Organization:
		return v.Clone()
	case *User:
		return v.Clone()
	case *Service:
		return v.Clone()
	case *ServiceBinding:
		return v.Clone()
	case *SpecificationLink:
		return v.Clone()
	case *Association:
		return v.Clone()
	case *Classification:
		return v.Clone()
	case *ClassificationScheme:
		return v.Clone()
	case *ClassificationNode:
		return v.Clone()
	case *RegistryPackage:
		return v.Clone()
	case *ExternalLink:
		return v.Clone()
	case *ExternalIdentifier:
		return v.Clone()
	case *AuditableEvent:
		return v.Clone()
	case *AdhocQuery:
		return v.Clone()
	case *ExtrinsicObject:
		return v.Clone()
	default:
		panic("rim: CloneObject: unknown concrete type")
	}
}
