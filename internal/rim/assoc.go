package rim

import "fmt"

// AssociationType names the relationship an Association asserts between its
// source and target objects.
type AssociationType string

// Predefined association types (Table 1.5) plus OffersService, the type the
// thesis uses to relate an Organization to the Services it offers
// (Fig. 3.44, "OfferService").
const (
	AssocHasMember       AssociationType = "HasMember"
	AssocEquivalentTo    AssociationType = "EquivalentTo"
	AssocExtends         AssociationType = "Extends"
	AssocImplements      AssociationType = "Implements"
	AssocInstanceOf      AssociationType = "InstanceOf"
	AssocOffersService   AssociationType = "OffersService"
	AssocRelatedTo       AssociationType = "RelatedTo"
	AssocUses            AssociationType = "Uses"
	AssocReplaces        AssociationType = "Replaces"
	AssocSupersedes      AssociationType = "Supersedes"
	AssocContains        AssociationType = "Contains"
	AssocExternallyLinks AssociationType = "ExternallyLinks"
)

// PredefinedAssociationTypes lists the association types the registry ships
// with; user-defined types are also accepted (Table 1.1, "User-defined
// relationship types: Yes").
var PredefinedAssociationTypes = []AssociationType{
	AssocHasMember, AssocEquivalentTo, AssocExtends, AssocImplements,
	AssocInstanceOf, AssocOffersService, AssocRelatedTo, AssocUses,
	AssocReplaces, AssocSupersedes, AssocContains, AssocExternallyLinks,
}

// Association is a free-standing RegistryObject that defines a many-to-many
// relationship between any two objects in the registry.
type Association struct {
	RegistryObject
	AssociationType AssociationType
	SourceID        string
	TargetID        string
	// Confirmed tracks two-party confirmation semantics: an association
	// between objects owned by different users is visible to third
	// parties only after both owners confirm it.
	ConfirmedBySource bool
	ConfirmedByTarget bool
}

// NewAssociation relates source to target with the given type.
func NewAssociation(t AssociationType, sourceID, targetID string) *Association {
	a := &Association{
		RegistryObject:  NewRegistryObject(TypeAssociation, string(t)),
		AssociationType: t,
		SourceID:        sourceID,
		TargetID:        targetID,
	}
	return a
}

// Validate checks Association invariants.
func (a *Association) Validate() error {
	if err := a.RegistryObject.Validate(); err != nil {
		return err
	}
	if a.AssociationType == "" {
		return fmt.Errorf("rim: association %s has no type", a.ID)
	}
	if a.SourceID == "" || a.TargetID == "" {
		return fmt.Errorf("rim: association %s must have source and target", a.ID)
	}
	if a.SourceID == a.TargetID {
		return fmt.Errorf("rim: association %s relates %s to itself", a.ID, a.SourceID)
	}
	return nil
}

// Classification classifies a RegistryObject, either internally (by
// referencing a ClassificationNode) or externally (by naming a scheme and a
// value within it).
type Classification struct {
	RegistryObject
	ClassifiedObjectID   string
	ClassificationScheme string // scheme id, for external classification
	ClassificationNode   string // node id, for internal classification
	NodeRepresentation   string // value within the external scheme
}

// NewInternalClassification classifies object by a node of an internal
// scheme.
func NewInternalClassification(objectID, nodeID string) *Classification {
	c := &Classification{RegistryObject: NewRegistryObject(TypeClassification, "")}
	c.ClassifiedObjectID = objectID
	c.ClassificationNode = nodeID
	return c
}

// NewExternalClassification classifies object by a value within an external
// scheme (e.g. NAICS code "111330").
func NewExternalClassification(objectID, schemeID, value string) *Classification {
	c := &Classification{RegistryObject: NewRegistryObject(TypeClassification, value)}
	c.ClassifiedObjectID = objectID
	c.ClassificationScheme = schemeID
	c.NodeRepresentation = value
	return c
}

// Validate checks Classification invariants: exactly one of internal node
// or external scheme+value must be set.
func (c *Classification) Validate() error {
	if err := c.RegistryObject.Validate(); err != nil {
		return err
	}
	internal := c.ClassificationNode != ""
	external := c.ClassificationScheme != "" || c.NodeRepresentation != ""
	switch {
	case internal && external:
		return fmt.Errorf("rim: classification %s is both internal and external", c.ID)
	case !internal && !external:
		return fmt.Errorf("rim: classification %s is neither internal nor external", c.ID)
	case external && (c.ClassificationScheme == "" || c.NodeRepresentation == ""):
		return fmt.Errorf("rim: external classification %s needs scheme and value", c.ID)
	}
	return nil
}

// ClassificationScheme describes a structured way to classify objects
// (taxonomies such as NAICS, UNSPSC, ISO 3166, or user-defined schemes).
type ClassificationScheme struct {
	RegistryObject
	IsInternal bool
	NodeType   string // "UniqueCode", "EmbeddedPath", or "NonUniqueCode"
}

// NewClassificationScheme creates a scheme.
func NewClassificationScheme(name string, internal bool) *ClassificationScheme {
	s := &ClassificationScheme{RegistryObject: NewRegistryObject(TypeClassificationScheme, name)}
	s.IsInternal = internal
	s.NodeType = "UniqueCode"
	return s
}

// ClassificationNode is one node of a classification tree rooted at a
// ClassificationScheme.
type ClassificationNode struct {
	RegistryObject
	ParentID string // scheme id or another node id
	Code     string
	Path     string // e.g. "/NAICS/11/111/1113/11133/111330"
}

// NewClassificationNode creates a node under parent with the given code.
func NewClassificationNode(parentID, code, name string) *ClassificationNode {
	n := &ClassificationNode{RegistryObject: NewRegistryObject(TypeClassificationNode, name)}
	n.ParentID = parentID
	n.Code = code
	return n
}

// Validate checks node invariants.
func (n *ClassificationNode) Validate() error {
	if err := n.RegistryObject.Validate(); err != nil {
		return err
	}
	if n.ParentID == "" {
		return fmt.Errorf("rim: classification node %s has no parent", n.ID)
	}
	if n.Code == "" {
		return fmt.Errorf("rim: classification node %s has no code", n.ID)
	}
	return nil
}

// RegistryPackage groups logically related objects; membership is expressed
// with HasMember associations.
type RegistryPackage struct {
	RegistryObject
}

// NewRegistryPackage creates a package.
func NewRegistryPackage(name string) *RegistryPackage {
	return &RegistryPackage{RegistryObject: NewRegistryObject(TypeRegistryPackage, name)}
}

// ExternalLink models a named URI to content not managed by the registry.
type ExternalLink struct {
	RegistryObject
	ExternalURI string
}

// NewExternalLink creates a link object.
func NewExternalLink(name, uri string) *ExternalLink {
	l := &ExternalLink{RegistryObject: NewRegistryObject(TypeExternalLink, name)}
	l.ExternalURI = uri
	return l
}

// Validate checks link invariants.
func (l *ExternalLink) Validate() error {
	if err := l.RegistryObject.Validate(); err != nil {
		return err
	}
	if l.ExternalURI == "" {
		return fmt.Errorf("rim: external link %s has no uri", l.ID)
	}
	return nil
}

// ExternalIdentifier provides additional identifier information for an
// object, such as a DUNS number.
type ExternalIdentifier struct {
	RegistryObject
	RegistryObjectID     string
	IdentificationScheme string
	Value                string
}

// NewExternalIdentifier attaches an identifier from scheme with the given
// value to an object.
func NewExternalIdentifier(objectID, scheme, value string) *ExternalIdentifier {
	e := &ExternalIdentifier{RegistryObject: NewRegistryObject(TypeExternalIdentifier, scheme)}
	e.RegistryObjectID = objectID
	e.IdentificationScheme = scheme
	e.Value = value
	return e
}

// Validate checks identifier invariants.
func (e *ExternalIdentifier) Validate() error {
	if err := e.RegistryObject.Validate(); err != nil {
		return err
	}
	if e.IdentificationScheme == "" || e.Value == "" {
		return fmt.Errorf("rim: external identifier %s needs scheme and value", e.ID)
	}
	return nil
}

// AdhocQuery stores a parameterized query as registry metadata so that it
// can be discovered and invoked by name (Table 1.1, "Stored parameterized
// queries").
type AdhocQuery struct {
	RegistryObject
	QuerySyntax string // "SQL-92" or "FilterQuery"
	Query       string // the query text, with $placeholders for parameters
}

// NewAdhocQuery stores a query under the given name.
func NewAdhocQuery(name, syntax, query string) *AdhocQuery {
	q := &AdhocQuery{RegistryObject: NewRegistryObject(TypeAdhocQuery, name)}
	q.QuerySyntax = syntax
	q.Query = query
	return q
}

// Validate checks query invariants.
func (q *AdhocQuery) Validate() error {
	if err := q.RegistryObject.Validate(); err != nil {
		return err
	}
	if q.Query == "" {
		return fmt.Errorf("rim: adhoc query %s has no query text", q.ID)
	}
	switch q.QuerySyntax {
	case "SQL-92", "FilterQuery":
	default:
		return fmt.Errorf("rim: adhoc query %s has unknown syntax %q", q.ID, q.QuerySyntax)
	}
	return nil
}
