package rim

import (
	"fmt"
	"strings"
)

// PostalAddress is the reusable address entity class (Fig. 1.18); the Web
// UI's "Postal Address" tab maps to these fields (Figs. 3.18–3.21).
type PostalAddress struct {
	StreetNumber string
	Street       string
	City         string
	State        string
	Country      string
	PostalCode   string
	Type         string // e.g. "TYPE-US"
}

// String renders a single-line address.
func (a PostalAddress) String() string {
	parts := []string{}
	if a.StreetNumber != "" || a.Street != "" {
		parts = append(parts, strings.TrimSpace(a.StreetNumber+" "+a.Street))
	}
	for _, p := range []string{a.City, a.State, a.PostalCode, a.Country} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, ", ")
}

// IsZero reports whether the address is entirely empty.
func (a PostalAddress) IsZero() bool { return a == PostalAddress{} }

// EmailAddress is the reusable email entity class.
type EmailAddress struct {
	Address string
	Type    string // e.g. "OfficeEmail"
}

// TelephoneNumber is the reusable phone entity class (Figs. 3.27–3.30).
type TelephoneNumber struct {
	CountryCode string
	AreaCode    string
	Number      string
	Extension   string
	Type        string // e.g. "OfficePhone", "MobilePhone", "FAX"
}

// String renders the number in +CC (AAA) NNN form.
func (t TelephoneNumber) String() string {
	var sb strings.Builder
	if t.CountryCode != "" {
		fmt.Fprintf(&sb, "+%s ", t.CountryCode)
	}
	if t.AreaCode != "" {
		fmt.Fprintf(&sb, "(%s) ", t.AreaCode)
	}
	sb.WriteString(t.Number)
	if t.Extension != "" {
		fmt.Fprintf(&sb, " x%s", t.Extension)
	}
	return strings.TrimSpace(sb.String())
}

// PersonName is the structured name of a registered User.
type PersonName struct {
	FirstName  string
	MiddleName string
	LastName   string
}

// String joins the non-empty name parts.
func (p PersonName) String() string {
	parts := make([]string, 0, 3)
	for _, s := range []string{p.FirstName, p.MiddleName, p.LastName} {
		if s != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, " ")
}

// Organization provides information about a submitting organization; it may
// reference a parent Organization and offers Services via OffersService
// associations (Fig. 1.18).
type Organization struct {
	RegistryObject
	ParentID         string
	PrimaryContactID string // id of a User
	Addresses        []PostalAddress
	Emails           []EmailAddress
	Telephones       []TelephoneNumber
}

// NewOrganization creates an Organization with the given display name.
func NewOrganization(name string) *Organization {
	return &Organization{RegistryObject: NewRegistryObject(TypeOrganization, name)}
}

// Validate checks Organization-specific invariants on top of the base ones.
func (o *Organization) Validate() error {
	if err := o.RegistryObject.Validate(); err != nil {
		return err
	}
	if o.ObjectType != TypeOrganization {
		return fmt.Errorf("rim: organization %s has objectType %s", o.ID, o.ObjectType)
	}
	if o.Name.IsEmpty() {
		return fmt.Errorf("rim: organization %s must have a name", o.ID)
	}
	if o.ParentID == o.ID && o.ParentID != "" {
		return fmt.Errorf("rim: organization %s is its own parent", o.ID)
	}
	return nil
}

// User provides information about a registered registry user; Users appear
// in audit trails and own the objects they publish (Fig. 1.18).
type User struct {
	RegistryObject
	PersonName     PersonName
	Alias          string // login alias chosen in the registration wizard
	OrganizationID string
	Addresses      []PostalAddress
	Emails         []EmailAddress
	Telephones     []TelephoneNumber
}

// NewUser creates a User with the given alias and person name.
func NewUser(alias string, name PersonName) *User {
	u := &User{
		RegistryObject: NewRegistryObject(TypeUser, alias),
		PersonName:     name,
		Alias:          alias,
	}
	u.Status = StatusApproved
	return u
}

// Validate checks User-specific invariants.
func (u *User) Validate() error {
	if err := u.RegistryObject.Validate(); err != nil {
		return err
	}
	if u.Alias == "" {
		return fmt.Errorf("rim: user %s must have an alias", u.ID)
	}
	return nil
}
