package rim

import (
	"fmt"
	"net/url"
	"strings"
)

// Service represents a published Web Service (Fig. 1.18). Its Description
// may embed the load-balancing <constraint> block defined in Chapter 3; the
// core package parses it at discovery time. A Service owns a collection of
// ServiceBindings.
type Service struct {
	RegistryObject
	Bindings []*ServiceBinding
}

// NewService creates a Service with the given name and description.
func NewService(name, description string) *Service {
	s := &Service{RegistryObject: NewRegistryObject(TypeService, name)}
	s.Description = NewIString(description)
	return s
}

// Validate checks Service invariants, including those of its bindings.
func (s *Service) Validate() error {
	if err := s.RegistryObject.Validate(); err != nil {
		return err
	}
	if s.ObjectType != TypeService {
		return fmt.Errorf("rim: service %s has objectType %s", s.ID, s.ObjectType)
	}
	if s.Name.IsEmpty() {
		return fmt.Errorf("rim: service %s must have a name", s.ID)
	}
	seen := make(map[string]bool, len(s.Bindings))
	for _, b := range s.Bindings {
		if b.ServiceID != s.ID {
			return fmt.Errorf("rim: binding %s belongs to %s, embedded in %s", b.ID, b.ServiceID, s.ID)
		}
		if err := b.Validate(); err != nil {
			return err
		}
		if b.AccessURI != "" && seen[b.AccessURI] {
			return fmt.Errorf("rim: service %s has duplicate access uri %s", s.ID, b.AccessURI)
		}
		seen[b.AccessURI] = true
	}
	return nil
}

// AccessURIs returns the bindings' access URIs in their stored order — the
// order the stock registry would return them, before the load-balancing
// scheme reorders/filters (Fig. 3.5).
func (s *Service) AccessURIs() []string {
	uris := make([]string, 0, len(s.Bindings))
	for _, b := range s.Bindings {
		if b.AccessURI != "" {
			uris = append(uris, b.AccessURI)
		}
	}
	return uris
}

// BindingByURI returns the binding with the given access URI, or nil.
func (s *Service) BindingByURI(uri string) *ServiceBinding {
	for _, b := range s.Bindings {
		if b.AccessURI == uri {
			return b
		}
	}
	return nil
}

// AddBinding appends a new binding for the given access URI and returns it.
// Adding a duplicate URI returns the existing binding unchanged, matching
// the AccessRegistry API's duplicate-URI test case (Table 3.9,
// testExecute_DuplicateAccessURI).
func (s *Service) AddBinding(accessURI string) *ServiceBinding {
	if b := s.BindingByURI(accessURI); b != nil {
		return b
	}
	b := NewServiceBinding(s.ID, accessURI)
	s.Bindings = append(s.Bindings, b)
	return b
}

// RemoveBinding deletes the binding with the given URI, reporting whether
// it was present.
func (s *Service) RemoveBinding(accessURI string) bool {
	for i, b := range s.Bindings {
		if b.AccessURI == accessURI {
			s.Bindings = append(s.Bindings[:i], s.Bindings[i+1:]...)
			return true
		}
	}
	return false
}

// ServiceBinding represents technical information on one specific way to
// access a Service: the access URI of a deployment host, an optional
// reference to another binding (Target Binding, Fig. 3.38), and
// SpecificationLinks to technical documents such as WSDL.
type ServiceBinding struct {
	RegistryObject
	ServiceID          string
	AccessURI          string
	TargetBindingID    string
	SpecificationLinks []*SpecificationLink
}

// NewServiceBinding creates a binding of the given service to an access URI.
func NewServiceBinding(serviceID, accessURI string) *ServiceBinding {
	b := &ServiceBinding{
		RegistryObject: NewRegistryObject(TypeServiceBinding, accessURI),
		ServiceID:      serviceID,
		AccessURI:      accessURI,
	}
	return b
}

// Validate checks binding invariants. An AccessURI, when present, must be a
// valid absolute URI (the registry returns it for dynamic invocation).
func (b *ServiceBinding) Validate() error {
	if err := b.RegistryObject.Validate(); err != nil {
		return err
	}
	if b.ObjectType != TypeServiceBinding {
		return fmt.Errorf("rim: binding %s has objectType %s", b.ID, b.ObjectType)
	}
	if b.AccessURI == "" && b.TargetBindingID == "" {
		return fmt.Errorf("rim: binding %s needs an accessURI or a targetBinding", b.ID)
	}
	if b.AccessURI != "" {
		u, err := url.Parse(b.AccessURI)
		if err != nil || !u.IsAbs() || u.Host == "" {
			return fmt.Errorf("rim: binding %s has invalid accessURI %q", b.ID, b.AccessURI)
		}
	}
	for _, l := range b.SpecificationLinks {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Host extracts the hostname (without port) from the access URI; this is
// the key into the NodeState table (Fig. 3.2, field HOST).
func (b *ServiceBinding) Host() string {
	return HostOfURI(b.AccessURI)
}

// HostOfURI extracts the hostname (without port) from an access URI,
// returning "" for unparseable input.
func HostOfURI(uri string) string {
	u, err := url.Parse(uri)
	if err != nil {
		return ""
	}
	h := u.Host
	if i := strings.LastIndexByte(h, ':'); i >= 0 && !strings.Contains(h, "]") {
		h = h[:i]
	}
	return h
}

// SpecificationLink links a ServiceBinding to one of its technical
// specifications (e.g. a WSDL document stored as an ExtrinsicObject).
type SpecificationLink struct {
	RegistryObject
	ServiceBindingID    string
	SpecificationObject string // id of the spec document object
	UsageDescription    InternationalString
	UsageParameters     []string
}

// NewSpecificationLink creates a link from a binding to a specification
// object.
func NewSpecificationLink(bindingID, specObjectID string) *SpecificationLink {
	return &SpecificationLink{
		RegistryObject:      NewRegistryObject(TypeSpecificationLink, ""),
		ServiceBindingID:    bindingID,
		SpecificationObject: specObjectID,
	}
}

// Validate checks SpecificationLink invariants.
func (l *SpecificationLink) Validate() error {
	if err := l.RegistryObject.Validate(); err != nil {
		return err
	}
	if l.SpecificationObject == "" {
		return fmt.Errorf("rim: specification link %s has no specification object", l.ID)
	}
	return nil
}

// ExtrinsicObject holds repository content whose type is not intrinsically
// known to the registry — XML schemas, WSDL files, images. The repository
// stores the payload; the registry stores this metadata.
type ExtrinsicObject struct {
	RegistryObject
	MimeType    string
	ContentID   string // key into the repository's content store
	IsOpaque    bool
	ContentHash string
}

// NewExtrinsicObject creates metadata for one repository item.
func NewExtrinsicObject(name, mimeType string) *ExtrinsicObject {
	e := &ExtrinsicObject{RegistryObject: NewRegistryObject(TypeExtrinsicObject, name)}
	e.MimeType = mimeType
	return e
}
