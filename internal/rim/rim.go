// Package rim implements the ebXML Registry Information Model (ebRIM) that
// underpins the registry: RegistryObject and its concrete subclasses —
// Organization, Service, ServiceBinding, SpecificationLink, Association,
// Classification(+Scheme/Node), RegistryPackage, ExternalLink,
// ExternalIdentifier, AuditableEvent, User, AdhocQuery — together with the
// object status lifecycle (Submitted → Approved → Deprecated → Removed)
// described by thesis Figures 1.18, 1.19 and 2.4.
//
// Each instance carries a registry-unique id in the urn:uuid: scheme, a
// logical id (lid) shared by all versions of the same logical object, a
// human name and description, dynamic Slot attributes, and version info.
package rim

import (
	"fmt"
	"strings"
	"time"
)

// ObjectType identifies the concrete ebRIM class of a RegistryObject, using
// the canonical path names from the ebRIM specification's ObjectType
// classification scheme.
type ObjectType string

// Canonical object types stored in the registry.
const (
	TypeRegistryObject       ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject"
	TypeOrganization         ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:Organization"
	TypeService              ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:Service"
	TypeServiceBinding       ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ServiceBinding"
	TypeSpecificationLink    ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:SpecificationLink"
	TypeAssociation          ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:Association"
	TypeClassification       ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:Classification"
	TypeClassificationScheme ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ClassificationScheme"
	TypeClassificationNode   ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ClassificationNode"
	TypeRegistryPackage      ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:RegistryPackage"
	TypeExternalLink         ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ExternalLink"
	TypeExternalIdentifier   ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ExternalIdentifier"
	TypeAuditableEvent       ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:AuditableEvent"
	TypeUser                 ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:User"
	TypeAdhocQuery           ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:AdhocQuery"
	TypeSubscription         ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:Subscription"
	TypeExtrinsicObject      ObjectType = "urn:oasis:names:tc:ebxml-regrep:ObjectType:RegistryObject:ExtrinsicObject"
)

// Short returns the unqualified class name, e.g. "Service".
func (t ObjectType) Short() string {
	if i := strings.LastIndexByte(string(t), ':'); i >= 0 {
		return string(t)[i+1:]
	}
	return string(t)
}

// Status is the life-cycle state of a registry object (Fig. 1.19 / 2.4).
type Status string

// Life-cycle states. Removed objects are deleted from the store, so the
// constant exists only for audit records.
const (
	StatusSubmitted  Status = "Submitted"
	StatusApproved   Status = "Approved"
	StatusDeprecated Status = "Deprecated"
	StatusWithdrawn  Status = "Withdrawn"
)

// VersionInfo carries the automatic version-control metadata that ebXML
// registries maintain for every object (Table 1.1, "Automatic Version
// Control").
type VersionInfo struct {
	VersionName string // e.g. "1.1"
	Comment     string
}

// Slot is a dynamic name/value-list attribute attachable to any
// RegistryObject; slots are the ebRIM extensibility mechanism (e.g. a
// "copyright" slot in the spec's own example).
type Slot struct {
	Name     string
	SlotType string
	Values   []string
}

// InternationalString models ebRIM's localized strings. The reproduction
// keeps a charset/lang pair per value but most callers use the default
// locale via String().
type InternationalString struct {
	Localized []LocalizedString
}

// LocalizedString is one (lang, value) entry of an InternationalString.
type LocalizedString struct {
	Lang    string
	Charset string
	Value   string
}

// NewIString builds an InternationalString holding a single en-US value.
func NewIString(v string) InternationalString {
	if v == "" {
		return InternationalString{}
	}
	return InternationalString{Localized: []LocalizedString{{Lang: "en-US", Charset: "UTF-8", Value: v}}}
}

// String returns the first localized value (the registry default locale).
func (s InternationalString) String() string {
	if len(s.Localized) == 0 {
		return ""
	}
	return s.Localized[0].Value
}

// IsEmpty reports whether the string has no localized values.
func (s InternationalString) IsEmpty() bool { return len(s.Localized) == 0 }

// RegistryObject is the abstract base class of the information model. All
// concrete classes embed it. The zero value is not directly useful; use
// NewRegistryObject or the typed constructors.
type RegistryObject struct {
	ID          string // registry-unique id, urn:uuid:...
	LID         string // logical id shared across versions
	Name        InternationalString
	Description InternationalString
	ObjectType  ObjectType
	Status      Status
	Home        string // base URL of the home registry (federation support)
	Owner       string // id of the owning User
	Version     VersionInfo
	Slots       []Slot
	// Classifications and ExternalIdentifiers compose directly on the
	// object; Associations are free-standing objects referencing source
	// and target ids.
	Classifications     []*Classification
	ExternalIdentifiers []*ExternalIdentifier
}

// NewRegistryObject creates a base object of the given type with a fresh
// UUID, matching LID, and Submitted status.
func NewRegistryObject(t ObjectType, name string) RegistryObject {
	id := NewUUID()
	return RegistryObject{
		ID:         id,
		LID:        id,
		Name:       NewIString(name),
		ObjectType: t,
		Status:     StatusSubmitted,
		Version:    VersionInfo{VersionName: "1.1"},
	}
}

// Base returns the embedded RegistryObject; concrete classes satisfy the
// Object interface through it.
func (r *RegistryObject) Base() *RegistryObject { return r }

// SlotValue returns the first value of the named slot and whether the slot
// exists.
func (r *RegistryObject) SlotValue(name string) (string, bool) {
	for _, s := range r.Slots {
		if s.Name == name {
			if len(s.Values) == 0 {
				return "", true
			}
			return s.Values[0], true
		}
	}
	return "", false
}

// SetSlot adds or replaces the named slot with the given values.
func (r *RegistryObject) SetSlot(name string, values ...string) {
	for i := range r.Slots {
		if r.Slots[i].Name == name {
			r.Slots[i].Values = append([]string(nil), values...)
			return
		}
	}
	r.Slots = append(r.Slots, Slot{Name: name, Values: append([]string(nil), values...)})
}

// RemoveSlot deletes the named slot, reporting whether it was present.
func (r *RegistryObject) RemoveSlot(name string) bool {
	for i := range r.Slots {
		if r.Slots[i].Name == name {
			r.Slots = append(r.Slots[:i], r.Slots[i+1:]...)
			return true
		}
	}
	return false
}

// Object is implemented by every concrete ebRIM class.
type Object interface {
	// Base exposes the shared RegistryObject metadata for mutation.
	Base() *RegistryObject
}

// ID returns the id of any Object (convenience for callers holding the
// interface).
func ID(o Object) string { return o.Base().ID }

// Validate checks the structural invariants common to all objects.
func (r *RegistryObject) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("rim: object has empty id")
	}
	if !IsURN(r.ID) {
		return fmt.Errorf("rim: object id %q is not a urn", r.ID)
	}
	if r.ObjectType == "" {
		return fmt.Errorf("rim: object %s has empty objectType", r.ID)
	}
	switch r.Status {
	case StatusSubmitted, StatusApproved, StatusDeprecated, StatusWithdrawn:
	default:
		return fmt.Errorf("rim: object %s has invalid status %q", r.ID, r.Status)
	}
	return nil
}

// EventType enumerates the auditable actions recorded by the registry.
type EventType string

// Auditable event types (ebRS life-cycle protocols).
const (
	EventCreated      EventType = "Created"
	EventUpdated      EventType = "Updated"
	EventApproved     EventType = "Approved"
	EventDeprecated   EventType = "Deprecated"
	EventUndeprecated EventType = "Undeprecated"
	EventDeleted      EventType = "Deleted"
	EventVersioned    EventType = "Versioned"
	EventRelocated    EventType = "Relocated"
)

// AuditableEvent records one life-cycle action on a set of objects
// (Fig. 1.18); the registry appends these automatically on every LCM call.
type AuditableEvent struct {
	RegistryObject
	EventKind   EventType
	UserID      string
	Timestamp   time.Time
	AffectedIDs []string
	RequestID   string
}

// NewAuditableEvent builds an event object.
func NewAuditableEvent(kind EventType, userID string, at time.Time, affected ...string) *AuditableEvent {
	e := &AuditableEvent{
		RegistryObject: NewRegistryObject(TypeAuditableEvent, string(kind)),
		EventKind:      kind,
		UserID:         userID,
		Timestamp:      at,
		AffectedIDs:    append([]string(nil), affected...),
	}
	e.Status = StatusApproved
	return e
}
