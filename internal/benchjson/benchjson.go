// Package benchjson turns `go test -bench -benchmem` output into a small
// committed JSON artifact (BENCH_discovery.json) and checks a fresh run
// against it. Only allocs/op is gated: allocation counts are deterministic
// for a fixed iteration count and code version, unlike ns/op, which moves
// with the machine. ns/op and B/op are recorded for the human reader.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, with the -<GOMAXPROCS> suffix stripped
// from the name. Gate marks results the alloc-regression check enforces;
// ungated results (e.g. benchmarks with a concurrent background writer,
// whose allocations land on the measured goroutine nondeterministically)
// are recorded for the reader but never fail the check.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Gate        bool    `json:"gate,omitempty"`
	// MaxGrowth, when positive, overrides Compare's default growth bound
	// for this entry. The serving-edge benchmarks are recorded with a
	// tight 5% bound instead of the repo-wide default, so a hot-path
	// regression trips the gate even when it would fit under 25%.
	MaxGrowth float64 `json:"max_growth,omitempty"`
}

// File is the committed artifact's shape.
type File struct {
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkDiscovery/filter/hosts=8-8   2000   4074 ns/op   2209 B/op   18 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// Parse extracts benchmark results from `go test -bench` output. Lines
// that are not benchmark results are ignored; a benchmark run without
// -benchmem (no B/op column) is an error, because the artifact exists to
// gate allocations.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if m[3] == "" {
			return nil, fmt.Errorf("benchjson: %s has no allocation columns; run with -benchmem", m[1])
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", m[1], err)
		}
		bytesPer, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		out = append(out, Result{Name: m[1], NsPerOp: ns, BytesPerOp: bytesPer, AllocsPerOp: allocs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return out, nil
}

// Encode writes f as stable, indented JSON with results sorted by name.
func Encode(w io.Writer, f File) error {
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("benchjson: encode: %w", err)
	}
	return nil
}

// Decode reads a committed artifact.
func Decode(r io.Reader) (File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return File{}, fmt.Errorf("benchjson: decode: %w", err)
	}
	return f, nil
}

// Compare checks current against baseline and returns one message per
// violation: a gated baseline result missing from the current run, or a
// gated result whose allocs/op grew by more than its growth bound —
// the entry's own MaxGrowth when set, maxGrowth (0.25 = 25%) otherwise.
// Improvements and ungated drift are not violations.
func Compare(baseline, current []Result, maxGrowth float64) []string {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var violations []string
	for _, base := range baseline {
		if !base.Gate {
			continue
		}
		got, ok := cur[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: in baseline but not in current run", base.Name))
			continue
		}
		growth := maxGrowth
		if base.MaxGrowth > 0 {
			growth = base.MaxGrowth
		}
		limit := float64(base.AllocsPerOp) * (1 + growth)
		if float64(got.AllocsPerOp) > limit {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
					base.Name, got.AllocsPerOp, base.AllocsPerOp, growth*100))
		}
	}
	return violations
}

// benchFunc matches top-level benchmark declarations in a _test.go file.
var benchFunc = regexp.MustCompile(`(?m)^func (Benchmark\w+)\(b \*testing\.B\)`)

// CheckSync verifies the artifact and the benchmark source cover the same
// top-level benchmarks under prefix: every BenchmarkX in src whose name
// starts with prefix must appear in results (as X or X/sub), and every
// result's top-level name must still be declared in src. This keeps
// BENCH_discovery.json from silently drifting when benchmarks are added,
// renamed, or removed.
func CheckSync(results []Result, src, prefix string) error {
	declared := make(map[string]bool)
	for _, m := range benchFunc.FindAllStringSubmatch(src, -1) {
		if strings.HasPrefix(m[1], prefix) {
			declared[m[1]] = false
		}
	}
	if len(declared) == 0 {
		return fmt.Errorf("benchjson: no benchmarks with prefix %q declared in source", prefix)
	}
	for _, r := range results {
		top := r.Name
		if i := strings.IndexByte(top, '/'); i >= 0 {
			top = top[:i]
		}
		if !strings.HasPrefix(top, prefix) {
			continue
		}
		if _, ok := declared[top]; !ok {
			return fmt.Errorf("benchjson: artifact records %s but no such benchmark is declared", top)
		}
		declared[top] = true
	}
	var missing []string
	for name, seen := range declared {
		if !seen {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("benchjson: declared benchmarks missing from artifact: %s; regenerate with `make bench`",
			strings.Join(missing, ", "))
	}
	return nil
}
