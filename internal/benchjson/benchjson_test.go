package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDiscovery/filter/hosts=8-8         	    2000	      4074 ns/op	    2209 B/op	      18 allocs/op
BenchmarkDiscoveryFastPath/warm-8           	    2000	      3772 ns/op	    2208 B/op	      18 allocs/op
BenchmarkDiscoveryFastPath/collector/readers=4-8 	    2000	      3294 ns/op	    2102 B/op	      15 allocs/op
PASS
ok  	repro	0.109s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results", len(rs))
	}
	got := rs[0]
	if got.Name != "BenchmarkDiscovery/filter/hosts=8" || got.NsPerOp != 4074 ||
		got.BytesPerOp != 2209 || got.AllocsPerOp != 18 {
		t.Fatalf("result = %+v", got)
	}
}

func TestParseRejectsMissingBenchmem(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8  100  5 ns/op\n")); err == nil {
		t.Fatal("want error for missing -benchmem columns")
	}
	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("want error for empty output")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := File{Note: "n", Results: []Result{
		{Name: "BenchmarkB", AllocsPerOp: 2, Gate: true},
		{Name: "BenchmarkA", AllocsPerOp: 1},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].Name != "BenchmarkA" || !got.Results[1].Gate {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestCompare(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkA", AllocsPerOp: 100, Gate: true},
		{Name: "BenchmarkB", AllocsPerOp: 10, Gate: true},
		{Name: "BenchmarkC", AllocsPerOp: 10}, // ungated
		{Name: "BenchmarkGone", AllocsPerOp: 5, Gate: true},
	}
	current := []Result{
		{Name: "BenchmarkA", AllocsPerOp: 125}, // exactly +25%: allowed
		{Name: "BenchmarkB", AllocsPerOp: 13},  // +30%: violation
		{Name: "BenchmarkC", AllocsPerOp: 999}, // ungated drift: allowed
	}
	v := Compare(baseline, current, 0.25)
	if len(v) != 2 {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0], "BenchmarkB") || !strings.Contains(v[1], "BenchmarkGone") {
		t.Fatalf("violations = %v", v)
	}
	if v := Compare(baseline[:2], current[:1], 0.25); len(v) != 1 {
		t.Fatalf("missing-result violations = %v", v)
	}
}

const sampleSrc = `package repro_test

import "testing"

func BenchmarkDiscovery(b *testing.B) {}

func BenchmarkDiscoveryFastPath(b *testing.B) {}

func BenchmarkOther(b *testing.B) {}
`

func TestCheckSync(t *testing.T) {
	ok := []Result{
		{Name: "BenchmarkDiscovery/filter/hosts=8"},
		{Name: "BenchmarkDiscoveryFastPath/warm"},
		{Name: "BenchmarkUnrelated"}, // outside prefix: ignored
	}
	if err := CheckSync(ok, sampleSrc, "BenchmarkDiscovery"); err != nil {
		t.Fatal(err)
	}
	// A declared benchmark missing from the artifact fails.
	if err := CheckSync(ok[:1], sampleSrc, "BenchmarkDiscovery"); err == nil {
		t.Fatal("want missing-benchmark error")
	}
	// An artifact entry whose benchmark was deleted fails.
	stale := []Result{{Name: "BenchmarkDiscoveryDeleted/x"}}
	if err := CheckSync(stale, sampleSrc, "BenchmarkDiscovery"); err == nil {
		t.Fatal("want stale-artifact error")
	}
	if err := CheckSync(ok, sampleSrc, "BenchmarkNope"); err == nil {
		t.Fatal("want no-benchmarks error")
	}
}
