package registry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rim"
	"repro/internal/store"
)

func getUI(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestWebUISearchAndNodeState(t *testing.T) {
	reg := newRegistry(t)
	org := rim.NewOrganization("San Diego State University (SDSU)")
	svc := rim.NewService("NodeStatus", "Service to monitor node status")
	svc.AddBinding("http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), org, svc); err != nil {
		t.Fatal(err)
	}
	reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 1.23, MemoryB: 1 << 30, Updated: t0})

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Default view lists organizations and the NodeState table.
	code, body := getUI(t, srv.URL+"/ui")
	if code != 200 || !strings.Contains(body, "San Diego State University") {
		t.Fatalf("default ui: %d\n%s", code, body[:min(300, len(body))])
	}
	if !strings.Contains(body, "thermo.sdsu.edu") || !strings.Contains(body, "1.23") {
		t.Fatal("nodestate missing from ui")
	}

	// Service search.
	code, body = getUI(t, srv.URL+"/ui?kind=Service&name=Node%25")
	if code != 200 || !strings.Contains(body, "NodeStatus") {
		t.Fatalf("service search: %d", code)
	}

	// Empty result message.
	_, body = getUI(t, srv.URL+"/ui?kind=Service&name=Nomatch%25")
	if !strings.Contains(body, "No matches") {
		t.Fatal("empty-result message missing")
	}

	// Bad kind is a 400.
	if code, _ := getUI(t, srv.URL+"/ui?kind=Martian"); code != 400 {
		t.Fatalf("bad kind: %d", code)
	}
}

func TestWebUIEscapesHTML(t *testing.T) {
	reg := newRegistry(t)
	org := rim.NewOrganization(`<script>alert("xss")</script>`)
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), org); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	_, body := getUI(t, srv.URL+"/ui")
	if strings.Contains(body, "<script>alert") {
		t.Fatal("unescaped name in ui")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Fatal("escaped name missing")
	}
}
