package registry

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
	"repro/internal/store"
)

var t0 = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func newRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := New(Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// registerAndLogin performs the full wizard + challenge handshake over the
// SOAP auth endpoint and returns a session token.
func registerAndLogin(t *testing.T, client *http.Client, base, alias string) string {
	t.Helper()
	var reg RegisterResponse
	err := soap.Post(client, base+"/soap/auth", &authRequest{
		Register: &RegisterRequest{Alias: alias, Password: alias + "123", FirstName: "Test"},
	}, &reg)
	if err != nil {
		t.Fatal(err)
	}
	creds := &auth.Credentials{Alias: alias, CertPEM: []byte(reg.CertPEM), KeyPEM: []byte(reg.KeyPEM)}

	var ch ChallengeResponse
	if err := soap.Post(client, base+"/soap/auth", &authRequest{Challenge: &ChallengeRequest{Alias: alias}}, &ch); err != nil {
		t.Fatal(err)
	}
	nonce, err := base64.StdEncoding.DecodeString(ch.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := creds.SignChallenge(nonce)
	if err != nil {
		t.Fatal(err)
	}
	var login LoginResponse
	err = soap.Post(client, base+"/soap/auth", &authRequest{
		Login: &LoginRequest{Alias: alias, Signature: base64.StdEncoding.EncodeToString(sig)},
	}, &login)
	if err != nil {
		t.Fatal(err)
	}
	if login.Token == "" || login.UserID == "" {
		t.Fatalf("login = %+v", login)
	}
	return login.Token
}

func TestEndToEndPublishDiscoverOverSOAP(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	token := registerAndLogin(t, client, srv.URL, "gold")

	// Publish an organization and a constrained service (the §4.1 flow).
	submit := &SubmitObjectsRequest{
		Session: token,
		Objects: []WireObject{
			{Kind: "Organization", Name: "San Diego State University (SDSU)",
				Telephones: []WireTelephone{{CountryCode: "1", AreaCode: "619", Number: "594-5200", Type: "OfficePhone"}}},
			{Kind: "Service", Name: "ServiceAdder",
				Description: `adds <constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>`,
				Bindings: []WireBinding{
					{AccessURI: "http://exergy.sdsu.edu:8080/Adder/addService"},
					{AccessURI: "http://thermo.sdsu.edu:8080/Adder/addService"},
				}},
		},
	}
	var resp RegistryResponse
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Submit: submit}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "Success" || len(resp.IDs) != 2 {
		t.Fatalf("submit resp = %+v", resp)
	}

	// NodeState: thermo healthy, exergy overloaded.
	reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})
	reg.Store.NodeState().Upsert(store.NodeState{Host: "exergy.sdsu.edu", Load: 3.0, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0})

	// Discover over SOAP: only thermo comes back.
	var bindings GetBindingsResponse
	err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{
		Bindings: &GetBindingsRequest{ServiceName: "ServiceAdder"},
	}, &bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings.URIs) != 1 || !strings.Contains(bindings.URIs[0], "thermo") {
		t.Fatalf("bindings = %+v", bindings)
	}
	if !bindings.Filtered || bindings.Eligible != 1 || bindings.Ineligible != 1 {
		t.Fatalf("decision = %+v", bindings)
	}
}

func TestSOAPSubmitRequiresSession(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	var resp RegistryResponse
	err := soap.Post(srv.Client(), srv.URL+"/soap/registry", &soapRequest{
		Submit: &SubmitObjectsRequest{Objects: []WireObject{{Kind: "Organization", Name: "X"}}},
	}, &resp)
	if err == nil || !strings.Contains(err.Error(), "authentication required") {
		t.Fatalf("unauthenticated submit: %v", err)
	}
	// Bogus token is also rejected.
	err = soap.Post(srv.Client(), srv.URL+"/soap/registry", &soapRequest{
		Submit: &SubmitObjectsRequest{Session: "bogus", Objects: []WireObject{{Kind: "Organization", Name: "X"}}},
	}, &resp)
	if err == nil || !strings.Contains(err.Error(), "invalid session") {
		t.Fatalf("bogus session: %v", err)
	}
}

func TestSOAPLifecycleRoundTrip(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()
	token := registerAndLogin(t, client, srv.URL, "gold")

	var resp RegistryResponse
	submit := &SubmitObjectsRequest{Session: token, Objects: []WireObject{{Kind: "Service", Name: "S",
		Bindings: []WireBinding{{AccessURI: "http://h.example/x"}}}}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Submit: submit}, &resp); err != nil {
		t.Fatal(err)
	}
	id := resp.IDs[0]

	// Approve, deprecate, undeprecate, update, remove.
	steps := []*soapRequest{
		{Approve: &ApproveObjectsRequest{ObjectRefRequest: ObjectRefRequest{Session: token, IDs: []string{id}}}},
		{Deprecate: &DeprecateObjectsRequest{ObjectRefRequest: ObjectRefRequest{Session: token, IDs: []string{id}}}},
		{Undeprecate: &UndeprecateObjectsRequest{ObjectRefRequest: ObjectRefRequest{Session: token, IDs: []string{id}}}},
	}
	for i, step := range steps {
		if err := soap.Post(client, srv.URL+"/soap/registry", step, &resp); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	update := &UpdateObjectsRequest{Session: token, Objects: []WireObject{{Kind: "Service", ID: id, Name: "S", Description: "edited",
		Bindings: []WireBinding{{AccessURI: "http://h.example/x"}}}}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Update: update}, &resp); err != nil {
		t.Fatal(err)
	}
	var got GetObjectResponse
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{GetObject: &GetObjectRequest{ID: id}}, &got); err != nil {
		t.Fatal(err)
	}
	if got.Object.Description != "edited" || got.Object.Status != string(rim.StatusApproved) {
		t.Fatalf("after update = %+v", got.Object)
	}
	remove := &RemoveObjectsRequest{ObjectRefRequest: ObjectRefRequest{Session: token, IDs: []string{id}}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Remove: remove}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{GetObject: &GetObjectRequest{ID: id}}, &got); err == nil {
		t.Fatal("removed object still retrievable")
	}
}

func TestSOAPAdhocQuery(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()
	token := registerAndLogin(t, client, srv.URL, "gold")

	var resp RegistryResponse
	submit := &SubmitObjectsRequest{Session: token, Objects: []WireObject{
		{Kind: "Organization", Name: "DemoOrg_A"},
		{Kind: "Organization", Name: "DemoOrg_B"},
		{Kind: "Organization", Name: "Other"},
	}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Submit: submit}, &resp); err != nil {
		t.Fatal(err)
	}
	var q AdhocQueryWireResponse
	err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Query: &AdhocQueryWireRequest{
		Query:  "SELECT o.name FROM Organization o WHERE o.name LIKE $p ORDER BY o.name",
		Params: []WireParam{{Name: "p", Value: "DemoOrg_%"}},
	}}, &q)
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalResultsCount != 2 || q.Rows[0].Cells[0].Value != "DemoOrg_A" {
		t.Fatalf("query resp = %+v", q)
	}
}

func TestHTTPGetBinding(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Seed directly (localCall mode) as the operator.
	svc := rim.NewService("NodeStatus", "Service to monitor node status")
	svc.AddBinding("http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	resp, body := get("/registry/find?kind=Service&name=Node%25")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "NodeStatus") {
		t.Fatalf("find: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/registry/object?id=" + svc.ID)
	if resp.StatusCode != 200 || !strings.Contains(string(body), svc.ID) {
		t.Fatalf("object: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/registry/bindings?service=NodeStatus")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "thermo") {
		t.Fatalf("bindings: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/registry/query?q=" + strings.ReplaceAll("SELECT name FROM Service", " ", "+"))
	if resp.StatusCode != 200 || !strings.Contains(string(body), "NodeStatus") {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	reg.Store.NodeState().Upsert(store.NodeState{Host: "thermo.sdsu.edu", Load: 0.5, Updated: t0})
	resp, body = get("/registry/nodestate")
	if resp.StatusCode != 200 || !strings.Contains(string(body), "thermo") {
		t.Fatalf("nodestate: %d %s", resp.StatusCode, body)
	}
	// Error paths.
	if resp, _ := get("/registry/object?id=urn:uuid:ghost"); resp.StatusCode != 404 {
		t.Fatalf("ghost object: %d", resp.StatusCode)
	}
	if resp, _ := get("/registry/find?kind=Martian"); resp.StatusCode != 400 {
		t.Fatalf("bad kind: %d", resp.StatusCode)
	}
	if resp, _ := get("/registry/bindings"); resp.StatusCode != 400 {
		t.Fatalf("missing service: %d", resp.StatusCode)
	}
	if resp, _ := get("/registry/query"); resp.StatusCode != 400 {
		t.Fatalf("missing q: %d", resp.StatusCode)
	}
}

func TestWireRoundTripAllKinds(t *testing.T) {
	org := rim.NewOrganization("SDSU")
	org.Addresses = append(org.Addresses, rim.PostalAddress{StreetNumber: "5500", Street: "Campanile Drive", City: "San Diego", State: "CA", Country: "US", PostalCode: "92182", Type: "TYPE-US"})
	org.Emails = append(org.Emails, rim.EmailAddress{Address: "info@sdsu.edu", Type: "OfficeEmail"})
	org.Telephones = append(org.Telephones, rim.TelephoneNumber{CountryCode: "1", AreaCode: "619", Number: "594-5200", Type: "OfficePhone"})
	org.SetSlot("copyright", "2011")

	svc := rim.NewService("NodeStatus", "monitor")
	svc.AddBinding("http://thermo.sdsu.edu:8080/x")

	objs := []rim.Object{
		org,
		svc,
		rim.NewUser("gold", rim.PersonName{FirstName: "G", LastName: "User"}),
		rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID),
		rim.NewExternalLink("spec", "http://example.org/spec"),
		rim.NewAdhocQuery("q", "SQL-92", "SELECT 1"),
		rim.NewClassificationScheme("NAICS", true),
		rim.NewClassificationNode("urn:uuid:p", "111330", "Strawberries"),
		rim.NewRegistryPackage("pkg"),
	}
	for _, o := range objs {
		w, err := ToWire(o)
		if err != nil {
			t.Fatalf("ToWire(%T): %v", o, err)
		}
		back, err := w.FromWire()
		if err != nil {
			t.Fatalf("FromWire(%T): %v", o, err)
		}
		if back.Base().ID != o.Base().ID || back.Base().Name.String() != o.Base().Name.String() {
			t.Fatalf("%T round trip mismatch", o)
		}
	}
	// Org details survive.
	w, _ := ToWire(org)
	back, _ := w.FromWire()
	orgBack := back.(*rim.Organization)
	if len(orgBack.Addresses) != 1 || orgBack.Addresses[0].City != "San Diego" ||
		len(orgBack.Telephones) != 1 || orgBack.Telephones[0].Number != "594-5200" {
		t.Fatalf("org details lost: %+v", orgBack)
	}
	if v, ok := orgBack.SlotValue("copyright"); !ok || v != "2011" {
		t.Fatal("slot lost on wire")
	}
	// Service bindings survive with service id retargeted.
	ws, _ := ToWire(svc)
	backSvc, _ := ws.FromWire()
	sb := backSvc.(*rim.Service)
	if len(sb.Bindings) != 1 || sb.Bindings[0].ServiceID != sb.ID {
		t.Fatalf("bindings lost: %+v", sb.Bindings)
	}
}

func TestFromWireDefaultsAndErrors(t *testing.T) {
	w := &WireObject{Kind: "Organization", Name: "X"}
	o, err := w.FromWire()
	if err != nil {
		t.Fatal(err)
	}
	b := o.Base()
	if !rim.IsUUIDURN(b.ID) || b.LID != b.ID || b.Status != rim.StatusSubmitted || b.Version.VersionName != "1.1" {
		t.Fatalf("defaults = %+v", b)
	}
	if _, err := (&WireObject{Kind: "Martian"}).FromWire(); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestSessionContextAndAdmin(t *testing.T) {
	reg := newRegistry(t)
	if ctx, err := reg.SessionContext(""); err != nil || ctx.UserID != "" {
		t.Fatalf("guest ctx = %+v, %v", ctx, err)
	}
	if _, err := reg.SessionContext("bogus"); err == nil {
		t.Fatal("bogus token validated")
	}
	admin := reg.AdminContext()
	if admin.UserID == "" || len(admin.Roles) == 0 {
		t.Fatalf("admin ctx = %+v", admin)
	}
	ctx := reg.ContextFor(admin.UserID)
	found := false
	for _, role := range ctx.Roles {
		if role == "RegistryAdministrator" {
			found = true
		}
	}
	if !found {
		t.Fatal("operator lacks admin role")
	}
}

func TestNodeStateJSONShape(t *testing.T) {
	reg := newRegistry(t)
	reg.Store.NodeState().Upsert(store.NodeState{Host: "h", Load: 1.5, MemoryB: 2, SwapB: 3, Updated: t0})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/registry/nodestate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []store.NodeState
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Load != 1.5 {
		t.Fatalf("rows = %+v", rows)
	}
}
