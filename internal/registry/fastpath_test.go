package registry

import (
	"testing"

	"repro/internal/rim"
)

// TestLCMWritesInvalidateConstraintCache checks the registry wiring of
// the fast path: discovery populates the parsed-constraint cache, and an
// LCM update or removal of the service drops its entry via the OnWrite
// hook.
func TestLCMWritesInvalidateConstraintCache(t *testing.T) {
	reg := newRegistry(t)
	ctx := reg.AdminContext()
	svc := rim.NewService("Worker", `<constraint><cpuLoad>load ls 2.0</cpuLoad></constraint>`)
	svc.AddBinding("http://thermo.sdsu.edu:8080/Worker/workerService")
	if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.QM.GetServiceBindings(svc.ID); err != nil {
		t.Fatal(err)
	}
	if reg.ConstraintCache.Len() != 1 {
		t.Fatalf("cache len = %d after discovery, want 1", reg.ConstraintCache.Len())
	}

	up := rim.NewService("Worker", `<constraint><cpuLoad>load ls 3.0</cpuLoad></constraint>`)
	up.ID = svc.ID
	up.AddBinding("http://thermo.sdsu.edu:8080/Worker/workerService")
	if err := reg.LCM.UpdateObjects(ctx, up); err != nil {
		t.Fatal(err)
	}
	if reg.ConstraintCache.Invalidations.Value() != 1 {
		t.Fatalf("invalidations = %d after update, want 1", reg.ConstraintCache.Invalidations.Value())
	}

	if _, _, err := reg.QM.GetServiceBindings(svc.ID); err != nil {
		t.Fatal(err)
	}
	if err := reg.LCM.RemoveObjects(ctx, svc.ID); err != nil {
		t.Fatal(err)
	}
	if reg.ConstraintCache.Len() != 0 {
		t.Fatalf("cache len = %d after remove, want 0", reg.ConstraintCache.Len())
	}
}

// TestConstraintCacheDisabled checks the negative-size knob: discovery
// still works, nothing is cached, and the lcm hook is a no-op.
func TestConstraintCacheDisabled(t *testing.T) {
	reg, err := New(Config{ConstraintCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reg.ConstraintCache != nil {
		t.Fatal("negative size should disable the cache")
	}
	ctx := reg.AdminContext()
	svc := rim.NewService("Worker", "plain")
	svc.AddBinding("http://thermo.sdsu.edu:8080/Worker/workerService")
	if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}
	uris, dec, err := reg.QM.GetServiceBindings(svc.ID)
	if err != nil || len(uris) != 1 || dec.ConstraintCached {
		t.Fatalf("uris=%v cached=%v err=%v", uris, dec.ConstraintCached, err)
	}
}
